/**
 * @file
 * gpuperf-worker — the command-line face of the AnalysisService API
 * and both worker protocols (spool directories and fleet
 * registration). One binary, five modes:
 *
 *   gpuperf-worker demo-request --out REQ.json [--store DIR]
 *       Emit a small self-contained demo request (case refs over a
 *       quick-calibrating spec) — the input the api-smoke CI step
 *       feeds the modes below.
 *
 *   gpuperf-worker run REQ.json --out RESP.json [--via URI]
 *       Execute the request and write the JSON response. --via picks
 *       the transport: inproc: (default), spool:DIR, unix:PATH or
 *       tcp:HOST:PORT (the latter two talk to a gpuperf-serve
 *       daemon). The response is bit-identical across transports.
 *
 *   gpuperf-worker submit REQ.json --spool DIR [--out RESP.json]
 *                  [--no-wait] [--timeout SEC]
 *       Parent mode: serialize per-cell jobs into the spool
 *       directory; unless --no-wait, block until cooperating workers
 *       answered them all and write the assembled JSON response.
 *
 *   gpuperf-worker serve --via SERVER-URI | --spool DIR
 *                  [--once] [--max-jobs N] [--claim-stale-ms MS]
 *       Worker mode. With `--via unix:PATH` / `--via tcp:HOST:PORT`,
 *       REGISTER with that gpuperf-serve daemon and execute the cell
 *       jobs it dispatches until it hangs up (the fleet protocol —
 *       see src/api/dispatch.h). With a spool directory (--spool DIR
 *       or --via spool:DIR), claim jobs through the lease protocol
 *       (crash-steal included), execute, and write responses; the
 *       default drains the directory, --once does a single claim
 *       pass.
 *
 *   gpuperf-worker collect REQ.json --spool DIR --out RESP.json
 *                  [--timeout SEC]
 *       Parent mode without submission: wait for the request's
 *       responses and assemble them.
 *
 *   gpuperf-worker gc --store DIR [--gc-bytes N] [--gc-age SEC]
 *                  [--dry-run]
 *   gpuperf-worker verify --store DIR [--report-only]
 *   gpuperf-worker compact --store DIR [--force] [--min-loose N]
 *   gpuperf-worker stats --store DIR
 *       Store lifecycle admin verbs (src/store/lifecycle/): bound the
 *       shared store's size/age (lease-aware LRU eviction), scan and
 *       quarantine corrupt entries, fold loose entry files into
 *       indexed segments, and dump the disk-side usage scan. All are
 *       safe against a live fleet sharing the store; each prints its
 *       JSON report on stdout. `verify` exits 2 when it found
 *       corruption (quarantined or not), so cron can alarm on it.
 *
 * Every endpoint-tunable flag shares its spelling with gpuperf-serve
 * and with api::Endpoint query options — see tools/cli_common.h.
 *
 * Exit status: 0 on success with every cell ok; 2 when the job ran
 * but some cell failed; 1 on usage or I/O errors.
 */

#include <iostream>
#include <string>

#include "api/codecs.h"
#include "api/dispatch.h"
#include "api/endpoint.h"
#include "api/registry.h"
#include "api/request.h"
#include "api/service.h"
#include "api/spool.h"
#include "api/transport.h"
#include "cli_common.h"
#include "store/lifecycle/compactor.h"
#include "store/lifecycle/gc.h"
#include "store/lifecycle/lifecycle.h"
#include "store/lifecycle/verifier.h"

using namespace gpuperf;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  gpuperf-worker demo-request --out REQ.json [--store DIR]\n"
           "  gpuperf-worker run REQ.json --out RESP.json "
           "[--via URI]\n"
           "  gpuperf-worker submit REQ.json --spool DIR "
           "[--out RESP.json] [--no-wait] [--timeout SEC]\n"
           "  gpuperf-worker serve --via SERVER-URI | --spool DIR\n"
           "                 [--once] [--max-jobs N] "
           "[--claim-stale-ms MS]\n"
           "  gpuperf-worker collect REQ.json --spool DIR "
           "--out RESP.json [--timeout SEC]\n"
           "  gpuperf-worker gc --store DIR [--gc-bytes N] "
           "[--gc-age SEC] [--dry-run]\n"
           "  gpuperf-worker verify --store DIR [--report-only]\n"
           "  gpuperf-worker compact --store DIR [--force] "
           "[--min-loose N]\n"
           "  gpuperf-worker stats --store DIR\n"
           "shared option flags (see tools/cli_common.h): --store "
           "--timeout --idle-timeout\n"
           "  --job-timeout --max-clients --max-inflight --max-cells "
           "--max-frame-bytes\n"
           "  --worker-inflight --max-jobs --claim-stale-ms --json\n";
    return 1;
}

/**
 * The demo request: three registry cases (one of each bottleneck
 * family, histogram included) on a scaled-down machine whose
 * microbenchmark calibration is quick, with a small sweep — enough
 * to exercise calibration, funcsim, timing, prediction, sweep and
 * every codec, in seconds.
 */
api::AnalysisRequest
demoRequest(const std::string &store_dir)
{
    api::AnalysisRequest req;
    req.jobName = "api-smoke-demo";

    req.kernels.push_back(api::KernelJob::fromRef(
        "saxpy", api::CaseRef{"saxpy", {16, 128}, {2.0}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "cr-like-conflicted",
        api::CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "histogram", api::CaseRef{"histogram", {8, 128, 8, 4}, {}}));

    arch::GpuSpec tiny = arch::GpuSpec::gtx285();
    tiny.name = "GTX tiny (demo)";
    tiny.numSms = 3;
    tiny.maxWarpsPerSm = 8;
    tiny.maxThreadsPerSm = 256;
    tiny.maxThreadsPerBlock = 256;
    tiny.validate();
    req.specs.push_back(tiny);

    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0};
    req.sweep.coalescingFractions = {1.0};

    req.store.storeDir = store_dir;
    req.exec.numThreads = 2;
    return req;
}

/**
 * The spool directory named by --spool or a spool: --via URI ("" when
 * neither is present).
 */
std::string
spoolDir(const cli::CommonArgs &args)
{
    if (!args.spool.empty())
        return args.spool;
    for (const std::string &uri : args.via) {
        const api::Endpoint ep = api::Endpoint::parse(uri);
        if (ep.scheme == api::Endpoint::Scheme::kSpool)
            return ep.path;
    }
    return "";
}

/** Collect options from the shared flags (--timeout et al.). */
api::SpoolOptions
collectOptions(const cli::CommonArgs &args, const std::string &dir)
{
    return api::spoolOptionsFor(
        cli::endpointFor(args, "spool:" + dir,
                         api::Endpoint::Role::kClient));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string mode = argv[1];
    cli::CommonArgs args;
    if (!cli::parseCommonArgs(argc, argv, 2, &args))
        return usage();

    try {
        if (mode == "demo-request") {
            if (args.out.empty())
                return usage();
            const api::AnalysisRequest req = demoRequest(args.store);
            if (!cli::writeFile(args.out, api::requestToJson(req))) {
                std::cerr << "cannot write '" << args.out << "'\n";
                return 1;
            }
            std::cout << "wrote demo request (" << req.kernels.size()
                      << " kernels x " << req.specs.size()
                      << " specs) to " << args.out << "\n";
            return 0;
        }

        if (mode == "run") {
            if (args.positional.empty() || args.out.empty())
                return usage();
            api::AnalysisRequest req;
            if (!cli::loadRequestJson(args.positional, &req))
                return 1;
            const std::string uri =
                args.via.empty() ? "inproc:" : args.via.front();
            const auto transport = api::makeTransport(
                cli::endpointFor(args, uri,
                                 api::Endpoint::Role::kClient));
            const api::AnalysisResponse resp = transport->run(req);
            if (!cli::writeFile(args.out, api::responseToJson(resp))) {
                std::cerr << "cannot write '" << args.out << "'\n";
                return 1;
            }
            std::cout << "ran " << resp.cells.size() << " cells via "
                      << transport->describe() << ", response at "
                      << args.out << "\n";
            return cli::cellStatus(resp);
        }

        if (mode == "submit") {
            const std::string dir = spoolDir(args);
            if (args.positional.empty() || dir.empty())
                return usage();
            api::AnalysisRequest req;
            if (!cli::loadRequestJson(args.positional, &req))
                return 1;
            const auto ids = api::spoolSubmit(dir, req);
            std::cout << "spooled " << ids.size() << " job(s) into "
                      << dir << "\n";
            if (args.noWait)
                return 0;
            const api::AnalysisResponse resp =
                api::spoolCollect(dir, req, collectOptions(args, dir));
            if (!args.out.empty() &&
                !cli::writeFile(args.out, api::responseToJson(resp))) {
                std::cerr << "cannot write '" << args.out << "'\n";
                return 1;
            }
            return cli::cellStatus(resp);
        }

        if (mode == "serve") {
            api::AnalysisService service;

            // Fleet registration: serve --via unix:SOCK / tcp:H:P.
            if (!args.via.empty() && args.spool.empty()) {
                const api::Endpoint server = cli::endpointFor(
                    args, args.via.front(),
                    api::Endpoint::Role::kWorker);
                if (server.scheme == api::Endpoint::Scheme::kUnix ||
                    server.scheme == api::Endpoint::Scheme::kTcp) {
                    api::WorkerLoopOptions opts;
                    opts.maxJobs = server.limits.maxJobs;
                    const api::WorkerLoopStats stats =
                        api::workerServe(server, service, nullptr,
                                         opts);
                    std::cout << "worker executed " << stats.executed
                              << " job(s), " << stats.failedCells
                              << " failed cell(s)\n";
                    return 0;
                }
            }

            const std::string dir = spoolDir(args);
            if (dir.empty())
                return usage();
            const api::Endpoint ep = cli::endpointFor(
                args, "spool:" + dir, api::Endpoint::Role::kWorker);
            api::ServeOptions opts = api::spoolServeOptionsFor(ep);
            opts.drain = !args.once;
            const api::ServeStats stats =
                api::spoolServe(dir, service, opts);
            std::cout << "worker executed " << stats.executed
                      << " job(s), " << stats.failedCells
                      << " failed cell(s)\n";
            return 0;
        }

        // Store lifecycle admin verbs: the flags travel as endpoint
        // options (one vocabulary), so parse them off an inproc URI.
        if (mode == "gc" || mode == "verify" || mode == "compact" ||
            mode == "stats") {
            const api::Endpoint ep = cli::endpointFor(
                args, "inproc:", api::Endpoint::Role::kClient);
            const std::string root =
                ep.storeDir.empty() ? args.store : ep.storeDir;
            if (root.empty()) {
                std::cerr << "gpuperf-worker " << mode
                          << " needs --store DIR\n";
                return usage();
            }
            if (mode == "gc") {
                store::GcOptions gc;
                gc.maxBytes = ep.limits.gcBytes;
                gc.maxAgeMs = static_cast<int64_t>(
                    ep.timeouts.gcAgeSeconds * 1000.0);
                gc.dryRun = args.dryRun;
                const store::GcReport report = store::runGc(root, gc);
                std::cout << report.json() << "\n";
                return report.ok ? 0 : 1;
            }
            if (mode == "verify") {
                store::VerifyOptions vo;
                vo.fix = !args.reportOnly;
                const store::VerifyReport report =
                    store::runVerify(root, vo);
                std::cout << report.json() << "\n";
                // 2 = ran but found corruption, mirroring the failed-
                // cell convention; 1 = a fix failed to apply.
                if (!report.ok)
                    return 1;
                return report.clean() ? 0 : 2;
            }
            if (mode == "compact") {
                store::CompactOptions co;
                co.force = args.force;
                if (args.minLoose > 0)
                    co.minLooseEntries = args.minLoose;
                const store::CompactReport report =
                    store::runCompact(root, co);
                std::cout << report.json() << "\n";
                return report.ok ? 0 : 1;
            }
            const store::StoreUsage usage_scan =
                store::scanStoreUsage(root);
            std::cout << store::storeUsageJson(usage_scan) << "\n";
            return 0;
        }

        if (mode == "collect") {
            const std::string dir = spoolDir(args);
            if (args.positional.empty() || dir.empty() ||
                args.out.empty())
                return usage();
            api::AnalysisRequest req;
            if (!cli::loadRequestJson(args.positional, &req))
                return 1;
            const api::AnalysisResponse resp =
                api::spoolCollect(dir, req, collectOptions(args, dir));
            if (!cli::writeFile(args.out, api::responseToJson(resp))) {
                std::cerr << "cannot write '" << args.out << "'\n";
                return 1;
            }
            std::cout << "collected " << resp.cells.size()
                      << " cell(s) into " << args.out << "\n";
            return cli::cellStatus(resp);
        }
    } catch (const std::exception &e) {
        std::cerr << "gpuperf-worker " << mode << ": " << e.what()
                  << "\n";
        return 1;
    }
    return usage();
}
