/**
 * @file
 * gpuperf-worker — the command-line face of the AnalysisService API
 * and its spool-worker protocol. One binary, five modes:
 *
 *   gpuperf-worker demo-request --out REQ.json [--store DIR]
 *       Emit a small self-contained demo request (case refs over a
 *       quick-calibrating spec) — the input the api-smoke CI step
 *       feeds the modes below.
 *
 *   gpuperf-worker run REQ.json --out RESP.json [--via URI]
 *       Execute the request and write the JSON response. --via picks
 *       the transport: inproc: (default), spool:DIR, unix:PATH or
 *       tcp:HOST:PORT (the latter two talk to a gpuperf-serve
 *       daemon). The response is bit-identical across transports.
 *
 *   gpuperf-worker submit REQ.json --spool DIR [--out RESP.json]
 *                  [--no-wait] [--timeout SEC]
 *       Parent mode: serialize per-cell jobs into the spool
 *       directory; unless --no-wait, block until cooperating workers
 *       answered them all and write the assembled JSON response.
 *
 *   gpuperf-worker serve --spool DIR [--once] [--max-jobs N]
 *                  [--claim-stale-ms MS]
 *       Worker mode: claim jobs (lease protocol, crash-steal
 *       included), execute, write responses. Default drains the
 *       directory — it returns once every job present has a
 *       response; --once does a single claim pass instead.
 *
 *   gpuperf-worker collect REQ.json --spool DIR --out RESP.json
 *                  [--timeout SEC]
 *       Parent mode without submission: wait for the request's
 *       responses and assemble them.
 *
 * Exit status: 0 on success with every cell ok; 2 when the job ran
 * but some cell failed; 1 on usage or I/O errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "api/codecs.h"
#include "api/registry.h"
#include "api/request.h"
#include "api/service.h"
#include "api/spool.h"
#include "api/transport.h"

using namespace gpuperf;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  gpuperf-worker demo-request --out REQ.json [--store DIR]\n"
           "  gpuperf-worker run REQ.json --out RESP.json "
           "[--via URI]\n"
           "  gpuperf-worker submit REQ.json --spool DIR "
           "[--out RESP.json] [--no-wait] [--timeout SEC]\n"
           "  gpuperf-worker serve --spool DIR [--once] "
           "[--max-jobs N] [--claim-stale-ms MS]\n"
           "  gpuperf-worker collect REQ.json --spool DIR "
           "--out RESP.json [--timeout SEC]\n";
    return 1;
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

bool
loadRequestJson(const std::string &path, api::AnalysisRequest *req)
{
    std::string text;
    if (!readFile(path, &text)) {
        std::cerr << "cannot read request file '" << path << "'\n";
        return false;
    }
    std::string error;
    if (!api::requestFromJson(text, req, &error)) {
        std::cerr << "malformed request '" << path << "': " << error
                  << "\n";
        return false;
    }
    return true;
}

/** 0 when every cell is ok, 2 otherwise (reported on stderr). */
int
cellStatus(const api::AnalysisResponse &resp)
{
    int failed = 0;
    for (const driver::BatchResult &cell : resp.cells) {
        if (!cell.ok) {
            ++failed;
            std::cerr << "cell " << cell.kernelName << " x "
                      << cell.specName << " FAILED: " << cell.error
                      << "\n";
        }
    }
    return failed == 0 ? 0 : 2;
}

/**
 * The demo request: three registry cases (one of each bottleneck
 * family, histogram included) on a scaled-down machine whose
 * microbenchmark calibration is quick, with a small sweep — enough
 * to exercise calibration, funcsim, timing, prediction, sweep and
 * every codec, in seconds.
 */
api::AnalysisRequest
demoRequest(const std::string &store_dir)
{
    api::AnalysisRequest req;
    req.jobName = "api-smoke-demo";

    req.kernels.push_back(api::KernelJob::fromRef(
        "saxpy", api::CaseRef{"saxpy", {16, 128}, {2.0}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "cr-like-conflicted",
        api::CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "histogram", api::CaseRef{"histogram", {8, 128, 8, 4}, {}}));

    arch::GpuSpec tiny = arch::GpuSpec::gtx285();
    tiny.name = "GTX tiny (demo)";
    tiny.numSms = 3;
    tiny.maxWarpsPerSm = 8;
    tiny.maxThreadsPerSm = 256;
    tiny.maxThreadsPerBlock = 256;
    tiny.validate();
    req.specs.push_back(tiny);

    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0};
    req.sweep.coalescingFractions = {1.0};

    req.store.storeDir = store_dir;
    req.exec.numThreads = 2;
    return req;
}

struct Args
{
    std::string positional;
    std::string out;
    std::string spool;
    std::string store;
    std::string via;
    bool noWait = false;
    bool once = false;
    size_t maxJobs = 0;
    long claimStaleMs = -1;
    double timeoutSec = 600.0;
};

bool
parseArgs(int argc, char **argv, int first, Args *args)
{
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--out") {
            const char *v = value("--out");
            if (!v)
                return false;
            args->out = v;
        } else if (arg == "--spool") {
            const char *v = value("--spool");
            if (!v)
                return false;
            args->spool = v;
        } else if (arg == "--store") {
            const char *v = value("--store");
            if (!v)
                return false;
            args->store = v;
        } else if (arg == "--via") {
            const char *v = value("--via");
            if (!v)
                return false;
            args->via = v;
        } else if (arg == "--timeout") {
            const char *v = value("--timeout");
            if (!v)
                return false;
            args->timeoutSec = std::atof(v);
        } else if (arg == "--max-jobs") {
            const char *v = value("--max-jobs");
            if (!v)
                return false;
            args->maxJobs = static_cast<size_t>(std::atol(v));
        } else if (arg == "--claim-stale-ms") {
            const char *v = value("--claim-stale-ms");
            if (!v)
                return false;
            args->claimStaleMs = std::atol(v);
        } else if (arg == "--no-wait") {
            args->noWait = true;
        } else if (arg == "--once") {
            args->once = true;
        } else if (!arg.empty() && arg[0] != '-' &&
                   args->positional.empty()) {
            args->positional = arg;
        } else {
            std::cerr << "unknown argument '" << arg << "'\n";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string mode = argv[1];
    Args args;
    if (!parseArgs(argc, argv, 2, &args))
        return usage();

    try {
        if (mode == "demo-request") {
            if (args.out.empty())
                return usage();
            const api::AnalysisRequest req = demoRequest(args.store);
            if (!writeFile(args.out, api::requestToJson(req))) {
                std::cerr << "cannot write '" << args.out << "'\n";
                return 1;
            }
            std::cout << "wrote demo request (" << req.kernels.size()
                      << " kernels x " << req.specs.size()
                      << " specs) to " << args.out << "\n";
            return 0;
        }

        if (mode == "run") {
            if (args.positional.empty() || args.out.empty())
                return usage();
            api::AnalysisRequest req;
            if (!loadRequestJson(args.positional, &req))
                return 1;
            const auto transport = api::makeTransport(args.via);
            const api::AnalysisResponse resp = transport->run(req);
            if (!writeFile(args.out, api::responseToJson(resp))) {
                std::cerr << "cannot write '" << args.out << "'\n";
                return 1;
            }
            std::cout << "ran " << resp.cells.size() << " cells via "
                      << transport->describe() << ", response at "
                      << args.out << "\n";
            return cellStatus(resp);
        }

        if (mode == "submit") {
            if (args.positional.empty() || args.spool.empty())
                return usage();
            api::AnalysisRequest req;
            if (!loadRequestJson(args.positional, &req))
                return 1;
            const auto ids = api::spoolSubmit(args.spool, req);
            std::cout << "spooled " << ids.size() << " job(s) into "
                      << args.spool << "\n";
            if (args.noWait)
                return 0;
            const api::AnalysisResponse resp =
                api::spoolCollect(args.spool, req, args.timeoutSec);
            if (!args.out.empty() &&
                !writeFile(args.out, api::responseToJson(resp))) {
                std::cerr << "cannot write '" << args.out << "'\n";
                return 1;
            }
            return cellStatus(resp);
        }

        if (mode == "serve") {
            if (args.spool.empty())
                return usage();
            api::AnalysisService service;
            api::ServeOptions opts;
            opts.drain = !args.once;
            opts.maxJobs = args.maxJobs;
            if (args.claimStaleMs >= 0)
                opts.claimStaleAfterMs = args.claimStaleMs;
            const api::ServeStats stats =
                api::spoolServe(args.spool, service, opts);
            std::cout << "worker executed " << stats.executed
                      << " job(s), " << stats.failedCells
                      << " failed cell(s)\n";
            return 0;
        }

        if (mode == "collect") {
            if (args.positional.empty() || args.spool.empty() ||
                args.out.empty())
                return usage();
            api::AnalysisRequest req;
            if (!loadRequestJson(args.positional, &req))
                return 1;
            const api::AnalysisResponse resp =
                api::spoolCollect(args.spool, req, args.timeoutSec);
            if (!writeFile(args.out, api::responseToJson(resp))) {
                std::cerr << "cannot write '" << args.out << "'\n";
                return 1;
            }
            std::cout << "collected " << resp.cells.size()
                      << " cell(s) into " << args.out << "\n";
            return cellStatus(resp);
        }
    } catch (const std::exception &e) {
        std::cerr << "gpuperf-worker " << mode << ": " << e.what()
                  << "\n";
        return 1;
    }
    return usage();
}
