/**
 * @file
 * gpuperf-serve — the analysis daemon: bind a Unix-domain socket
 * and/or a TCP port, accept framed api::AnalysisRequests from many
 * concurrent clients (gpuperf-worker run --via unix:..., the
 * ServeClient library, or anything speaking the frame protocol in
 * src/api/transport.h), execute them on one shared AnalysisService,
 * and stream results back. Cells fan out to any registered
 * `gpuperf-worker serve --via ...` fleet (src/api/dispatch.h) and
 * fall back to in-process execution when no workers are around.
 *
 *   gpuperf-serve --via unix:PATH [--via tcp:HOST:PORT]
 *                 [--store DIR] [--max-clients N] [--max-inflight N]
 *                 [--max-cells N] [--idle-timeout SEC]
 *                 [--job-timeout SEC] [--worker-inflight N]
 *                 [--stats-json]
 *
 * Endpoints are api::Endpoint URIs; the option flags share their
 * spellings with URI query options and with gpuperf-worker (see
 * tools/cli_common.h). The pre-Endpoint spellings --unix PATH,
 * --tcp PORT, --host ADDR, --max-inflight-cells and
 * --max-cells-per-request remain as aliases for one release.
 *
 * At least one unix:/tcp: endpoint is required. `tcp:HOST:0` binds an
 * ephemeral port (printed on stdout — scripts parse the "listening"
 * lines). --store forces every request onto one shared store root so
 * all clients hit the same warm calibration/profile/timing caches.
 * --stats-json dumps api::statsToJson(server.stats()) on stdout at
 * shutdown (fleet counters and per-worker rows included).
 *
 * SIGINT/SIGTERM trigger a graceful stop: in-flight requests finish
 * and deliver their kDone before the process exits.
 */

#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "api/server.h"
#include "cli_common.h"

using namespace gpuperf;

namespace {

/** Written by the signal handler, polled by the main loop. */
volatile std::sig_atomic_t g_stop_requested = 0;

void
onSignal(int)
{
    g_stop_requested = 1;
}

int
usage()
{
    std::cerr
        << "usage: gpuperf-serve --via unix:PATH|tcp:HOST:PORT "
           "(repeatable)\n"
           "                     [--store DIR] [--max-clients N] "
           "[--max-inflight N]\n"
           "                     [--max-cells N] [--idle-timeout SEC]\n"
           "                     [--job-timeout SEC] "
           "[--worker-inflight N] [--stats-json]\n"
           "at least one unix:/tcp: endpoint is required; "
           "tcp:HOST:0 binds an ephemeral port\n"
           "(legacy aliases --unix PATH / --tcp PORT / --host ADDR "
           "remain for one release)\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::CommonArgs args;
    if (!cli::parseCommonArgs(argc, argv, 1, &args) ||
        !args.positional.empty())
        return usage();

    // Fold the legacy listener spellings into --via URIs. --host must
    // be folded before --tcp, which is why they are parsed first.
    std::vector<std::string> uris = args.via;
    if (!args.legacyUnix.empty())
        uris.push_back("unix:" + args.legacyUnix);
    if (args.legacyTcpPort >= 0)
        uris.push_back("tcp:" + args.legacyHost + ":" +
                       std::to_string(args.legacyTcpPort));
    if (uris.empty())
        return usage();

    std::vector<api::Endpoint> endpoints;
    try {
        for (const std::string &uri : uris)
            endpoints.push_back(cli::endpointFor(
                args, uri, api::Endpoint::Role::kServer));
    } catch (const std::exception &e) {
        std::cerr << "gpuperf-serve: " << e.what() << "\n";
        return usage();
    }

    api::Server server(endpoints);
    try {
        server.start();
    } catch (const std::exception &e) {
        std::cerr << "gpuperf-serve: " << e.what() << "\n";
        return 1;
    }

    const api::ServerOptions &opts = server.options();
    if (!opts.unixPath.empty())
        std::cout << "listening unix " << opts.unixPath << "\n";
    if (server.tcpPort() >= 0)
        std::cout << "listening tcp " << opts.tcpHost << ":"
                  << server.tcpPort() << "\n";
    std::cout << "gpuperf-serve ready\n" << std::flush;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    while (!g_stop_requested)
        ::poll(nullptr, 0, 200);

    std::cout << "stopping (draining in-flight requests)...\n"
              << std::flush;
    server.stop();
    const api::ServerStats stats = server.stats();
    std::cout << "served " << stats.requests << " request(s), "
              << stats.cells << " cell(s) (" << stats.failedCells
              << " failed), " << stats.accepted << " connection(s), "
              << stats.rejectedRequests << " rejected request(s), "
              << stats.disconnects << " disconnect(s)\n";
    if (args.statsJson)
        std::cout << api::statsToJson(stats) << "\n";
    return 0;
}
