/**
 * @file
 * gpuperf-serve — the analysis daemon: bind a Unix-domain socket
 * and/or a TCP port, accept framed api::AnalysisRequests from many
 * concurrent clients (gpuperf-worker run --via unix:..., the
 * ServeClient library, or anything speaking the frame protocol in
 * src/api/transport.h), execute them on one shared AnalysisService,
 * and stream results back.
 *
 *   gpuperf-serve [--unix PATH] [--tcp PORT] [--host ADDR]
 *                 [--store DIR] [--max-clients N]
 *                 [--max-inflight-cells N] [--max-cells-per-request N]
 *                 [--idle-timeout SECONDS]
 *
 * At least one of --unix/--tcp is required. --tcp 0 binds an
 * ephemeral port (printed on stdout — scripts parse the "listening"
 * lines). --store forces every request onto one shared store root so
 * all clients hit the same warm calibration/profile/timing caches.
 * --idle-timeout closes connections idle between requests (cleanly;
 * clients reconnect transparently); by default they are kept forever.
 *
 * SIGINT/SIGTERM trigger a graceful stop: in-flight requests finish
 * and deliver their kDone before the process exits.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "api/server.h"

using namespace gpuperf;

namespace {

/** Written by the signal handler, polled by the main loop. */
volatile std::sig_atomic_t g_stop_requested = 0;

void
onSignal(int)
{
    g_stop_requested = 1;
}

int
usage()
{
    std::cerr
        << "usage: gpuperf-serve [--unix PATH] [--tcp PORT] "
           "[--host ADDR]\n"
           "                     [--store DIR] [--max-clients N]\n"
           "                     [--max-inflight-cells N] "
           "[--max-cells-per-request N]\n"
           "                     [--idle-timeout SECONDS]\n"
           "at least one of --unix / --tcp is required; "
           "--tcp 0 binds an ephemeral port\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    api::ServerOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        const char *v = nullptr;
        if (arg == "--unix") {
            if (!(v = value("--unix")))
                return usage();
            opts.unixPath = v;
        } else if (arg == "--tcp") {
            if (!(v = value("--tcp")))
                return usage();
            opts.tcpPort = std::atoi(v);
        } else if (arg == "--host") {
            if (!(v = value("--host")))
                return usage();
            opts.tcpHost = v;
        } else if (arg == "--store") {
            if (!(v = value("--store")))
                return usage();
            opts.forceStoreDir = v;
        } else if (arg == "--max-clients") {
            if (!(v = value("--max-clients")))
                return usage();
            opts.maxClients = static_cast<size_t>(std::atol(v));
        } else if (arg == "--max-inflight-cells") {
            if (!(v = value("--max-inflight-cells")))
                return usage();
            opts.maxInFlightCells = static_cast<size_t>(std::atol(v));
        } else if (arg == "--max-cells-per-request") {
            if (!(v = value("--max-cells-per-request")))
                return usage();
            opts.maxCellsPerRequest = static_cast<size_t>(std::atol(v));
        } else if (arg == "--idle-timeout") {
            if (!(v = value("--idle-timeout")))
                return usage();
            opts.idleTimeoutSeconds = std::atof(v);
        } else {
            std::cerr << "unknown argument '" << arg << "'\n";
            return usage();
        }
    }
    if (opts.unixPath.empty() && opts.tcpPort < 0)
        return usage();

    const std::string unix_path = opts.unixPath;
    const std::string tcp_host = opts.tcpHost;
    api::Server server(std::move(opts));
    try {
        server.start();
    } catch (const std::exception &e) {
        std::cerr << "gpuperf-serve: " << e.what() << "\n";
        return 1;
    }

    if (!unix_path.empty())
        std::cout << "listening unix " << unix_path << "\n";
    if (server.tcpPort() >= 0)
        std::cout << "listening tcp " << tcp_host << ":"
                  << server.tcpPort() << "\n";
    std::cout << "gpuperf-serve ready\n" << std::flush;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    while (!g_stop_requested)
        ::poll(nullptr, 0, 200);

    std::cout << "stopping (draining in-flight requests)...\n"
              << std::flush;
    server.stop();
    const api::ServerStats stats = server.stats();
    std::cout << "served " << stats.requests << " request(s), "
              << stats.cells << " cell(s) (" << stats.failedCells
              << " failed), " << stats.accepted << " connection(s), "
              << stats.rejectedRequests << " rejected request(s), "
              << stats.disconnects << " disconnect(s)\n";
    return 0;
}
