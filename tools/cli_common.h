/**
 * @file
 * The flag vocabulary shared by gpuperf-worker and gpuperf-serve.
 * Before this, the two tools grew divergent spellings for the same
 * knobs (--max-inflight-cells vs nothing, --timeout only on the
 * worker); now every endpoint-tunable flag is ONE spelling in ONE
 * parser, and its value is literally an api::Endpoint query option
 * appended to each --via URI (`--timeout 30` == `?timeout=30`):
 *
 *   --via URI           transport/listener endpoint (repeatable for
 *                       servers: one unix: plus one tcp: listener)
 *   --store DIR         store root         (endpoint option `store`)
 *   --timeout SEC       response/collect deadline       (`timeout`)
 *   --idle-timeout SEC  idle-connection close      (`idle-timeout`)
 *   --job-timeout SEC   worker-job re-dispatch      (`job-timeout`)
 *   --max-clients N     connection bound            (`max-clients`)
 *   --max-inflight N    global in-flight cells      (`max-inflight`)
 *   --max-cells N       per-request cell quota        (`max-cells`)
 *   --max-frame-bytes N frame payload bound     (`max-frame-bytes`)
 *   --worker-inflight N per-worker job bound    (`worker-inflight`)
 *   --max-jobs N        serve-at-most bound            (`max-jobs`)
 *   --claim-stale-ms MS spool crash-steal bound   (`claim-stale-ms`)
 *   --gc-bytes N        store GC live-byte budget        (`gc-bytes`)
 *   --gc-age SEC        store GC idle-age bound            (`gc-age`)
 *   --gc-interval SEC   server GC sweep period        (`gc-interval`)
 *   --sched POLICY      scheduling policy fifo|biggest-first|sjf|
 *                       fair-share                        (`sched`)
 *   --client ID         client identity for fair-share   (`client`)
 *   --json              send JSON requests                 (`json`)
 *
 * plus the non-endpoint flags --out, --spool, --no-wait, --once,
 * --stats-json, the admin-verb flags --dry-run/--force/--min-loose/
 * --report-only (gpuperf-worker gc|verify|compact|stats), and
 * gpuperf-serve's legacy listener aliases
 * --unix/--tcp/--host (kept one release; --via supersedes them).
 * The old --max-inflight-cells/--max-cells-per-request spellings
 * remain as aliases for one release.
 */

#ifndef GPUPERF_TOOLS_CLI_COMMON_H
#define GPUPERF_TOOLS_CLI_COMMON_H

#include <string>
#include <vector>

#include "api/endpoint.h"
#include "api/request.h"

namespace gpuperf {
namespace cli {

struct CommonArgs
{
    /** First non-flag argument (a request file for run/submit). */
    std::string positional;
    /** --via URIs, in order (servers may listen on several). */
    std::vector<std::string> via;
    std::string out;
    std::string spool;
    /** --store's raw value (also appended as a `store=` option). */
    std::string store;
    bool noWait = false;
    bool once = false;
    bool statsJson = false;
    bool json = false;

    /** Admin verbs (gpuperf-worker gc|verify|compact). */
    bool dryRun = false;      ///< gc: report, touch nothing
    bool force = false;       ///< compact: ignore the size thresholds
    bool reportOnly = false;  ///< verify: scan without fixing
    uint64_t minLoose = 0;    ///< compact: fold threshold (0 = default)

    /** Legacy gpuperf-serve listener spellings (one release). */
    std::string legacyUnix;
    int legacyTcpPort = -1;
    std::string legacyHost = "127.0.0.1";

    /** Accumulated `k=v&k=v` endpoint options from option flags. */
    std::string query;
};

/**
 * Parse argv[first..argc) with the shared vocabulary above. False
 * (with a stderr message) on an unknown flag or a missing value —
 * the caller prints its usage.
 */
bool parseCommonArgs(int argc, char **argv, int first,
                     CommonArgs *args);

/**
 * @p uri with the accumulated option flags appended as query options,
 * parsed for @p role. Options apply left to right, so a flag
 * overrides the same key spelled inside the URI.
 */
api::Endpoint endpointFor(const CommonArgs &args, const std::string &uri,
                          api::Endpoint::Role role);

// --- File and response plumbing shared by the tools -------------------

bool readFile(const std::string &path, std::string *out);
bool writeFile(const std::string &path, const std::string &content);

/** Load a JSON AnalysisRequest, reporting problems on stderr. */
bool loadRequestJson(const std::string &path, api::AnalysisRequest *req);

/** 0 when every cell is ok, 2 otherwise (failures on stderr). */
int cellStatus(const api::AnalysisResponse &resp);

} // namespace cli
} // namespace gpuperf

#endif // GPUPERF_TOOLS_CLI_COMMON_H
