#include "cli_common.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "api/codecs.h"

namespace gpuperf {
namespace cli {

namespace {

void
appendOption(CommonArgs *args, const std::string &key,
             const std::string &value)
{
    if (!args->query.empty())
        args->query += '&';
    args->query += key;
    args->query += '=';
    args->query += value;
}

} // namespace

bool
parseCommonArgs(int argc, char **argv, int first, CommonArgs *args)
{
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };

        // Flags that are NOT endpoint options.
        if (arg == "--via") {
            const char *v = value("--via");
            if (!v)
                return false;
            args->via.push_back(v);
            continue;
        }
        if (arg == "--out") {
            const char *v = value("--out");
            if (!v)
                return false;
            args->out = v;
            continue;
        }
        if (arg == "--spool") {
            const char *v = value("--spool");
            if (!v)
                return false;
            args->spool = v;
            continue;
        }
        if (arg == "--no-wait") {
            args->noWait = true;
            continue;
        }
        if (arg == "--once") {
            args->once = true;
            continue;
        }
        if (arg == "--stats-json") {
            args->statsJson = true;
            continue;
        }
        if (arg == "--dry-run") {
            args->dryRun = true;
            continue;
        }
        if (arg == "--force") {
            args->force = true;
            continue;
        }
        if (arg == "--report-only") {
            args->reportOnly = true;
            continue;
        }
        if (arg == "--min-loose") {
            const char *v = value("--min-loose");
            if (!v)
                return false;
            args->minLoose = std::strtoull(v, nullptr, 10);
            continue;
        }
        if (arg == "--unix") {
            const char *v = value("--unix");
            if (!v)
                return false;
            args->legacyUnix = v;
            continue;
        }
        if (arg == "--tcp") {
            const char *v = value("--tcp");
            if (!v)
                return false;
            args->legacyTcpPort = std::atoi(v);
            continue;
        }
        if (arg == "--host") {
            const char *v = value("--host");
            if (!v)
                return false;
            args->legacyHost = v;
            continue;
        }
        if (arg == "--json") {
            args->json = true;
            appendOption(args, "json", "1");
            continue;
        }

        // Endpoint-option flags: `--KEY VALUE` == `?KEY=VALUE`.
        // Endpoint::parse validates the values, so a typo'd number
        // fails there with the URI in the message.
        static const struct
        {
            const char *flag;
            const char *key;
        } kOptionFlags[] = {
            {"--store", "store"},
            {"--timeout", "timeout"},
            {"--idle-timeout", "idle-timeout"},
            {"--job-timeout", "job-timeout"},
            {"--max-clients", "max-clients"},
            {"--max-inflight", "max-inflight"},
            {"--max-cells", "max-cells"},
            {"--max-frame-bytes", "max-frame-bytes"},
            {"--worker-inflight", "worker-inflight"},
            {"--max-jobs", "max-jobs"},
            {"--claim-stale-ms", "claim-stale-ms"},
            {"--gc-bytes", "gc-bytes"},
            {"--gc-age", "gc-age"},
            {"--gc-interval", "gc-interval"},
            {"--sched", "sched"},
            {"--client", "client"},
            // One-release aliases for the pre-unification spellings.
            {"--max-inflight-cells", "max-inflight"},
            {"--max-cells-per-request", "max-cells"},
        };
        bool matched = false;
        for (const auto &opt : kOptionFlags) {
            if (arg != opt.flag)
                continue;
            const char *v = value(opt.flag);
            if (!v)
                return false;
            appendOption(args, opt.key, v);
            if (std::string(opt.key) == "store")
                args->store = v;
            matched = true;
            break;
        }
        if (matched)
            continue;

        if (!arg.empty() && arg[0] != '-' && args->positional.empty()) {
            args->positional = arg;
            continue;
        }
        std::cerr << "unknown argument '" << arg << "'\n";
        return false;
    }
    return true;
}

api::Endpoint
endpointFor(const CommonArgs &args, const std::string &uri,
            api::Endpoint::Role role)
{
    std::string full = uri;
    if (!args.query.empty()) {
        full += (uri.find('?') == std::string::npos) ? '?' : '&';
        full += args.query;
    }
    return api::Endpoint::parse(full, role);
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

bool
loadRequestJson(const std::string &path, api::AnalysisRequest *req)
{
    std::string text;
    if (!readFile(path, &text)) {
        std::cerr << "cannot read request file '" << path << "'\n";
        return false;
    }
    std::string error;
    if (!api::requestFromJson(text, req, &error)) {
        std::cerr << "malformed request '" << path << "': " << error
                  << "\n";
        return false;
    }
    return true;
}

int
cellStatus(const api::AnalysisResponse &resp)
{
    int failed = 0;
    for (const driver::BatchResult &cell : resp.cells) {
        if (!cell.ok) {
            ++failed;
            std::cerr << "cell " << cell.kernelName << " x "
                      << cell.specName << " FAILED: " << cell.error
                      << "\n";
        }
    }
    return failed == 0 ? 0 : 2;
}

} // namespace cli
} // namespace gpuperf
