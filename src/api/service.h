/**
 * @file
 * AnalysisService — the single public entry point to the paper's
 * Figure-1 pipeline. One typed request in, one typed response out;
 * everything the four historical entry points (AnalysisSession,
 * SimulatedDevice, BatchRunner, runSweep) exposed through diverging
 * constructors and option structs is expressed in the request schema
 * (api/request.h), and those classes become internal executors.
 *
 * Results are pinned bit-identical to the pre-redesign paths: a
 * request executes on the same BatchRunner task graph (or the serial
 * reference loop), so service == BatchRunner::run == runSerial, cell
 * for cell, double for double (tests/test_api.cc).
 *
 * The service is long-lived: it keeps one executor per distinct
 * (store, execution) policy, so repeated requests share in-memory
 * calibration/profile/timing memos exactly like repeated
 * BatchRunner::run() calls did.
 */

#ifndef GPUPERF_API_SERVICE_H
#define GPUPERF_API_SERVICE_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "api/request.h"
#include "driver/batch_runner.h"
#include "sched/policy.h"
#include "store/stats.h"

namespace gpuperf {
namespace api {

/** Completion-order delivery of finished cells (streaming mode). */
using CellCallback =
    std::function<void(size_t index, const driver::BatchResult &cell)>;

/** Wall-clock milestones of one executed request. */
using StreamStats = driver::BatchRunner::StreamStats;

class AnalysisService
{
  public:
    AnalysisService() = default;
    AnalysisService(const AnalysisService &) = delete;
    AnalysisService &operator=(const AnalysisService &) = delete;

    /**
     * Execute @p req and return the full response, cells in
     * kernel-major order. With delivery == kStream and a callback,
     * each finished cell is ALSO handed to @p onCell in completion
     * order while the batch is still running (invocations are
     * serialized; a throwing callback abandons later deliveries and
     * rethrows after the batch drains, exactly like
     * BatchRunner::runStream). @p stats, when non-null, receives the
     * run's wall-clock milestones.
     *
     * Invalid requests (schema mismatch, malformed jobs) throw
     * std::runtime_error; per-cell failures (unknown factory, bad
     * arguments, a throwing kernel) come back as ok == false cells.
     */
    AnalysisResponse execute(const AnalysisRequest &req,
                             const CellCallback &onCell = {},
                             StreamStats *stats = nullptr);

    /** Collect-only convenience over execute(). */
    AnalysisResponse run(const AnalysisRequest &req)
    {
        return execute(req);
    }

    /**
     * Calibration tables for @p spec under @p req's policies (store
     * reuse, lease sharding and memoization included). The facade's
     * replacement for AnalysisSession::shareCalibration().
     */
    std::shared_ptr<const model::CalibrationTables>
    calibrationFor(const AnalysisRequest &req,
                   const arch::GpuSpec &spec);

    /**
     * Pre-seed the calibration memo behind @p req's policies (tests,
     * benches, injected tables). Forwards to
     * BatchRunner::adoptCalibration on the request's executor.
     */
    void adoptCalibration(
        const AnalysisRequest &req, const arch::GpuSpec &spec,
        std::shared_ptr<const model::CalibrationTables> tables);

    /**
     * The internal executor serving @p req's policies (created on
     * first use, shared by every request with equal policies). An
     * escape hatch for benches and tests that pin executor-level
     * counters (store hits, funcsims computed); application code
     * should not need it. The cache is bounded (kMaxExecutors,
     * least-recently-used eviction — a long-lived spool worker
     * serving many distinct store policies must not accumulate
     * thread pools and memos forever), so the reference is
     * guaranteed valid only until requests for other policies are
     * executed; re-fetch rather than hold it.
     */
    driver::BatchRunner &executorFor(const AnalysisRequest &req);

    /** Executor-cache bound: beyond this, the LRU entry is evicted. */
    static constexpr size_t kMaxExecutors = 8;

    /**
     * Translate the request's policies into executor options — the
     * one place the schema maps onto BatchRunner::Options.
     */
    static driver::BatchRunner::Options
    executorOptions(const AnalysisRequest &req);

    /**
     * Drop every cached executor — a process restart in miniature.
     * The next request rebuilds its executor from nothing but the
     * persistent stores; benches use this to measure warm-store
     * behaviour without forking.
     */
    void reset();

    /**
     * Ready-order policy for every executor this service builds
     * (`?sched=` on a server endpoint). A SERVICE-level knob, not a
     * request field: the daemon operator picks the policy, clients
     * cannot override it per request. Takes effect for executors
     * created after the call (policy participates in the cache key,
     * so switching mid-life builds fresh executors rather than
     * mutating running ones). Results stay bit-identical under every
     * policy.
     */
    void setSchedPolicy(sched::SchedPolicy policy);
    sched::SchedPolicy schedPolicy() const;

    /**
     * Store cache-health counters summed across every executor this
     * service has EVER built: live cache entries plus an accumulator
     * of the executors the LRU bound evicted, so a counter never
     * drops when an executor is retired. What Server::stats() (and
     * thus `--stats-json`) reports as the "store" section.
     */
    store::StoreLayerStats storeStats() const;

  private:
    struct Executor
    {
        std::shared_ptr<driver::BatchRunner> runner;
        uint64_t lastUse = 0;
    };

    /**
     * The executor handle for @p req, bumping its LRU stamp and
     * evicting beyond kMaxExecutors. Callers that RUN requests hold
     * the shared_ptr for the duration, so eviction can never destroy
     * an executor mid-batch.
     */
    std::shared_ptr<driver::BatchRunner>
    executorHandleFor(const AnalysisRequest &req);

    mutable std::mutex mutex_;
    std::map<std::string, Executor> executors_;
    /** Counters of executors the LRU bound (or reset()) retired. */
    store::StoreLayerStats retired_;
    uint64_t useCounter_ = 0;
    sched::SchedPolicy schedPolicy_ = sched::SchedPolicy::kFifo;
};

/**
 * Build the response scaffold for @p req (name, shape) — shared by
 * the in-process executor and the spool collector.
 */
AnalysisResponse makeResponseShell(const AnalysisRequest &req);

/**
 * Validate @p req (schema version, job bodies present, positive
 * shapes). Throws std::runtime_error on violations. Executed by
 * AnalysisService::execute and the spool submitter.
 */
void validateRequest(const AnalysisRequest &req);

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_SERVICE_H
