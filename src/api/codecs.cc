#include "api/codecs.h"

#include <cmath>
#include <cstring>

#include "api/json.h"
#include "store/codecs.h"
#include "store/result_store.h"

namespace gpuperf {
namespace api {

// =====================================================================
// Binary
// =====================================================================

namespace {

using store::ByteReader;
using store::ByteWriter;

/**
 * Wire bounds for an inline launch's memory geometry. The lower
 * bound mirrors funcsim::GlobalMemory's constructor (which fatal()s
 * below 512 B — a process abort the wire path must never reach); the
 * upper bound stops a forged job from asking the worker to
 * zero-allocate terabytes.
 */
bool
memoryGeometryValid(uint64_t capacity, size_t image_bytes)
{
    constexpr uint64_t kMaxCapacity = uint64_t{1} << 32; // 4 GiB
    return capacity >= 512 && capacity <= kMaxCapacity &&
           image_bytes >= 256 && image_bytes <= capacity;
}

/**
 * Wire-side mirror of isa::Kernel's structural validation
 * (validateAndIndex), returning a message instead of fatal()-ing: a
 * malformed instruction stream from a job file or JSON must fail its
 * request, never abort the worker mid-claim (a crashed worker parks
 * the job for the next worker to crash on). Runs BEFORE the Kernel
 * constructor, which still fatal()s — by then the stream is known
 * good. Empty return = valid. Keep in sync with
 * isa/kernel.cc::validateAndIndex.
 */
std::string
kernelStructureError(const std::vector<isa::Instruction> &instrs,
                     int num_regs, int num_preds)
{
    using isa::Opcode;
    const auto at = [](int pc, const std::string &what) {
        return "instruction " + std::to_string(pc) + ": " + what;
    };
    if (num_regs <= 0)
        return "kernel needs at least one register";
    const int n = static_cast<int>(instrs.size());
    std::vector<Opcode> stack;
    for (int pc = 0; pc < n; ++pc) {
        const isa::Instruction &inst = instrs[pc];
        switch (inst.op) {
          case Opcode::kIf:
            if (inst.pred == isa::kNoPred)
                return at(pc, "IF without a guard predicate");
            stack.push_back(Opcode::kIf);
            break;
          case Opcode::kElse:
            if (stack.empty() || stack.back() != Opcode::kIf)
                return at(pc, "ELSE without an open IF");
            // One ELSE per IF: mark the frame as "in else".
            stack.back() = Opcode::kElse;
            break;
          case Opcode::kEndif:
            if (stack.empty() || (stack.back() != Opcode::kIf &&
                                  stack.back() != Opcode::kElse))
                return at(pc, "ENDIF without an open IF");
            stack.pop_back();
            break;
          case Opcode::kLoop:
            stack.push_back(Opcode::kLoop);
            break;
          case Opcode::kBrk:
            if (inst.pred == isa::kNoPred)
                return at(pc, "BRK without a guard predicate");
            if (stack.empty() || stack.back() != Opcode::kLoop)
                return at(pc, "BRK not directly inside a LOOP");
            break;
          case Opcode::kEndloop:
            if (stack.empty() || stack.back() != Opcode::kLoop)
                return at(pc, "ENDLOOP without an open LOOP");
            stack.pop_back();
            break;
          case Opcode::kExit:
            if (pc != n - 1)
                return at(pc, "EXIT before the last instruction");
            break;
          default:
            break;
        }
        if (isa::writesRegister(inst.op) &&
            (inst.dst == isa::kNoReg || inst.dst >= num_regs))
            return at(pc, "destination register out of range");
        if (isa::writesPredicate(inst.op) && inst.pred >= num_preds)
            return at(pc, "destination predicate out of range");
        for (isa::Reg s : inst.src) {
            if (s != isa::kNoReg && s >= num_regs)
                return at(pc, "source register out of range");
        }
    }
    if (!stack.empty())
        return "unterminated control structures";
    return std::string();
}

void
writeKernelBin(ByteWriter &w, const isa::Kernel &k)
{
    w.str(k.name());
    w.i32(k.numRegisters());
    w.i32(k.numPredicates());
    w.i32(k.sharedBytes());
    w.u64(k.instructions().size());
    for (const isa::Instruction &in : k.instructions()) {
        w.u8(static_cast<uint8_t>(in.op));
        w.u16(in.dst);
        w.u16(in.src[0]);
        w.u16(in.src[1]);
        w.u16(in.src[2]);
        w.i32(in.imm);
        w.b(in.useImm);
        w.u8(in.pred);
        w.b(in.predNegate);
        w.u8(static_cast<uint8_t>(in.cmp));
        w.u8(static_cast<uint8_t>(in.sreg));
    }
}

bool
readInstruction(ByteReader &r, isa::Instruction *in)
{
    const uint8_t op = r.u8();
    if (op >= static_cast<uint8_t>(isa::Opcode::kNumOpcodes)) {
        r.fail();
        return false;
    }
    in->op = static_cast<isa::Opcode>(op);
    in->dst = r.u16();
    in->src[0] = r.u16();
    in->src[1] = r.u16();
    in->src[2] = r.u16();
    in->imm = r.i32();
    in->useImm = r.b();
    in->pred = r.u8();
    in->predNegate = r.b();
    const uint8_t cmp = r.u8();
    if (cmp > static_cast<uint8_t>(isa::CmpOp::kNe)) {
        r.fail();
        return false;
    }
    in->cmp = static_cast<isa::CmpOp>(cmp);
    const uint8_t sreg = r.u8();
    if (sreg > static_cast<uint8_t>(isa::SpecialReg::kWarpId)) {
        r.fail();
        return false;
    }
    in->sreg = static_cast<isa::SpecialReg>(sreg);
    return r.ok();
}

bool
readKernelBin(ByteReader &r, std::unique_ptr<isa::Kernel> *out)
{
    const std::string name = r.str();
    const int regs = r.i32();
    const int preds = r.i32();
    const int shared = r.i32();
    const uint64_t n = r.u64();
    if (!r.ok() || regs < 0 || preds < 0 || shared < 0 ||
        n > (1u << 24)) {
        r.fail();
        return false;
    }
    std::vector<isa::Instruction> instrs;
    instrs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        isa::Instruction in;
        if (!readInstruction(r, &in))
            return false;
        instrs.push_back(in);
    }
    // Structural pre-validation: the Kernel ctor fatal()-aborts on a
    // malformed stream; a forged wire kernel must instead read as a
    // failure.
    if (!kernelStructureError(instrs, regs, preds).empty()) {
        r.fail();
        return false;
    }
    *out = std::make_unique<isa::Kernel>(name, std::move(instrs), regs,
                                         preds, shared);
    return r.ok();
}

void
writeSpecBin(ByteWriter &w, const arch::GpuSpec &s)
{
    // Every field, in declaration order — the GpuSpec::fingerprint()
    // contract applies here too: a new field joins this codec (and
    // the JSON one below) or cached jobs would alias across specs.
    w.str(s.name);
    w.i32(s.numSms);
    w.i32(s.smsPerCluster);
    w.i32(s.spsPerSm);
    w.i32(s.sfuMulPerSm);
    w.i32(s.sfuPerSm);
    w.i32(s.dpPerSm);
    w.i32(s.warpSize);
    w.f64(s.coreClockHz);
    w.i32(s.registersPerSm);
    w.i32(s.sharedMemPerSm);
    w.i32(s.maxThreadsPerSm);
    w.i32(s.maxThreadsPerBlock);
    w.i32(s.maxBlocksPerSm);
    w.i32(s.maxWarpsPerSm);
    w.i32(s.registerAllocUnit);
    w.i32(s.sharedAllocUnit);
    w.i32(s.sharedStaticPerBlock);
    w.i32(s.numSharedBanks);
    w.i32(s.sharedBankWidth);
    w.i32(s.sharedIssueGroup);
    w.f64(s.memClockHz);
    w.i32(s.busWidthBits);
    w.i32(s.coalesceGroup);
    w.i32(s.minSegmentBytes);
    w.i32(s.maxSegmentBytes);
    w.i32(s.aluDepCycles);
    w.i32(s.sharedDepCycles);
    w.f64(s.warpSharedPassIntervalCycles);
    w.i32(s.globalLatencyCycles);
    w.i32(s.transactionOverheadCycles);
    w.f64(s.issueOverheadCycles);
    w.b(s.textureCacheEnabled);
    w.i32(s.textureCacheBytesPerCluster);
    w.i32(s.textureCacheLineBytes);
    w.i32(s.textureCacheWays);
    w.i32(s.textureHitLatencyCycles);
}

bool
readSpecBin(ByteReader &r, arch::GpuSpec *s)
{
    s->name = r.str();
    s->numSms = r.i32();
    s->smsPerCluster = r.i32();
    s->spsPerSm = r.i32();
    s->sfuMulPerSm = r.i32();
    s->sfuPerSm = r.i32();
    s->dpPerSm = r.i32();
    s->warpSize = r.i32();
    s->coreClockHz = r.f64();
    s->registersPerSm = r.i32();
    s->sharedMemPerSm = r.i32();
    s->maxThreadsPerSm = r.i32();
    s->maxThreadsPerBlock = r.i32();
    s->maxBlocksPerSm = r.i32();
    s->maxWarpsPerSm = r.i32();
    s->registerAllocUnit = r.i32();
    s->sharedAllocUnit = r.i32();
    s->sharedStaticPerBlock = r.i32();
    s->numSharedBanks = r.i32();
    s->sharedBankWidth = r.i32();
    s->sharedIssueGroup = r.i32();
    s->memClockHz = r.f64();
    s->busWidthBits = r.i32();
    s->coalesceGroup = r.i32();
    s->minSegmentBytes = r.i32();
    s->maxSegmentBytes = r.i32();
    s->aluDepCycles = r.i32();
    s->sharedDepCycles = r.i32();
    s->warpSharedPassIntervalCycles = r.f64();
    s->globalLatencyCycles = r.i32();
    s->transactionOverheadCycles = r.i32();
    s->issueOverheadCycles = r.f64();
    s->textureCacheEnabled = r.b();
    s->textureCacheBytesPerCluster = r.i32();
    s->textureCacheLineBytes = r.i32();
    s->textureCacheWays = r.i32();
    s->textureHitLatencyCycles = r.i32();
    return r.ok();
}

void
writeSweepBin(ByteWriter &w, const driver::SweepSpec &s)
{
    w.b(s.noBankConflicts);
    w.u64(s.warpsPerSm.size());
    for (double v : s.warpsPerSm)
        w.f64(v);
    w.u64(s.coalescingFractions.size());
    for (double v : s.coalescingFractions)
        w.f64(v);
}

bool
readSweepBin(ByteReader &r, driver::SweepSpec *s)
{
    s->noBankConflicts = r.b();
    const uint64_t warps = r.u64();
    for (uint64_t i = 0; i < warps && r.ok(); ++i)
        s->warpsPerSm.push_back(r.f64());
    const uint64_t fracs = r.u64();
    for (uint64_t i = 0; i < fracs && r.ok(); ++i)
        s->coalescingFractions.push_back(r.f64());
    return r.ok();
}

void
writeJobBin(ByteWriter &w, const KernelJob &job)
{
    w.str(job.name);
    w.u8(job.isInline() ? 1 : 0);
    if (!job.isInline()) {
        w.str(job.ref.factory);
        w.u64(job.ref.iargs.size());
        for (int64_t v : job.ref.iargs)
            w.i64(v);
        w.u64(job.ref.fargs.size());
        for (double v : job.ref.fargs)
            w.f64(v);
        return;
    }
    const InlineLaunch &in = *job.inlined;
    writeKernelBin(w, in.kernel);
    w.i32(in.cfg.gridDim);
    w.i32(in.cfg.blockDim);
    w.b(in.options.collectTrace);
    w.b(in.options.homogeneous);
    w.i32(in.options.sampleBlocks);
    w.u64(in.options.maxWarpOps);
    w.u64(in.memoryCapacity);
    w.str(in.memoryImage);
}

bool
readJobBin(ByteReader &r, KernelJob *job)
{
    job->name = r.str();
    const uint8_t kind = r.u8();
    if (kind > 1) {
        r.fail();
        return false;
    }
    if (kind == 0) {
        job->ref.factory = r.str();
        const uint64_t ni = r.u64();
        for (uint64_t i = 0; i < ni && r.ok(); ++i)
            job->ref.iargs.push_back(r.i64());
        const uint64_t nf = r.u64();
        for (uint64_t i = 0; i < nf && r.ok(); ++i)
            job->ref.fargs.push_back(r.f64());
        return r.ok();
    }
    std::unique_ptr<isa::Kernel> kernel;
    if (!readKernelBin(r, &kernel))
        return false;
    funcsim::LaunchConfig cfg;
    cfg.gridDim = r.i32();
    cfg.blockDim = r.i32();
    funcsim::RunOptions options;
    options.collectTrace = r.b();
    options.homogeneous = r.b();
    options.sampleBlocks = r.i32();
    options.maxWarpOps = r.u64();
    InlineLaunch launch{std::move(*kernel), cfg, options, 0, {}};
    launch.memoryCapacity = r.u64();
    launch.memoryImage = r.str();
    if (!r.ok() || !memoryGeometryValid(launch.memoryCapacity,
                                        launch.memoryImage.size())) {
        r.fail();
        return false;
    }
    job->inlined =
        std::make_shared<const InlineLaunch>(std::move(launch));
    return true;
}

} // namespace

void
writeRequest(ByteWriter &w, const AnalysisRequest &req)
{
    w.u32(req.schemaVersion);
    w.str(req.jobName);
    w.str(req.clientId);
    w.u64(req.kernels.size());
    for (const KernelJob &job : req.kernels)
        writeJobBin(w, job);
    w.u64(req.specs.size());
    for (const arch::GpuSpec &spec : req.specs)
        writeSpecBin(w, spec);
    writeSweepBin(w, req.sweep);
    w.str(req.store.storeDir);
    w.str(req.store.calibrationCacheDir);
    w.b(req.store.reuseStoredResults);
    w.i32(req.exec.numThreads);
    w.u8(static_cast<uint8_t>(req.exec.engine));
    w.u8(static_cast<uint8_t>(req.exec.pipeline));
    w.b(req.exec.shareTiming);
    w.u8(static_cast<uint8_t>(req.exec.delivery));
}

bool
readRequest(ByteReader &r, AnalysisRequest *req)
{
    req->schemaVersion = r.u32();
    if (req->schemaVersion != kSchemaVersion) {
        r.fail();
        return false;
    }
    req->jobName = r.str();
    req->clientId = r.str();
    const uint64_t kernels = r.u64();
    if (!r.ok() || kernels > (1u << 20)) {
        r.fail();
        return false;
    }
    for (uint64_t i = 0; i < kernels; ++i) {
        KernelJob job;
        if (!readJobBin(r, &job))
            return false;
        req->kernels.push_back(std::move(job));
    }
    const uint64_t specs = r.u64();
    if (!r.ok() || specs > (1u << 20)) {
        r.fail();
        return false;
    }
    for (uint64_t i = 0; i < specs; ++i) {
        arch::GpuSpec spec;
        if (!readSpecBin(r, &spec))
            return false;
        req->specs.push_back(std::move(spec));
    }
    if (!readSweepBin(r, &req->sweep))
        return false;
    req->store.storeDir = r.str();
    req->store.calibrationCacheDir = r.str();
    req->store.reuseStoredResults = r.b();
    req->exec.numThreads = r.i32();
    const uint8_t engine = r.u8();
    if (engine > static_cast<uint8_t>(timing::ReplayEngine::kAuto)) {
        r.fail();
        return false;
    }
    req->exec.engine = static_cast<timing::ReplayEngine>(engine);
    const uint8_t pipeline = r.u8();
    if (pipeline > static_cast<uint8_t>(
                       ExecutionPolicy::Pipeline::kPerCell)) {
        r.fail();
        return false;
    }
    req->exec.pipeline =
        static_cast<ExecutionPolicy::Pipeline>(pipeline);
    req->exec.shareTiming = r.b();
    const uint8_t delivery = r.u8();
    if (delivery > static_cast<uint8_t>(
                       ExecutionPolicy::Delivery::kStream)) {
        r.fail();
        return false;
    }
    req->exec.delivery =
        static_cast<ExecutionPolicy::Delivery>(delivery);
    return r.ok();
}

void
writeResponse(ByteWriter &w, const AnalysisResponse &resp)
{
    w.u32(resp.schemaVersion);
    w.str(resp.jobName);
    w.u32(resp.numKernels);
    w.u32(resp.numSpecs);
    w.u64(resp.cells.size());
    for (const driver::BatchResult &cell : resp.cells) {
        w.b(cell.ok);
        w.str(cell.error);
        store::writeBatchResult(w, cell);
    }
}

bool
readResponse(ByteReader &r, AnalysisResponse *resp)
{
    resp->schemaVersion = r.u32();
    if (resp->schemaVersion != kSchemaVersion) {
        r.fail();
        return false;
    }
    resp->jobName = r.str();
    resp->numKernels = r.u32();
    resp->numSpecs = r.u32();
    const uint64_t cells = r.u64();
    if (!r.ok() || cells > (1u << 24)) {
        r.fail();
        return false;
    }
    for (uint64_t i = 0; i < cells; ++i) {
        driver::BatchResult cell;
        cell.ok = r.b();
        cell.error = r.str();
        if (!store::readBatchResult(r, &cell))
            return false;
        resp->cells.push_back(std::move(cell));
    }
    return r.ok();
}

bool
saveRequestFile(const std::string &path, const AnalysisRequest &req,
                const std::string &key)
{
    ByteWriter w;
    writeRequest(w, req);
    return store::writeEntryFile(path, kSchemaVersion, key, w.bytes());
}

bool
loadRequestFile(const std::string &path, AnalysisRequest *req,
                const std::string &key)
{
    std::string payload;
    if (!store::readEntryFile(path, kSchemaVersion, key, &payload))
        return false;
    ByteReader r(payload);
    return readRequest(r, req) && r.atEnd();
}

bool
saveResponseFile(const std::string &path, const AnalysisResponse &resp,
                 const std::string &key)
{
    ByteWriter w;
    writeResponse(w, resp);
    return store::writeEntryFile(path, kSchemaVersion, key, w.bytes());
}

bool
loadResponseFile(const std::string &path, AnalysisResponse *resp,
                 const std::string &key)
{
    std::string payload;
    if (!store::readEntryFile(path, kSchemaVersion, key, &payload))
        return false;
    ByteReader r(payload);
    return readResponse(r, resp) && r.atEnd();
}

// =====================================================================
// JSON
// =====================================================================

namespace {

// --- Emission helpers -------------------------------------------------

/** Finite doubles as numbers; NaN/Inf as tagged strings. */
Json
jnum(double v)
{
    if (std::isfinite(v))
        return Json::number(v);
    if (std::isnan(v))
        return Json::str("nan");
    return Json::str(v > 0 ? "inf" : "-inf");
}

/** 64-bit counters as decimal strings (beyond 2^53 digits matter). */
Json
ju64(uint64_t v)
{
    return Json::str(std::to_string(v));
}

// --- Reading helpers --------------------------------------------------

bool
jfail(std::string *error, const std::string &what)
{
    if (error && error->empty())
        *error = what;
    return false;
}

const Json *
member(const Json &obj, const char *key, std::string *error)
{
    if (!obj.isObject())
        return jfail(error, std::string("expected object around '") +
                                key + "'"),
               nullptr;
    const Json *v = obj.find(key);
    if (!v)
        jfail(error, std::string("missing field '") + key + "'");
    return v;
}

bool
getBool(const Json &obj, const char *key, bool *out, std::string *error)
{
    const Json *v = member(obj, key, error);
    if (!v)
        return false;
    if (!v->isBool())
        return jfail(error, std::string("field '") + key +
                                "' must be a boolean");
    *out = v->asBool();
    return true;
}

bool
getF64Value(const Json &v, const char *key, double *out,
            std::string *error)
{
    if (v.isNumber()) {
        *out = v.asNumber();
        return true;
    }
    if (v.isString()) {
        const std::string &s = v.asString();
        if (s == "nan") {
            *out = std::nan("");
            return true;
        }
        if (s == "inf") {
            *out = HUGE_VAL;
            return true;
        }
        if (s == "-inf") {
            *out = -HUGE_VAL;
            return true;
        }
    }
    return jfail(error, std::string("field '") + key +
                            "' must be a number (or nan/inf string)");
}

bool
getF64(const Json &obj, const char *key, double *out, std::string *error)
{
    const Json *v = member(obj, key, error);
    return v && getF64Value(*v, key, out, error);
}

bool
getI32(const Json &obj, const char *key, int *out, std::string *error)
{
    const Json *v = member(obj, key, error);
    if (!v)
        return false;
    // Range-check before the cast: converting an out-of-range double
    // to int is undefined behaviour, and the value came off the wire.
    if (!v->isNumber() || !(v->asNumber() >= -2147483648.0) ||
        !(v->asNumber() <= 2147483647.0))
        return jfail(error, std::string("field '") + key +
                                "' must be a 32-bit integer");
    *out = static_cast<int>(v->asNumber());
    return true;
}

bool
getU64Value(const Json &v, const char *key, uint64_t *out,
            std::string *error)
{
    // 2^64 as a double; values at or above it (or negative) would
    // make the cast undefined behaviour.
    if (v.isNumber() && v.asNumber() >= 0 &&
        v.asNumber() < 18446744073709551616.0) {
        *out = static_cast<uint64_t>(v.asNumber());
        return true;
    }
    if (v.isString()) {
        const std::string &s = v.asString();
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(s.c_str(), &end, 10);
        if (end && *end == '\0' && !s.empty()) {
            *out = parsed;
            return true;
        }
    }
    return jfail(error, std::string("field '") + key +
                            "' must be an unsigned integer (number or "
                            "decimal string)");
}

bool
getU64(const Json &obj, const char *key, uint64_t *out,
       std::string *error)
{
    const Json *v = member(obj, key, error);
    return v && getU64Value(*v, key, out, error);
}

bool
getString(const Json &obj, const char *key, std::string *out,
          std::string *error)
{
    const Json *v = member(obj, key, error);
    if (!v)
        return false;
    if (!v->isString())
        return jfail(error, std::string("field '") + key +
                                "' must be a string");
    *out = v->asString();
    return true;
}

const Json *
getArray(const Json &obj, const char *key, std::string *error)
{
    const Json *v = member(obj, key, error);
    if (!v)
        return nullptr;
    if (!v->isArray()) {
        jfail(error,
              std::string("field '") + key + "' must be an array");
        return nullptr;
    }
    return v;
}

const Json *
getObject(const Json &obj, const char *key, std::string *error)
{
    const Json *v = member(obj, key, error);
    if (!v)
        return nullptr;
    if (!v->isObject()) {
        jfail(error,
              std::string("field '") + key + "' must be an object");
        return nullptr;
    }
    return v;
}

// --- Enum names -------------------------------------------------------

const char *
engineName(timing::ReplayEngine e)
{
    switch (e) {
      case timing::ReplayEngine::kEventDriven: return "event-driven";
      case timing::ReplayEngine::kLegacyScan: return "legacy-scan";
      case timing::ReplayEngine::kAuto: return "auto";
    }
    return "event-driven";
}

bool
engineFromName(const std::string &s, timing::ReplayEngine *out)
{
    if (s == "event-driven")
        *out = timing::ReplayEngine::kEventDriven;
    else if (s == "legacy-scan")
        *out = timing::ReplayEngine::kLegacyScan;
    else if (s == "auto")
        *out = timing::ReplayEngine::kAuto;
    else
        return false;
    return true;
}

const char *
whatIfKindName(driver::SweepPoint::Kind kind)
{
    switch (kind) {
      case driver::SweepPoint::Kind::kNoBankConflicts:
        return "no-bank-conflicts";
      case driver::SweepPoint::Kind::kWarpsPerSm:
        return "warps-per-sm";
      case driver::SweepPoint::Kind::kCoalescingFraction:
        return "coalescing-fraction";
    }
    return "no-bank-conflicts";
}

bool
whatIfKindFromName(const std::string &s, driver::SweepPoint::Kind *out)
{
    if (s == "no-bank-conflicts")
        *out = driver::SweepPoint::Kind::kNoBankConflicts;
    else if (s == "warps-per-sm")
        *out = driver::SweepPoint::Kind::kWarpsPerSm;
    else if (s == "coalescing-fraction")
        *out = driver::SweepPoint::Kind::kCoalescingFraction;
    else
        return false;
    return true;
}

// --- Schema pieces: request -------------------------------------------

Json
kernelJobToJson(const KernelJob &job)
{
    Json j = Json::object();
    j.set("name", Json::str(job.name));
    if (!job.isInline()) {
        Json ref = Json::object();
        ref.set("factory", Json::str(job.ref.factory));
        Json iargs = Json::array();
        for (int64_t v : job.ref.iargs)
            iargs.push(Json::number(static_cast<double>(v)));
        ref.set("iargs", std::move(iargs));
        Json fargs = Json::array();
        for (double v : job.ref.fargs)
            fargs.push(jnum(v));
        ref.set("fargs", std::move(fargs));
        j.set("case", std::move(ref));
        return j;
    }
    const InlineLaunch &in = *job.inlined;
    Json launch = Json::object();
    Json kernel = Json::object();
    kernel.set("name", Json::str(in.kernel.name()));
    kernel.set("registers", Json::number(in.kernel.numRegisters()));
    kernel.set("predicates", Json::number(in.kernel.numPredicates()));
    kernel.set("sharedBytes", Json::number(in.kernel.sharedBytes()));
    Json instrs = Json::array();
    for (const isa::Instruction &i : in.kernel.instructions()) {
        // Flat tuple [op, dst, s0, s1, s2, imm, useImm, pred,
        // predNegate, cmp, sreg] — compact and order-stable.
        Json t = Json::array();
        t.push(Json::number(static_cast<double>(i.op)));
        t.push(Json::number(i.dst));
        t.push(Json::number(i.src[0]));
        t.push(Json::number(i.src[1]));
        t.push(Json::number(i.src[2]));
        t.push(Json::number(i.imm));
        t.push(Json::number(i.useImm ? 1 : 0));
        t.push(Json::number(i.pred));
        t.push(Json::number(i.predNegate ? 1 : 0));
        t.push(Json::number(static_cast<double>(i.cmp)));
        t.push(Json::number(static_cast<double>(i.sreg)));
        instrs.push(std::move(t));
    }
    kernel.set("instructions", std::move(instrs));
    launch.set("kernel", std::move(kernel));
    launch.set("gridDim", Json::number(in.cfg.gridDim));
    launch.set("blockDim", Json::number(in.cfg.blockDim));
    Json options = Json::object();
    options.set("collectTrace", Json::boolean(in.options.collectTrace));
    options.set("homogeneous", Json::boolean(in.options.homogeneous));
    options.set("sampleBlocks", Json::number(in.options.sampleBlocks));
    options.set("maxWarpOps", ju64(in.options.maxWarpOps));
    launch.set("options", std::move(options));
    Json memory = Json::object();
    memory.set("capacity", ju64(in.memoryCapacity));
    memory.set("image", Json::str(hexEncode(in.memoryImage)));
    launch.set("memory", std::move(memory));
    j.set("inline", std::move(launch));
    return j;
}

bool
kernelJobFromJson(const Json &j, KernelJob *job, std::string *error)
{
    if (!getString(j, "name", &job->name, error))
        return false;
    const Json *inlined = j.isObject() ? j.find("inline") : nullptr;
    if (!inlined) {
        const Json *ref = getObject(j, "case", error);
        if (!ref)
            return jfail(error, "kernel job needs 'case' or 'inline'");
        if (!getString(*ref, "factory", &job->ref.factory, error))
            return false;
        if (const Json *iargs = getArray(*ref, "iargs", error)) {
            for (size_t i = 0; i < iargs->size(); ++i) {
                // Bounded to the exactly-representable integer range
                // before the cast (out-of-range double-to-int64 is
                // undefined behaviour on wire input).
                const Json &v = iargs->at(i);
                if (!v.isNumber() ||
                    !(v.asNumber() >= -9007199254740992.0) ||
                    !(v.asNumber() <= 9007199254740992.0))
                    return jfail(error,
                                 "iargs must be integers within "
                                 "+/-2^53");
                job->ref.iargs.push_back(
                    static_cast<int64_t>(v.asNumber()));
            }
        } else {
            return false;
        }
        if (const Json *fargs = getArray(*ref, "fargs", error)) {
            for (size_t i = 0; i < fargs->size(); ++i) {
                double v = 0.0;
                if (!getF64Value(fargs->at(i), "fargs", &v, error))
                    return false;
                job->ref.fargs.push_back(v);
            }
        } else {
            return false;
        }
        return true;
    }
    const Json *kernel = getObject(*inlined, "kernel", error);
    if (!kernel)
        return false;
    std::string kname;
    int regs = 0, preds = 0, shared = 0;
    if (!getString(*kernel, "name", &kname, error) ||
        !getI32(*kernel, "registers", &regs, error) ||
        !getI32(*kernel, "predicates", &preds, error) ||
        !getI32(*kernel, "sharedBytes", &shared, error)) {
        return false;
    }
    const Json *instrs = getArray(*kernel, "instructions", error);
    if (!instrs)
        return false;
    std::vector<isa::Instruction> list;
    list.reserve(instrs->size());
    for (size_t i = 0; i < instrs->size(); ++i) {
        const Json &t = instrs->at(i);
        if (!t.isArray() || t.size() != 11)
            return jfail(error,
                         "instruction tuples must have 11 fields");
        // Per-field bounds matched to the destination types, checked
        // BEFORE any cast (an out-of-range double-to-integer
        // conversion is undefined behaviour on wire input): register
        // operands are u16, the predicate u8, imm i32.
        static const double kLo[11] = {0, 0, 0, 0, 0, -2147483648.0,
                                       0, 0, 0, 0, 0};
        static const double kHi[11] = {
            2147483647.0, 65535.0, 65535.0,      65535.0,
            65535.0,      2147483647.0, 2147483647.0, 255.0,
            2147483647.0, 2147483647.0, 2147483647.0};
        for (size_t k = 0; k < 11; ++k) {
            if (!t.at(k).isNumber() ||
                !(t.at(k).asNumber() >= kLo[k]) ||
                !(t.at(k).asNumber() <= kHi[k]))
                return jfail(error,
                             "instruction field out of range");
        }
        isa::Instruction in;
        const int op = static_cast<int>(t.at(0).asNumber());
        if (op < 0 ||
            op >= static_cast<int>(isa::Opcode::kNumOpcodes))
            return jfail(error, "instruction opcode out of range");
        in.op = static_cast<isa::Opcode>(op);
        in.dst = static_cast<isa::Reg>(t.at(1).asNumber());
        in.src[0] = static_cast<isa::Reg>(t.at(2).asNumber());
        in.src[1] = static_cast<isa::Reg>(t.at(3).asNumber());
        in.src[2] = static_cast<isa::Reg>(t.at(4).asNumber());
        in.imm = static_cast<int32_t>(t.at(5).asNumber());
        in.useImm = t.at(6).asNumber() != 0;
        in.pred = static_cast<isa::Pred>(t.at(7).asNumber());
        in.predNegate = t.at(8).asNumber() != 0;
        const int cmp = static_cast<int>(t.at(9).asNumber());
        if (cmp < 0 || cmp > static_cast<int>(isa::CmpOp::kNe))
            return jfail(error, "instruction cmp out of range");
        in.cmp = static_cast<isa::CmpOp>(cmp);
        const int sreg = static_cast<int>(t.at(10).asNumber());
        if (sreg < 0 ||
            sreg > static_cast<int>(isa::SpecialReg::kWarpId))
            return jfail(error, "instruction sreg out of range");
        in.sreg = static_cast<isa::SpecialReg>(sreg);
        list.push_back(in);
    }
    if (regs < 0 || preds < 0 || shared < 0)
        return jfail(error, "kernel resources must be non-negative");
    const std::string structural =
        kernelStructureError(list, regs, preds);
    if (!structural.empty())
        return jfail(error, "kernel '" + kname + "': " + structural);
    isa::Kernel k(kname, std::move(list), regs, preds, shared);
    funcsim::LaunchConfig cfg;
    if (!getI32(*inlined, "gridDim", &cfg.gridDim, error) ||
        !getI32(*inlined, "blockDim", &cfg.blockDim, error)) {
        return false;
    }
    const Json *options = getObject(*inlined, "options", error);
    if (!options)
        return false;
    funcsim::RunOptions run;
    if (!getBool(*options, "collectTrace", &run.collectTrace, error) ||
        !getBool(*options, "homogeneous", &run.homogeneous, error) ||
        !getI32(*options, "sampleBlocks", &run.sampleBlocks, error) ||
        !getU64(*options, "maxWarpOps", &run.maxWarpOps, error)) {
        return false;
    }
    const Json *memory = getObject(*inlined, "memory", error);
    if (!memory)
        return false;
    InlineLaunch launch{std::move(k), cfg, run, 0, {}};
    std::string image_hex;
    if (!getU64(*memory, "capacity", &launch.memoryCapacity, error) ||
        !getString(*memory, "image", &image_hex, error)) {
        return false;
    }
    if (!hexDecode(image_hex, &launch.memoryImage))
        return jfail(error, "memory image is not valid hex");
    if (!memoryGeometryValid(launch.memoryCapacity,
                             launch.memoryImage.size()))
        return jfail(error, "memory geometry out of range");
    job->inlined =
        std::make_shared<const InlineLaunch>(std::move(launch));
    return true;
}

Json
specToJson(const arch::GpuSpec &s)
{
    Json j = Json::object();
    j.set("name", Json::str(s.name));
    j.set("numSms", Json::number(s.numSms));
    j.set("smsPerCluster", Json::number(s.smsPerCluster));
    j.set("spsPerSm", Json::number(s.spsPerSm));
    j.set("sfuMulPerSm", Json::number(s.sfuMulPerSm));
    j.set("sfuPerSm", Json::number(s.sfuPerSm));
    j.set("dpPerSm", Json::number(s.dpPerSm));
    j.set("warpSize", Json::number(s.warpSize));
    j.set("coreClockHz", jnum(s.coreClockHz));
    j.set("registersPerSm", Json::number(s.registersPerSm));
    j.set("sharedMemPerSm", Json::number(s.sharedMemPerSm));
    j.set("maxThreadsPerSm", Json::number(s.maxThreadsPerSm));
    j.set("maxThreadsPerBlock", Json::number(s.maxThreadsPerBlock));
    j.set("maxBlocksPerSm", Json::number(s.maxBlocksPerSm));
    j.set("maxWarpsPerSm", Json::number(s.maxWarpsPerSm));
    j.set("registerAllocUnit", Json::number(s.registerAllocUnit));
    j.set("sharedAllocUnit", Json::number(s.sharedAllocUnit));
    j.set("sharedStaticPerBlock",
          Json::number(s.sharedStaticPerBlock));
    j.set("numSharedBanks", Json::number(s.numSharedBanks));
    j.set("sharedBankWidth", Json::number(s.sharedBankWidth));
    j.set("sharedIssueGroup", Json::number(s.sharedIssueGroup));
    j.set("memClockHz", jnum(s.memClockHz));
    j.set("busWidthBits", Json::number(s.busWidthBits));
    j.set("coalesceGroup", Json::number(s.coalesceGroup));
    j.set("minSegmentBytes", Json::number(s.minSegmentBytes));
    j.set("maxSegmentBytes", Json::number(s.maxSegmentBytes));
    j.set("aluDepCycles", Json::number(s.aluDepCycles));
    j.set("sharedDepCycles", Json::number(s.sharedDepCycles));
    j.set("warpSharedPassIntervalCycles",
          jnum(s.warpSharedPassIntervalCycles));
    j.set("globalLatencyCycles", Json::number(s.globalLatencyCycles));
    j.set("transactionOverheadCycles",
          Json::number(s.transactionOverheadCycles));
    j.set("issueOverheadCycles", jnum(s.issueOverheadCycles));
    j.set("textureCacheEnabled",
          Json::boolean(s.textureCacheEnabled));
    j.set("textureCacheBytesPerCluster",
          Json::number(s.textureCacheBytesPerCluster));
    j.set("textureCacheLineBytes",
          Json::number(s.textureCacheLineBytes));
    j.set("textureCacheWays", Json::number(s.textureCacheWays));
    j.set("textureHitLatencyCycles",
          Json::number(s.textureHitLatencyCycles));
    return j;
}

bool
specFromJson(const Json &j, arch::GpuSpec *s, std::string *error)
{
    return getString(j, "name", &s->name, error) &&
           getI32(j, "numSms", &s->numSms, error) &&
           getI32(j, "smsPerCluster", &s->smsPerCluster, error) &&
           getI32(j, "spsPerSm", &s->spsPerSm, error) &&
           getI32(j, "sfuMulPerSm", &s->sfuMulPerSm, error) &&
           getI32(j, "sfuPerSm", &s->sfuPerSm, error) &&
           getI32(j, "dpPerSm", &s->dpPerSm, error) &&
           getI32(j, "warpSize", &s->warpSize, error) &&
           getF64(j, "coreClockHz", &s->coreClockHz, error) &&
           getI32(j, "registersPerSm", &s->registersPerSm, error) &&
           getI32(j, "sharedMemPerSm", &s->sharedMemPerSm, error) &&
           getI32(j, "maxThreadsPerSm", &s->maxThreadsPerSm, error) &&
           getI32(j, "maxThreadsPerBlock", &s->maxThreadsPerBlock,
                  error) &&
           getI32(j, "maxBlocksPerSm", &s->maxBlocksPerSm, error) &&
           getI32(j, "maxWarpsPerSm", &s->maxWarpsPerSm, error) &&
           getI32(j, "registerAllocUnit", &s->registerAllocUnit,
                  error) &&
           getI32(j, "sharedAllocUnit", &s->sharedAllocUnit, error) &&
           getI32(j, "sharedStaticPerBlock",
                  &s->sharedStaticPerBlock, error) &&
           getI32(j, "numSharedBanks", &s->numSharedBanks, error) &&
           getI32(j, "sharedBankWidth", &s->sharedBankWidth, error) &&
           getI32(j, "sharedIssueGroup", &s->sharedIssueGroup,
                  error) &&
           getF64(j, "memClockHz", &s->memClockHz, error) &&
           getI32(j, "busWidthBits", &s->busWidthBits, error) &&
           getI32(j, "coalesceGroup", &s->coalesceGroup, error) &&
           getI32(j, "minSegmentBytes", &s->minSegmentBytes, error) &&
           getI32(j, "maxSegmentBytes", &s->maxSegmentBytes, error) &&
           getI32(j, "aluDepCycles", &s->aluDepCycles, error) &&
           getI32(j, "sharedDepCycles", &s->sharedDepCycles, error) &&
           getF64(j, "warpSharedPassIntervalCycles",
                  &s->warpSharedPassIntervalCycles, error) &&
           getI32(j, "globalLatencyCycles", &s->globalLatencyCycles,
                  error) &&
           getI32(j, "transactionOverheadCycles",
                  &s->transactionOverheadCycles, error) &&
           getF64(j, "issueOverheadCycles", &s->issueOverheadCycles,
                  error) &&
           getBool(j, "textureCacheEnabled", &s->textureCacheEnabled,
                   error) &&
           getI32(j, "textureCacheBytesPerCluster",
                  &s->textureCacheBytesPerCluster, error) &&
           getI32(j, "textureCacheLineBytes",
                  &s->textureCacheLineBytes, error) &&
           getI32(j, "textureCacheWays", &s->textureCacheWays,
                  error) &&
           getI32(j, "textureHitLatencyCycles",
                  &s->textureHitLatencyCycles, error);
}

Json
sweepToJson(const driver::SweepSpec &s)
{
    Json j = Json::object();
    j.set("noBankConflicts", Json::boolean(s.noBankConflicts));
    Json warps = Json::array();
    for (double v : s.warpsPerSm)
        warps.push(jnum(v));
    j.set("warpsPerSm", std::move(warps));
    Json fracs = Json::array();
    for (double v : s.coalescingFractions)
        fracs.push(jnum(v));
    j.set("coalescingFractions", std::move(fracs));
    return j;
}

bool
sweepFromJson(const Json &j, driver::SweepSpec *s, std::string *error)
{
    if (!getBool(j, "noBankConflicts", &s->noBankConflicts, error))
        return false;
    const Json *warps = getArray(j, "warpsPerSm", error);
    if (!warps)
        return false;
    for (size_t i = 0; i < warps->size(); ++i) {
        double v = 0.0;
        if (!getF64Value(warps->at(i), "warpsPerSm", &v, error))
            return false;
        s->warpsPerSm.push_back(v);
    }
    const Json *fracs = getArray(j, "coalescingFractions", error);
    if (!fracs)
        return false;
    for (size_t i = 0; i < fracs->size(); ++i) {
        double v = 0.0;
        if (!getF64Value(fracs->at(i), "coalescingFractions", &v,
                         error))
            return false;
        s->coalescingFractions.push_back(v);
    }
    return true;
}

// --- Schema pieces: response (the deep Analysis mirror) ---------------

Json
occupancyToJson(const arch::Occupancy &o)
{
    Json j = Json::object();
    j.set("blocksByRegisters", Json::number(o.blocksByRegisters));
    j.set("blocksBySharedMem", Json::number(o.blocksBySharedMem));
    j.set("blocksByThreads", Json::number(o.blocksByThreads));
    j.set("blocksByBlockLimit", Json::number(o.blocksByBlockLimit));
    j.set("blocksByWarpLimit", Json::number(o.blocksByWarpLimit));
    j.set("residentBlocks", Json::number(o.residentBlocks));
    j.set("residentWarps", Json::number(o.residentWarps));
    j.set("limit", Json::number(static_cast<double>(o.limit)));
    j.set("warpsPerBlock", Json::number(o.warpsPerBlock));
    return j;
}

bool
occupancyFromJson(const Json &j, arch::Occupancy *o, std::string *error)
{
    int limit = 0;
    if (!getI32(j, "blocksByRegisters", &o->blocksByRegisters,
                error) ||
        !getI32(j, "blocksBySharedMem", &o->blocksBySharedMem,
                error) ||
        !getI32(j, "blocksByThreads", &o->blocksByThreads, error) ||
        !getI32(j, "blocksByBlockLimit", &o->blocksByBlockLimit,
                error) ||
        !getI32(j, "blocksByWarpLimit", &o->blocksByWarpLimit,
                error) ||
        !getI32(j, "residentBlocks", &o->residentBlocks, error) ||
        !getI32(j, "residentWarps", &o->residentWarps, error) ||
        !getI32(j, "limit", &limit, error) ||
        !getI32(j, "warpsPerBlock", &o->warpsPerBlock, error)) {
        return false;
    }
    if (limit < 0 ||
        limit > static_cast<int>(arch::OccupancyLimit::Warps))
        return jfail(error, "occupancy limit out of range");
    o->limit = static_cast<arch::OccupancyLimit>(limit);
    return true;
}

Json
stageStatsToJson(const funcsim::StageStats &s)
{
    Json j = Json::object();
    Json counts = Json::array();
    for (uint64_t c : s.typeCounts)
        counts.push(ju64(c));
    j.set("typeCounts", std::move(counts));
    j.set("madCount", ju64(s.madCount));
    j.set("totalWarpInstrs", ju64(s.totalWarpInstrs));
    j.set("sharedInstrs", ju64(s.sharedInstrs));
    j.set("globalInstrs", ju64(s.globalInstrs));
    j.set("sharedTransactions", ju64(s.sharedTransactions));
    j.set("sharedTransactionsIdeal",
          ju64(s.sharedTransactionsIdeal));
    j.set("sharedBytes", ju64(s.sharedBytes));
    j.set("globalTransactions", ju64(s.globalTransactions));
    j.set("globalBytes", ju64(s.globalBytes));
    j.set("globalRequestBytes", ju64(s.globalRequestBytes));
    Json sizes = Json::array();
    for (const auto &[size, count] : s.globalXactBySize) {
        Json pair = Json::array();
        pair.push(Json::number(size));
        pair.push(ju64(count));
        sizes.push(std::move(pair));
    }
    j.set("globalXactBySize", std::move(sizes));
    j.set("activeWarpsPerBlock", jnum(s.activeWarpsPerBlock));
    return j;
}

bool
stageStatsFromJson(const Json &j, funcsim::StageStats *s,
                   std::string *error)
{
    const Json *counts = getArray(j, "typeCounts", error);
    if (!counts)
        return false;
    if (counts->size() != s->typeCounts.size())
        return jfail(error, "typeCounts has the wrong arity");
    for (size_t i = 0; i < counts->size(); ++i) {
        if (!getU64Value(counts->at(i), "typeCounts",
                         &s->typeCounts[i], error))
            return false;
    }
    if (!getU64(j, "madCount", &s->madCount, error) ||
        !getU64(j, "totalWarpInstrs", &s->totalWarpInstrs, error) ||
        !getU64(j, "sharedInstrs", &s->sharedInstrs, error) ||
        !getU64(j, "globalInstrs", &s->globalInstrs, error) ||
        !getU64(j, "sharedTransactions", &s->sharedTransactions,
                error) ||
        !getU64(j, "sharedTransactionsIdeal",
                &s->sharedTransactionsIdeal, error) ||
        !getU64(j, "sharedBytes", &s->sharedBytes, error) ||
        !getU64(j, "globalTransactions", &s->globalTransactions,
                error) ||
        !getU64(j, "globalBytes", &s->globalBytes, error) ||
        !getU64(j, "globalRequestBytes", &s->globalRequestBytes,
                error)) {
        return false;
    }
    const Json *sizes = getArray(j, "globalXactBySize", error);
    if (!sizes)
        return false;
    for (size_t i = 0; i < sizes->size(); ++i) {
        const Json &pair = sizes->at(i);
        if (!pair.isArray() || pair.size() != 2 ||
            !pair.at(0).isNumber())
            return jfail(error, "globalXactBySize must hold "
                                "[size, count] pairs");
        uint64_t count = 0;
        if (!getU64Value(pair.at(1), "globalXactBySize", &count,
                         error))
            return false;
        s->globalXactBySize[static_cast<int>(
            pair.at(0).asNumber())] = count;
    }
    return getF64(j, "activeWarpsPerBlock", &s->activeWarpsPerBlock,
                  error);
}

Json
statsToJson(const funcsim::DynamicStats &stats)
{
    Json j = Json::object();
    Json stages = Json::array();
    for (const funcsim::StageStats &s : stats.stages)
        stages.push(stageStatsToJson(s));
    j.set("stages", std::move(stages));
    j.set("gridDim", Json::number(stats.gridDim));
    j.set("blockDim", Json::number(stats.blockDim));
    j.set("warpsPerBlock", Json::number(stats.warpsPerBlock));
    j.set("barriersPerBlock", Json::number(stats.barriersPerBlock));
    j.set("sampledBlocks", Json::number(stats.sampledBlocks));
    return j;
}

bool
statsFromJson(const Json &j, funcsim::DynamicStats *stats,
              std::string *error)
{
    const Json *stages = getArray(j, "stages", error);
    if (!stages)
        return false;
    for (size_t i = 0; i < stages->size(); ++i) {
        funcsim::StageStats s;
        if (!stageStatsFromJson(stages->at(i), &s, error))
            return false;
        stats->stages.push_back(std::move(s));
    }
    return getI32(j, "gridDim", &stats->gridDim, error) &&
           getI32(j, "blockDim", &stats->blockDim, error) &&
           getI32(j, "warpsPerBlock", &stats->warpsPerBlock, error) &&
           getI32(j, "barriersPerBlock", &stats->barriersPerBlock,
                  error) &&
           getI32(j, "sampledBlocks", &stats->sampledBlocks, error);
}

Json
timingToJson(const timing::TimingResult &t)
{
    Json j = Json::object();
    j.set("cycles", jnum(t.cycles));
    j.set("seconds", jnum(t.seconds));
    j.set("totalOps", ju64(t.totalOps));
    j.set("arithBusyCycles", jnum(t.arithBusyCycles));
    j.set("sharedBusyCycles", jnum(t.sharedBusyCycles));
    j.set("portBusyCycles", jnum(t.portBusyCycles));
    j.set("texHits", ju64(t.texHits));
    j.set("texMisses", ju64(t.texMisses));
    j.set("occupancy", occupancyToJson(t.occupancy));
    return j;
}

bool
timingFromJson(const Json &j, timing::TimingResult *t,
               std::string *error)
{
    const Json *occ = getObject(j, "occupancy", error);
    return occ && getF64(j, "cycles", &t->cycles, error) &&
           getF64(j, "seconds", &t->seconds, error) &&
           getU64(j, "totalOps", &t->totalOps, error) &&
           getF64(j, "arithBusyCycles", &t->arithBusyCycles, error) &&
           getF64(j, "sharedBusyCycles", &t->sharedBusyCycles,
                  error) &&
           getF64(j, "portBusyCycles", &t->portBusyCycles, error) &&
           getU64(j, "texHits", &t->texHits, error) &&
           getU64(j, "texMisses", &t->texMisses, error) &&
           occupancyFromJson(*occ, &t->occupancy, error);
}

Json
inputToJson(const model::ModelInput &in)
{
    Json j = Json::object();
    Json stages = Json::array();
    for (const model::StageInput &s : in.stages) {
        Json stage = Json::object();
        Json counts = Json::array();
        for (uint64_t c : s.typeCounts)
            counts.push(ju64(c));
        stage.set("typeCounts", std::move(counts));
        stage.set("madCount", ju64(s.madCount));
        stage.set("totalWarpInstrs", ju64(s.totalWarpInstrs));
        stage.set("sharedTransactions", ju64(s.sharedTransactions));
        stage.set("sharedTransactionsIdeal",
                  ju64(s.sharedTransactionsIdeal));
        stage.set("sharedBytes", ju64(s.sharedBytes));
        stage.set("globalTransactions", ju64(s.globalTransactions));
        stage.set("globalBytes", ju64(s.globalBytes));
        stage.set("globalRequestBytes", ju64(s.globalRequestBytes));
        stage.set("effective64Xacts", jnum(s.effective64Xacts));
        stage.set("activeWarpsPerSm", jnum(s.activeWarpsPerSm));
        stages.push(std::move(stage));
    }
    j.set("stages", std::move(stages));
    j.set("gridDim", Json::number(in.gridDim));
    j.set("blockDim", Json::number(in.blockDim));
    j.set("occupancy", occupancyToJson(in.occupancy));
    j.set("concurrentBlocksPerSm",
          Json::number(in.concurrentBlocksPerSm));
    j.set("stagesSerialized", Json::boolean(in.stagesSerialized));
    return j;
}

bool
inputFromJson(const Json &j, model::ModelInput *in, std::string *error)
{
    const Json *stages = getArray(j, "stages", error);
    if (!stages)
        return false;
    for (size_t i = 0; i < stages->size(); ++i) {
        const Json &stage = stages->at(i);
        model::StageInput s;
        const Json *counts = getArray(stage, "typeCounts", error);
        if (!counts)
            return false;
        if (counts->size() != s.typeCounts.size())
            return jfail(error, "typeCounts has the wrong arity");
        for (size_t k = 0; k < counts->size(); ++k) {
            if (!getU64Value(counts->at(k), "typeCounts",
                             &s.typeCounts[k], error))
                return false;
        }
        if (!getU64(stage, "madCount", &s.madCount, error) ||
            !getU64(stage, "totalWarpInstrs", &s.totalWarpInstrs,
                    error) ||
            !getU64(stage, "sharedTransactions",
                    &s.sharedTransactions, error) ||
            !getU64(stage, "sharedTransactionsIdeal",
                    &s.sharedTransactionsIdeal, error) ||
            !getU64(stage, "sharedBytes", &s.sharedBytes, error) ||
            !getU64(stage, "globalTransactions",
                    &s.globalTransactions, error) ||
            !getU64(stage, "globalBytes", &s.globalBytes, error) ||
            !getU64(stage, "globalRequestBytes",
                    &s.globalRequestBytes, error) ||
            !getF64(stage, "effective64Xacts", &s.effective64Xacts,
                    error) ||
            !getF64(stage, "activeWarpsPerSm", &s.activeWarpsPerSm,
                    error)) {
            return false;
        }
        in->stages.push_back(std::move(s));
    }
    const Json *occ = getObject(j, "occupancy", error);
    return occ && getI32(j, "gridDim", &in->gridDim, error) &&
           getI32(j, "blockDim", &in->blockDim, error) &&
           occupancyFromJson(*occ, &in->occupancy, error) &&
           getI32(j, "concurrentBlocksPerSm",
                  &in->concurrentBlocksPerSm, error) &&
           getBool(j, "stagesSerialized", &in->stagesSerialized,
                   error);
}

bool
componentFromInt(int v, model::Component *out, std::string *error)
{
    if (v < 0 || v > static_cast<int>(model::Component::kGlobal))
        return jfail(error, "bottleneck component out of range");
    *out = static_cast<model::Component>(v);
    return true;
}

Json
predictionToJson(const model::Prediction &p)
{
    Json j = Json::object();
    Json stages = Json::array();
    for (const model::StagePrediction &s : p.stages) {
        Json stage = Json::object();
        stage.set("tInstr", jnum(s.tInstr));
        stage.set("tShared", jnum(s.tShared));
        stage.set("tGlobal", jnum(s.tGlobal));
        stage.set("bottleneck",
                  Json::number(static_cast<double>(s.bottleneck)));
        stage.set("stageTime", jnum(s.stageTime));
        stage.set("activeWarpsPerSm", jnum(s.activeWarpsPerSm));
        stage.set("sharedBandwidth", jnum(s.sharedBandwidth));
        stages.push(std::move(stage));
    }
    j.set("stages", std::move(stages));
    j.set("serialized", Json::boolean(p.serialized));
    j.set("tInstrTotal", jnum(p.tInstrTotal));
    j.set("tSharedTotal", jnum(p.tSharedTotal));
    j.set("tGlobalTotal", jnum(p.tGlobalTotal));
    j.set("totalSeconds", jnum(p.totalSeconds));
    j.set("bottleneck",
          Json::number(static_cast<double>(p.bottleneck)));
    j.set("nextBottleneck",
          Json::number(static_cast<double>(p.nextBottleneck)));
    return j;
}

bool
predictionFromJson(const Json &j, model::Prediction *p,
                   std::string *error)
{
    const Json *stages = getArray(j, "stages", error);
    if (!stages)
        return false;
    for (size_t i = 0; i < stages->size(); ++i) {
        const Json &stage = stages->at(i);
        model::StagePrediction s;
        int bottleneck = 0;
        if (!getF64(stage, "tInstr", &s.tInstr, error) ||
            !getF64(stage, "tShared", &s.tShared, error) ||
            !getF64(stage, "tGlobal", &s.tGlobal, error) ||
            !getI32(stage, "bottleneck", &bottleneck, error) ||
            !componentFromInt(bottleneck, &s.bottleneck, error) ||
            !getF64(stage, "stageTime", &s.stageTime, error) ||
            !getF64(stage, "activeWarpsPerSm", &s.activeWarpsPerSm,
                    error) ||
            !getF64(stage, "sharedBandwidth", &s.sharedBandwidth,
                    error)) {
            return false;
        }
        p->stages.push_back(s);
    }
    int bottleneck = 0;
    int next = 0;
    return getBool(j, "serialized", &p->serialized, error) &&
           getF64(j, "tInstrTotal", &p->tInstrTotal, error) &&
           getF64(j, "tSharedTotal", &p->tSharedTotal, error) &&
           getF64(j, "tGlobalTotal", &p->tGlobalTotal, error) &&
           getF64(j, "totalSeconds", &p->totalSeconds, error) &&
           getI32(j, "bottleneck", &bottleneck, error) &&
           componentFromInt(bottleneck, &p->bottleneck, error) &&
           getI32(j, "nextBottleneck", &next, error) &&
           componentFromInt(next, &p->nextBottleneck, error);
}

Json
metricsToJson(const model::ReportMetrics &m)
{
    Json j = Json::object();
    j.set("computationalDensity", jnum(m.computationalDensity));
    j.set("bankConflictFactor", jnum(m.bankConflictFactor));
    j.set("coalescingEfficiency", jnum(m.coalescingEfficiency));
    j.set("avgActiveWarpsPerBlock", jnum(m.avgActiveWarpsPerBlock));
    return j;
}

bool
metricsFromJson(const Json &j, model::ReportMetrics *m,
                std::string *error)
{
    return getF64(j, "computationalDensity", &m->computationalDensity,
                  error) &&
           getF64(j, "bankConflictFactor", &m->bankConflictFactor,
                  error) &&
           getF64(j, "coalescingEfficiency",
                  &m->coalescingEfficiency, error) &&
           getF64(j, "avgActiveWarpsPerBlock",
                  &m->avgActiveWarpsPerBlock, error);
}

Json
cellToJson(const driver::BatchResult &cell)
{
    Json j = Json::object();
    j.set("kernel", Json::str(cell.kernelName));
    j.set("spec", Json::str(cell.specName));
    j.set("ok", Json::boolean(cell.ok));
    j.set("error", Json::str(cell.error));
    Json analysis = Json::object();
    analysis.set("stats", statsToJson(cell.analysis.measurement.stats));
    analysis.set("timing",
                 timingToJson(cell.analysis.measurement.timing));
    analysis.set("input", inputToJson(cell.analysis.input));
    analysis.set("prediction",
                 predictionToJson(cell.analysis.prediction));
    analysis.set("metrics", metricsToJson(cell.analysis.metrics));
    j.set("analysis", std::move(analysis));
    Json whatifs = Json::array();
    for (const driver::RankedWhatIf &wi : cell.whatifs) {
        Json w = Json::object();
        w.set("kind", Json::str(whatIfKindName(wi.point.kind)));
        w.set("value", jnum(wi.point.value));
        w.set("before", predictionToJson(wi.result.before));
        w.set("after", predictionToJson(wi.result.after));
        whatifs.push(std::move(w));
    }
    j.set("whatifs", std::move(whatifs));
    return j;
}

bool
cellFromJson(const Json &j, driver::BatchResult *cell,
             std::string *error)
{
    if (!getString(j, "kernel", &cell->kernelName, error) ||
        !getString(j, "spec", &cell->specName, error) ||
        !getBool(j, "ok", &cell->ok, error) ||
        !getString(j, "error", &cell->error, error)) {
        return false;
    }
    const Json *analysis = getObject(j, "analysis", error);
    if (!analysis)
        return false;
    const Json *stats = getObject(*analysis, "stats", error);
    const Json *timing = getObject(*analysis, "timing", error);
    const Json *input = getObject(*analysis, "input", error);
    const Json *prediction = getObject(*analysis, "prediction", error);
    const Json *metrics = getObject(*analysis, "metrics", error);
    if (!stats || !timing || !input || !prediction || !metrics)
        return false;
    if (!statsFromJson(*stats, &cell->analysis.measurement.stats,
                       error) ||
        !timingFromJson(*timing, &cell->analysis.measurement.timing,
                        error) ||
        !inputFromJson(*input, &cell->analysis.input, error) ||
        !predictionFromJson(*prediction, &cell->analysis.prediction,
                            error) ||
        !metricsFromJson(*metrics, &cell->analysis.metrics, error)) {
        return false;
    }
    const Json *whatifs = getArray(j, "whatifs", error);
    if (!whatifs)
        return false;
    for (size_t i = 0; i < whatifs->size(); ++i) {
        const Json &w = whatifs->at(i);
        driver::RankedWhatIf wi;
        std::string kind;
        const Json *before = getObject(w, "before", error);
        const Json *after = getObject(w, "after", error);
        if (!before || !after ||
            !getString(w, "kind", &kind, error) ||
            !getF64(w, "value", &wi.point.value, error)) {
            return false;
        }
        if (!whatIfKindFromName(kind, &wi.point.kind))
            return jfail(error, "unknown what-if kind '" + kind + "'");
        if (!predictionFromJson(*before, &wi.result.before, error) ||
            !predictionFromJson(*after, &wi.result.after, error)) {
            return false;
        }
        cell->whatifs.push_back(std::move(wi));
    }
    return true;
}

} // namespace

std::string
requestToJson(const AnalysisRequest &req)
{
    Json j = Json::object();
    j.set("schema", Json::number(req.schemaVersion));
    j.set("job", Json::str(req.jobName));
    j.set("client", Json::str(req.clientId));
    Json kernels = Json::array();
    for (const KernelJob &job : req.kernels)
        kernels.push(kernelJobToJson(job));
    j.set("kernels", std::move(kernels));
    Json specs = Json::array();
    for (const arch::GpuSpec &spec : req.specs)
        specs.push(specToJson(spec));
    j.set("specs", std::move(specs));
    j.set("sweep", sweepToJson(req.sweep));
    Json store = Json::object();
    store.set("dir", Json::str(req.store.storeDir));
    store.set("calibrationCacheDir",
              Json::str(req.store.calibrationCacheDir));
    store.set("reuseStoredResults",
              Json::boolean(req.store.reuseStoredResults));
    j.set("store", std::move(store));
    Json exec = Json::object();
    exec.set("numThreads", Json::number(req.exec.numThreads));
    exec.set("engine", Json::str(engineName(req.exec.engine)));
    exec.set("pipeline",
             Json::str(req.exec.pipeline ==
                               ExecutionPolicy::Pipeline::kShared
                           ? "shared"
                           : "per-cell"));
    exec.set("shareTiming", Json::boolean(req.exec.shareTiming));
    exec.set("delivery",
             Json::str(req.exec.delivery ==
                               ExecutionPolicy::Delivery::kCollect
                           ? "collect"
                           : "stream"));
    j.set("exec", std::move(exec));
    return j.dump();
}

bool
requestFromJson(const std::string &text, AnalysisRequest *req,
                std::string *error)
{
    Json j;
    if (!Json::parse(text, &j, error))
        return false;
    int schema = 0;
    if (!getI32(j, "schema", &schema, error))
        return false;
    if (schema != static_cast<int>(kSchemaVersion))
        return jfail(error, "unsupported schema version " +
                                std::to_string(schema));
    req->schemaVersion = static_cast<uint32_t>(schema);
    if (!getString(j, "job", &req->jobName, error))
        return false;
    // Optional for hand-authored requests; the writer always emits it.
    if (j.find("client") &&
        !getString(j, "client", &req->clientId, error)) {
        return false;
    }
    const Json *kernels = getArray(j, "kernels", error);
    if (!kernels)
        return false;
    for (size_t i = 0; i < kernels->size(); ++i) {
        KernelJob job;
        if (!kernelJobFromJson(kernels->at(i), &job, error))
            return false;
        req->kernels.push_back(std::move(job));
    }
    const Json *specs = getArray(j, "specs", error);
    if (!specs)
        return false;
    for (size_t i = 0; i < specs->size(); ++i) {
        arch::GpuSpec spec;
        if (!specFromJson(specs->at(i), &spec, error))
            return false;
        req->specs.push_back(std::move(spec));
    }
    const Json *sweep = getObject(j, "sweep", error);
    if (!sweep || !sweepFromJson(*sweep, &req->sweep, error))
        return false;
    const Json *store = getObject(j, "store", error);
    if (!store ||
        !getString(*store, "dir", &req->store.storeDir, error) ||
        !getString(*store, "calibrationCacheDir",
                   &req->store.calibrationCacheDir, error) ||
        !getBool(*store, "reuseStoredResults",
                 &req->store.reuseStoredResults, error)) {
        return false;
    }
    const Json *exec = getObject(j, "exec", error);
    if (!exec ||
        !getI32(*exec, "numThreads", &req->exec.numThreads, error) ||
        !getBool(*exec, "shareTiming", &req->exec.shareTiming,
                 error)) {
        return false;
    }
    std::string engine, pipeline, delivery;
    if (!getString(*exec, "engine", &engine, error) ||
        !getString(*exec, "pipeline", &pipeline, error) ||
        !getString(*exec, "delivery", &delivery, error)) {
        return false;
    }
    if (!engineFromName(engine, &req->exec.engine))
        return jfail(error, "unknown engine '" + engine + "'");
    if (pipeline == "shared")
        req->exec.pipeline = ExecutionPolicy::Pipeline::kShared;
    else if (pipeline == "per-cell")
        req->exec.pipeline = ExecutionPolicy::Pipeline::kPerCell;
    else
        return jfail(error, "unknown pipeline '" + pipeline + "'");
    if (delivery == "collect")
        req->exec.delivery = ExecutionPolicy::Delivery::kCollect;
    else if (delivery == "stream")
        req->exec.delivery = ExecutionPolicy::Delivery::kStream;
    else
        return jfail(error, "unknown delivery '" + delivery + "'");
    return true;
}

std::string
responseToJson(const AnalysisResponse &resp)
{
    Json j = Json::object();
    j.set("schema", Json::number(resp.schemaVersion));
    j.set("job", Json::str(resp.jobName));
    j.set("numKernels", Json::number(resp.numKernels));
    j.set("numSpecs", Json::number(resp.numSpecs));
    Json cells = Json::array();
    for (const driver::BatchResult &cell : resp.cells)
        cells.push(cellToJson(cell));
    j.set("cells", std::move(cells));
    return j.dump();
}

bool
responseFromJson(const std::string &text, AnalysisResponse *resp,
                 std::string *error)
{
    Json j;
    if (!Json::parse(text, &j, error))
        return false;
    int schema = 0;
    int kernels = 0;
    int specs = 0;
    if (!getI32(j, "schema", &schema, error))
        return false;
    if (schema != static_cast<int>(kSchemaVersion))
        return jfail(error, "unsupported schema version " +
                                std::to_string(schema));
    resp->schemaVersion = static_cast<uint32_t>(schema);
    if (!getString(j, "job", &resp->jobName, error) ||
        !getI32(j, "numKernels", &kernels, error) ||
        !getI32(j, "numSpecs", &specs, error)) {
        return false;
    }
    if (kernels < 0 || specs < 0)
        return jfail(error, "negative grid dimensions");
    resp->numKernels = static_cast<uint32_t>(kernels);
    resp->numSpecs = static_cast<uint32_t>(specs);
    const Json *cells = getArray(j, "cells", error);
    if (!cells)
        return false;
    for (size_t i = 0; i < cells->size(); ++i) {
        driver::BatchResult cell;
        if (!cellFromJson(cells->at(i), &cell, error))
            return false;
        resp->cells.push_back(std::move(cell));
    }
    return true;
}

// =====================================================================
// Equality
// =====================================================================

namespace {

/** Value-identity double comparison: bit patterns, NaN == NaN. */
bool
sameF64(double a, double b)
{
    uint64_t ba = 0;
    uint64_t bb = 0;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    // -0.0 and +0.0 differ in bits but compare equal; accept either
    // (no pipeline stage distinguishes them).
    return ba == bb || (a == 0.0 && b == 0.0);
}

bool
samePrediction(const model::Prediction &a, const model::Prediction &b)
{
    if (a.stages.size() != b.stages.size() ||
        a.serialized != b.serialized ||
        !sameF64(a.tInstrTotal, b.tInstrTotal) ||
        !sameF64(a.tSharedTotal, b.tSharedTotal) ||
        !sameF64(a.tGlobalTotal, b.tGlobalTotal) ||
        !sameF64(a.totalSeconds, b.totalSeconds) ||
        a.bottleneck != b.bottleneck ||
        a.nextBottleneck != b.nextBottleneck) {
        return false;
    }
    for (size_t i = 0; i < a.stages.size(); ++i) {
        const model::StagePrediction &sa = a.stages[i];
        const model::StagePrediction &sb = b.stages[i];
        if (!sameF64(sa.tInstr, sb.tInstr) ||
            !sameF64(sa.tShared, sb.tShared) ||
            !sameF64(sa.tGlobal, sb.tGlobal) ||
            sa.bottleneck != sb.bottleneck ||
            !sameF64(sa.stageTime, sb.stageTime) ||
            !sameF64(sa.activeWarpsPerSm, sb.activeWarpsPerSm) ||
            !sameF64(sa.sharedBandwidth, sb.sharedBandwidth)) {
            return false;
        }
    }
    return true;
}

/** Serialize-and-compare covers every remaining nested field. */
bool
sameAnalysisBytes(const driver::BatchResult &a,
                  const driver::BatchResult &b)
{
    ByteWriter wa;
    ByteWriter wb;
    store::writeBatchResult(wa, a);
    store::writeBatchResult(wb, b);
    return wa.bytes() == wb.bytes();
}

} // namespace

bool
responsesEqual(const AnalysisResponse &a, const AnalysisResponse &b,
               std::string *whyNot)
{
    const auto differ = [whyNot](const std::string &what) {
        if (whyNot)
            *whyNot = what;
        return false;
    };
    if (a.schemaVersion != b.schemaVersion)
        return differ("schema versions differ");
    if (a.jobName != b.jobName)
        return differ("job names differ");
    if (a.numKernels != b.numKernels || a.numSpecs != b.numSpecs)
        return differ("grid shapes differ");
    if (a.cells.size() != b.cells.size())
        return differ("cell counts differ");
    for (size_t i = 0; i < a.cells.size(); ++i) {
        const driver::BatchResult &ca = a.cells[i];
        const driver::BatchResult &cb = b.cells[i];
        const std::string where = "cell " + std::to_string(i) + " (" +
                                  ca.kernelName + " x " + ca.specName +
                                  ")";
        if (ca.kernelName != cb.kernelName ||
            ca.specName != cb.specName)
            return differ(where + ": names differ");
        if (ca.ok != cb.ok || ca.error != cb.error)
            return differ(where + ": status differs");
        if (ca.whatifs.size() != cb.whatifs.size())
            return differ(where + ": what-if counts differ");
        for (size_t k = 0; k < ca.whatifs.size(); ++k) {
            if (ca.whatifs[k].point.kind != cb.whatifs[k].point.kind ||
                !sameF64(ca.whatifs[k].point.value,
                         cb.whatifs[k].point.value) ||
                !samePrediction(ca.whatifs[k].result.before,
                                cb.whatifs[k].result.before) ||
                !samePrediction(ca.whatifs[k].result.after,
                                cb.whatifs[k].result.after)) {
                return differ(where + ": what-if " +
                              std::to_string(k) + " differs");
            }
        }
        if (!samePrediction(ca.analysis.prediction,
                            cb.analysis.prediction))
            return differ(where + ": predictions differ");
        if (!sameAnalysisBytes(ca, cb))
            return differ(where + ": analysis payloads differ");
    }
    return true;
}

} // namespace api
} // namespace gpuperf
