#include "api/endpoint.h"

#include <cstdlib>
#include <stdexcept>

namespace gpuperf {
namespace api {

namespace {

/** Strictly-numeric parses: a typo'd option must throw, not zero. */
double
parseDouble(const std::string &key, const std::string &value,
            const std::string &uri)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size())
        throw std::runtime_error("bad value '" + value +
                                 "' for endpoint option '" + key +
                                 "' in '" + uri + "'");
    return v;
}

uint64_t
parseU64(const std::string &key, const std::string &value,
         const std::string &uri)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size())
        throw std::runtime_error("bad value '" + value +
                                 "' for endpoint option '" + key +
                                 "' in '" + uri + "'");
    return static_cast<uint64_t>(v);
}

bool
parseBool(const std::string &key, const std::string &value,
          const std::string &uri)
{
    if (value.empty() || value == "1" || value == "true")
        return true;
    if (value == "0" || value == "false")
        return false;
    throw std::runtime_error("bad value '" + value +
                             "' for endpoint option '" + key +
                             "' in '" + uri + "'");
}

void
applyOption(Endpoint *ep, const std::string &key,
            const std::string &value, const std::string &uri)
{
    if (key == "store")
        ep->storeDir = value;
    else if (key == "timeout") {
        // One deadline knob for "how long may the answer take":
        // the client's response wait and the spool collect.
        const double v = parseDouble(key, value, uri);
        ep->timeouts.responseSeconds = v;
        ep->timeouts.collectSeconds = v;
    } else if (key == "idle-timeout")
        ep->timeouts.idleSeconds = parseDouble(key, value, uri);
    else if (key == "job-timeout")
        ep->timeouts.jobSeconds = parseDouble(key, value, uri);
    else if (key == "max-clients")
        ep->limits.maxClients =
            static_cast<size_t>(parseU64(key, value, uri));
    else if (key == "max-inflight")
        ep->limits.maxInFlightCells =
            static_cast<size_t>(parseU64(key, value, uri));
    else if (key == "max-cells")
        ep->limits.maxCellsPerRequest =
            static_cast<size_t>(parseU64(key, value, uri));
    else if (key == "max-frame-bytes")
        ep->limits.maxFrameBytes = parseU64(key, value, uri);
    else if (key == "worker-inflight")
        ep->limits.maxWorkerInFlight =
            static_cast<size_t>(parseU64(key, value, uri));
    else if (key == "max-jobs")
        ep->limits.maxJobs =
            static_cast<size_t>(parseU64(key, value, uri));
    else if (key == "claim-stale-ms")
        ep->timeouts.claimStaleMs =
            static_cast<int64_t>(parseU64(key, value, uri));
    else if (key == "gc-bytes")
        ep->limits.gcBytes = parseU64(key, value, uri);
    else if (key == "gc-age")
        ep->timeouts.gcAgeSeconds = parseDouble(key, value, uri);
    else if (key == "gc-interval")
        ep->timeouts.gcIntervalSeconds = parseDouble(key, value, uri);
    else if (key == "json")
        ep->jsonRequests = parseBool(key, value, uri);
    else if (key == "sched") {
        if (!sched::parseSchedPolicy(value, &ep->schedPolicy))
            throw std::runtime_error(
                "option 'sched' must be fifo, biggest-first, sjf or "
                "fair-share in '" + uri + "'");
    } else if (key == "client")
        ep->clientId = value;
    else
        throw std::runtime_error("unknown endpoint option '" + key +
                                 "' in '" + uri + "'");
}

} // namespace

Endpoint
Endpoint::parse(const std::string &uri, Role role)
{
    Endpoint ep;
    ep.role = role;

    // Split base?query. A literal '?' in a path is not supported —
    // the query is the price of one flat string carrying options.
    const size_t qpos = uri.find('?');
    const std::string base = uri.substr(0, qpos);
    const std::string query =
        qpos == std::string::npos ? "" : uri.substr(qpos + 1);

    if (base == "inproc:" || base == "inproc" || base.empty()) {
        ep.scheme = Scheme::kInproc;
    } else if (base.rfind("spool:", 0) == 0) {
        ep.scheme = Scheme::kSpool;
        ep.path = base.substr(6);
        if (ep.path.empty())
            throw std::runtime_error(
                "spool transport needs a directory: 'spool:DIR'");
    } else if (base.rfind("unix:", 0) == 0) {
        ep.scheme = Scheme::kUnix;
        ep.path = base.substr(5);
        if (ep.path.empty())
            throw std::runtime_error(
                "unix transport needs a socket path: 'unix:PATH'");
    } else if (base.rfind("tcp:", 0) == 0) {
        ep.scheme = Scheme::kTcp;
        const std::string rest = base.substr(4);
        const size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size())
            throw std::runtime_error(
                "tcp transport needs 'tcp:HOST:PORT', got '" + uri +
                "'");
        ep.host = rest.substr(0, colon);
        char *end = nullptr;
        const char *port_str = rest.c_str() + colon + 1;
        const long port = std::strtol(port_str, &end, 10);
        const bool numeric = end != port_str && *end == '\0';
        // A server may bind port 0 (ephemeral); everyone else must
        // name the port they are connecting to.
        const long min_port = role == Role::kServer ? 0 : 1;
        if (!numeric || port < min_port || port > 65535)
            throw std::runtime_error("bad tcp port in '" + uri + "'");
        ep.port = static_cast<int>(port);
    } else {
        throw std::runtime_error(
            "unknown transport '" + uri +
            "' (expected inproc:, spool:DIR, unix:PATH or "
            "tcp:HOST:PORT)");
    }

    // k=v&k=v (bare "k" = "k=", meaningful only for boolean keys).
    size_t pos = 0;
    while (pos < query.size()) {
        size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        const std::string pair = query.substr(pos, amp - pos);
        pos = amp + 1;
        if (pair.empty())
            continue;
        const size_t eq = pair.find('=');
        const std::string key =
            eq == std::string::npos ? pair : pair.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : pair.substr(eq + 1);
        applyOption(&ep, key, value, uri);
    }
    return ep;
}

std::string
Endpoint::uri() const
{
    switch (scheme) {
    case Scheme::kInproc:
        return "inproc:";
    case Scheme::kSpool:
        return "spool:" + path;
    case Scheme::kUnix:
        return "unix:" + path;
    case Scheme::kTcp:
        return "tcp:" + host + ":" + std::to_string(port);
    }
    return "inproc:";
}

} // namespace api
} // namespace gpuperf
