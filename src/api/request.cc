#include "api/request.h"

#include <cstring>

#include "common/logging.h"

namespace gpuperf {
namespace api {

InlineLaunch
InlineLaunch::capture(isa::Kernel kernel,
                      const funcsim::LaunchConfig &cfg,
                      const funcsim::GlobalMemory &gmem,
                      funcsim::RunOptions options)
{
    InlineLaunch launch{std::move(kernel), cfg, options, 0, {}};
    launch.memoryCapacity = gmem.capacity();
    const size_t used = gmem.used();
    // Bytes [0, 256) are never allocated (address 0 is poisoned) and
    // always zero; only the allocated tail carries content.
    launch.memoryImage.assign(used, '\0');
    if (used > 256) {
        std::memcpy(&launch.memoryImage[256], gmem.u32(256),
                    used - 256);
    }
    return launch;
}

std::unique_ptr<funcsim::GlobalMemory>
InlineLaunch::rebuildMemory() const
{
    GPUPERF_ASSERT(memoryImage.size() >= 256 &&
                       memoryImage.size() <= memoryCapacity,
                   "inline launch carries a malformed memory image");
    auto gmem =
        std::make_unique<funcsim::GlobalMemory>(memoryCapacity);
    const size_t used = memoryImage.size();
    if (used > 256) {
        // One allocation re-establishes the allocator watermark, so
        // the rebuilt image hashes identically to the captured one
        // (contentHash covers used(), capacity() and the content).
        gmem->alloc(used - 256, /*align=*/1);
        std::memcpy(gmem->u32(256), memoryImage.data() + 256,
                    used - 256);
    }
    return gmem;
}

KernelJob
KernelJob::fromRef(std::string name, CaseRef ref)
{
    KernelJob job;
    job.name = std::move(name);
    job.ref = std::move(ref);
    return job;
}

KernelJob
KernelJob::fromInline(std::string name, InlineLaunch launch)
{
    KernelJob job;
    job.name = std::move(name);
    job.inlined =
        std::make_shared<const InlineLaunch>(std::move(launch));
    return job;
}

} // namespace api
} // namespace gpuperf
