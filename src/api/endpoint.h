/**
 * @file
 * api::Endpoint — THE configuration surface for every seam a request
 * can travel through. PRs 5–7 grew options organically (SpoolOptions,
 * ServerOptions, ServeClient setters, the tools' divergent flags);
 * this type collapses them: one parsed URI plus typed limit/timeout
 * bags, from which each consumer derives its legacy options struct
 * (serverOptionsFor, spoolOptionsFor, ...). The legacy structs remain
 * as thin forwarders for one release — see the migration table in
 * src/api/README.md.
 *
 * A URI names the seam and carries options as a query string, with
 * the SAME spellings the tools use as flags:
 *
 *     inproc:
 *     spool:DIR?timeout=300&claim-stale-ms=60000
 *     unix:PATH?max-inflight=256&idle-timeout=30
 *     tcp:HOST:PORT?timeout=30&max-cells=64&json=1
 *
 * Option keys by consumer (unknown keys throw — typos fail fast):
 *
 *     store            store root (server: forced on every request)
 *     timeout          response/collect deadline, seconds
 *     idle-timeout     close idle connections after, seconds
 *     job-timeout      re-dispatch a worker-held cell after, seconds
 *     max-clients      concurrent connections accepted
 *     max-inflight     global in-flight cell admission bound
 *     max-cells        per-request cell quota
 *     max-frame-bytes  frame payload bound
 *     worker-inflight  cells in flight per registered worker
 *     max-jobs         spool serve: stop after N jobs (0 = unlimited)
 *     claim-stale-ms   spool claim staleness (crash-steal latency)
 *     gc-bytes         server: GC the forced store to this live-byte
 *                      budget (0 = no size bound; see store/lifecycle)
 *     gc-age           server: GC entries idle longer than, seconds
 *                      (0 = no age bound)
 *     gc-interval      server: seconds between GC sweeps
 *     json             client sends JSON requests (1/0)
 *     sched            scheduling policy: fifo | biggest-first |
 *                      sjf | fair-share (see src/sched/policy.h)
 *     client           client identity for fair-share accounting
 */

#ifndef GPUPERF_API_ENDPOINT_H
#define GPUPERF_API_ENDPOINT_H

#include <cstdint>
#include <memory>
#include <string>

#include "sched/policy.h"
#include "store/lease.h"

namespace gpuperf {
namespace api {

class Transport;
class AnalysisService;

struct Endpoint
{
    enum class Scheme
    {
        kInproc,
        kSpool,
        kUnix,
        kTcp,
    };

    /**
     * Who this endpoint configures: a client connecting out, a server
     * binding listeners, or a worker registering with a server. The
     * role changes validation (a server may bind tcp port 0 for an
     * ephemeral port; a client must name a real one) and which
     * options are meaningful.
     */
    enum class Role
    {
        kClient,
        kServer,
        kWorker,
    };

    Scheme scheme = Scheme::kInproc;
    Role role = Role::kClient;

    /** Spool directory (kSpool) or Unix socket path (kUnix). */
    std::string path;
    /** TCP host (kTcp only); loopback by default. */
    std::string host = "127.0.0.1";
    /** TCP port (kTcp only; 0 = ephemeral, servers only). */
    int port = -1;

    /** Store root; servers force it onto every request ("" = unset). */
    std::string storeDir;

    /** Client wire preference: send requests as JSON, not binary. */
    bool jsonRequests = false;

    /**
     * Scheduling policy for this seam: how a server's dispatcher
     * orders pending jobs, how spoolServe orders claims, and which
     * ready order the local executor's task graph uses. Changes
     * execution ORDER only — responses stay bit-identical to kFifo.
     */
    sched::SchedPolicy schedPolicy = sched::SchedPolicy::kFifo;

    /**
     * Client identity stamped onto submitted requests ("" = the
     * anonymous tenant); the fair-share policy accounts work per
     * identity.
     */
    std::string clientId;

    struct Limits
    {
        size_t maxClients = 64;
        size_t maxInFlightCells = 1024;
        size_t maxCellsPerRequest = 4096;
        /** Mirrors api::kMaxFrameBytesDefault. */
        uint64_t maxFrameBytes = 256ull << 20;
        /** Dispatch: cells in flight per registered worker. */
        size_t maxWorkerInFlight = 4;
        /** Spool serve: stop after N executed jobs (0 = unlimited). */
        size_t maxJobs = 0;
        /** Server GC: live-byte budget for the forced store (0 = off). */
        uint64_t gcBytes = 0;
    };

    struct Timeouts
    {
        /** Server: close idle connections after (negative = never). */
        double idleSeconds = -1.0;
        /** Client: response-frame deadline (negative = indefinite). */
        double responseSeconds = -1.0;
        /** Spool collect deadline, seconds. */
        double collectSeconds = 600.0;
        /** Dispatch: re-dispatch a worker-held cell after, seconds. */
        double jobSeconds = 600.0;
        /** Spool collect poll backoff (initial -> cap). */
        double pollInitialSeconds = 0.002;
        double pollMaxSeconds = 0.25;
        /** Spool claim staleness threshold, milliseconds. */
        int64_t claimStaleMs = store::kLeaseStaleAfterMsDefault;
        /** Server GC: evict entries idle longer than, seconds (0 = off). */
        double gcAgeSeconds = 0.0;
        /** Server GC: seconds between sweeps (with a bound set). */
        double gcIntervalSeconds = 300.0;
    };

    Limits limits;
    Timeouts timeouts;

    /**
     * Parse "scheme:authority?k=v&k=v" into an Endpoint for @p role.
     * Throws std::runtime_error on an unknown scheme, a malformed
     * authority (tcp without host:port, spool/unix without a path, a
     * bad port) or an unrecognized/ill-typed option key.
     */
    static Endpoint parse(const std::string &uri,
                          Role role = Role::kClient);

    /** Canonical base URI, without the query ("tcp:host:port"). */
    std::string uri() const;
};

/**
 * Transport for @p ep (same backends as the string overload of
 * makeTransport in api/transport.h, which now parses through
 * Endpoint::parse — so query options work on every URI). Client
 * options (timeout, max-frame-bytes, json) are applied to socket
 * transports; spool transports collect under ep.timeouts.
 */
std::unique_ptr<Transport> makeTransport(const Endpoint &ep,
                                         AnalysisService *local = nullptr);

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_ENDPOINT_H
