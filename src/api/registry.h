/**
 * @file
 * The kernel-case registry: resolves wire-portable CaseRefs (factory
 * name + arguments) to executable driver::KernelCases. This is what
 * lets a spooled job stay tiny — the worker rebuilds the kernel and
 * its deterministic input image from the same factory the submitter
 * named, instead of shipping megabytes of instructions and memory.
 *
 * Built-in factories (see registerBuiltinCases() for the argument
 * lists) cover every demo workload; registerCase() adds more at run
 * time for embedding applications.
 */

#ifndef GPUPERF_API_REGISTRY_H
#define GPUPERF_API_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "api/request.h"
#include "driver/batch_runner.h"

namespace gpuperf {
namespace api {

/**
 * A registered factory: given the reference and the job's display
 * name, produce the kernel case. Must throw std::runtime_error (with
 * a message naming the problem) on invalid arguments — the error
 * becomes the cell's failure, never a crash.
 */
using CaseFactory = std::function<driver::KernelCase(
    const CaseRef &ref, const std::string &name)>;

/**
 * Register @p factory under @p key (replacing any previous entry).
 * Thread-safe. Registration is process-global: a worker process must
 * register the same factories as its submitter to execute its refs.
 */
void registerCase(const std::string &key, CaseFactory factory);

/** True when @p key resolves (built-ins are always present). */
bool caseRegistered(const std::string &key);

/** The registered factory names, sorted (diagnostics, tooling). */
std::vector<std::string> registeredCases();

/**
 * Materialize @p job into an executable case: registry lookup for
 * refs, image rebuild for inline launches. Throws std::runtime_error
 * on an unknown factory or malformed arguments.
 */
driver::KernelCase materializeJob(const KernelJob &job);

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_REGISTRY_H
