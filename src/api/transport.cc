#include "api/transport.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "api/client.h"
#include "api/endpoint.h"
#include "api/spool.h"
#include "common/socket.h"

namespace gpuperf {
namespace api {

namespace {

/** Little-endian u32, independent of host order. */
void
putU32(char *out, uint32_t v)
{
    out[0] = static_cast<char>(v & 0xff);
    out[1] = static_cast<char>((v >> 8) & 0xff);
    out[2] = static_cast<char>((v >> 16) & 0xff);
    out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t
getU32(const unsigned char *in)
{
    return static_cast<uint32_t>(in[0]) |
           (static_cast<uint32_t>(in[1]) << 8) |
           (static_cast<uint32_t>(in[2]) << 16) |
           (static_cast<uint32_t>(in[3]) << 24);
}

constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;

} // namespace

bool
writeFrame(int fd, FrameType type, const std::string &payload)
{
    if (payload.size() > UINT32_MAX)
        return false;
    char header[kFrameHeaderBytes];
    putU32(header, kFrameMagic);
    header[4] = static_cast<char>(type);
    putU32(header + 5, static_cast<uint32_t>(payload.size()));
    // One header write + one payload write: the payload can be large
    // (inline memory images) and is already contiguous — no copy into
    // a combined buffer.
    return sendAll(fd, header, sizeof(header)) &&
           sendAll(fd, payload.data(), payload.size());
}

int
readFrame(int fd, FrameType *type, std::string *payload,
          uint64_t max_payload_bytes, const std::atomic<bool> *cancel,
          std::string *err, double idle_timeout_seconds)
{
    // Phase 1: wait for the frame to START under the caller's idle
    // policy. No bytes have arrived yet, so the stream stays
    // synchronized across this wait and expiry is reported distinctly
    // (-2), never as a torn frame.
    using Clock = std::chrono::steady_clock;
    const Clock::time_point wait_start = Clock::now();
    for (;;) {
        if (cancel && cancel->load(std::memory_order_relaxed)) {
            if (err)
                *err = "cancelled while awaiting a frame";
            return -1;
        }
        if (waitReadable(fd, 0.2))
            break;
        const std::chrono::duration<double> waited =
            Clock::now() - wait_start;
        if (idle_timeout_seconds >= 0 &&
            waited.count() > idle_timeout_seconds)
            return -2;
    }

    // Phase 2: the peer has started talking (or hung up); from here a
    // stall means a broken peer and the short protocol bound applies.
    unsigned char header[kFrameHeaderBytes];
    const int rc = recvFully(fd, header, sizeof(header),
                             kFrameStallTimeoutSeconds, cancel);
    if (rc <= 0) {
        if (rc < 0 && err)
            *err = "torn or cancelled frame header";
        return rc;
    }
    if (getU32(header) != kFrameMagic) {
        if (err)
            *err = "bad frame magic (not a gpuperf peer?)";
        return -1;
    }
    const uint8_t raw_type = header[4];
    if (raw_type < static_cast<uint8_t>(FrameType::kRequest) ||
        raw_type > static_cast<uint8_t>(FrameType::kJob)) {
        if (err)
            *err = "unknown frame type " + std::to_string(raw_type);
        return -1;
    }
    const uint32_t length = getU32(header + 5);
    if (length > max_payload_bytes) {
        // Refuse BEFORE allocating: the length word is
        // attacker-controlled input.
        if (err)
            *err = "frame of " + std::to_string(length) +
                   " bytes exceeds the " +
                   std::to_string(max_payload_bytes) + "-byte bound";
        return -1;
    }
    payload->resize(length);
    if (length > 0 &&
        recvFully(fd, &(*payload)[0], length,
                  kFrameStallTimeoutSeconds, cancel) != 1) {
        if (err)
            *err = "torn or cancelled frame payload";
        return -1;
    }
    *type = static_cast<FrameType>(raw_type);
    return 1;
}

namespace {

/** The zero-distance backend: a local AnalysisService. */
class InProcessTransport : public Transport
{
  public:
    explicit InProcessTransport(AnalysisService *borrowed)
        : borrowed_(borrowed)
    {
        if (!borrowed_)
            owned_ = std::make_unique<AnalysisService>();
    }

    AnalysisResponse run(const AnalysisRequest &req,
                         const CellCallback &onCell) override
    {
        return service().execute(req, onCell);
    }

    std::string describe() const override { return "inproc:"; }

  private:
    AnalysisService &service()
    {
        return borrowed_ ? *borrowed_ : *owned_;
    }

    AnalysisService *borrowed_;
    std::unique_ptr<AnalysisService> owned_;
};

/**
 * The shared-filesystem backend. With a local service the jobs are
 * served in-process (self-contained, like runSpooled); without one
 * the caller is trusting external gpuperf-worker processes to drain
 * the directory before the collect deadline.
 */
class SpoolTransport : public Transport
{
  public:
    SpoolTransport(std::string dir, AnalysisService *local,
                   SpoolOptions opts)
        : dir_(std::move(dir)), local_(local), opts_(opts)
    {
    }

    AnalysisResponse run(const AnalysisRequest &req,
                         const CellCallback &) override
    {
        // No streaming wire through a directory: degrade to collect.
        if (local_)
            return runSpooled(dir_, req, *local_, opts_);
        spoolSubmit(dir_, req);
        return spoolCollect(dir_, req, opts_);
    }

    std::string describe() const override { return "spool:" + dir_; }

  private:
    std::string dir_;
    AnalysisService *local_;
    SpoolOptions opts_;
};

/**
 * Decorator stamping the endpoint's `?client=` identity onto every
 * request whose own clientId is empty — how one process impersonates
 * one tenant of a shared daemon without touching request-building
 * code. An explicit request-level clientId wins.
 */
class ClientTagTransport : public Transport
{
  public:
    ClientTagTransport(std::unique_ptr<Transport> inner,
                       std::string client)
        : inner_(std::move(inner)), client_(std::move(client))
    {
    }

    AnalysisResponse run(const AnalysisRequest &req,
                         const CellCallback &onCell) override
    {
        if (req.clientId.empty()) {
            AnalysisRequest tagged = req;
            tagged.clientId = client_;
            return inner_->run(tagged, onCell);
        }
        return inner_->run(req, onCell);
    }

    std::string describe() const override
    {
        return inner_->describe();
    }

  private:
    std::unique_ptr<Transport> inner_;
    std::string client_;
};

} // namespace

std::unique_ptr<Transport>
makeTransport(const Endpoint &ep, AnalysisService *local)
{
    std::unique_ptr<Transport> transport;
    switch (ep.scheme) {
    case Endpoint::Scheme::kInproc:
        transport = std::make_unique<InProcessTransport>(local);
        break;
    case Endpoint::Scheme::kSpool:
        transport = std::make_unique<SpoolTransport>(
            ep.path, local, spoolOptionsFor(ep));
        break;
    case Endpoint::Scheme::kUnix:
    case Endpoint::Scheme::kTcp: {
        auto client = std::make_unique<ServeClient>(
            ep.scheme == Endpoint::Scheme::kUnix
                ? ServeClient::overUnix(ep.path)
                : ServeClient::overTcp(ep.host, ep.port));
        client->setJsonRequests(ep.jsonRequests);
        client->setMaxFrameBytes(ep.limits.maxFrameBytes);
        client->setResponseTimeout(ep.timeouts.responseSeconds);
        transport = std::move(client);
        break;
    }
    }
    if (!transport)
        throw std::runtime_error("unhandled endpoint scheme");
    if (!ep.clientId.empty())
        return std::make_unique<ClientTagTransport>(
            std::move(transport), ep.clientId);
    return transport;
}

std::unique_ptr<Transport>
makeTransport(const std::string &uri, AnalysisService *local)
{
    // Parsing through Endpoint is what makes ?key=value options work
    // uniformly on every URI the tools and tests pass around.
    return makeTransport(Endpoint::parse(uri), local);
}

} // namespace api
} // namespace gpuperf
