#include "api/client.h"

#include <stdexcept>
#include <utility>

#include "api/codecs.h"
#include "common/socket.h"
#include "store/result_store.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {

ServeClient::ServeClient(std::string unix_path, std::string host,
                         int port)
    : unix_path_(std::move(unix_path)), host_(std::move(host)),
      port_(port)
{
}

ServeClient
ServeClient::overUnix(std::string path)
{
    return ServeClient(std::move(path), std::string(), -1);
}

ServeClient
ServeClient::overTcp(std::string host, int port)
{
    return ServeClient(std::string(), std::move(host), port);
}

ServeClient::~ServeClient()
{
    disconnect();
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : unix_path_(std::move(other.unix_path_)),
      host_(std::move(other.host_)), port_(other.port_),
      fd_(other.fd_), json_requests_(other.json_requests_),
      max_frame_bytes_(other.max_frame_bytes_),
      response_timeout_seconds_(other.response_timeout_seconds_)
{
    other.fd_ = -1;
}

void
ServeClient::disconnect()
{
    closeSocket(fd_);
    fd_ = -1;
}

std::string
ServeClient::describe() const
{
    if (!unix_path_.empty())
        return "unix:" + unix_path_;
    return "tcp:" + host_ + ":" + std::to_string(port_);
}

void
ServeClient::connectIfNeeded()
{
    if (fd_ >= 0)
        return;
    std::string err;
    fd_ = unix_path_.empty() ? connectTcp(host_, port_, &err)
                             : connectUnix(unix_path_, &err);
    if (fd_ < 0) {
        throw std::runtime_error("gpuperf-serve unreachable at " +
                                 describe() + ": " + err);
    }
}

AnalysisResponse
ServeClient::run(const AnalysisRequest &req, const CellCallback &onCell)
{
    const bool reused_connection = fd_ >= 0;
    connectIfNeeded();
    bool response_started = false;
    try {
        return exchange(req, onCell, &response_started);
    } catch (const std::exception &) {
        // A cached connection can be stale — the server restarted, or
        // closed it as idle, since the previous exchange. As long as
        // no response frame arrived, the caller has seen nothing of
        // this request, so one retry on a fresh connection is
        // transparent (a server that did execute it re-runs warm from
        // the shared stores).
        if (!reused_connection || response_started)
            throw;
        disconnect();
        connectIfNeeded();
        bool retry_started = false;
        return exchange(req, onCell, &retry_started);
    }
}

AnalysisResponse
ServeClient::exchange(const AnalysisRequest &req,
                      const CellCallback &onCell,
                      bool *response_started)
{
    std::string payload;
    FrameType request_type;
    if (json_requests_) {
        request_type = FrameType::kRequestJson;
        payload = requestToJson(req);
    } else {
        request_type = FrameType::kRequest;
        store::ByteWriter w;
        writeRequest(w, req);
        payload = w.bytes();
    }
    if (!writeFrame(fd_, request_type, payload)) {
        disconnect();
        throw std::runtime_error("cannot send request to " +
                                 describe());
    }

    // Anything thrown out of the drain loop below — a transport
    // failure, a malformed frame, the caller's onCell throwing —
    // leaves unread kCell/kDone frames on the stream; reusing it
    // would answer the NEXT request with THIS exchange's leftovers.
    // Drop the connection on every exit except a completed exchange
    // (kDone returned, or the server's clean kError answer).
    struct DropUnlessCompleted
    {
        ServeClient *client;
        bool completed = false;
        ~DropUnlessCompleted()
        {
            if (!completed)
                client->disconnect();
        }
    } guard{this};

    for (;;) {
        FrameType type;
        std::string body;
        std::string err;
        const int rc = readFrame(fd_, &type, &body, max_frame_bytes_,
                                 /*cancel=*/nullptr, &err,
                                 response_timeout_seconds_);
        if (rc == -2) {
            throw std::runtime_error(
                "no response from " + describe() + " within " +
                std::to_string(response_timeout_seconds_) +
                "s (setResponseTimeout deadline)");
        }
        if (rc <= 0) {
            throw std::runtime_error(
                "connection to " + describe() +
                " broke before the response completed" +
                (err.empty() ? std::string() : " (" + err + ")"));
        }
        *response_started = true;
        switch (type) {
          case FrameType::kCell: {
            store::ByteReader r(body);
            const uint32_t index = r.u32();
            AnalysisResponse one;
            if (!readResponse(r, &one) || !r.atEnd() ||
                one.cells.size() != 1) {
                throw std::runtime_error("malformed cell frame from " +
                                         describe());
            }
            if (onCell)
                onCell(index, one.cells[0]);
            break;
          }
          case FrameType::kDone: {
            store::ByteReader r(body);
            AnalysisResponse resp;
            if (!readResponse(r, &resp) || !r.atEnd()) {
                throw std::runtime_error(
                    "malformed response frame from " + describe());
            }
            guard.completed = true;
            return resp;
          }
          case FrameType::kError:
            // The server answered: the exchange is complete and the
            // stream stays synchronized for the next request.
            guard.completed = true;
            throw std::runtime_error("server " + describe() +
                                     " rejected the request: " + body);
          default:
            throw std::runtime_error(
                "unexpected frame type " +
                std::to_string(static_cast<int>(type)) + " from " +
                describe());
        }
    }
}

} // namespace api
} // namespace gpuperf
