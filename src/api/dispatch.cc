#include "api/dispatch.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>

#include "api/cell_cost.h"
#include "api/codecs.h"
#include "api/spool.h"
#include "common/socket.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t, Clock::time_point now)
{
    return std::chrono::duration<double>(now - t).count();
}

/** The failed-cell result for a job nothing could execute. */
driver::BatchResult
failedCell(const AnalysisRequest &cell, const std::string &error)
{
    AnalysisResponse one = cellFailureResponse(cell, error);
    return std::move(one.cells[0]);
}

} // namespace

Dispatcher::Dispatcher(AnalysisService &local, DispatchOptions opts)
    : local_(local), opts_(opts),
      queue_(sched::PendingQueue<Job *>(opts.policy))
{
}

size_t
Dispatcher::liveWorkersLocked() const
{
    return workers_.size();
}

size_t
Dispatcher::liveWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return liveWorkersLocked();
}

DispatchStats
Dispatcher::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    DispatchStats s = stats_;
    s.workersLive = workers_.size();
    s.schedPolicy = sched::schedPolicyName(opts_.policy);
    s.queueDepth = queue_.size();
    s.clientShares = queue_.shares();
    s.costErrorAbsMsSum = costModel_.predictionErrorAbsSum();
    s.costErrorSamples = costModel_.predictionSamples();
    for (const auto &kv : workers_) {
        WorkerStat w;
        w.id = kv.second->id;
        w.name = kv.second->name;
        w.live = true;
        w.cellsDone = kv.second->cellsDone;
        w.inFlight = kv.second->inFlight.size();
        s.workers.push_back(std::move(w));
    }
    s.workers.insert(s.workers.end(), dead_workers_.begin(),
                     dead_workers_.end());
    return s;
}

void
Dispatcher::requeueLocked(Job *job)
{
    auto wit = workers_.find(job->assignedWorker);
    if (wit != workers_.end())
        wit->second->inFlight.erase(job->id);
    job->assignedWorker = 0;
    ++job->redispatches;
    ++stats_.cellsRedispatched;
    job->queuedAt = Clock::now();
    queue_.push(job, job->cost, job->cell.clientId);
    if (queue_.size() > stats_.queueDepthPeak)
        stats_.queueDepthPeak = queue_.size();
}

void
Dispatcher::observeJob(const Job &job, double ms)
{
    costModel_.observe(job.costKey, job.features, ms);
}

void
Dispatcher::accountWaitLocked(const Job &job)
{
    const double wait_ms =
        secondsSince(job.queuedAt, Clock::now()) * 1000.0;
    if (job.large) {
        stats_.waitLargeMsTotal += wait_ms;
        if (wait_ms > stats_.waitLargeMsMax)
            stats_.waitLargeMsMax = wait_ms;
        ++stats_.waitLargeCount;
    } else {
        stats_.waitSmallMsTotal += wait_ms;
        if (wait_ms > stats_.waitSmallMsMax)
            stats_.waitSmallMsMax = wait_ms;
        ++stats_.waitSmallCount;
    }
}

void
Dispatcher::completeLocked(std::unique_lock<std::mutex> &lock, Job *job,
                           driver::BatchResult cell)
{
    job->done = true;
    Batch *b = job->batch;
    const size_t index = job->index;
    const uint64_t id = job->id;
    b->resp.cells[index] = std::move(cell);
    jobs_.erase(id);
    queue_.erase(job);
    // A stolen job may linger in its old worker's in-flight set until
    // that worker's death is noticed; retire it everywhere.
    for (auto &kv : workers_)
        kv.second->inFlight.erase(id);
    const bool deliver = b->streaming && !b->callbackFailed;
    if (deliver)
        ++b->deliveriesInFlight;
    --b->remaining;
    if (deliver) {
        // The slot is stable (preallocated vector, this job retired),
        // so the callback reads it outside mutex_; deliverMutex
        // serializes invocations across worker threads, matching the
        // AnalysisService streaming contract.
        lock.unlock();
        {
            std::lock_guard<std::mutex> dl(b->deliverMutex);
            if (!b->callbackFailed) {
                try {
                    (*b->onCell)(index, b->resp.cells[index]);
                } catch (const std::exception &e) {
                    b->callbackFailed = true;
                    b->callbackError = e.what();
                } catch (...) {
                    b->callbackFailed = true;
                    b->callbackError = "streaming callback threw";
                }
            }
        }
        lock.lock();
        --b->deliveriesInFlight;
    }
    cv_.notify_all();
}

void
Dispatcher::pump()
{
    for (;;) {
        std::shared_ptr<Worker> w;
        std::string payload;
        uint64_t job_id = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty())
                return;
            for (auto &kv : workers_) {
                Worker &cand = *kv.second;
                if (cand.inFlight.size() >= opts_.maxInFlightPerWorker)
                    continue;
                if (!w || cand.inFlight.size() < w->inFlight.size())
                    w = kv.second;
            }
            if (!w)
                return; // every worker full (or none) — results pump
            Job *job = queue_.pop();
            accountWaitLocked(*job);
            job->assignedWorker = w->id;
            job->dispatchedAt = Clock::now();
            w->inFlight.insert(job->id);
            ++stats_.cellsDispatched;
            // Copy out what the send needs: once mutex_ drops, the
            // job may complete (a stolen job's late result) and its
            // owning batch return.
            payload = job->payload;
            job_id = job->id;
        }
        bool sent = false;
        {
            std::lock_guard<std::mutex> sl(w->sendMutex);
            if (!w->dead)
                sent = writeFrame(w->fd, FrameType::kJob, payload);
        }
        if (!sent) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = jobs_.find(job_id);
                if (it != jobs_.end() && !it->second->done &&
                    it->second->assignedWorker == w->id) {
                    Job *job = it->second;
                    job->assignedWorker = 0;
                    w->inFlight.erase(job_id);
                    queue_.pushUrgent(job);
                }
            }
            // Wake the worker's reader thread so it notices the
            // broken stream and unregisters (requeueing anything
            // else it held).
            std::lock_guard<std::mutex> sl(w->sendMutex);
            if (!w->dead)
                ::shutdown(w->fd, SHUT_RDWR);
            cv_.notify_all();
        }
    }
}

bool
Dispatcher::handleResult(uint64_t worker_id, const std::string &payload)
{
    store::ByteReader r(payload);
    const uint64_t job_id = r.u64();
    AnalysisResponse one;
    const bool parsed = r.ok() && readResponse(r, &one) && r.atEnd() &&
                        one.cells.size() == 1;
    std::unique_lock<std::mutex> lock(mutex_);
    if (!parsed) {
        ++stats_.malformedResults;
        return false; // unsynchronizable peer: kill the connection
    }
    auto wit = workers_.find(worker_id);
    if (wit != workers_.end())
        wit->second->inFlight.erase(job_id);
    auto jit = jobs_.find(job_id);
    if (jit == jobs_.end() || jit->second->done) {
        // A stolen job's original worker answered after the steal
        // completed elsewhere: exactly-once means dropping it.
        ++stats_.duplicateResults;
        return true;
    }
    ++stats_.cellsCompletedRemote;
    if (wit != workers_.end())
        ++wit->second->cellsDone;
    // Refine the cost model with the measured wall time (send to
    // result; includes the worker's own queue, which is what the next
    // prediction should price in).
    observeJob(*jit->second,
               secondsSince(jit->second->dispatchedAt, Clock::now()) *
                   1000.0);
    completeLocked(lock, jit->second, std::move(one.cells[0]));
    return true;
}

void
Dispatcher::removeWorker(uint64_t id)
{
    std::shared_ptr<Worker> w;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = workers_.find(id);
        if (it == workers_.end())
            return;
        w = it->second;
        workers_.erase(it);
        ++stats_.workerDeaths;
        WorkerStat dead;
        dead.id = w->id;
        dead.name = w->name;
        dead.live = false;
        dead.cellsDone = w->cellsDone;
        dead_workers_.push_back(std::move(dead));
        // Steal its in-flight jobs back: urgent, so
        // already-dispatched-once work finishes first under every
        // policy.
        for (const uint64_t job_id : w->inFlight) {
            auto jit = jobs_.find(job_id);
            if (jit == jobs_.end() || jit->second->done)
                continue;
            Job *job = jit->second;
            job->assignedWorker = 0;
            ++job->redispatches;
            ++stats_.cellsRedispatched;
            job->queuedAt = Clock::now();
            queue_.pushUrgent(job);
        }
        w->inFlight.clear();
    }
    {
        // After this, no sender can touch the fd: in-progress sends
        // have finished (they held sendMutex) and new ones see dead.
        std::lock_guard<std::mutex> sl(w->sendMutex);
        w->dead = true;
    }
    cv_.notify_all();
    pump(); // stolen jobs onto the survivors
}

void
Dispatcher::serveWorker(int fd, const std::string &hello,
                        const std::atomic<bool> *stop)
{
    auto w = std::make_shared<Worker>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        w->id = ++worker_counter_;
        w->fd = fd;
        w->name = hello.empty() ? "worker-" + std::to_string(w->id)
                                : hello;
        workers_[w->id] = w;
        ++stats_.workersRegistered;
    }
    if (!writeFrame(fd, FrameType::kRegister, std::to_string(w->id))) {
        removeWorker(w->id);
        return;
    }
    cv_.notify_all();
    pump(); // a late joiner picks up queued work immediately

    for (;;) {
        FrameType type;
        std::string payload;
        std::string err;
        const int rc = readFrame(fd, &type, &payload,
                                 opts_.maxFrameBytes, stop, &err, -1.0);
        if (rc != 1)
            break; // hangup, cancellation or torn frame: dead worker
        if (type != FrameType::kCell)
            break; // workers only send results
        if (!handleResult(w->id, payload))
            break; // malformed result: kill the worker, not a client
        pump();    // the freed slot takes the next queued job
    }
    removeWorker(w->id);
}

AnalysisResponse
Dispatcher::execute(const AnalysisRequest &req, const CellCallback &onCell)
{
    if (liveWorkers() == 0) {
        // A fleet of zero is PR 6's server: the local batch path,
        // streaming and all.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.requestsLocalFallback;
        }
        return local_.execute(req, onCell);
    }

    validateRequest(req);
    const size_t nk = req.kernels.size();
    const size_t ns = req.specs.size();

    Batch batch;
    batch.resp = makeResponseShell(req);
    batch.resp.cells.resize(nk * ns);
    batch.onCell = &onCell;
    batch.streaming =
        req.exec.delivery == ExecutionPolicy::Delivery::kStream &&
        static_cast<bool>(onCell);
    batch.remaining = nk * ns;

    std::vector<std::unique_ptr<Job>> jobs;
    jobs.reserve(nk * ns);
    // Price every cell BEFORE taking mutex_ (ref materialization on a
    // cold feature cache can be milliseconds).
    for (size_t ki = 0; ki < nk; ++ki) {
        for (size_t si = 0; si < ns; ++si) {
            auto job = std::make_unique<Job>();
            job->cell = cellRequest(req, ki, si);
            job->index = ki * ns + si;
            job->batch = &batch;
            job->costKey = cellCostKey(job->cell);
            job->features = cellCostFeatures(job->cell);
            job->cost = costModel_.estimate(job->costKey,
                                            job->features);
            jobs.push_back(std::move(job));
        }
    }
    // The small/large wait-class split is relative to THIS batch: a
    // job costing more than its batch's mean counts as large.
    double mean_cost = 0.0;
    for (const auto &job : jobs)
        mean_cost += job->cost;
    mean_cost /= jobs.empty() ? 1.0 : jobs.size();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &job : jobs) {
            job->id = ++job_counter_;
            store::ByteWriter pw;
            pw.u64(job->id);
            writeRequest(pw, job->cell);
            job->payload = pw.bytes();
            job->large = job->cost > mean_cost;
            job->queuedAt = Clock::now();
            jobs_.emplace(job->id, job.get());
            queue_.push(job.get(), job->cost, job->cell.clientId);
        }
        if (queue_.size() > stats_.queueDepthPeak)
            stats_.queueDepthPeak = queue_.size();
    }
    pump();

    std::unique_lock<std::mutex> lock(mutex_);
    while (batch.remaining != 0 || batch.deliveriesInFlight != 0) {
        cv_.wait_for(lock, std::chrono::milliseconds(50));

        // Local takeover: a queued job nobody can run (no live
        // workers) or that keeps bouncing (the re-dispatch bound)
        // executes on this request's own thread — forward progress
        // never depends on fleet health. Live-but-BUSY workers are
        // NOT a reason to take over: a full fleet is backpressure,
        // not failure, and running the cell on this connection's
        // thread would serialize the client behind it.
        Job *take = nullptr;
        const bool no_workers = liveWorkersLocked() == 0;
        for (auto &kv : jobs_) {
            Job *job = kv.second;
            if (job->batch != &batch || job->done ||
                job->assignedWorker != 0)
                continue;
            if (no_workers || job->redispatches >= kMaxRedispatches) {
                take = job;
                queue_.erase(job);
                break;
            }
        }
        if (take) {
            ++stats_.cellsLocal;
            if (no_workers)
                ++stats_.cellsLocalNoWorkers;
            else
                ++stats_.cellsLocalExhausted;
            take->dispatchedAt = Clock::now();
            accountWaitLocked(*take);
            const uint64_t take_id = take->id;
            const AnalysisRequest cell_req = take->cell;
            lock.unlock();
            driver::BatchResult cell;
            try {
                AnalysisResponse one = local_.execute(cell_req);
                cell = one.cells.size() == 1
                           ? std::move(one.cells[0])
                           : failedCell(cell_req,
                                        "local fallback produced " +
                                            std::to_string(
                                                one.cells.size()) +
                                            " cells for one job");
            } catch (const std::exception &e) {
                cell = failedCell(cell_req, e.what());
            }
            lock.lock();
            observeJob(*take,
                       secondsSince(take->dispatchedAt, Clock::now()) *
                           1000.0);
            auto jit = jobs_.find(take_id);
            // A late remote result may have won while we executed;
            // first completion wins either way.
            if (jit != jobs_.end() && !jit->second->done)
                completeLocked(lock, jit->second, std::move(cell));
            continue;
        }

        // Re-dispatch jobs a live-but-silent worker has sat on past
        // the deadline (SIGSTOP'd, wedged, or just lost) — but only
        // when some worker (the slow holder itself included: its
        // pipeline slots still drain in order) has a free slot to
        // actually take the steal. Stealing into a COMPLETELY full
        // fleet just burns the re-dispatch budget until the
        // local-takeover bound fires on a merely-busy fleet.
        const Clock::time_point now = Clock::now();
        const auto spareSlot = [this] {
            for (const auto &kv : workers_) {
                if (kv.second->inFlight.size() <
                    opts_.maxInFlightPerWorker)
                    return true;
            }
            return false;
        };
        bool stole = false;
        for (auto &kv : jobs_) {
            Job *job = kv.second;
            if (job->batch != &batch || job->done ||
                job->assignedWorker == 0)
                continue;
            const double waited =
                secondsSince(job->dispatchedAt, now);
            // Past 3x the deadline with still nowhere else to go,
            // the holder is wedged, not busy — steal anyway so a
            // single stuck worker cannot hang the request forever.
            if (waited > opts_.jobTimeoutSeconds &&
                (spareSlot() ||
                 waited > 3.0 * opts_.jobTimeoutSeconds)) {
                requeueLocked(job);
                stole = true;
            }
        }
        if (stole) {
            lock.unlock();
            pump();
            lock.lock();
        }
    }
    lock.unlock();

    if (batch.callbackFailed)
        throw std::runtime_error(batch.callbackError);
    return std::move(batch.resp);
}

// --- The worker side --------------------------------------------------

WorkerLoopStats
workerServe(const Endpoint &server, AnalysisService &service,
            const std::atomic<bool> *stop, const WorkerLoopOptions &opts)
{
    WorkerLoopStats st;
    std::string err;
    int fd = -1;
    if (server.scheme == Endpoint::Scheme::kUnix)
        fd = connectUnix(server.path, &err);
    else if (server.scheme == Endpoint::Scheme::kTcp)
        fd = connectTcp(server.host, server.port, &err);
    else
        throw std::runtime_error(
            "worker registration needs a socket endpoint "
            "(unix:PATH or tcp:HOST:PORT), got '" +
            server.uri() + "'");
    if (fd < 0)
        throw std::runtime_error("cannot reach " + server.uri() +
                                 ": " + err);
    setSendTimeoutSeconds(fd, kFrameStallTimeoutSeconds);

    const std::string name =
        opts.name.empty() ? "worker-" + std::to_string(::getpid())
                          : opts.name;
    FrameType type;
    std::string payload;
    std::string ferr;
    if (!writeFrame(fd, FrameType::kRegister, name) ||
        readFrame(fd, &type, &payload, server.limits.maxFrameBytes,
                  stop, &ferr, server.timeouts.responseSeconds) != 1 ||
        type != FrameType::kRegister) {
        closeSocket(fd);
        throw std::runtime_error("worker registration with " +
                                 server.uri() + " failed" +
                                 (ferr.empty() ? "" : ": " + ferr));
    }

    for (;;) {
        if (opts.maxJobs != 0 && st.executed >= opts.maxJobs)
            break;
        const int rc = readFrame(fd, &type, &payload,
                                 server.limits.maxFrameBytes, stop,
                                 &ferr, -1.0);
        if (rc != 1)
            break; // server hangup / shutdown / cancellation
        if (type != FrameType::kJob)
            break; // kError or protocol confusion: stop cleanly
        store::ByteReader r(payload);
        const uint64_t job_id = r.u64();
        AnalysisRequest cell;
        if (!r.ok() || !readRequest(r, &cell) || !r.atEnd())
            break; // an unsynchronized server cannot be trusted
        if (opts.onJob)
            opts.onJob(cell);
        AnalysisResponse one;
        try {
            one = service.execute(cell);
        } catch (const std::exception &e) {
            // A bad job fails its cell, never the worker — mirrors
            // spoolServe's containment.
            one = cellFailureResponse(cell, e.what());
        }
        ++st.executed;
        if (one.cells.size() == 1 && !one.cells[0].ok)
            ++st.failedCells;
        store::ByteWriter w;
        w.u64(job_id);
        writeResponse(w, one);
        if (!writeFrame(fd, FrameType::kCell, w.bytes()))
            break;
    }
    closeSocket(fd);
    return st;
}

} // namespace api
} // namespace gpuperf
