/**
 * @file
 * The gpuperf-serve daemon core: accept framed AnalysisRequests over
 * TCP and Unix-domain sockets from many concurrent clients,
 * multiplex them onto ONE shared AnalysisService (so clients share
 * its executor cache, calibration/profile/timing memos and persistent
 * stores exactly like threads of one process would), and stream
 * per-cell responses back in completion order.
 *
 * Concurrency model: one accept loop per listener, one thread per
 * connection, requests on a connection handled strictly in order (a
 * client that wants parallel requests opens parallel connections —
 * that IS the many-client scenario). Admission control and
 * backpressure live at the request boundary:
 *
 *  - a request whose cell count exceeds the per-client quota
 *    (ServerOptions::maxCellsPerRequest) is REJECTED with kError —
 *    quota violations fail fast and visibly;
 *  - a request that would push the server's total in-flight cells
 *    over ServerOptions::maxInFlightCells WAITS — the connection
 *    thread blocks before execute(), which stops reading that
 *    client's socket: backpressure propagates to the peer through
 *    TCP/unix-socket flow control while the task graph drains;
 *  - per-frame payloads are bounded (maxFrameBytes) and refused
 *    before allocation.
 *
 * Failure containment mirrors the spool protocol: a malformed request
 * is answered with kError, never crashes the server; a client that
 * disconnects mid-stream just loses its deliveries (already-computed
 * artifacts stay in the shared stores, so a reconnecting client
 * re-runs warm — the socket analogue of spool crash-steal, whose
 * recovery the store leases already provide); stop() drains in-flight
 * requests so every admitted cell is delivered or failed, never
 * silently dropped.
 */

#ifndef GPUPERF_API_SERVER_H
#define GPUPERF_API_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatch.h"
#include "api/endpoint.h"
#include "api/service.h"
#include "api/transport.h"
#include "store/stats.h"

namespace gpuperf {
namespace api {

/**
 * DEPRECATED as a public surface: build servers from api::Endpoint
 * URIs (Server(const Endpoint &) / serverOptionsFor) instead — see
 * the migration table in src/api/README.md. The struct remains the
 * internal representation for one release.
 */
struct ServerOptions
{
    /** Unix-domain socket path ("" = no Unix listener). */
    std::string unixPath;
    /** TCP port (-1 = no TCP listener; 0 = ephemeral, see tcpPort()). */
    int tcpPort = -1;
    /** TCP bind address; loopback by default (opt INTO exposure). */
    std::string tcpHost = "127.0.0.1";

    /** Concurrent connections; beyond this, accepts are rejected. */
    size_t maxClients = 64;
    /**
     * Global admission bound: total cells executing across all
     * clients. Requests beyond it queue at the admission gate
     * (backpressure), keeping the task graph saturated but bounded.
     */
    size_t maxInFlightCells = 1024;
    /** Per-client quota: cells per request; larger ones get kError. */
    size_t maxCellsPerRequest = 4096;
    /** Frame payload bound; oversized frames drop the connection. */
    uint64_t maxFrameBytes = kMaxFrameBytesDefault;
    /**
     * How long a connection may sit idle between requests before the
     * server closes it — cleanly: no kError frame, not counted as a
     * disconnect, and the client transparently reconnects on its next
     * run(). Negative (default) keeps idle connections indefinitely;
     * mid-frame stalls are bounded by kFrameStallTimeoutSeconds
     * regardless.
     */
    double idleTimeoutSeconds = -1.0;
    /**
     * Force every request onto this store root, ignoring the
     * client-supplied StorePolicy ("" = honor the request). A shared
     * daemon wants one warm store, not one per client's cwd.
     */
    std::string forceStoreDir;

    /** Dispatch: cells in flight per registered worker. */
    size_t maxWorkerInFlight = 4;
    /** Dispatch: re-dispatch a worker-held cell after this. */
    double jobTimeoutSeconds = 600.0;

    /**
     * Background store GC (`?gc-bytes=` / `?gc-age=`): with a bound
     * set AND a forced store root, a maintenance thread sweeps the
     * store every gcIntervalSeconds (store/lifecycle/gc.h — LRU,
     * lease-aware, never touches in-flight entries). Both bounds 0
     * (the default) means no GC thread at all.
     */
    uint64_t gcBytes = 0;
    double gcAgeSeconds = 0.0;
    double gcIntervalSeconds = 300.0;
    /**
     * Scheduling policy (`?sched=`) for the dispatcher's pending
     * queue AND the local executor's task-graph ready order.
     * Responses stay bit-identical to kFifo under every policy.
     */
    sched::SchedPolicy schedPolicy = sched::SchedPolicy::kFifo;
};

/**
 * The ServerOptions equivalent of @p endpoints: every endpoint must
 * be a listener (unix:/tcp:, Role::kServer); limits, timeouts and the
 * forced store root are taken from the FIRST endpoint (later ones
 * contribute only their listener). Throws std::runtime_error on an
 * empty list or a non-listener scheme.
 */
ServerOptions serverOptionsFor(const std::vector<Endpoint> &endpoints);

/** Monotonic counters (torn reads are fine; they are telemetry). */
struct ServerStats
{
    uint64_t accepted = 0;       ///< connections accepted
    uint64_t rejectedClients = 0;///< accepts refused (maxClients)
    uint64_t requests = 0;       ///< requests admitted and executed
    uint64_t rejectedRequests = 0; ///< kError'd before execution
    uint64_t cells = 0;          ///< cells delivered (ok or failed)
    uint64_t failedCells = 0;    ///< delivered cells with ok == false
    uint64_t disconnects = 0;    ///< streams broken mid-exchange
    uint64_t gcRuns = 0;         ///< maintenance-thread GC sweeps
    uint64_t gcEvicted = 0;      ///< entries those sweeps evicted
    uint64_t gcEvictedBytes = 0;
    /** Store cache health across the shared service's executors. */
    store::StoreLayerStats store;
    /** Fleet health: the dispatcher's counters and per-worker rows. */
    DispatchStats fleet;
};

/**
 * The stats as one deterministic JSON object (counters plus a
 * "workers" array) — what `gpuperf-serve --stats-json` dumps at
 * shutdown and the fleet soak bench parses per worker.
 */
std::string statsToJson(const ServerStats &stats);

class Server
{
  public:
    /** The Endpoint is the config surface: one listener... */
    explicit Server(const Endpoint &endpoint);
    /** ...or several (unix + tcp), first one carries the options. */
    explicit Server(const std::vector<Endpoint> &endpoints);
    /** DEPRECATED forwarder (one release); prefer the Endpoint ctors. */
    explicit Server(ServerOptions opts);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the configured listeners and start accepting. Throws
     * std::runtime_error when no listener is configured or a bind
     * fails (the port is taken, the socket path unwritable).
     */
    void start();

    /**
     * Graceful shutdown: stop accepting, wake admission waiters with
     * a shutdown rejection, let every connection finish the request
     * it is executing (its cells are delivered via kDone), then join
     * all threads. Idempotent; also run by the destructor.
     */
    void stop();

    /** The bound TCP port (after start(); -1 without a TCP listener). */
    int tcpPort() const { return bound_tcp_port_; }

    ServerStats stats() const;

    /** The effective options (tools echo the listener lines). */
    const ServerOptions &options() const { return opts_; }

    /** The shared service (tests pre-seed calibrations through it). */
    AnalysisService &service() { return service_; }

    /** The fleet dispatcher (tests poll worker registration). */
    Dispatcher &dispatcher() { return dispatcher_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop(int listen_fd);
    void gcLoop();
    void serveConnection(int fd);
    /** One request -> one kDone/kError exchange. False = drop conn. */
    bool serveExchange(int fd, FrameType type,
                       const std::string &payload);
    bool admit(size_t cells);
    void release(size_t cells);
    void reapFinished();

    ServerOptions opts_;
    AnalysisService service_;
    Dispatcher dispatcher_;

    std::vector<int> listen_fds_;
    int bound_tcp_port_ = -1;
    std::vector<std::thread> accept_threads_;
    std::thread gc_thread_;
    std::condition_variable gc_cv_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};

    mutable std::mutex mutex_;
    std::condition_variable admission_cv_;
    size_t in_flight_cells_ = 0;
    size_t live_connections_ = 0;
    std::vector<std::unique_ptr<Connection>> connections_;

    ServerStats stats_;
};

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_SERVER_H
