/**
 * @file
 * The spool-directory worker protocol — the multi-process seam the
 * serializable job schema exists for. A parent process SUBMITS a
 * request by serializing one single-cell job file per (kernel, spec)
 * into a shared directory; cooperating `gpuperf-worker serve`
 * processes CLAIM jobs with the store lease mechanism, execute them
 * through their own AnalysisService, and write response files back;
 * the parent COLLECTS the responses into one ordered
 * AnalysisResponse, bit-identical to an in-process run.
 *
 * Layout under the spool directory:
 *
 *     jobs/<id>.job        binary single-cell AnalysisRequest
 *     jobs/<id>.claim      lease marker while a worker runs the job
 *     responses/<id>.resp  binary single-cell AnalysisResponse
 *
 * Job ids are DERIVED from the request (cell position + a content
 * hash of the serialized single-cell job), so submit and collect
 * agree without a side channel, and resubmitting the same request is
 * idempotent (same files). Claims are advisory store::Leases: a
 * worker that crashes mid-job leaves a claim that goes stale (dead
 * pid / aged marker) and is stolen by the next worker — the job runs
 * again, the response file is atomically replaced with bit-identical
 * content, and nothing is lost.
 *
 * Workers sharing the request's storeDir also share calibrations,
 * profiles and timings through the store leases, so an M-spec batch
 * spread over W workers still runs each microbenchmark sweep and
 * funcsim once GLOBALLY.
 */

#ifndef GPUPERF_API_SPOOL_H
#define GPUPERF_API_SPOOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "api/request.h"
#include "api/service.h"
#include "sched/policy.h"
#include "store/lease.h"

namespace gpuperf {
namespace api {

struct Endpoint;

/** The per-cell job derived from @p req at (kernel ki, spec si). */
AnalysisRequest cellRequest(const AnalysisRequest &req, size_t ki,
                            size_t si);

/**
 * A single-cell response whose cell failed before (or instead of)
 * executing, labeled from the cell request. Shared by the spool
 * server, the dispatcher's local fallback, and registered workers —
 * every seam fails a cell the same way.
 */
AnalysisResponse cellFailureResponse(const AnalysisRequest &cell,
                                     const std::string &error);

/**
 * One spooled cell: its deterministic job id plus the (kernel, spec)
 * position it came from. Collect labels failure cells (timeouts,
 * malformed responses) from THIS mapping — never from arithmetic on a
 * flat index, which mislabels whenever the id list is not exactly a
 * dense kernels x specs grid and divides by zero on an empty spec
 * list.
 */
struct SpoolCell
{
    std::string id;
    size_t kernel = 0;
    size_t spec = 0;
};

/** The cells of @p req, kernel-major (submit/serve/collect agree). */
std::vector<SpoolCell> spoolCells(const AnalysisRequest &req);

/**
 * The deterministic job ids submit/serve/collect agree on, in
 * kernel-major cell order.
 */
std::vector<std::string> spoolJobIds(const AnalysisRequest &req);

/**
 * Collection-side tuning shared by spoolCollect and runSpooled. The
 * poll interval backs off exponentially from pollInitialSeconds to
 * pollMaxSeconds while nothing new arrives (and snaps back on
 * progress), so a small hot batch is picked up in milliseconds while
 * a large cold one doesn't burn a CPU polling for minutes.
 */
struct SpoolOptions
{
    /**
     * Deadline for the whole collect; cells with no response by then
     * fail with a timeout error. Sized for a large COLD batch (every
     * calibration and funcsim running for real) — the previous
     * hard-coded 60 s timed those out spuriously.
     */
    double timeoutSeconds = 600.0;
    /** First sleep between response scans. */
    double pollInitialSeconds = 0.002;
    /** Backoff cap for the scan interval. */
    double pollMaxSeconds = 0.25;
};

/**
 * Serialize @p req's cells into @p dir (creating jobs/ and
 * responses/). Existing job files for the same ids are left in place
 * (idempotent resubmission). Returns the job ids, kernel-major.
 * Throws std::runtime_error on an invalid request or an unwritable
 * directory.
 */
std::vector<std::string> spoolSubmit(const std::string &dir,
                                     const AnalysisRequest &req);

struct ServeOptions
{
    /**
     * Keep scanning (and stealing stale claims) until every job in
     * the directory has a response. false = one pass: claim what is
     * claimable now, then return.
     */
    bool drain = true;
    /** Stop after this many executed jobs (0 = unlimited). */
    size_t maxJobs = 0;
    /** Claim staleness threshold (crash-steal latency). */
    int64_t claimStaleAfterMs = store::kLeaseStaleAfterMsDefault;
    /** Seconds between scans while other workers hold the claims. */
    double idlePollSeconds = 0.05;
    /**
     * Claim order within each scan (`?sched=`): kSjf claims the
     * cheapest-predicted unanswered job first, kBiggestFirst the
     * dearest; kFairShare degrades to kSjf (a pull-based worker has
     * no client queue to arbitrate). Costs are predicted from the
     * job file's launch shape (api/cell_cost.h); responses stay
     * bit-identical to kFifo — only the claim order moves.
     */
    sched::SchedPolicy policy = sched::SchedPolicy::kFifo;
};

struct ServeStats
{
    /** Jobs this worker claimed and executed. */
    size_t executed = 0;
    /** Executed jobs whose single cell reported ok == false. */
    size_t failedCells = 0;
};

/**
 * Work @p dir: claim unanswered jobs, execute each through @p service
 * and write its response file. Never throws for per-job problems — a
 * malformed job file produces a failed-cell response so the parent's
 * collect terminates (a crash here would instead park the job until
 * its claim staled).
 */
ServeStats spoolServe(const std::string &dir, AnalysisService &service,
                      const ServeOptions &opts = {});

/**
 * Wait for every response of @p req under @p dir and assemble them
 * into one kernel-major AnalysisResponse — bit-identical to an
 * in-process AnalysisService::run(req) (pinned by tests and the CI
 * api-smoke diff). Cells whose responses have not appeared within
 * @p opts.timeoutSeconds come back ok == false with a timeout error,
 * labeled with their (kernel, spec) names from the request.
 */
AnalysisResponse spoolCollect(const std::string &dir,
                              const AnalysisRequest &req,
                              const SpoolOptions &opts = {});

/** Compatibility shim: collect with only the deadline overridden. */
AnalysisResponse spoolCollect(const std::string &dir,
                              const AnalysisRequest &req,
                              double timeout_seconds);

/**
 * Convenience: submit, serve in-process until drained, collect.
 * Exercises the full wire path (serialize -> claim -> execute ->
 * deserialize) inside one process; tests use it to pin spool ==
 * in-process bit-identity without forking.
 */
AnalysisResponse runSpooled(const std::string &dir,
                            const AnalysisRequest &req,
                            AnalysisService &service,
                            const SpoolOptions &opts = {});

// --- Endpoint derivation (api/endpoint.h is the config surface) -------

/** Collect-side options from @p ep (timeout, poll backoff). */
SpoolOptions spoolOptionsFor(const Endpoint &ep);

/** Serve-side options from @p ep (max-jobs, claim-stale-ms). */
ServeOptions spoolServeOptionsFor(const Endpoint &ep);

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_SPOOL_H
