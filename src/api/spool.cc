#include "api/spool.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <thread>

#include "api/cell_cost.h"
#include "api/codecs.h"
#include "api/endpoint.h"
#include "common/fnv.h"
#include "common/logging.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {

namespace {

std::string
jobsDir(const std::string &dir)
{
    return dir + "/jobs";
}

std::string
responsesDir(const std::string &dir)
{
    return dir + "/responses";
}

std::string
jobPath(const std::string &dir, const std::string &id)
{
    return jobsDir(dir) + "/" + id + ".job";
}

std::string
claimPath(const std::string &dir, const std::string &id)
{
    return jobsDir(dir) + "/" + id + ".claim";
}

std::string
responsePath(const std::string &dir, const std::string &id)
{
    return responsesDir(dir) + "/" + id + ".resp";
}

/** The id of one serialized cell job: position + content hash. */
std::string
jobId(size_t ki, size_t si, const AnalysisRequest &cell)
{
    store::ByteWriter w;
    writeRequest(w, cell);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%04zu-%04zu-%016llx", ki, si,
                  static_cast<unsigned long long>(
                      fnv1a64(w.bytes())));
    return buf;
}

/** Jobs present in @p dir (ids, sorted), by directory listing. */
std::vector<std::string>
listJobs(const std::string &dir)
{
    std::vector<std::string> ids;
    DIR *d = ::opendir(jobsDir(dir).c_str());
    if (!d)
        return ids;
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        const std::string suffix = ".job";
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            ids.push_back(name.substr(0, name.size() - suffix.size()));
        }
    }
    ::closedir(d);
    std::sort(ids.begin(), ids.end());
    return ids;
}

bool
fileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

} // namespace

AnalysisResponse
cellFailureResponse(const AnalysisRequest &cell, const std::string &error)
{
    AnalysisResponse resp = makeResponseShell(cell);
    driver::BatchResult r;
    r.kernelName = cell.kernels.empty() ? std::string("?")
                                        : cell.kernels[0].name;
    r.specName = cell.specs.empty() ? std::string("?")
                                    : cell.specs[0].name;
    r.ok = false;
    r.error = error;
    resp.cells.push_back(std::move(r));
    return resp;
}

AnalysisRequest
cellRequest(const AnalysisRequest &req, size_t ki, size_t si)
{
    AnalysisRequest cell;
    cell.schemaVersion = req.schemaVersion;
    cell.jobName = req.jobName;
    cell.clientId = req.clientId;
    cell.kernels = {req.kernels[ki]};
    cell.specs = {req.specs[si]};
    cell.sweep = req.sweep;
    cell.store = req.store;
    cell.exec = req.exec;
    // One cell needs one worker thread, and a spooled job always
    // collects (streaming is the parent's concern).
    cell.exec.numThreads = 1;
    cell.exec.delivery = ExecutionPolicy::Delivery::kCollect;
    return cell;
}

std::vector<SpoolCell>
spoolCells(const AnalysisRequest &req)
{
    std::vector<SpoolCell> cells;
    cells.reserve(req.kernels.size() * req.specs.size());
    for (size_t ki = 0; ki < req.kernels.size(); ++ki) {
        for (size_t si = 0; si < req.specs.size(); ++si) {
            cells.push_back(SpoolCell{
                jobId(ki, si, cellRequest(req, ki, si)), ki, si});
        }
    }
    return cells;
}

std::vector<std::string>
spoolJobIds(const AnalysisRequest &req)
{
    std::vector<std::string> ids;
    const std::vector<SpoolCell> cells = spoolCells(req);
    ids.reserve(cells.size());
    for (const SpoolCell &cell : cells)
        ids.push_back(cell.id);
    return ids;
}

std::vector<std::string>
spoolSubmit(const std::string &dir, const AnalysisRequest &req)
{
    validateRequest(req);
    if (!store::makeDirs(jobsDir(dir)) ||
        !store::makeDirs(responsesDir(dir))) {
        throw std::runtime_error("cannot create spool directory '" +
                                 dir + "'");
    }
    std::vector<std::string> ids;
    ids.reserve(req.kernels.size() * req.specs.size());
    for (size_t ki = 0; ki < req.kernels.size(); ++ki) {
        for (size_t si = 0; si < req.specs.size(); ++si) {
            const AnalysisRequest cell = cellRequest(req, ki, si);
            const std::string id = jobId(ki, si, cell);
            ids.push_back(id);
            const std::string path = jobPath(dir, id);
            // Content-addressed ids make resubmission idempotent: an
            // existing file IS this job (same bytes), so the write —
            // and any worker already running it — can be left alone.
            if (fileExists(path))
                continue;
            if (!saveRequestFile(path, cell, id)) {
                throw std::runtime_error("cannot write job file '" +
                                         path + "'");
            }
        }
    }
    return ids;
}

ServeStats
spoolServe(const std::string &dir, AnalysisService &service,
           const ServeOptions &opts)
{
    ServeStats stats;
    // Claim-order pricing: job files are content-addressed and
    // immutable, so an id priced once stays priced across passes.
    // Pricing never executes anything — a job file that fails to
    // deserialize costs 0 here and produces its failure response at
    // claim time like before.
    std::map<std::string, double> costs;
    sched::CostModel costModel;
    const bool costed = opts.policy != sched::SchedPolicy::kFifo;
    for (;;) {
        bool executedThisPass = false;
        bool allAnswered = true;
        std::vector<std::string> ids = listJobs(dir);
        if (costed) {
            for (const std::string &id : ids) {
                if (costs.count(id) ||
                    fileExists(responsePath(dir, id)))
                    continue;
                AnalysisRequest cell;
                double cost = 0.0;
                if (loadRequestFile(jobPath(dir, id), &cell, id))
                    cost = estimateCellCost(costModel, cell);
                costs.emplace(id, cost);
            }
            const bool biggest =
                opts.policy == sched::SchedPolicy::kBiggestFirst;
            // stable_sort over the sorted listing: ties (answered
            // jobs, equal costs) keep deterministic id order.
            std::stable_sort(
                ids.begin(), ids.end(),
                [&costs, biggest](const std::string &a,
                                  const std::string &b) {
                    const auto ia = costs.find(a);
                    const auto ib = costs.find(b);
                    const double ca =
                        ia == costs.end() ? 0.0 : ia->second;
                    const double cb =
                        ib == costs.end() ? 0.0 : ib->second;
                    return biggest ? ca > cb : ca < cb;
                });
        }
        for (const std::string &id : ids) {
            if (opts.maxJobs && stats.executed >= opts.maxJobs)
                return stats;
            if (fileExists(responsePath(dir, id)))
                continue;
            allAnswered = false;
            store::Lease claim = store::tryAcquireLease(
                claimPath(dir, id), opts.claimStaleAfterMs);
            if (!claim.held())
                continue; // another live worker has it
            // Re-check under the claim: the previous holder may have
            // answered between our scan and this acquisition.
            if (fileExists(responsePath(dir, id)))
                continue;

            AnalysisRequest cell;
            AnalysisResponse resp;
            if (!loadRequestFile(jobPath(dir, id), &cell, id)) {
                // Malformed or foreign job file: answer it with a
                // failure so the parent's collect terminates instead
                // of timing out (and the bad file stays inspectable).
                resp = cellFailureResponse(
                    AnalysisRequest{},
                    "spool job '" + id +
                        "' failed to deserialize (schema mismatch "
                        "or corrupt file)");
                resp.jobName = id;
            } else {
                try {
                    resp = service.run(cell);
                } catch (const std::exception &e) {
                    resp = cellFailureResponse(cell, e.what());
                }
            }
            ++stats.executed;
            for (const driver::BatchResult &r : resp.cells)
                stats.failedCells += r.ok ? 0 : 1;
            store::ByteWriter w;
            writeResponse(w, resp);
            if (!store::writeEntryFile(responsePath(dir, id),
                                       kSchemaVersion, id,
                                       w.bytes())) {
                // An unanswerable job (full disk, unwritable
                // responses/) must not become a hot loop: drain mode
                // would immediately re-claim it and re-run the whole
                // analysis, forever. Stop serving and let the caller
                // (or another worker with working storage) retry.
                warn("spool: cannot write response for job '%s' — "
                     "stopping this serve loop",
                     id.c_str());
                return stats;
            }
            executedThisPass = true;
            // claim releases here (RAII) — after the response landed.
        }
        if (allAnswered || !opts.drain)
            return stats;
        if (!executedThisPass) {
            // Everything unanswered is claimed by live workers (or
            // freshly stalled): wait for them, stealing once their
            // claims go stale.
            std::this_thread::sleep_for(std::chrono::duration<double>(
                opts.idlePollSeconds));
        }
    }
}

AnalysisResponse
spoolCollect(const std::string &dir, const AnalysisRequest &req,
             const SpoolOptions &opts)
{
    validateRequest(req);
    const std::vector<SpoolCell> cells = spoolCells(req);
    AnalysisResponse resp = makeResponseShell(req);
    resp.cells.resize(cells.size());
    std::vector<bool> have(cells.size(), false);
    size_t missing = cells.size();

    // Failure cells are labeled from the cell's OWN (kernel, spec)
    // position, never reconstructed by dividing the flat index by the
    // spec count — that arithmetic mislabels any non-dense id grid
    // and divides by zero on an empty spec list.
    const auto failCell = [&](size_t i, const std::string &error) {
        resp.cells[i].kernelName = req.kernels[cells[i].kernel].name;
        resp.cells[i].specName = req.specs[cells[i].spec].name;
        resp.cells[i].ok = false;
        resp.cells[i].error = error;
    };

    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               opts.timeoutSeconds));
    double poll_seconds = opts.pollInitialSeconds;
    while (missing > 0) {
        bool progressed = false;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (have[i])
                continue;
            const std::string path = responsePath(dir, cells[i].id);
            std::string payload;
            if (!store::readEntryFile(path, kSchemaVersion,
                                      cells[i].id, &payload)) {
                continue;
            }
            AnalysisResponse one;
            store::ByteReader r(payload);
            if (!readResponse(r, &one) || !r.atEnd() ||
                one.cells.size() != 1) {
                // A half-valid response file is a worker bug, not a
                // reason to hang: surface it as the cell's failure.
                failCell(i, "spool response for job '" + cells[i].id +
                                "' is malformed");
            } else {
                resp.cells[i] = std::move(one.cells[0]);
            }
            have[i] = true;
            --missing;
            progressed = true;
        }
        if (missing == 0)
            break;
        if (Clock::now() >= deadline) {
            for (size_t i = 0; i < cells.size(); ++i) {
                if (!have[i]) {
                    failCell(i, "spool job '" + cells[i].id +
                                    "' produced no response before "
                                    "the timeout");
                }
            }
            break;
        }
        // Exponential backoff while idle (snapping back on progress):
        // hot responses are picked up within milliseconds, a long
        // cold batch is polled a few times a second instead of 50.
        poll_seconds = progressed
                           ? opts.pollInitialSeconds
                           : std::min(poll_seconds * 2.0,
                                      opts.pollMaxSeconds);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(poll_seconds));
    }
    return resp;
}

AnalysisResponse
spoolCollect(const std::string &dir, const AnalysisRequest &req,
             double timeout_seconds)
{
    SpoolOptions opts;
    opts.timeoutSeconds = timeout_seconds;
    return spoolCollect(dir, req, opts);
}

AnalysisResponse
runSpooled(const std::string &dir, const AnalysisRequest &req,
           AnalysisService &service, const SpoolOptions &opts)
{
    spoolSubmit(dir, req);
    spoolServe(dir, service);
    return spoolCollect(dir, req, opts);
}

SpoolOptions
spoolOptionsFor(const Endpoint &ep)
{
    SpoolOptions opts;
    opts.timeoutSeconds = ep.timeouts.collectSeconds;
    opts.pollInitialSeconds = ep.timeouts.pollInitialSeconds;
    opts.pollMaxSeconds = ep.timeouts.pollMaxSeconds;
    return opts;
}

ServeOptions
spoolServeOptionsFor(const Endpoint &ep)
{
    ServeOptions opts;
    opts.maxJobs = ep.limits.maxJobs;
    opts.claimStaleAfterMs = ep.timeouts.claimStaleMs;
    opts.policy = ep.schedPolicy;
    return opts;
}

} // namespace api
} // namespace gpuperf
