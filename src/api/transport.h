/**
 * @file
 * The transport seam between a caller holding an AnalysisRequest and
 * whatever executes it. PR 5 made a job a wire-portable VALUE; this
 * interface makes the mechanism that moves it a pluggable BACKEND:
 *
 *   - in-process: straight into a local AnalysisService (the zero-cost
 *     backend every other one is byte-diffed against),
 *   - spool:      the shared-filesystem worker protocol (api/spool.h),
 *   - socket:     the gpuperf-serve daemon over a framed TCP or
 *     Unix-domain stream (api/client.h / api/server.h).
 *
 * Callers written against Transport (the gpuperf-worker `run` verb,
 * benches, tests) are oblivious to which seam executes the job, and
 * every backend is pinned to return bit-identical responses
 * (api::responsesEqual) for the same request.
 *
 * This header also defines the length-framed wire protocol the socket
 * backend speaks. A frame is:
 *
 *     u32 magic "GPF1" | u8 type | u32 payloadLength | payload
 *
 * little-endian, payloadLength bounded by the receiver (oversized
 * frames are a protocol error, the connection is dropped — a client
 * cannot make the server allocate unbounded memory). Frame types:
 *
 *     kRequest (1)      payload = binary AnalysisRequest
 *     kRequestJson (2)  payload = JSON AnalysisRequest
 *     kCell (3)         payload = u32 cell index + binary single-cell
 *                       AnalysisResponse (streamed, completion order)
 *     kDone (4)         payload = binary full AnalysisResponse
 *                       (kernel-major; the authoritative result)
 *     kError (5)        payload = UTF-8 message; terminates the
 *                       request (admission rejection, malformed
 *                       request, server shutdown)
 *     kRegister (6)     worker -> server: payload = worker name; the
 *                       server acks with a kRegister frame whose
 *                       payload is the assigned worker id (decimal).
 *                       Turns the connection into a worker channel.
 *     kJob (7)          server -> worker: payload = u64 job id +
 *                       binary single-cell AnalysisRequest. The
 *                       worker answers with a kCell frame carrying
 *                       u64 job id + binary single-cell
 *                       AnalysisResponse (note: on CLIENT
 *                       connections kCell carries a u32 cell index
 *                       instead — the connection kind disambiguates).
 *
 * One request-response exchange per frame round trip; a client may
 * send its next request on the same connection after kDone/kError.
 * kCell frames arrive only when the request asked for streaming
 * delivery (exec.delivery == kStream). Worker connections (opened by
 * kRegister) instead exchange kJob/kCell frames for the connection's
 * whole life — see api/dispatch.h.
 */

#ifndef GPUPERF_API_TRANSPORT_H
#define GPUPERF_API_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "api/request.h"
#include "api/service.h"

namespace gpuperf {
namespace api {

// --- Frame codec ------------------------------------------------------

enum class FrameType : uint8_t
{
    kRequest = 1,
    kRequestJson = 2,
    kCell = 3,
    kDone = 4,
    kError = 5,
    kRegister = 6,
    kJob = 7,
};

/** "GPF1" little-endian — rejects non-gpuperf peers at byte 4. */
constexpr uint32_t kFrameMagic = 0x31465047;

/** Default per-frame payload bound (inline images can be large). */
constexpr uint64_t kMaxFrameBytesDefault = 256ull << 20;

/**
 * Mid-frame stall bound: once a frame has STARTED, a peer that stops
 * sending for this long is broken or hostile. Waiting for a frame to
 * start is a different matter — see readFrame's idle timeout.
 */
constexpr double kFrameStallTimeoutSeconds = 30.0;

/** Frame a payload onto @p fd. False on any short or failed write. */
bool writeFrame(int fd, FrameType type, const std::string &payload);

/**
 * Read one frame. @p idle_timeout_seconds bounds how long to wait for
 * the frame to START (no bytes yet): a server awaiting a client's
 * next request, or a client awaiting the response to a slow cold
 * batch, may legitimately sit here far longer than any mid-frame
 * stall, so the caller picks the policy (negative = wait
 * indefinitely; cancellation and peer EOF still end the wait). Once
 * the first byte arrives, mid-frame stalls are bounded by
 * kFrameStallTimeoutSeconds regardless.
 *
 * Returns 1 on success; 0 on a clean EOF between frames (the peer
 * hung up); -2 when the idle timeout expired before any byte of a
 * new frame (the stream is still synchronized — the caller may close
 * cleanly or keep waiting); -1 on protocol violations — bad magic,
 * unknown type, payload over @p max_payload_bytes, a torn frame
 * (EOF/stall mid-frame) or cancellation — with @p err describing
 * which. After -1 the stream is unsynchronized; the connection must
 * be dropped.
 */
int readFrame(int fd, FrameType *type, std::string *payload,
              uint64_t max_payload_bytes = kMaxFrameBytesDefault,
              const std::atomic<bool> *cancel = nullptr,
              std::string *err = nullptr,
              double idle_timeout_seconds = kFrameStallTimeoutSeconds);

// --- The transport interface ------------------------------------------

/**
 * One way of getting an AnalysisRequest executed. Backends differ in
 * WHERE the work runs (this process, spool workers on a shared
 * filesystem, a socket daemon); they agree on the result, bit for
 * bit.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Execute @p req and return the assembled kernel-major response.
     * When @p onCell is set and the request asks for streaming
     * delivery, finished cells are additionally delivered in
     * completion order (backends without a streaming wire — the spool
     * — degrade to collect-then-return and skip the callback).
     * Throws std::runtime_error on transport-level failures
     * (unreachable peer, protocol error, rejected request); per-cell
     * analysis failures come back as ok == false cells.
     */
    virtual AnalysisResponse run(const AnalysisRequest &req,
                                 const CellCallback &onCell = {}) = 0;

    /** Human-readable backend description ("unix:/run/g.sock"). */
    virtual std::string describe() const = 0;
};

/**
 * Construct a transport from a URI:
 *
 *     inproc:              local AnalysisService (@p local when given,
 *                          else an owned one)
 *     spool:DIR            spool directory; @p local serves the jobs
 *                          in-process when given (self-contained run),
 *                          else external workers must drain DIR
 *     unix:PATH            gpuperf-serve over a Unix-domain socket
 *     tcp:HOST:PORT        gpuperf-serve over TCP
 *
 * URIs may carry options as a query string ("tcp:h:p?timeout=30") —
 * parsing goes through Endpoint::parse (api/endpoint.h), which
 * documents the option keys. Throws std::runtime_error on an
 * unrecognized scheme, malformed authority or unknown option key.
 * Socket transports connect lazily on the first run().
 */
std::unique_ptr<Transport> makeTransport(const std::string &uri,
                                         AnalysisService *local = nullptr);

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_TRANSPORT_H
