#include "api/cell_cost.h"

#include <cstdio>
#include <map>
#include <mutex>

#include "api/codecs.h"
#include "api/registry.h"
#include "common/fnv.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {

namespace {

uint64_t
warpsOf(const funcsim::LaunchConfig &cfg)
{
    const uint64_t grid = cfg.gridDim > 0 ? cfg.gridDim : 1;
    const uint64_t block = cfg.blockDim > 0 ? cfg.blockDim : 1;
    return grid * ((block + 31) / 32);
}

/**
 * Features of one KernelJob. Registry refs are materialized once to
 * read their launch shape — the result is cached per reference
 * identity, so a steady mix of known cases never rebuilds an input
 * image just to price a job.
 */
sched::CostFeatures
jobFeatures(const KernelJob &job)
{
    sched::CostFeatures f;
    if (job.isInline()) {
        const InlineLaunch &launch = *job.inlined;
        f.warps = warpsOf(launch.cfg);
        f.warpOps = f.warps * launch.kernel.instructions().size();
        return f;
    }

    std::string key = job.ref.factory;
    for (int64_t a : job.ref.iargs)
        key += "|" + std::to_string(a);
    for (double a : job.ref.fargs) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "|%a", a);
        key += buf;
    }

    static std::mutex mutex;
    static std::map<std::string, sched::CostFeatures> cache;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    try {
        const driver::PreparedLaunch prepared =
            materializeJob(job).make();
        f.warps = warpsOf(prepared.cfg);
        f.warpOps =
            f.warps * prepared.kernel.instructions().size();
    } catch (const std::exception &) {
        // Unknown factory or bad arguments: the cell will fail at
        // execution with a proper message; price it as trivial.
    }
    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, f);
    return f;
}

} // namespace

std::string
cellCostKey(const AnalysisRequest &cell)
{
    // Hash the WORK, not the submission: the same cell from another
    // tenant or under another job name shares one cost history.
    AnalysisRequest work = cell;
    work.jobName.clear();
    work.clientId.clear();
    store::ByteWriter w;
    writeRequest(w, work);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "cell|%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(w.bytes())));
    return buf;
}

sched::CostFeatures
cellCostFeatures(const AnalysisRequest &req)
{
    sched::CostFeatures total;
    const uint64_t specs =
        req.specs.empty() ? 1 : req.specs.size();
    for (const KernelJob &job : req.kernels) {
        const sched::CostFeatures f = jobFeatures(job);
        total.warpOps += f.warpOps * specs;
        total.warps += f.warps * specs;
    }
    return total;
}

double
estimateCellCost(const sched::CostModel &model,
                 const AnalysisRequest &cell)
{
    return model.estimate(cellCostKey(cell), cellCostFeatures(cell));
}

} // namespace api
} // namespace gpuperf
