#include "api/server.h"

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "api/codecs.h"
#include "common/logging.h"
#include "common/socket.h"
#include "store/lifecycle/gc.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {

namespace {

/**
 * A streaming peer that stops reading must not pin a connection
 * thread in send() forever (it would also pin its admitted cells);
 * after this stall the write fails and the connection is dropped.
 */
constexpr double kSendStallTimeoutSeconds = 30.0;

DispatchOptions
dispatchOptionsFor(const ServerOptions &opts)
{
    DispatchOptions d;
    d.maxInFlightPerWorker = opts.maxWorkerInFlight;
    d.jobTimeoutSeconds = opts.jobTimeoutSeconds;
    d.maxFrameBytes = opts.maxFrameBytes;
    d.policy = opts.schedPolicy;
    return d;
}

} // namespace

ServerOptions
serverOptionsFor(const std::vector<Endpoint> &endpoints)
{
    if (endpoints.empty())
        throw std::runtime_error("a server needs at least one "
                                 "listener endpoint");
    ServerOptions opts;
    const Endpoint &first = endpoints.front();
    opts.maxClients = first.limits.maxClients;
    opts.maxInFlightCells = first.limits.maxInFlightCells;
    opts.maxCellsPerRequest = first.limits.maxCellsPerRequest;
    opts.maxFrameBytes = first.limits.maxFrameBytes;
    opts.maxWorkerInFlight = first.limits.maxWorkerInFlight;
    opts.idleTimeoutSeconds = first.timeouts.idleSeconds;
    opts.jobTimeoutSeconds = first.timeouts.jobSeconds;
    opts.forceStoreDir = first.storeDir;
    opts.schedPolicy = first.schedPolicy;
    opts.gcBytes = first.limits.gcBytes;
    opts.gcAgeSeconds = first.timeouts.gcAgeSeconds;
    opts.gcIntervalSeconds = first.timeouts.gcIntervalSeconds;
    for (const Endpoint &ep : endpoints) {
        switch (ep.scheme) {
        case Endpoint::Scheme::kUnix:
            opts.unixPath = ep.path;
            break;
        case Endpoint::Scheme::kTcp:
            opts.tcpHost = ep.host;
            opts.tcpPort = ep.port;
            break;
        default:
            throw std::runtime_error(
                "server endpoints must be unix:PATH or "
                "tcp:HOST:PORT, got '" +
                ep.uri() + "'");
        }
    }
    return opts;
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      dispatcher_(service_, dispatchOptionsFor(opts_))
{
    // One policy drives both halves: the dispatcher's pending queue
    // (fleet path) and the local service's task-graph ready order.
    service_.setSchedPolicy(opts_.schedPolicy);
}

Server::Server(const Endpoint &endpoint)
    : Server(serverOptionsFor(std::vector<Endpoint>{endpoint}))
{
}

Server::Server(const std::vector<Endpoint> &endpoints)
    : Server(serverOptionsFor(endpoints))
{
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (started_.exchange(true))
        throw std::runtime_error("server already started");
    if (opts_.unixPath.empty() && opts_.tcpPort < 0)
        throw std::runtime_error(
            "no listener configured (need a unix path or tcp port)");

    std::string err;
    if (!opts_.unixPath.empty()) {
        const int fd = listenUnix(opts_.unixPath, &err);
        if (fd < 0)
            throw std::runtime_error("cannot listen on unix:" +
                                     opts_.unixPath + ": " + err);
        listen_fds_.push_back(fd);
    }
    if (opts_.tcpPort >= 0) {
        const int fd = listenTcp(opts_.tcpHost, opts_.tcpPort, &err);
        if (fd < 0)
            throw std::runtime_error(
                "cannot listen on tcp:" + opts_.tcpHost + ":" +
                std::to_string(opts_.tcpPort) + ": " + err);
        bound_tcp_port_ = boundTcpPort(fd);
        listen_fds_.push_back(fd);
    }
    for (const int fd : listen_fds_)
        accept_threads_.emplace_back([this, fd] { acceptLoop(fd); });
    // Store maintenance: with a GC bound and a forced store root, a
    // background thread keeps the shared store within budget while
    // the daemon serves (lease-aware — see store/lifecycle/gc.h).
    if (!opts_.forceStoreDir.empty() &&
        (opts_.gcBytes > 0 || opts_.gcAgeSeconds > 0))
        gc_thread_ = std::thread([this] { gcLoop(); });
}

void
Server::gcLoop()
{
    store::GcOptions gc;
    gc.maxBytes = opts_.gcBytes;
    gc.maxAgeMs =
        static_cast<int64_t>(opts_.gcAgeSeconds * 1000.0);
    const double interval_s =
        opts_.gcIntervalSeconds > 0 ? opts_.gcIntervalSeconds : 300.0;
    const auto interval = std::chrono::duration<double>(interval_s);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_.load()) {
        lock.unlock();
        const store::GcReport report =
            store::runGc(opts_.forceStoreDir, gc);
        lock.lock();
        ++stats_.gcRuns;
        stats_.gcEvicted += report.evicted;
        stats_.gcEvictedBytes += report.evictedBytes;
        gc_cv_.wait_for(lock, interval,
                        [this] { return stopping_.load(); });
    }
}

void
Server::stop()
{
    if (!started_.load())
        return;
    stopping_.store(true);
    admission_cv_.notify_all();
    gc_cv_.notify_all();
    if (gc_thread_.joinable())
        gc_thread_.join();
    for (std::thread &t : accept_threads_)
        if (t.joinable())
            t.join();
    accept_threads_.clear();
    for (const int fd : listen_fds_)
        closeSocket(fd);
    listen_fds_.clear();
    // Connections drain their in-flight request (every admitted cell
    // is delivered or kError'd), then observe stopping_ at the next
    // frame poll and exit.
    std::vector<std::unique_ptr<Connection>> remaining;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        remaining.swap(connections_);
    }
    for (const auto &conn : remaining)
        if (conn->thread.joinable())
            conn->thread.join();
    if (!opts_.unixPath.empty())
        ::unlink(opts_.unixPath.c_str());
}

ServerStats
Server::stats() const
{
    ServerStats s;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s = stats_;
    }
    s.fleet = dispatcher_.stats();
    s.store = service_.storeStats();
    return s;
}

std::string
statsToJson(const ServerStats &stats)
{
    char buf[512];
    std::string out = "{\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"accepted\": %" PRIu64 ",\n"
                  "  \"rejected_clients\": %" PRIu64 ",\n"
                  "  \"requests\": %" PRIu64 ",\n"
                  "  \"rejected_requests\": %" PRIu64 ",\n"
                  "  \"cells\": %" PRIu64 ",\n"
                  "  \"failed_cells\": %" PRIu64 ",\n"
                  "  \"disconnects\": %" PRIu64 ",\n",
                  stats.accepted, stats.rejectedClients, stats.requests,
                  stats.rejectedRequests, stats.cells,
                  stats.failedCells, stats.disconnects);
    out += buf;
    const DispatchStats &f = stats.fleet;
    std::snprintf(buf, sizeof(buf),
                  "  \"workers_registered\": %" PRIu64 ",\n"
                  "  \"workers_live\": %" PRIu64 ",\n"
                  "  \"worker_deaths\": %" PRIu64 ",\n"
                  "  \"cells_dispatched\": %" PRIu64 ",\n"
                  "  \"cells_completed_remote\": %" PRIu64 ",\n"
                  "  \"cells_redispatched\": %" PRIu64 ",\n"
                  "  \"cells_local\": %" PRIu64 ",\n"
                  "  \"requests_local_fallback\": %" PRIu64 ",\n"
                  "  \"duplicate_results\": %" PRIu64 ",\n"
                  "  \"malformed_results\": %" PRIu64 ",\n",
                  f.workersRegistered, f.workersLive, f.workerDeaths,
                  f.cellsDispatched, f.cellsCompletedRemote,
                  f.cellsRedispatched, f.cellsLocal,
                  f.requestsLocalFallback, f.duplicateResults,
                  f.malformedResults);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"cells_local_no_workers\": %" PRIu64 ",\n"
                  "  \"cells_local_exhausted\": %" PRIu64 ",\n"
                  "  \"sched_policy\": \"%s\",\n"
                  "  \"queue_depth\": %zu,\n"
                  "  \"queue_depth_peak\": %zu,\n",
                  f.cellsLocalNoWorkers, f.cellsLocalExhausted,
                  f.schedPolicy, f.queueDepth, f.queueDepthPeak);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"wait_small_ms_total\": %.3f,\n"
                  "  \"wait_small_ms_max\": %.3f,\n"
                  "  \"wait_small_count\": %" PRIu64 ",\n"
                  "  \"wait_large_ms_total\": %.3f,\n"
                  "  \"wait_large_ms_max\": %.3f,\n"
                  "  \"wait_large_count\": %" PRIu64 ",\n"
                  "  \"cost_error_abs_ms_sum\": %.3f,\n"
                  "  \"cost_error_samples\": %" PRIu64 ",\n",
                  f.waitSmallMsTotal, f.waitSmallMsMax,
                  f.waitSmallCount, f.waitLargeMsTotal,
                  f.waitLargeMsMax, f.waitLargeCount,
                  f.costErrorAbsMsSum, f.costErrorSamples);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"gc_runs\": %" PRIu64 ",\n"
                  "  \"gc_evicted\": %" PRIu64 ",\n"
                  "  \"gc_evicted_bytes\": %" PRIu64 ",\n",
                  stats.gcRuns, stats.gcEvicted,
                  stats.gcEvictedBytes);
    out += buf;
    out += "  \"store\": " +
           store::storeLayerStatsJson(stats.store, "  ") + ",\n";
    out += "  \"clients\": [";
    for (size_t i = 0; i < f.clientShares.size(); ++i) {
        const sched::ClientShare &c = f.clientShares[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"client\": \"%s\", \"queued\": %zu, "
                      "\"popped\": %" PRIu64
                      ", \"cost_charged\": %.3f, \"deficit\": %.3f}",
                      i ? "," : "", c.client.c_str(), c.queued,
                      c.popped, c.costCharged, c.deficit);
        out += buf;
    }
    out += f.clientShares.empty() ? "],\n" : "\n  ],\n";
    out += "  \"workers\": [";
    for (size_t i = 0; i < f.workers.size(); ++i) {
        const WorkerStat &w = f.workers[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"id\": %" PRIu64
                      ", \"name\": \"%s\", \"live\": %s, "
                      "\"cells_done\": %" PRIu64
                      ", \"in_flight\": %zu}",
                      i ? "," : "", w.id, w.name.c_str(),
                      w.live ? "true" : "false", w.cellsDone,
                      w.inFlight);
        out += buf;
    }
    out += f.workers.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
Server::reapFinished()
{
    std::vector<std::unique_ptr<Connection>> finished;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = connections_.begin();
             it != connections_.end();) {
            if ((*it)->done.load()) {
                finished.push_back(std::move(*it));
                it = connections_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto &conn : finished)
        if (conn->thread.joinable())
            conn->thread.join();
}

void
Server::acceptLoop(int listen_fd)
{
    while (!stopping_.load()) {
        // Reap every iteration: under continuous connection churn the
        // accept queue may never drain, and finished Connection
        // objects plus their unjoined threads must not pile up until
        // an accept lull.
        reapFinished();
        if (!waitReadable(listen_fd, 0.2))
            continue;
        const int fd = acceptClient(listen_fd);
        if (fd < 0)
            continue;
        setSendTimeoutSeconds(fd, kSendStallTimeoutSeconds);

        std::string reject;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.accepted;
            if (live_connections_ >= opts_.maxClients ||
                stopping_.load()) {
                ++stats_.rejectedClients;
                reject = stopping_.load()
                             ? "server is shutting down"
                             : "server at capacity (" +
                                   std::to_string(opts_.maxClients) +
                                   " clients)";
            } else {
                ++live_connections_;
                auto conn = std::make_unique<Connection>();
                Connection *raw = conn.get();
                raw->fd = fd;
                connections_.push_back(std::move(conn));
                raw->thread = std::thread([this, raw] {
                    serveConnection(raw->fd);
                    {
                        std::lock_guard<std::mutex> inner(mutex_);
                        --live_connections_;
                    }
                    raw->done.store(true);
                });
            }
        }
        if (!reject.empty()) {
            // The peer paces this write (up to SO_SNDTIMEO); doing it
            // under mutex_ would let one stalled socket block
            // admission, release() and stats() for every live client.
            writeFrame(fd, FrameType::kError, reject);
            closeSocket(fd);
        }
    }
}

void
Server::serveConnection(int fd)
{
    for (;;) {
        FrameType type;
        std::string payload;
        std::string err;
        const int rc = readFrame(fd, &type, &payload,
                                 opts_.maxFrameBytes, &stopping_, &err,
                                 opts_.idleTimeoutSeconds);
        if (rc == 0)
            break; // clean hangup between requests
        if (rc == -2) {
            // Idle past the configured bound. Not a protocol failure:
            // no kError frame, no disconnect stat — the peer sees a
            // clean EOF and reconnects transparently next request.
            break;
        }
        if (rc < 0) {
            // Protocol violation, torn frame, stalled peer, or our
            // own shutdown: tell the peer why when the stream still
            // works, then drop — after a framing error the stream is
            // unsynchronized and nothing more can be parsed safely.
            if (!stopping_.load()) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.disconnects;
            }
            writeFrame(fd, FrameType::kError,
                       stopping_.load() ? "server is shutting down"
                                        : err);
            break;
        }
        if (type == FrameType::kRegister) {
            // The connection changes species: from here it is a
            // worker channel (kJob out, kCell results in) for its
            // whole life, managed by the dispatcher. It still counts
            // against maxClients — a worker holds a connection slot.
            dispatcher_.serveWorker(fd, payload, &stopping_);
            break;
        }
        if (type != FrameType::kRequest &&
            type != FrameType::kRequestJson) {
            writeFrame(fd, FrameType::kError,
                       "expected a request frame, got type " +
                           std::to_string(static_cast<int>(type)));
            break;
        }
        if (!serveExchange(fd, type, payload))
            break;
    }
    closeSocket(fd);
}

bool
Server::admit(size_t cells)
{
    std::unique_lock<std::mutex> lock(mutex_);
    admission_cv_.wait(lock, [this, cells] {
        // An idle server always admits (a request bigger than the
        // global bound would otherwise deadlock against it); a busy
        // one admits when the new cells fit under the bound.
        return stopping_.load() || in_flight_cells_ == 0 ||
               in_flight_cells_ + cells <= opts_.maxInFlightCells;
    });
    if (stopping_.load())
        return false;
    in_flight_cells_ += cells;
    return true;
}

void
Server::release(size_t cells)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        in_flight_cells_ -= cells;
    }
    admission_cv_.notify_all();
}

bool
Server::serveExchange(int fd, FrameType type,
                      const std::string &payload)
{
    AnalysisRequest req;
    std::string parse_error;
    bool parsed = false;
    if (type == FrameType::kRequestJson) {
        parsed = requestFromJson(payload, &req, &parse_error);
    } else {
        store::ByteReader r(payload);
        parsed = readRequest(r, &req) && r.atEnd();
        if (!parsed)
            parse_error = "binary request failed to deserialize "
                          "(schema mismatch or corrupt frame)";
    }
    const auto reject = [this, fd](const std::string &why) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.rejectedRequests;
        }
        // A rejection is an answered exchange: the connection stays
        // usable for the client's next (hopefully smaller) request.
        return writeFrame(fd, FrameType::kError, why);
    };
    if (!parsed)
        return reject(parse_error);

    const size_t cells = req.kernels.size() * req.specs.size();
    if (cells > opts_.maxCellsPerRequest) {
        return reject("request of " + std::to_string(cells) +
                      " cells exceeds the per-client quota of " +
                      std::to_string(opts_.maxCellsPerRequest));
    }
    if (!opts_.forceStoreDir.empty())
        req.store.storeDir = opts_.forceStoreDir;

    if (!admit(cells))
        return reject("server is shutting down");

    const bool stream_requested =
        req.exec.delivery == ExecutionPolicy::Delivery::kStream;
    bool peer_alive = true;
    AnalysisResponse resp;
    std::string exec_error;
    try {
        resp = dispatcher_.execute(
            req,
            [this, fd, &req, &peer_alive, stream_requested](
                size_t index, const driver::BatchResult &cell) {
                if (!stream_requested || !peer_alive)
                    return;
                store::ByteWriter w;
                w.u32(static_cast<uint32_t>(index));
                AnalysisResponse one = makeResponseShell(req);
                one.cells.push_back(cell);
                writeResponse(w, one);
                // A failed delivery just stops the stream; the batch
                // finishes and its artifacts stay in the shared
                // stores (a reconnecting client re-runs warm).
                if (!writeFrame(fd, FrameType::kCell, w.bytes()))
                    peer_alive = false;
            });
    } catch (const std::exception &e) {
        exec_error = e.what();
    }
    release(cells);

    if (!exec_error.empty())
        return reject("request failed: " + exec_error);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.requests;
        stats_.cells += resp.cells.size();
        for (const driver::BatchResult &cell : resp.cells)
            stats_.failedCells += cell.ok ? 0 : 1;
    }

    store::ByteWriter w;
    writeResponse(w, resp);
    if (!peer_alive || !writeFrame(fd, FrameType::kDone, w.bytes())) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.disconnects;
        return false;
    }
    return true;
}

} // namespace api
} // namespace gpuperf
