#include "api/registry.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "driver/demo_cases.h"

namespace gpuperf {
namespace api {

namespace {

struct Registry
{
    std::mutex mutex;
    std::map<std::string, CaseFactory> factories;
};

/** Argument accessors that turn mistakes into cell failures. */
int64_t
iarg(const CaseRef &ref, size_t index, int64_t fallback,
     size_t required)
{
    if (index < ref.iargs.size())
        return ref.iargs[index];
    if (index < required) {
        throw std::runtime_error(
            "case ref '" + ref.factory + "' needs at least " +
            std::to_string(required) + " integer argument(s), got " +
            std::to_string(ref.iargs.size()));
    }
    return fallback;
}

double
farg(const CaseRef &ref, size_t index, double fallback)
{
    return index < ref.fargs.size() ? ref.fargs[index] : fallback;
}

int
narrow(int64_t v, const char *what)
{
    if (v < -(1ll << 30) || v > (1ll << 30))
        throw std::runtime_error(std::string(what) +
                                 " argument out of range");
    return static_cast<int>(v);
}

/**
 * Wire-input validation: the demo factories enforce these with
 * GPUPERF_ASSERT (a process abort) or int arithmetic that assumes
 * sane sizes; a malformed ref from the wire must instead fail its
 * cell, so re-check here — in 64-bit math, products included — and
 * throw.
 */
void
requirePositive(int64_t v, const char *what)
{
    if (v <= 0)
        throw std::runtime_error(std::string(what) +
                                 " must be positive");
}

void
requirePowerOfTwo(int64_t v, const char *what)
{
    if (v <= 0 || (v & (v - 1)) != 0)
        throw std::runtime_error(std::string(what) +
                                 " must be a power of two");
}

/**
 * Cap a launch (or matrix) size product: keeps the factories' int
 * arithmetic far from overflow and a hostile ref from requesting a
 * multi-GB image. 2^26 threads is ~50x the largest demo launch.
 */
void
requireSaneProduct(int64_t a, int64_t b, const char *what)
{
    if (a * b > (int64_t{1} << 26))
        throw std::runtime_error(std::string(what) +
                                 " is unreasonably large");
}

void
registerBuiltinCases(Registry &r)
{
    // Demo workloads, keyed by family. Integer args lead with the
    // launch shape; the factories validate the rest (power-of-two
    // strides etc.) and throw std::runtime_error-compatible errors
    // via GPUPERF_ASSERT-free explicit checks below.
    r.factories["saxpy"] = [](const CaseRef &ref,
                              const std::string &name) {
        const int grid = narrow(iarg(ref, 0, 0, 2), "grid");
        const int block = narrow(iarg(ref, 1, 0, 2), "block");
        requirePositive(grid, "grid");
        requirePositive(block, "block");
        requireSaneProduct(grid, block, "grid * block");
        return driver::makeSaxpyCase(
            name, grid, block, static_cast<float>(farg(ref, 0, 2.0)));
    };
    r.factories["saxpy-strided"] = [](const CaseRef &ref,
                                      const std::string &name) {
        const int grid = narrow(iarg(ref, 0, 0, 3), "grid");
        const int block = narrow(iarg(ref, 1, 0, 3), "block");
        const int stride = narrow(iarg(ref, 2, 0, 3), "stride");
        requirePositive(grid, "grid");
        requirePositive(block, "block");
        requireSaneProduct(grid, block, "grid * block");
        requirePowerOfTwo(int64_t{grid} * block, "grid * block");
        requirePowerOfTwo(stride, "stride");
        return driver::makeStridedSaxpyCase(name, grid, block, stride);
    };
    r.factories["shared-conflict"] = [](const CaseRef &ref,
                                        const std::string &name) {
        const int grid = narrow(iarg(ref, 0, 0, 3), "grid");
        const int block = narrow(iarg(ref, 1, 0, 3), "block");
        const int stride = narrow(iarg(ref, 2, 0, 3), "stride");
        const int iters = narrow(iarg(ref, 3, 64, 3), "iterations");
        requirePositive(grid, "grid");
        requirePositive(block, "block");
        requirePositive(stride, "stride");
        requirePositive(iters, "iterations");
        requireSaneProduct(grid, block, "grid * block");
        requireSaneProduct(block, int64_t{stride} * 4,
                           "block * stride (shared bytes)");
        requireSaneProduct(iters, 1, "iterations");
        return driver::makeSharedConflictCase(name, grid, block,
                                              stride, iters);
    };
    r.factories["stencil1d"] = [](const CaseRef &ref,
                                  const std::string &name) {
        const int grid = narrow(iarg(ref, 0, 0, 2), "grid");
        const int block = narrow(iarg(ref, 1, 0, 2), "block");
        requirePositive(grid, "grid");
        requirePositive(block, "block");
        requireSaneProduct(grid, block, "grid * block");
        return driver::makeStencil1dCase(name, grid, block);
    };
    r.factories["reduction"] = [](const CaseRef &ref,
                                  const std::string &name) {
        const int grid = narrow(iarg(ref, 0, 0, 2), "grid");
        const int block = narrow(iarg(ref, 1, 0, 2), "block");
        requirePositive(grid, "grid");
        requirePowerOfTwo(block, "block");
        if (block < 2)
            throw std::runtime_error("block must be at least 2");
        requireSaneProduct(grid, block, "grid * block");
        return driver::makeReductionCase(name, grid, block);
    };
    r.factories["spmv-ell"] = [](const CaseRef &ref,
                                 const std::string &name) {
        const int rows = narrow(iarg(ref, 0, 0, 2), "block-rows");
        const int per_row = narrow(iarg(ref, 1, 0, 2),
                                   "blocks-per-row");
        requirePositive(rows, "block-rows");
        requirePositive(per_row, "blocks-per-row");
        requireSaneProduct(rows, int64_t{per_row} * 9,
                           "block-rows * blocks-per-row (entries)");
        return driver::makeSpmvEllCase(name, rows, per_row);
    };
    r.factories["histogram"] = [](const CaseRef &ref,
                                  const std::string &name) {
        const int grid = narrow(iarg(ref, 0, 0, 3), "grid");
        const int block = narrow(iarg(ref, 1, 0, 3), "block");
        const int bins = narrow(iarg(ref, 2, 0, 3), "bins");
        const int items = narrow(iarg(ref, 3, 8, 3), "items");
        requirePositive(grid, "grid");
        requirePositive(block, "block");
        requirePowerOfTwo(bins, "bins");
        if (bins < 2 || bins > 64 || bins > block)
            throw std::runtime_error(
                "bins must be in [2, 64] and at most block");
        requirePositive(items, "items");
        // Bound the factors before the triple product so the 64-bit
        // check itself cannot overflow.
        requireSaneProduct(grid, block, "grid * block");
        requireSaneProduct(int64_t{grid} * block, items,
                           "grid * block * items");
        requireSaneProduct(block, int64_t{bins} * 4,
                           "block * bins (shared bytes)");
        return driver::makeHistogramCase(name, grid, block, bins,
                                         items);
    };
}

Registry &
registry()
{
    static Registry *r = [] {
        auto *fresh = new Registry;
        registerBuiltinCases(*fresh);
        return fresh;
    }();
    return *r;
}

} // namespace

void
registerCase(const std::string &key, CaseFactory factory)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.factories[key] = std::move(factory);
}

bool
caseRegistered(const std::string &key)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.factories.count(key) != 0;
}

std::vector<std::string>
registeredCases()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto &[key, factory] : r.factories) {
        (void)factory;
        names.push_back(key);
    }
    return names;
}

driver::KernelCase
materializeJob(const KernelJob &job)
{
    if (job.isInline()) {
        // The factory copies the captured launch each call, so every
        // evaluation gets a fresh image — and rebuilding hashes to
        // the same profile key every time (the repeatable-factory
        // contract the shared pipeline requires).
        auto inlined = job.inlined;
        driver::KernelCase kc;
        kc.name = job.name;
        kc.make = [inlined]() {
            driver::PreparedLaunch launch(inlined->kernel);
            launch.cfg = inlined->cfg;
            launch.options = inlined->options;
            launch.gmem = inlined->rebuildMemory();
            return launch;
        };
        return kc;
    }
    CaseFactory factory;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        const auto it = r.factories.find(job.ref.factory);
        if (it != r.factories.end())
            factory = it->second;
    }
    if (!factory) {
        throw std::runtime_error("unknown case factory '" +
                                 job.ref.factory +
                                 "' (register it with "
                                 "api::registerCase)");
    }
    return factory(job.ref, job.name);
}

} // namespace api
} // namespace gpuperf
