/**
 * @file
 * Pre-execution cost prediction for per-cell requests — the glue
 * between the api seams (fleet dispatcher, spool claim order) and
 * sched::CostModel.
 *
 * Before a cell runs, no profile key exists yet, so the observation
 * key here is the cell's CONTENT (a hash of its serialized request
 * bytes): two submissions of the same work share one cost history,
 * and a re-dispatched or resubmitted job predicts from the wall times
 * its earlier runs recorded. The static fallback reads the launch
 * shape straight off the request (instruction count x resident warps
 * for inline launches; registry refs are materialized once and their
 * features cached by reference identity).
 */

#ifndef GPUPERF_API_CELL_COST_H
#define GPUPERF_API_CELL_COST_H

#include <string>

#include "api/request.h"
#include "sched/cost.h"

namespace gpuperf {
namespace api {

/**
 * The observation key of one cell request: a content hash of its
 * serialized bytes, shared across processes and resubmissions.
 */
std::string cellCostKey(const AnalysisRequest &cell);

/**
 * Static cost features of @p req read off the request alone (never
 * executes anything; a ref whose factory throws contributes zero).
 * Sums over every (kernel, spec) cell, so it works for whole
 * requests as well as single-cell jobs.
 */
sched::CostFeatures cellCostFeatures(const AnalysisRequest &req);

/** Predicted cost of @p cell: observed EWMA else static fallback. */
double estimateCellCost(const sched::CostModel &model,
                        const AnalysisRequest &cell);

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_CELL_COST_H
