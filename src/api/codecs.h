/**
 * @file
 * Versioned codecs for the AnalysisService request/response schema —
 * what makes a job a wire-portable artifact.
 *
 * Two formats, both complete and lossless:
 *
 *  - BINARY (store/serializer primitives): the compact machine
 *    format the spool protocol ships between processes. Entry files
 *    carry the shared magic + kSchemaVersion + a caller key, so a
 *    stale or foreign file degrades to a load failure, never to a
 *    misparsed job.
 *  - JSON (api/json.h): the human- and tool-facing format. Finite
 *    doubles are emitted with %.17g (exact round trip); non-finite
 *    doubles as the strings "nan"/"inf"/"-inf"; 64-bit integers that
 *    may exceed 2^53 as decimal strings; raw memory images as hex.
 *    Field order is deterministic, so two equal responses dump to
 *    byte-identical text (the CI api-smoke diffs on this).
 *
 * Every reader returns false (with a message where the signature
 * allows) on malformed input; a bad job fails, it never crashes the
 * service.
 */

#ifndef GPUPERF_API_CODECS_H
#define GPUPERF_API_CODECS_H

#include <string>

#include "api/request.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {

// --- Binary ----------------------------------------------------------

void writeRequest(store::ByteWriter &w, const AnalysisRequest &req);
bool readRequest(store::ByteReader &r, AnalysisRequest *req);

void writeResponse(store::ByteWriter &w, const AnalysisResponse &resp);
bool readResponse(store::ByteReader &r, AnalysisResponse *resp);

/**
 * Entry-file wrappers (atomic write, magic + kSchemaVersion + @p key
 * validated on read). The key distinguishes kinds of payloads sharing
 * a directory — the spool protocol keys entries by job id.
 */
bool saveRequestFile(const std::string &path, const AnalysisRequest &req,
                     const std::string &key = "request");
bool loadRequestFile(const std::string &path, AnalysisRequest *req,
                     const std::string &key = "request");
bool saveResponseFile(const std::string &path,
                      const AnalysisResponse &resp,
                      const std::string &key = "response");
bool loadResponseFile(const std::string &path, AnalysisResponse *resp,
                      const std::string &key = "response");

// --- JSON ------------------------------------------------------------

std::string requestToJson(const AnalysisRequest &req);
bool requestFromJson(const std::string &text, AnalysisRequest *req,
                     std::string *error);

std::string responseToJson(const AnalysisResponse &resp);
bool responseFromJson(const std::string &text, AnalysisResponse *resp,
                      std::string *error);

// --- Equality (tests, smoke diffs) ----------------------------------

/**
 * Bit-exact equality of two responses: every cell field, every
 * double compared by value identity (NaN == NaN). What "pinned
 * bit-identical" means, in one reusable place.
 */
bool responsesEqual(const AnalysisResponse &a, const AnalysisResponse &b,
                    std::string *whyNot = nullptr);

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_CODECS_H
