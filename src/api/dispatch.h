/**
 * @file
 * api::Dispatcher — the fleet half of the analysis server. PR 6's
 * gpuperf-serve accepted requests from many clients but executed
 * every admitted cell in its own process; the dispatcher closes the
 * ROADMAP's loop by fanning cells out to remote gpuperf-worker
 * processes over the SAME framed socket transport the clients speak:
 *
 *   worker -> server   kRegister(name)      join the fleet
 *   server -> worker   kRegister(id)        registration ack
 *   server -> worker   kJob(u64 id + binary single-cell request)
 *   worker -> server   kCell(u64 id + binary single-cell response)
 *
 * Each admitted request is split into single-cell jobs (the same
 * cellRequest derivation the spool protocol uses — which is what
 * makes fleet responses bit-identical to in-process execution, cell
 * for cell), queued, and pushed to the least-loaded live workers,
 * bounded per worker. Results stream back in completion order and
 * are reassembled kernel-major.
 *
 * Failure containment:
 *
 *  - NO workers live: the whole request falls back to the local
 *    AnalysisService (batch path, streaming intact) — a fleet of
 *    zero is just PR 6's server;
 *  - a worker DIES holding jobs (EOF, torn frame, SIGKILL): its
 *    in-flight jobs are stolen back onto the queue and re-dispatched
 *    to surviving workers — the socket analogue of spool
 *    crash-steal;
 *  - a job times out (jobTimeoutSeconds) or exceeds the re-dispatch
 *    bound: the request's own thread executes it locally — forward
 *    progress never depends on fleet health;
 *  - results are EXACTLY-ONCE: first completion wins, late
 *    duplicates (a stolen job's original worker answering after
 *    all) are counted and dropped;
 *  - a malformed result frame kills the worker connection that sent
 *    it (its jobs are stolen back), never the client waiting on the
 *    cell.
 *
 * Workers sharing the server's forced store root also share
 * calibrations/profiles/timings through store::Lease, so an N-cell
 * batch spread over W workers still calibrates each spec once
 * globally.
 */

#ifndef GPUPERF_API_DISPATCH_H
#define GPUPERF_API_DISPATCH_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "api/endpoint.h"
#include "api/service.h"
#include "api/transport.h"
#include "sched/cost.h"
#include "sched/policy.h"

namespace gpuperf {
namespace api {

struct DispatchOptions
{
    /** Jobs in flight per registered worker. */
    size_t maxInFlightPerWorker = 4;
    /** Re-dispatch a dispatched-but-unanswered job after this. */
    double jobTimeoutSeconds = 600.0;
    /** Bound accepted on worker result frames. */
    uint64_t maxFrameBytes = kMaxFrameBytesDefault;
    /**
     * Pending-queue order (`?sched=` endpoint option). Changes which
     * queued job the next free worker slot takes — never the
     * response, which stays bit-identical to kFifo.
     */
    sched::SchedPolicy policy = sched::SchedPolicy::kFifo;
};

/** One worker's health, as seen by Server::stats(). */
struct WorkerStat
{
    uint64_t id = 0;
    std::string name;
    bool live = false;
    uint64_t cellsDone = 0;
    size_t inFlight = 0;
};

/** Monotonic fleet counters (telemetry; torn reads are fine). */
struct DispatchStats
{
    uint64_t workersRegistered = 0; ///< cumulative kRegister accepts
    uint64_t workersLive = 0;       ///< currently connected
    uint64_t workerDeaths = 0;      ///< connections lost/killed
    uint64_t cellsDispatched = 0;   ///< kJob frames sent (re-sends incl.)
    uint64_t cellsCompletedRemote = 0; ///< results accepted from workers
    uint64_t cellsRedispatched = 0; ///< jobs stolen back (death/timeout)
    uint64_t cellsLocal = 0;        ///< cells executed by the fallback
    /** cellsLocal split: taken because NO worker was live... */
    uint64_t cellsLocalNoWorkers = 0;
    /** ...vs. taken after exhausting the re-dispatch bound. */
    uint64_t cellsLocalExhausted = 0;
    uint64_t requestsLocalFallback = 0; ///< whole requests run locally
    uint64_t duplicateResults = 0;  ///< late/duplicate results dropped
    uint64_t malformedResults = 0;  ///< result frames that failed to parse

    // --- Scheduler telemetry ------------------------------------------
    const char *schedPolicy = "fifo"; ///< active pending-queue policy
    size_t queueDepth = 0;            ///< jobs waiting right now
    size_t queueDepthPeak = 0;        ///< high-water mark
    /** Queue wait of dispatched jobs, split small/large by predicted
     *  cost relative to the job's own batch (per-class tail). */
    double waitSmallMsTotal = 0.0;
    double waitSmallMsMax = 0.0;
    uint64_t waitSmallCount = 0;
    double waitLargeMsTotal = 0.0;
    double waitLargeMsMax = 0.0;
    uint64_t waitLargeCount = 0;
    /** |predicted - measured| wall time accumulation. */
    double costErrorAbsMsSum = 0.0;
    uint64_t costErrorSamples = 0;
    /** Per-client fair-share accounting (queued/popped/cost). */
    std::vector<sched::ClientShare> clientShares;
    /** Live workers first, then dead ones (totals preserved). */
    std::vector<WorkerStat> workers;
};

class Dispatcher
{
  public:
    /** Local-takeover bound: a job stolen this often runs locally. */
    static constexpr int kMaxRedispatches = 3;

    Dispatcher(AnalysisService &local, DispatchOptions opts = {});
    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /**
     * Execute @p req: through the fleet when any worker is live
     * (per-cell jobs, streamed deliveries in completion order),
     * straight through the local AnalysisService otherwise. Either
     * way the response is bit-identical to in-process execution
     * (responsesEqual) — pinned by tests/test_dispatch.cc. A
     * throwing @p onCell abandons later deliveries and rethrows
     * after the batch drains, exactly like AnalysisService::execute.
     */
    AnalysisResponse execute(const AnalysisRequest &req,
                             const CellCallback &onCell = {});

    /**
     * Adopt @p fd as a worker channel after its kRegister hello
     * (@p hello = the worker's self-reported name). Blocks for the
     * connection's life pumping jobs out and results in; returns
     * when the worker hangs up, breaks protocol, or @p stop turns
     * true. The caller still owns (and closes) the fd afterwards.
     */
    void serveWorker(int fd, const std::string &hello,
                     const std::atomic<bool> *stop);

    size_t liveWorkers() const;
    DispatchStats stats() const;

  private:
    struct Batch;

    struct Job
    {
        uint64_t id = 0;
        AnalysisRequest cell;
        std::string payload; ///< prebuilt kJob payload (id + request)
        size_t index = 0;    ///< kernel-major slot in the batch
        Batch *batch = nullptr;
        uint64_t assignedWorker = 0; ///< 0 = queued/unassigned
        std::chrono::steady_clock::time_point queuedAt;
        std::chrono::steady_clock::time_point dispatchedAt;
        int redispatches = 0;
        bool done = false;
        /** Cost-model observation key (cell content hash). */
        std::string costKey;
        sched::CostFeatures features;
        double cost = 0.0; ///< predicted cost at enqueue, ms
        /** Predicted cost above its batch's mean (wait-class split). */
        bool large = false;
    };

    struct Worker
    {
        uint64_t id = 0;
        int fd = -1;
        std::string name;
        uint64_t cellsDone = 0;
        std::set<uint64_t> inFlight;
        /**
         * Serializes kJob writes and gates them on !dead: the fd is
         * closed only after the remover has held this mutex, so no
         * sender can ever write a stale (possibly reused) fd.
         */
        std::mutex sendMutex;
        bool dead = false;
    };

    struct Batch
    {
        AnalysisResponse resp; ///< cells preallocated, slots filled
        const CellCallback *onCell = nullptr;
        bool streaming = false;
        size_t remaining = 0;
        size_t deliveriesInFlight = 0;
        bool callbackFailed = false;
        std::string callbackError;
        /** Serializes onCell invocations across worker threads. */
        std::mutex deliverMutex;
    };

    /** Assign queued jobs to free workers and send (outside mutex_). */
    void pump();
    /** Record a job's measured wall time into the cost model. */
    void observeJob(const Job &job, double ms);
    /** Account a popped job's queue wait. Caller holds mutex_. */
    void accountWaitLocked(const Job &job);
    /** One kCell result from @p worker_id. False = kill the worker. */
    bool handleResult(uint64_t worker_id, const std::string &payload);
    /** Unregister, steal its in-flight jobs back onto the queue. */
    void removeWorker(uint64_t id);
    /** Fill the job's slot, deliver, retire it. Unlocks to deliver. */
    void completeLocked(std::unique_lock<std::mutex> &lock, Job *job,
                        driver::BatchResult cell);
    void requeueLocked(Job *job);
    size_t liveWorkersLocked() const;

    AnalysisService &local_;
    DispatchOptions opts_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<uint64_t, std::shared_ptr<Worker>> workers_;
    std::vector<WorkerStat> dead_workers_;
    std::map<uint64_t, Job *> jobs_; ///< every un-retired job, by id
    /** Unassigned jobs, ordered by opts_.policy (crash-stolen jobs
     *  re-enter urgent, FIFO ahead of everything). */
    sched::PendingQueue<Job *> queue_;
    /** In-process cost history driving queue_'s predictions. */
    sched::CostModel costModel_;
    uint64_t job_counter_ = 0;
    uint64_t worker_counter_ = 0;
    DispatchStats stats_;
};

// --- The worker side --------------------------------------------------

struct WorkerLoopOptions
{
    /** Registration name ("" = "worker-<pid>"). */
    std::string name;
    /** Stop after this many executed jobs (0 = until hangup). */
    size_t maxJobs = 0;
    /** Test hook: observe each job before executing it. */
    std::function<void(const AnalysisRequest &cell)> onJob;
};

struct WorkerLoopStats
{
    size_t executed = 0;
    size_t failedCells = 0;
};

/**
 * Register with the gpuperf-serve daemon at @p server (unix:/tcp:)
 * and execute kJob frames through @p service until the server hangs
 * up, @p stop turns true, or opts.maxJobs is reached. Per-job
 * failures (malformed cell, throwing analysis) answer with a failed
 * cell — they never kill the worker. Throws std::runtime_error when
 * the server is unreachable or registration is refused.
 */
WorkerLoopStats workerServe(const Endpoint &server,
                            AnalysisService &service,
                            const std::atomic<bool> *stop = nullptr,
                            const WorkerLoopOptions &opts = {});

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_DISPATCH_H
