#include "api/service.h"

#include <stdexcept>
#include <utility>

#include "api/codecs.h"
#include "api/registry.h"

namespace gpuperf {
namespace api {

namespace {

/**
 * Materialize every kernel job up front. A job whose materialization
 * fails (unknown factory, bad arguments) still occupies its batch
 * row — its cells must fail, not vanish — so it becomes a case whose
 * factory rethrows the materialization error.
 */
std::vector<driver::KernelCase>
materializeAll(const AnalysisRequest &req)
{
    std::vector<driver::KernelCase> cases;
    cases.reserve(req.kernels.size());
    for (const KernelJob &job : req.kernels) {
        try {
            cases.push_back(materializeJob(job));
        } catch (const std::exception &e) {
            driver::KernelCase broken;
            broken.name = job.name;
            const std::string message = e.what();
            broken.make = [message]() -> driver::PreparedLaunch {
                throw std::runtime_error(message);
            };
            cases.push_back(std::move(broken));
        }
    }
    return cases;
}

/**
 * The wire-input mirror of arch::GpuSpec::validate(): the same rules
 * (plus positivity of every field the simulators divide by), but
 * THROWING instead of fatal()-exiting. A malformed spec from a spool
 * job or JSON request must fail that request, never crash the
 * service — and in spool mode a crash would park the job for the
 * next worker to crash on.
 */
void
validateSpec(const arch::GpuSpec &s)
{
    const auto bad = [&s](const std::string &what) {
        throw std::runtime_error("spec '" + s.name + "': " + what);
    };
    if (s.numSms <= 0 || s.smsPerCluster <= 0 ||
        s.numSms % s.smsPerCluster != 0)
        bad("SM count not divisible into clusters");
    if (s.spsPerSm <= 0 || s.sfuMulPerSm < 0 || s.sfuPerSm < 0 ||
        s.dpPerSm < 0)
        bad("bad functional-unit counts");
    if (s.coalesceGroup <= 0 || s.warpSize <= 0 ||
        s.warpSize % s.coalesceGroup != 0)
        bad("warp size not a multiple of the coalescing group");
    if (s.minSegmentBytes <= 0 ||
        s.maxSegmentBytes < s.minSegmentBytes ||
        (s.minSegmentBytes & (s.minSegmentBytes - 1)) != 0)
        bad("bad segment sizes");
    if (s.numSharedBanks <= 0 || s.sharedBankWidth <= 0 ||
        s.sharedIssueGroup <= 0)
        bad("bad shared-memory organization");
    // !(x > 0) also rejects NaN clocks (JSON can carry "nan").
    if (!(s.coreClockHz > 0) || !(s.memClockHz > 0) ||
        s.busWidthBits <= 0)
        bad("bad clocks or bus width");
    if (s.registersPerSm < 0 || s.sharedMemPerSm < 0 ||
        s.maxThreadsPerSm <= 0 || s.maxThreadsPerBlock <= 0 ||
        s.maxBlocksPerSm <= 0 || s.maxWarpsPerSm <= 0 ||
        s.registerAllocUnit <= 0 || s.sharedAllocUnit <= 0 ||
        s.sharedStaticPerBlock < 0)
        bad("bad per-SM resource ceilings");
    if (s.maxWarpsPerSm * s.warpSize < s.maxThreadsPerSm)
        bad("warp ceiling cannot cover thread ceiling");
    if (s.aluDepCycles < 0 || s.sharedDepCycles < 0 ||
        !(s.warpSharedPassIntervalCycles >= 0) ||
        s.globalLatencyCycles < 0 || s.transactionOverheadCycles < 0 ||
        !(s.issueOverheadCycles >= 0))
        bad("bad timing parameters");
    if (s.textureCacheEnabled &&
        (s.textureCacheBytesPerCluster <= 0 ||
         s.textureCacheLineBytes <= 0 || s.textureCacheWays <= 0 ||
         s.textureHitLatencyCycles < 0))
        bad("bad texture-cache parameters");
}

} // namespace

void
validateRequest(const AnalysisRequest &req)
{
    if (req.schemaVersion != kSchemaVersion) {
        throw std::runtime_error(
            "request schema version " +
            std::to_string(req.schemaVersion) +
            " is not supported (expected " +
            std::to_string(kSchemaVersion) + ")");
    }
    // Specs first: the inline-launch checks below compare against
    // spec ceilings, which must themselves be sane to blame the
    // right party.
    for (const arch::GpuSpec &spec : req.specs)
        validateSpec(spec);
    for (const KernelJob &job : req.kernels) {
        if (!job.isInline() && job.ref.factory.empty()) {
            throw std::runtime_error(
                "kernel job '" + job.name +
                "' has neither a case ref nor an inline launch");
        }
        if (!job.isInline())
            continue;
        // Inline launches carry their shape on the wire; the checks
        // the simulators enforce with fatal() must be re-validated
        // here as throws — against every spec of the request, since
        // the per-spec launch-ceiling revalidation is fatal() too.
        const InlineLaunch &in = *job.inlined;
        const auto bad = [&job](const std::string &what) {
            throw std::runtime_error("inline job '" + job.name +
                                     "': " + what);
        };
        if (in.cfg.gridDim <= 0 || in.cfg.blockDim <= 0)
            bad("empty grid");
        if (int64_t{in.cfg.gridDim} * in.cfg.blockDim >
            (int64_t{1} << 32))
            bad("launch is unreasonably large");
        if (in.options.sampleBlocks <= 0)
            bad("sampleBlocks must be positive");
        for (const arch::GpuSpec &spec : req.specs) {
            if (in.cfg.blockDim > spec.maxThreadsPerBlock)
                bad("block of " + std::to_string(in.cfg.blockDim) +
                    " threads exceeds spec '" + spec.name +
                    "' ceiling of " +
                    std::to_string(spec.maxThreadsPerBlock));
            if (in.kernel.sharedBytes() > spec.sharedMemPerSm)
                bad("shared memory exceeds spec '" + spec.name +
                    "' SM capacity");
        }
    }
}

AnalysisResponse
makeResponseShell(const AnalysisRequest &req)
{
    AnalysisResponse resp;
    resp.jobName = req.jobName;
    resp.numKernels = static_cast<uint32_t>(req.kernels.size());
    resp.numSpecs = static_cast<uint32_t>(req.specs.size());
    return resp;
}

driver::BatchRunner::Options
AnalysisService::executorOptions(const AnalysisRequest &req)
{
    driver::BatchRunner::Options opts;
    opts.numThreads = req.exec.numThreads;
    opts.storeDir = req.store.storeDir;
    opts.calibrationCacheDir = req.store.calibrationCacheDir;
    opts.reuseStoredResults = req.store.reuseStoredResults;
    opts.shareProfiles =
        req.exec.pipeline == ExecutionPolicy::Pipeline::kShared;
    opts.shareTiming = req.exec.shareTiming;
    opts.engine = req.exec.engine;
    return opts;
}

std::shared_ptr<driver::BatchRunner>
AnalysisService::executorHandleFor(const AnalysisRequest &req)
{
    driver::BatchRunner::Options opts = executorOptions(req);
    std::lock_guard<std::mutex> lock(mutex_);
    opts.schedPolicy = schedPolicy_;
    // Executors are shared per distinct policy so repeated requests
    // reuse in-memory memos; the key serializes every option field
    // (the service-level sched policy included, so a mid-life switch
    // builds a fresh executor instead of mutating a running one).
    const std::string key =
        std::to_string(opts.numThreads) + "|" + opts.storeDir + "|" +
        opts.calibrationCacheDir + "|" +
        (opts.shareProfiles ? "S" : "s") +
        (opts.reuseStoredResults ? "R" : "r") +
        (opts.shareTiming ? "T" : "t") +
        std::to_string(static_cast<int>(opts.engine)) + "|" +
        sched::schedPolicyName(opts.schedPolicy);
    Executor &executor = executors_[key];
    if (!executor.runner)
        executor.runner = std::make_shared<driver::BatchRunner>(opts);
    executor.lastUse = ++useCounter_;
    // Bounded cache: a long-lived worker serving many distinct store
    // policies (one per parent's temp store) must not hoard a thread
    // pool and memo set per policy forever. Evict the LRU entry; an
    // executor mid-run survives through the caller's shared_ptr.
    while (executors_.size() > kMaxExecutors) {
        auto victim = executors_.end();
        for (auto it = executors_.begin(); it != executors_.end();
             ++it) {
            if (it->first != key &&
                (victim == executors_.end() ||
                 it->second.lastUse < victim->second.lastUse)) {
                victim = it;
            }
        }
        if (victim == executors_.end())
            break;
        // Fold the doomed executor's store counters into the retired
        // accumulator: eviction must never make a stats() counter go
        // backwards.
        retired_ += victim->second.runner->storeStats();
        executors_.erase(victim);
    }
    return executor.runner;
}

driver::BatchRunner &
AnalysisService::executorFor(const AnalysisRequest &req)
{
    return *executorHandleFor(req);
}

AnalysisResponse
AnalysisService::execute(const AnalysisRequest &req,
                         const CellCallback &onCell, StreamStats *stats)
{
    validateRequest(req);
    AnalysisResponse resp = makeResponseShell(req);
    resp.cells.resize(req.kernels.size() * req.specs.size());
    if (resp.cells.empty()) {
        if (stats)
            *stats = StreamStats{};
        return resp;
    }

    const std::vector<driver::KernelCase> cases = materializeAll(req);
    // Hold the handle across the whole batch: LRU eviction by a
    // concurrent request for another policy must not destroy a
    // running executor.
    const std::shared_ptr<driver::BatchRunner> executorHold =
        executorHandleFor(req);
    driver::BatchRunner &executor = *executorHold;

    const bool stream =
        onCell && req.exec.delivery == ExecutionPolicy::Delivery::kStream;
    const StreamStats got = executor.runStream(
        cases, req.specs, req.sweep,
        [&resp, &onCell, stream](size_t index,
                                 driver::BatchResult cell) {
            if (stream)
                onCell(index, cell);
            resp.cells[index] = std::move(cell);
        });
    if (stats)
        *stats = got;
    return resp;
}

std::shared_ptr<const model::CalibrationTables>
AnalysisService::calibrationFor(const AnalysisRequest &req,
                                const arch::GpuSpec &spec)
{
    return executorHandleFor(req)->calibrationFor(spec);
}

void
AnalysisService::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &entry : executors_)
        retired_ += entry.second.runner->storeStats();
    executors_.clear();
}

store::StoreLayerStats
AnalysisService::storeStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    store::StoreLayerStats s = retired_;
    for (const auto &entry : executors_)
        s += entry.second.runner->storeStats();
    return s;
}

void
AnalysisService::setSchedPolicy(sched::SchedPolicy policy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    schedPolicy_ = policy;
}

sched::SchedPolicy
AnalysisService::schedPolicy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return schedPolicy_;
}

void
AnalysisService::adoptCalibration(
    const AnalysisRequest &req, const arch::GpuSpec &spec,
    std::shared_ptr<const model::CalibrationTables> tables)
{
    executorHandleFor(req)->adoptCalibration(spec, std::move(tables));
}

} // namespace api
} // namespace gpuperf
