#include "api/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gpuperf {
namespace api {

Json
Json::boolean(bool v)
{
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.kind_ = Kind::kNumber;
    j.number_ = v;
    return j;
}

Json
Json::str(std::string v)
{
    Json j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::kArray;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::kObject;
    return j;
}

void
Json::push(Json v)
{
    items_.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    for (size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key) {
            values_[i] = std::move(v);
            return;
        }
    }
    keys_.push_back(key);
    values_.push_back(std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    for (size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key)
            return &values_[i];
    }
    return nullptr;
}

namespace {

void
appendEscaped(std::string *out, const std::string &s)
{
    out->push_back('"');
    for (const char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        switch (c) {
          case '"': *out += "\\\""; break;
          case '\\': *out += "\\\\"; break;
          case '\n': *out += "\\n"; break;
          case '\r': *out += "\\r"; break;
          case '\t': *out += "\\t"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                *out += buf;
            } else {
                out->push_back(c);
            }
        }
    }
    out->push_back('"');
}

void
appendNumber(std::string *out, double v)
{
    // %.17g round-trips every finite double exactly through a
    // correctly rounded strtod. Non-finite values never reach here
    // (the schema layer encodes them as strings).
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
}

void
appendIndent(std::string *out, int indent)
{
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * 2, ' ');
}

} // namespace

void
Json::dumpTo(std::string *out, int indent) const
{
    switch (kind_) {
      case Kind::kNull: *out += "null"; break;
      case Kind::kBool: *out += bool_ ? "true" : "false"; break;
      case Kind::kNumber: appendNumber(out, number_); break;
      case Kind::kString: appendEscaped(out, string_); break;
      case Kind::kArray:
        if (items_.empty()) {
            *out += "[]";
            break;
        }
        out->push_back('[');
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out->push_back(',');
            appendIndent(out, indent + 1);
            items_[i].dumpTo(out, indent + 1);
        }
        appendIndent(out, indent);
        out->push_back(']');
        break;
      case Kind::kObject:
        if (keys_.empty()) {
            *out += "{}";
            break;
        }
        out->push_back('{');
        for (size_t i = 0; i < keys_.size(); ++i) {
            if (i)
                out->push_back(',');
            appendIndent(out, indent + 1);
            appendEscaped(out, keys_[i]);
            *out += ": ";
            values_[i].dumpTo(out, indent + 1);
        }
        appendIndent(out, indent);
        out->push_back('}');
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(&out, 0);
    out.push_back('\n');
    return out;
}

namespace {

/** Recursive-descent parser over a raw byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parse(Json *out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool fail(const std::string &what)
    {
        if (error_ && error_->empty()) {
            *error_ = "JSON error at byte " + std::to_string(pos_) +
                      ": " + what;
        }
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool literal(const char *word)
    {
        const size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool parseString(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // The codecs only emit \u00xx control escapes; decode
                // the general case as UTF-8 anyway.
                if (code < 0x80) {
                    out->push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out->push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out->push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out->push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(Json *out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return fail("malformed number");
        pos_ += static_cast<size_t>(end - start);
        *out = Json::number(v);
        return true;
    }

    bool parseValue(Json *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                *out = std::move(obj);
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                Json value;
                if (!parseValue(&value, depth + 1))
                    return false;
                obj.set(key, std::move(value));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    *out = std::move(obj);
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                *out = std::move(arr);
                return true;
            }
            for (;;) {
                Json value;
                if (!parseValue(&value, depth + 1))
                    return false;
                arr.push(std::move(value));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    *out = std::move(arr);
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json::str(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            *out = Json::boolean(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            *out = Json::boolean(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            *out = Json();
            return true;
        }
        return parseNumber(out);
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json *out, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.parse(out);
}

std::string
hexEncode(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const unsigned char u = static_cast<unsigned char>(c);
        out.push_back(digits[u >> 4]);
        out.push_back(digits[u & 0xf]);
    }
    return out;
}

bool
hexDecode(const std::string &hex, std::string *bytes)
{
    if (hex.size() % 2 != 0)
        return false;
    bytes->clear();
    bytes->reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        unsigned v = 0;
        for (int k = 0; k < 2; ++k) {
            const char c = hex[i + static_cast<size_t>(k)];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                return false;
        }
        bytes->push_back(static_cast<char>(v));
    }
    return true;
}

} // namespace api
} // namespace gpuperf
