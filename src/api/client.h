/**
 * @file
 * ServeClient — the socket backend of api::Transport: a connection to
 * a gpuperf-serve daemon over TCP or a Unix-domain socket, speaking
 * the framed protocol in api/transport.h.
 *
 * One client is one connection carrying one request at a time;
 * repeated run() calls reuse the connection (and reconnect after a
 * server restart). Many-client concurrency is many ServeClients —
 * each test/bench thread owns one. The client is NOT thread-safe;
 * share nothing or lock outside.
 */

#ifndef GPUPERF_API_CLIENT_H
#define GPUPERF_API_CLIENT_H

#include <cstdint>
#include <string>

#include "api/transport.h"

namespace gpuperf {
namespace api {

class ServeClient : public Transport
{
  public:
    /** Client for a gpuperf-serve Unix socket at @p path. */
    static ServeClient overUnix(std::string path);
    /** Client for a gpuperf-serve TCP endpoint. */
    static ServeClient overTcp(std::string host, int port);

    ~ServeClient() override;
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&) = delete;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Execute @p req on the server. Connects on first use; throws
     * std::runtime_error when the server is unreachable, the stream
     * breaks mid-exchange, or the server answers kError (admission
     * rejection, malformed request, shutdown). kCell frames invoke
     * @p onCell in completion order; the returned response is the
     * server's authoritative kDone payload, bit-identical to an
     * in-process run of the same request.
     */
    AnalysisResponse run(const AnalysisRequest &req,
                         const CellCallback &onCell = {}) override;

    std::string describe() const override;

    /**
     * Send the request as JSON instead of binary (exercises the
     * server's kRequestJson path; responses are binary either way).
     */
    void setJsonRequests(bool json) { json_requests_ = json; }

    /** Bound accepted on reply frames (server streams cells small). */
    void setMaxFrameBytes(uint64_t bytes) { max_frame_bytes_ = bytes; }

    /**
     * Deadline (seconds) for each response frame to START arriving.
     * Negative — the default — waits indefinitely: a slow cold batch
     * is not an error, and a dead server still surfaces immediately
     * as a closed connection. Mid-frame stalls stay bounded by
     * kFrameStallTimeoutSeconds either way.
     */
    void setResponseTimeout(double seconds)
    {
        response_timeout_seconds_ = seconds;
    }

    /** Drop the connection (next run() reconnects). */
    void disconnect();

  private:
    ServeClient(std::string unix_path, std::string host, int port);
    void connectIfNeeded();
    /** One framed request/response exchange on the live connection. */
    AnalysisResponse exchange(const AnalysisRequest &req,
                              const CellCallback &onCell,
                              bool *response_started);

    std::string unix_path_; ///< non-empty = Unix-domain client
    std::string host_;
    int port_ = -1;
    int fd_ = -1;
    bool json_requests_ = false;
    uint64_t max_frame_bytes_ = kMaxFrameBytesDefault;
    double response_timeout_seconds_ = -1.0;
};

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_CLIENT_H
