/**
 * @file
 * Minimal JSON value tree for the public request/response codecs: a
 * hand-rolled writer and recursive-descent parser with zero external
 * dependencies, tuned for round-trip fidelity rather than generality.
 *
 * Fidelity contract (what the api codecs rely on):
 *  - finite doubles are emitted with %.17g, which strtod() parses back
 *    to the identical IEEE-754 bit pattern — exact f64 round trips;
 *  - non-finite doubles and 64-bit integers wider than 2^53 are the
 *    schema layer's problem (api/codecs.cc emits them as strings);
 *  - objects preserve insertion order, so a dump of a parsed dump is
 *    byte-identical — two responses can be diffed as text.
 *
 * Locale caveat: number formatting/parsing uses snprintf("%.17g") and
 * strtod(), which honour LC_NUMERIC. An embedding application that
 * switches to a comma-decimal locale (e.g. setlocale(LC_ALL, "") under
 * de_DE) would corrupt the number syntax; keep LC_NUMERIC at "C" (the
 * default, and what every gpuperf binary uses) around these codecs.
 */

#ifndef GPUPERF_API_JSON_H
#define GPUPERF_API_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gpuperf {
namespace api {

/** One JSON value (null, bool, number, string, array or object). */
class Json
{
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() = default; ///< null

    static Json boolean(bool v);
    static Json number(double v);
    static Json str(std::string v);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isBool() const { return kind_ == Kind::kBool; }
    bool isNumber() const { return kind_ == Kind::kNumber; }
    bool isString() const { return kind_ == Kind::kString; }
    bool isArray() const { return kind_ == Kind::kArray; }
    bool isObject() const { return kind_ == Kind::kObject; }

    bool asBool() const { return bool_; }
    double asNumber() const { return number_; }
    const std::string &asString() const { return string_; }

    // --- Arrays -------------------------------------------------------
    /** Append @p v (value must be an array). */
    void push(Json v);
    size_t size() const { return items_.size(); }
    const Json &at(size_t i) const { return items_[i]; }

    // --- Objects ------------------------------------------------------
    /** Set @p key to @p v, appending in insertion order. */
    void set(const std::string &key, Json v);
    /** The member named @p key, or nullptr (value must be an object). */
    const Json *find(const std::string &key) const;

    /**
     * Serialize compactly but line-broken (one object member or array
     * element per line, two-space indent): deterministic, diffable,
     * and still small.
     */
    std::string dump() const;

    /**
     * Parse @p text into @p out. Returns false with a position-tagged
     * message in @p error on malformed input. Depth-limited, so
     * hostile input cannot blow the stack.
     */
    static bool parse(const std::string &text, Json *out,
                      std::string *error);

  private:
    void dumpTo(std::string *out, int indent) const;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> items_;                  ///< array elements
    std::vector<std::string> keys_;            ///< object keys
    std::vector<Json> values_;                 ///< object values
};

/** Lowercase hex encoding of raw bytes (image payloads in JSON). */
std::string hexEncode(const std::string &bytes);

/** Inverse of hexEncode(); false on odd length or non-hex digits. */
bool hexDecode(const std::string &hex, std::string *bytes);

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_JSON_H
