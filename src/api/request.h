/**
 * @file
 * The unified AnalysisService request/response schema — the ONE typed,
 * serializable description of everything the paper's Figure-1 pipeline
 * can be asked to do: a single kernel, an N x M batch, a what-if sweep
 * grid, streamed or collected delivery, with or without persistent
 * stores. The old entry points (AnalysisSession, SimulatedDevice,
 * BatchRunner::Options, runSweep) survive as internal executors behind
 * api::AnalysisService; new capabilities widen this schema instead of
 * every constructor signature.
 *
 * Requests and responses are VALUES with versioned binary and JSON
 * codecs (api/codecs.h): a job is a wire-portable artifact a parent
 * process can serialize into a spool directory for cooperating worker
 * processes (api/spool.h) — the repo's first multi-process scaling
 * seam beyond the calibration lease.
 */

#ifndef GPUPERF_API_REQUEST_H
#define GPUPERF_API_REQUEST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_spec.h"
#include "driver/batch_runner.h"
#include "driver/sweep.h"
#include "funcsim/interpreter.h"
#include "isa/kernel.h"
#include "timing/simulator.h"

namespace gpuperf {
namespace api {

/**
 * Wire-format version of the request/response schema. Bump on ANY
 * change to the schema structs or their codecs; readers reject other
 * versions and the caller re-issues the job.
 */
constexpr uint32_t kSchemaVersion = 2;

/**
 * A kernel case by reference: a registry factory name plus its
 * arguments (api/registry.h resolves it to a driver::KernelCase).
 * References are tiny on the wire — the worker rebuilds the kernel
 * and its memory image from the same deterministic factory.
 */
struct CaseRef
{
    /** Registry factory, e.g. "saxpy", "stencil1d", "histogram". */
    std::string factory;
    /** Integer arguments, in the factory's documented order. */
    std::vector<int64_t> iargs;
    /** Floating-point arguments, in the factory's documented order. */
    std::vector<double> fargs;
};

/**
 * A kernel case by value: the full instruction stream, launch shape,
 * run options and pristine input image. Heavier on the wire than a
 * CaseRef, but carries arbitrary kernels (anything a KernelBuilder
 * can produce) with bit-exact input data.
 */
struct InlineLaunch
{
    isa::Kernel kernel;
    funcsim::LaunchConfig cfg;
    funcsim::RunOptions options;
    /** GlobalMemory geometry: total capacity in bytes. */
    uint64_t memoryCapacity = 0;
    /**
     * The pristine image's allocated prefix (bytes [0, used())); the
     * executor rebuilds a GlobalMemory with identical content hash,
     * so inline jobs hit the same store entries as local runs.
     */
    std::string memoryImage;

    /** Snapshot @p gmem (pristine — capture BEFORE any run). */
    static InlineLaunch capture(isa::Kernel kernel,
                                const funcsim::LaunchConfig &cfg,
                                const funcsim::GlobalMemory &gmem,
                                funcsim::RunOptions options = {});

    /** Rebuild the image captured by capture() (exact content hash). */
    std::unique_ptr<funcsim::GlobalMemory> rebuildMemory() const;
};

/** One kernel of a request: a display name plus exactly one body. */
struct KernelJob
{
    std::string name;
    /** Set when the job is a registry reference (factory non-empty). */
    CaseRef ref;
    /** Set when the job carries the kernel inline. */
    std::shared_ptr<const InlineLaunch> inlined;

    bool isInline() const { return inlined != nullptr; }

    static KernelJob fromRef(std::string name, CaseRef ref);
    static KernelJob fromInline(std::string name, InlineLaunch launch);
};

/** Persistence policy of a request. */
struct StorePolicy
{
    /**
     * Root of the persistent binary store ("" = disabled): profiles,
     * calibrations, timings and finished results are kept in
     * subdirectories and shared across processes — spooled workers
     * pointed at one storeDir split calibrations, funcsims and
     * replays through the store leases.
     */
    std::string storeDir;
    /** Legacy text calibration cache directory ("" = none). */
    std::string calibrationCacheDir;
    /**
     * Serve finished cells straight from the result store (results
     * remain bit-identical; finished cells are always persisted when
     * a store is configured — this only gates serving them back).
     */
    bool reuseStoredResults = true;
};

/** Execution policy of a request. */
struct ExecutionPolicy
{
    /**
     * How cells share simulation work. The enum replaces
     * BatchRunner::Options' shareProfiles boolean: kShared is the
     * production pipeline (N funcsims for N x M cells), kPerCell the
     * reference pipeline every optimization is pinned bit-identical
     * against.
     */
    enum class Pipeline { kShared, kPerCell };

    /** How results leave the service (see AnalysisService::execute). */
    enum class Delivery { kCollect, kStream };

    /** Worker threads; 0 = one per hardware thread. */
    int numThreads = 0;
    /** Timing replay engine (engines are bit-identical by contract). */
    timing::ReplayEngine engine = timing::ReplayEngine::kEventDriven;
    Pipeline pipeline = Pipeline::kShared;
    /** Memoize timing replays per (profile key, timing fingerprint). */
    bool shareTiming = true;
    Delivery delivery = Delivery::kCollect;
};

/**
 * One analysis job: kernels x specs cells, each the paper's full
 * Figure-1 workflow plus the request's what-if sweep.
 */
struct AnalysisRequest
{
    uint32_t schemaVersion = kSchemaVersion;
    /** Display name, echoed in responses and spool job ids. */
    std::string jobName;
    /**
     * Client identity for per-tenant fair-share scheduling ("" = the
     * anonymous default tenant). Set from the `?client=` endpoint
     * option; the fair-share dispatcher accounts each tenant's work
     * against it. Responses do not echo it and result-store keys do
     * not include it, so identical work stays shared (and
     * bit-identical) across tenants.
     */
    std::string clientId;

    std::vector<KernelJob> kernels;
    std::vector<arch::GpuSpec> specs;
    driver::SweepSpec sweep;
    StorePolicy store;
    ExecutionPolicy exec;
};

/**
 * The response: one cell per (kernel, spec) in kernel-major order
 * (kernels[0] x specs[0..M-1], then kernels[1] x ...), regardless of
 * completion order or worker count. Cells are driver::BatchResult —
 * every Analysis field round-trips bit-exactly through both codecs.
 */
struct AnalysisResponse
{
    uint32_t schemaVersion = kSchemaVersion;
    std::string jobName;
    uint32_t numKernels = 0;
    uint32_t numSpecs = 0;
    std::vector<driver::BatchResult> cells;
};

} // namespace api
} // namespace gpuperf

#endif // GPUPERF_API_REQUEST_H
