/**
 * @file
 * ASCII/CSV table rendering used by the benchmark harnesses to print
 * paper tables and figure series.
 */

#ifndef GPUPERF_COMMON_TABLE_H
#define GPUPERF_COMMON_TABLE_H

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace gpuperf {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"tile", "regs", "smem"});
 *   t.addRow({"8x8", "16", "348"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a data row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    /** Convenience: format an integer with thousands separators. */
    static std::string big(long long v);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }
    size_t cols() const { return headers_.size(); }

    /** Access a cell (row-major, excluding the header row). */
    const std::string &cell(size_t row, size_t col) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner used between experiment blocks. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace gpuperf

#endif // GPUPERF_COMMON_TABLE_H
