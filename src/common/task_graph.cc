#include "common/task_graph.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/logging.h"

namespace gpuperf {

TaskGraph::TaskGraph(ThreadPool &pool) : pool_(pool) {}

TaskGraph::~TaskGraph() = default;

TaskGraph::NodeId
TaskGraph::add(std::string name, std::function<void()> fn,
               const std::vector<NodeId> &deps)
{
    return add(std::move(name), std::move(fn), deps, 0.0);
}

void
TaskGraph::setReadyOrder(ReadyOrder order)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_ || finished_)
        throw std::logic_error(
            "TaskGraph: setReadyOrder() must precede run()");
    readyOrder_ = order;
}

TaskGraph::NodeId
TaskGraph::add(std::string name, std::function<void()> fn,
               const std::vector<NodeId> &deps, double cost)
{
    bool ready = false;
    bool skipped = false;
    NodeId id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (finished_)
            throw std::logic_error(
                "TaskGraph: add() after run() completed");
        id = nodes_.size();
        // Validate every dependency BEFORE touching any dependents
        // list: throwing halfway would leave a dangling dependent id
        // pointing at a node that was never created.
        for (NodeId dep : deps) {
            if (dep >= id)
                throw std::logic_error(
                    "TaskGraph: dependency on a node that does not "
                    "exist yet (edges must point backwards, which also "
                    "keeps the graph acyclic)");
        }
        // The node joins nodes_ before any dependents list learns its
        // id, and a registration failure (allocation) rolls both
        // back — no path leaves a dep holding an id that was never
        // created or that can never be notified.
        nodes_.push_back(std::make_unique<Node>());
        Node &node = *nodes_[id];
        node.name = std::move(name);
        node.fn = std::move(fn);
        node.cost = cost;
        std::exception_ptr cause;
        try {
            for (NodeId dep : deps) {
                Node &d = *nodes_[dep];
                switch (d.state) {
                  case NodeState::kDone:
                    break; // already satisfied
                  case NodeState::kFailed:
                  case NodeState::kSkipped:
                    if (!cause)
                        cause = d.error;
                    break;
                  default:
                    d.dependents.push_back(id);
                    ++node.waiting;
                    break;
                }
            }
        } catch (...) {
            for (NodeId dep : deps) {
                auto &v = nodes_[dep]->dependents;
                v.erase(std::remove(v.begin(), v.end(), id), v.end());
            }
            nodes_.pop_back();
            throw;
        }
        ++unfinished_;
        if (cause) {
            // A dependency already failed: the node joins the graph
            // only to be settled as skipped (it has no dependents of
            // its own yet, so no cascade).
            nodes_[id]->state = NodeState::kSkipped;
            nodes_[id]->error = cause;
            nodes_[id]->fn = nullptr;
            finishOneLocked();
            skipped = true;
        } else if (running_ && nodes_[id]->waiting == 0) {
            ready = true;
        }
    }
    (void)skipped;
    if (ready)
        submit(id);
    return id;
}

void
TaskGraph::run()
{
    std::vector<NodeId> roots;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (running_ || finished_)
            throw std::logic_error("TaskGraph: run() is one-shot");
        running_ = true;
        for (NodeId id = 0; id < nodes_.size(); ++id) {
            if (nodes_[id]->state == NodeState::kPending &&
                nodes_[id]->waiting == 0) {
                roots.push_back(id);
            }
        }
    }
    for (NodeId id : roots)
        submit(id);

    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this]() { return unfinished_ == 0; });
    running_ = false;
    finished_ = true;
}

void
TaskGraph::submit(NodeId id)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        double key = 0.0;
        switch (readyOrder_) {
          case ReadyOrder::kInsertion:
            break;
          case ReadyOrder::kSmallestFirst:
            key = nodes_[id]->cost;
            break;
          case ReadyOrder::kBiggestFirst:
            key = -nodes_[id]->cost;
            break;
        }
        ready_.emplace(key, readySeq_++, id);
    }
    // The returned future is deliberately dropped: execute() catches
    // everything the body throws, so the future can never carry an
    // exception, and completion is tracked by unfinished_. The token
    // is generic: whichever worker picks it up runs the BEST ready
    // node at that moment, not necessarily the one that minted it.
    pool_.submit([this]() { runNext(); });
}

void
TaskGraph::runNext()
{
    NodeId id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        GPUPERF_ASSERT(!ready_.empty(),
                       "task-graph token without a ready node");
        id = std::get<2>(*ready_.begin());
        ready_.erase(ready_.begin());
    }
    execute(id);
}

void
TaskGraph::execute(NodeId id)
{
    std::function<void()> fn;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Node &node = *nodes_[id];
        GPUPERF_ASSERT(node.state == NodeState::kPending,
                       "task-graph node executed twice");
        node.state = NodeState::kRunning;
        // Run the body without the graph lock (it may add nodes),
        // moving it out so captures die as soon as the node finishes.
        fn = std::move(node.fn);
        node.fn = nullptr;
    }

    std::exception_ptr err;
    try {
        fn();
    } catch (...) {
        err = std::current_exception();
    }
    fn = nullptr;

    std::vector<NodeId> ready;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Node &node = *nodes_[id];
        if (err) {
            node.state = NodeState::kFailed;
            node.error = err;
            // Settle the node itself BEFORE cascading so the cascade
            // never revisits it.
            finishOneLocked();
            for (NodeId dep : node.dependents)
                skipCascadeLocked(dep, err);
        } else {
            node.state = NodeState::kDone;
            finishOneLocked();
            for (NodeId dep : node.dependents) {
                Node &d = *nodes_[dep];
                if (d.state != NodeState::kPending)
                    continue; // already skipped by a failed sibling
                if (--d.waiting == 0)
                    ready.push_back(dep);
            }
        }
    }
    for (NodeId dep : ready)
        submit(dep);
}

void
TaskGraph::skipCascadeLocked(NodeId id, const std::exception_ptr &cause)
{
    // Iterative DFS: a deep chain must not overflow the stack.
    std::vector<NodeId> stack{id};
    while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        Node &node = *nodes_[cur];
        if (node.state != NodeState::kPending)
            continue; // running/finished, or already skipped
        node.state = NodeState::kSkipped;
        node.error = cause;
        node.fn = nullptr;
        finishOneLocked();
        for (NodeId dep : node.dependents)
            stack.push_back(dep);
    }
}

void
TaskGraph::finishOneLocked()
{
    GPUPERF_ASSERT(unfinished_ > 0, "task-graph finish underflow");
    if (--unfinished_ == 0)
        drained_.notify_all();
}

TaskGraph::NodeState
TaskGraph::state(NodeId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.at(id)->state;
}

std::exception_ptr
TaskGraph::error(NodeId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.at(id)->error;
}

const std::string &
TaskGraph::name(NodeId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.at(id)->name;
}

size_t
TaskGraph::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.size();
}

std::vector<TaskGraph::NodeId>
TaskGraph::failures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<NodeId> out;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id]->state == NodeState::kFailed)
            out.push_back(id);
    }
    return out;
}

} // namespace gpuperf
