/**
 * @file
 * Unit conversion helpers shared across the timing simulator and the
 * analytical model. Cycles are the native unit of the timing simulator;
 * the model converts between cycles, seconds, and rates using the clock
 * frequencies in the GpuSpec.
 */

#ifndef GPUPERF_COMMON_UNITS_H
#define GPUPERF_COMMON_UNITS_H

#include <cstdint>

namespace gpuperf {

/** Simulator time in core clock cycles. */
using Cycles = uint64_t;

constexpr double kGiga = 1e9;
constexpr double kMega = 1e6;
constexpr double kKilo = 1e3;
constexpr double kMilli = 1e-3;

/** Convert a cycle count at @p hz core frequency to seconds. */
inline double
cyclesToSeconds(Cycles cycles, double hz)
{
    return static_cast<double>(cycles) / hz;
}

/** Convert seconds to milliseconds. */
inline double
toMilliseconds(double seconds)
{
    return seconds * 1e3;
}

/** Bytes/second to GB/s (decimal gigabytes, as the paper uses). */
inline double
toGBps(double bytes_per_second)
{
    return bytes_per_second / kGiga;
}

/** Events/second to Giga-events/s. */
inline double
toGigaRate(double per_second)
{
    return per_second / kGiga;
}

} // namespace gpuperf

#endif // GPUPERF_COMMON_UNITS_H
