/**
 * @file
 * A dataflow task-graph executor on top of ThreadPool.
 *
 * The batch-analysis pipeline is a dependency graph (the paper's
 * Figure 1): microbenchmark calibration and functional simulation feed
 * timing replay, which feeds extraction, prediction and what-if
 * sweeps. Executing each batch cell as one opaque pool task forces
 * workers to *block inside* shared memos whenever another worker owns
 * a stage they need; this executor exposes the stage graph instead —
 * a node runs only once every dependency has finished, so a worker is
 * never parked on someone else's stage and always picks up another
 * ready node.
 *
 * Semantics:
 *  - Nodes are added with add(fn, deps); edges point dependency ->
 *    dependent. The graph must stay acyclic (deps must already exist,
 *    which makes cycles unrepresentable).
 *  - run() submits every ready node to the pool and returns when all
 *    nodes — including nodes added *during* execution — have finished.
 *    Nodes may call add() on their own graph; that is how dynamic
 *    short-circuits work (e.g. a store-warm batch cell never creates
 *    its simulation nodes at all).
 *  - A node that throws is recorded kFailed with the captured
 *    exception; its transitive dependents never run and are recorded
 *    kSkipped carrying the root cause. run() itself does not throw
 *    for node failures — callers inspect state()/error().
 *
 * run() must be called from a thread that is NOT a worker of the pool
 * (it blocks until the graph drains; a worker calling it could park
 * the pool's last thread and deadlock a single-threaded pool).
 */

#ifndef GPUPERF_COMMON_TASK_GRAPH_H
#define GPUPERF_COMMON_TASK_GRAPH_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"

namespace gpuperf {

class TaskGraph
{
  public:
    using NodeId = size_t;

    enum class NodeState
    {
        kPending,  ///< waiting for dependencies or a worker
        kRunning,  ///< body executing on a worker
        kDone,     ///< body returned normally
        kFailed,   ///< body threw; error() holds the exception
        kSkipped,  ///< a transitive dependency failed; error() holds it
    };

    /**
     * Order ready nodes leave the internal ready set in. Changing it
     * never changes results — only which ready node a freed worker
     * picks up next (see src/sched/policy.h for the policy layer that
     * selects an order).
     */
    enum class ReadyOrder
    {
        kInsertion,     ///< became-ready order (pre-policy behaviour)
        kSmallestFirst, ///< lowest cost first (SJF)
        kBiggestFirst,  ///< highest cost first (long poles early)
    };

    /** @param pool the worker pool nodes execute on (not owned). */
    explicit TaskGraph(ThreadPool &pool);
    ~TaskGraph();

    TaskGraph(const TaskGraph &) = delete;
    TaskGraph &operator=(const TaskGraph &) = delete;

    /**
     * Add a node executing @p fn after every node in @p deps has
     * finished. Safe to call from node bodies while run() is active
     * (the new node is scheduled immediately if its dependencies are
     * already satisfied, and skipped immediately if one already
     * failed). @p name is for diagnostics only.
     */
    NodeId add(std::string name, std::function<void()> fn,
               const std::vector<NodeId> &deps = {});

    /**
     * Like add(), with a predicted cost for the ready-order policies.
     * Cost only matters under kSmallestFirst/kBiggestFirst; nodes
     * added without one sort as cost 0.
     */
    NodeId add(std::string name, std::function<void()> fn,
               const std::vector<NodeId> &deps, double cost);

    /** Select the ready order. Call before run(). */
    void setReadyOrder(ReadyOrder order);

    /**
     * Execute the graph to completion (every node kDone, kFailed or
     * kSkipped), including nodes added while running. One-shot: a
     * graph cannot be re-run. No-op on an empty graph.
     */
    void run();

    NodeState state(NodeId id) const;

    /**
     * The exception a kFailed node threw, or the root-cause exception
     * of a kSkipped node; null otherwise.
     */
    std::exception_ptr error(NodeId id) const;

    const std::string &name(NodeId id) const;

    /** Nodes added so far (ids are dense, 0..size()-1). */
    size_t size() const;

    /** Ids of every kFailed node, in id order. */
    std::vector<NodeId> failures() const;

  private:
    struct Node
    {
        std::string name;
        std::function<void()> fn;
        /** Unfinished dependencies; ready when it reaches zero. */
        int waiting = 0;
        /** Predicted cost for the priority ready orders. */
        double cost = 0.0;
        std::vector<NodeId> dependents;
        NodeState state = NodeState::kPending;
        std::exception_ptr error;
    };

    /**
     * Put @p id in the ready set and hand the pool one generic token
     * (one token per ready node, so execute() still runs each node
     * exactly once). Caller must NOT hold mutex_.
     */
    void submit(NodeId id);
    /** Pool-token body: pop the best ready node and execute it. */
    void runNext();
    /** Worker body: run the node, then settle its dependents. */
    void execute(NodeId id);
    /**
     * Mark @p id and its pending transitive dependents kSkipped with
     * @p cause. Caller holds mutex_.
     */
    void skipCascadeLocked(NodeId id, const std::exception_ptr &cause);
    /** One node left the unfinished set. Caller holds mutex_. */
    void finishOneLocked();

    ThreadPool &pool_;

    mutable std::mutex mutex_;
    std::condition_variable drained_;
    /** unique_ptr for stable addresses across reallocation. */
    std::vector<std::unique_ptr<Node>> nodes_;
    /**
     * Ready nodes as (sort key, became-ready seq, id): begin() is the
     * next node a pool token runs. The sort key is derived from the
     * node's cost at insertion per readyOrder_ (0 for kInsertion,
     * cost for kSmallestFirst, -cost for kBiggestFirst), so the seq
     * tie-break always preserves arrival order.
     */
    std::set<std::tuple<double, uint64_t, NodeId>> ready_;
    uint64_t readySeq_ = 0;
    ReadyOrder readyOrder_ = ReadyOrder::kInsertion;
    size_t unfinished_ = 0;
    bool running_ = false;
    bool finished_ = false;
};

} // namespace gpuperf

#endif // GPUPERF_COMMON_TASK_GRAPH_H
