#include "common/thread_pool.h"

#include <stdexcept>

namespace gpuperf {

int
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads)
{
    const int n = resolveThreads(num_threads);
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_)
            throw std::runtime_error("ThreadPool: submit after shutdown");
        queue_.push(std::move(job));
    }
    workAvailable_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this]() {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // shutdown with nothing left to do
            job = std::move(queue_.front());
            queue_.pop();
            ++running_;
        }
        job(); // packaged_task captures any exception in its future
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
        }
        allIdle_.notify_all();
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock, [this]() {
        return queue_.empty() && running_ == 0;
    });
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    // Serialize joiners: a second shutdown() (e.g. the destructor
    // racing an explicit call) blocks here until the first finishes,
    // then sees every worker already joined. join() itself is not
    // safe to race.
    std::lock_guard<std::mutex> join_lock(joinMutex_);
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
}

} // namespace gpuperf
