/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All stochastic inputs (matrix values, sparsity patterns) flow through
 * this xorshift-based generator so that experiments are bit-reproducible
 * across runs and platforms.
 */

#ifndef GPUPERF_COMMON_RNG_H
#define GPUPERF_COMMON_RNG_H

#include <cstdint>

namespace gpuperf {

/** A small, fast, deterministic xorshift128+ generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) — bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Approximately normal (sum of uniforms), mean 0, stddev ~1. */
    double nextGaussian();

  private:
    uint64_t s0_;
    uint64_t s1_;
};

} // namespace gpuperf

#endif // GPUPERF_COMMON_RNG_H
