/**
 * @file
 * A fixed-size worker pool with a mutex+condvar task queue.
 *
 * Deliberately simple — no work stealing, no task priorities: the
 * batch-analysis driver submits coarse-grained, similar-cost tasks
 * (one full analysis each), so a single FIFO queue behind one mutex is
 * both sufficient and easy to reason about. Exceptions thrown by a
 * task propagate through the std::future returned by submit().
 */

#ifndef GPUPERF_COMMON_THREAD_POOL_H
#define GPUPERF_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gpuperf {

class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 means one worker per
     *        hardware thread (at least one).
     */
    explicit ThreadPool(int num_threads = 0);

    /** Joins all workers after draining already-queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a callable; tasks start in FIFO submission order.
     * The returned future carries the task's result, or rethrows the
     * exception the task threw. Throws std::runtime_error if the pool
     * is shutting down.
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /** Block until the queue is empty and no task is running. */
    void waitIdle();

    /**
     * Drain queued tasks and join all workers. Further submissions
     * throw. Called automatically by the destructor; idempotent.
     */
    void shutdown();

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Resolve a requested thread count (0 = hardware concurrency). */
    static int resolveThreads(int requested);

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::mutex mutex_;
    /** Serializes concurrent shutdown() callers around join(). */
    std::mutex joinMutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allIdle_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    int running_ = 0;       ///< tasks currently executing
    bool shutdown_ = false; ///< guarded by mutex_
};

} // namespace gpuperf

#endif // GPUPERF_COMMON_THREAD_POOL_H
