/**
 * @file
 * Thin POSIX stream-socket helpers shared by the gpuperf-serve daemon
 * and its clients: listeners and connectors for TCP (loopback or any
 * interface) and Unix-domain sockets, plus cancellable exact-length
 * send/receive loops.
 *
 * Everything returns file descriptors and booleans rather than
 * throwing — the callers (server accept loops, the framed transport)
 * turn failures into per-connection errors, never process aborts. All
 * writes use MSG_NOSIGNAL, so a peer that disappears mid-stream
 * produces EPIPE, not SIGPIPE.
 */

#ifndef GPUPERF_COMMON_SOCKET_H
#define GPUPERF_COMMON_SOCKET_H

#include <atomic>
#include <cstddef>
#include <string>

namespace gpuperf {

/**
 * Listen on TCP @p host:@p port (port 0 = kernel-assigned ephemeral
 * port, readable back via boundTcpPort). Returns the listening fd, or
 * -1 with @p err set.
 */
int listenTcp(const std::string &host, int port, std::string *err);

/** The port a TCP listener actually bound (ephemeral-port reader). */
int boundTcpPort(int listen_fd);

/**
 * Listen on a Unix-domain socket at @p path. An existing socket file
 * at @p path is unlinked first (a daemon restart must not need manual
 * cleanup). Returns the listening fd, or -1 with @p err set.
 */
int listenUnix(const std::string &path, std::string *err);

/** Connect to TCP @p host:@p port. Returns fd, or -1 with @p err. */
int connectTcp(const std::string &host, int port, std::string *err);

/** Connect to the Unix socket at @p path. -1 with @p err on failure. */
int connectUnix(const std::string &path, std::string *err);

/**
 * Wait up to @p timeout_seconds for @p fd to become readable (an
 * incoming connection on a listener, data on a stream). False on
 * timeout or poll error.
 */
bool waitReadable(int fd, double timeout_seconds);

/** accept(2) with CLOEXEC; -1 on failure (caller polls first). */
int acceptClient(int listen_fd);

/** Write exactly @p n bytes (MSG_NOSIGNAL). False on any failure. */
bool sendAll(int fd, const void *data, size_t n);

/**
 * Read exactly @p n bytes. Returns 1 on success; 0 on a clean EOF
 * before the first byte (the peer closed between messages); -1 on an
 * error, a mid-message EOF (half-written payload), a read stalled
 * longer than @p stall_timeout_seconds, or @p cancel turning true
 * between polls. The cancel hook is what lets a server shut down
 * while a connection thread sits in a read.
 */
int recvFully(int fd, void *data, size_t n,
              double stall_timeout_seconds = 30.0,
              const std::atomic<bool> *cancel = nullptr);

/**
 * Bound blocking writes on @p fd (SO_SNDTIMEO): a peer that stops
 * reading must not pin a writer thread forever. Shared by the server's
 * client connections and the dispatcher's worker channels.
 */
void setSendTimeoutSeconds(int fd, double seconds);

/** close(2), ignoring errors (idempotent-ish; -1 is a no-op). */
void closeSocket(int fd);

} // namespace gpuperf

#endif // GPUPERF_COMMON_SOCKET_H
