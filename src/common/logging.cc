#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace gpuperf {

namespace {
// Atomic so concurrent batch-analysis workers can log while another
// thread adjusts verbosity, without a data race.
std::atomic<LogLevel> g_level{LogLevel::Warn};
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data());
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace gpuperf
