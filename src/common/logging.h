/**
 * @file
 * Status-message and error-handling helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in the simulator itself) and aborts; fatal() is for
 * conditions caused by the user (bad configuration, invalid arguments)
 * and exits cleanly; warn()/inform() report conditions without stopping
 * the simulation.
 */

#ifndef GPUPERF_COMMON_LOGGING_H
#define GPUPERF_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace gpuperf {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Set the global verbosity level (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity level. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused unrecoverable error and exit(1).
 * Use for invalid configurations or arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious-but-survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operational status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format helper used by the logging functions (exposed for tests). */
std::string vformat(const char *fmt, va_list ap);

/**
 * Assert an internal invariant; calls panic() with location info on
 * failure. Active in all build types (unlike assert()).
 */
#define GPUPERF_ASSERT(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::gpuperf::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                             __FILE__, __LINE__, msg);                     \
        }                                                                  \
    } while (0)

} // namespace gpuperf

#endif // GPUPERF_COMMON_LOGGING_H
