#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "common/logging.h"

namespace gpuperf {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GPUPERF_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        panic("table row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::big(long long v)
{
    std::string raw = std::to_string(v < 0 ? -v : v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (v < 0)
        out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

const std::string &
Table::cell(size_t row, size_t col) const
{
    GPUPERF_ASSERT(row < rows_.size() && col < headers_.size(),
                   "table cell out of range");
    return rows_[row][col];
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << "\n";
    };

    print_row(headers_);
    size_t total = 2;
    for (size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n\n";
}

} // namespace gpuperf
