#include "common/rng.h"

#include "common/logging.h"

namespace gpuperf {

namespace {

/** splitmix64 used to expand the seed into generator state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    s0_ = splitmix64(x);
    s1_ = splitmix64(x);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

uint64_t
Rng::next()
{
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    GPUPERF_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    GPUPERF_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBelow(span));
}

float
Rng::nextFloat()
{
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::nextGaussian()
{
    // Irwin-Hall approximation: sum of 12 uniforms minus 6.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += nextDouble();
    return acc - 6.0;
}

} // namespace gpuperf
