#include "common/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

namespace gpuperf {

namespace {

void
setCloexec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

bool
fillTcpAddr(const std::string &host, int port, sockaddr_in *addr,
            std::string *err)
{
    memset(addr, 0, sizeof(*addr));
    addr->sin_family = AF_INET;
    addr->sin_port = htons(static_cast<uint16_t>(port));
    // Dotted-quad only: the daemon binds loopback or explicit
    // interfaces; name resolution would drag in a resolver dependency
    // the clients don't need.
    if (host.empty() || host == "*") {
        addr->sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) !=
               1) {
        if (err)
            *err = "not an IPv4 address: '" + host + "'";
        return false;
    }
    return true;
}

bool
fillUnixAddr(const std::string &path, sockaddr_un *addr,
             std::string *err)
{
    memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
        if (err)
            *err = "unix socket path empty or longer than " +
                   std::to_string(sizeof(addr->sun_path) - 1) +
                   " bytes: '" + path + "'";
        return false;
    }
    memcpy(addr->sun_path, path.c_str(), path.size());
    return true;
}

std::string
errnoText(const std::string &what)
{
    return what + ": " + ::strerror(errno);
}

} // namespace

int
listenTcp(const std::string &host, int port, std::string *err)
{
    sockaddr_in addr;
    if (!fillTcpAddr(host, port, &addr, err))
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = errnoText("socket");
        return -1;
    }
    setCloexec(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        if (err)
            *err = errnoText("bind/listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
boundTcpPort(int listen_fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        return -1;
    }
    return static_cast<int>(ntohs(addr.sin_port));
}

int
listenUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr;
    if (!fillUnixAddr(path, &addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = errnoText("socket");
        return -1;
    }
    setCloexec(fd);
    ::unlink(path.c_str()); // a previous daemon's stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        if (err)
            *err = errnoText("bind/listen '" + path + "'");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(const std::string &host, int port, std::string *err)
{
    sockaddr_in addr;
    const std::string target = host.empty() ? "127.0.0.1" : host;
    if (!fillTcpAddr(target, port, &addr, err))
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = errnoText("socket");
        return -1;
    }
    setCloexec(fd);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err)
            *err = errnoText(("connect " + target + ":" +
                              std::to_string(port))
                                 .c_str());
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

int
connectUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr;
    if (!fillUnixAddr(path, &addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = errnoText("socket");
        return -1;
    }
    setCloexec(fd);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err)
            *err = errnoText(("connect '" + path + "'").c_str());
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
waitReadable(int fd, double timeout_seconds)
{
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int timeout_ms =
        timeout_seconds < 0
            ? -1
            : static_cast<int>(timeout_seconds * 1000.0);
    const int rc = ::poll(&p, 1, timeout_ms);
    return rc > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

int
acceptClient(int listen_fd)
{
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0)
        setCloexec(fd);
    return fd;
}

bool
sendAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (sent == 0)
            return false;
        p += sent;
        n -= static_cast<size_t>(sent);
    }
    return true;
}

int
recvFully(int fd, void *data, size_t n, double stall_timeout_seconds,
          const std::atomic<bool> *cancel)
{
    char *p = static_cast<char *>(data);
    size_t got = 0;
    using Clock = std::chrono::steady_clock;
    Clock::time_point last_progress = Clock::now();
    while (got < n) {
        if (cancel && cancel->load(std::memory_order_relaxed))
            return -1;
        // Short poll ticks keep the read cancellable (server
        // shutdown) and bound how long a silent peer can pin this
        // thread mid-message.
        if (!waitReadable(fd, 0.2)) {
            const std::chrono::duration<double> stalled =
                Clock::now() - last_progress;
            if (stalled.count() > stall_timeout_seconds)
                return -1;
            continue;
        }
        const ssize_t r = ::recv(fd, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return -1;
        }
        if (r == 0)
            return got == 0 ? 0 : -1; // clean EOF vs torn message
        got += static_cast<size_t>(r);
        last_progress = Clock::now();
    }
    return 1;
}

void
setSendTimeoutSeconds(int fd, double seconds)
{
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void
closeSocket(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace gpuperf
