/**
 * @file
 * The one FNV-1a implementation every content hash in the repo uses —
 * trace interning, kernel hashes, memory-image digests, store keys.
 * A single definition keeps the cache keys of different components
 * from silently diverging when the hash is ever tuned.
 */

#ifndef GPUPERF_COMMON_FNV_H
#define GPUPERF_COMMON_FNV_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpuperf {

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** Fold a byte range into @p h. */
inline uint64_t
fnv1a64(const void *data, size_t bytes, uint64_t h = kFnvOffsetBasis)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

inline uint64_t
fnv1a64(const std::string &s, uint64_t h = kFnvOffsetBasis)
{
    return fnv1a64(s.data(), s.size(), h);
}

/**
 * Fold one 64-bit value into @p h, hashing its little-endian byte
 * representation (host-endianness-independent).
 */
inline uint64_t
fnv1a64Value(uint64_t value, uint64_t h = kFnvOffsetBasis)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace gpuperf

#endif // GPUPERF_COMMON_FNV_H
