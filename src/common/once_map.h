/**
 * @file
 * A keyed compute-once map: many threads may ask for the same key,
 * the first becomes the computing thread, the rest wait on its
 * result. Shared by the calibration memoization layers, which all
 * need exactly this lookup-or-insert-shared_future pattern and must
 * not each reimplement its subtle exception/retry ordering.
 */

#ifndef GPUPERF_COMMON_ONCE_MAP_H
#define GPUPERF_COMMON_ONCE_MAP_H

#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace gpuperf {

/**
 * Thread-safe map from Key to a once-computed Value.
 *
 * getOrCompute() runs its callback at most once per key across all
 * threads; concurrent callers for the same key block on the first
 * caller's result, while distinct keys compute concurrently. If the
 * callback throws, the key is released (a later call may retry) and
 * the exception propagates to every waiter of that attempt.
 */
template <typename Key, typename Value>
class OnceMap
{
  public:
    template <typename F>
    Value getOrCompute(const Key &key, F &&compute)
    {
        std::promise<Value> promise;
        std::shared_future<Value> future;
        bool computing = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = map_.find(key);
            if (it != map_.end()) {
                future = it->second;
            } else {
                future = promise.get_future().share();
                map_.emplace(key, future);
                computing = true;
            }
        }
        if (computing) {
            try {
                promise.set_value(compute());
            } catch (...) {
                // Un-memoize before failing the waiters so a
                // transient error does not poison the key forever.
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    map_.erase(key);
                }
                promise.set_exception(std::current_exception());
            }
        }
        return future.get();
    }

    /**
     * Seed (or replace) a key with an already-known value. Intended
     * for pre-seeding before concurrent use: replacing a key whose
     * getOrCompute() is still in flight leaves that computation's
     * waiters with the old value while later callers see the new one.
     */
    void put(const Key &key, Value value)
    {
        std::promise<Value> promise;
        promise.set_value(std::move(value));
        std::lock_guard<std::mutex> lock(mutex_);
        map_[key] = promise.get_future().share();
    }

    /**
     * The value for @p key if its computation has completed; empty
     * when absent or still in flight (never blocks, never computes).
     */
    std::optional<Value> peek(const Key &key) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it == map_.end() ||
            it->second.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready) {
            return std::nullopt;
        }
        return it->second.get();
    }

    /**
     * Copy out every key whose computation has completed (entries
     * still in flight are skipped, not waited for). Used to persist a
     * memo's contents; pair with put() to restore them later.
     */
    std::vector<std::pair<Key, Value>> snapshot() const
    {
        std::vector<std::pair<Key, Value>> out;
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(map_.size());
        for (const auto &[key, future] : map_) {
            if (future.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready) {
                continue;
            }
            out.emplace_back(key, future.get());
        }
        return out;
    }

  private:
    mutable std::mutex mutex_;
    std::map<Key, std::shared_future<Value>> map_;
};

} // namespace gpuperf

#endif // GPUPERF_COMMON_ONCE_MAP_H
