#include "timing/simulator.h"

#include "common/logging.h"
#include "timing/replay_engine.h"

namespace gpuperf {
namespace timing {

bool
TimingResult::operator==(const TimingResult &other) const
{
    const arch::Occupancy &a = occupancy;
    const arch::Occupancy &b = other.occupancy;
    return cycles == other.cycles && seconds == other.seconds &&
           totalOps == other.totalOps &&
           arithBusyCycles == other.arithBusyCycles &&
           sharedBusyCycles == other.sharedBusyCycles &&
           portBusyCycles == other.portBusyCycles &&
           texHits == other.texHits && texMisses == other.texMisses &&
           a.blocksByRegisters == b.blocksByRegisters &&
           a.blocksBySharedMem == b.blocksBySharedMem &&
           a.blocksByThreads == b.blocksByThreads &&
           a.blocksByBlockLimit == b.blocksByBlockLimit &&
           a.blocksByWarpLimit == b.blocksByWarpLimit &&
           a.residentBlocks == b.residentBlocks &&
           a.residentWarps == b.residentWarps && a.limit == b.limit &&
           a.warpsPerBlock == b.warpsPerBlock;
}

TimingSimulator::TimingSimulator(const arch::GpuSpec &spec,
                                 ReplayEngine engine)
    : spec_(spec), engine_(engine)
{
    spec_.validate();
}

ReplayEngine
TimingSimulator::resolveEngine(const funcsim::LaunchTrace &trace) const
{
    if (engine_ != ReplayEngine::kAuto)
        return engine_;
    if (trace.totalOps() < kAutoMinOps)
        return ReplayEngine::kLegacyScan;
    arch::KernelResources res;
    res.registersPerThread = trace.registersPerThread;
    res.sharedBytesPerBlock = trace.sharedBytesPerBlock;
    res.threadsPerBlock = trace.blockDim;
    const arch::Occupancy occ = arch::computeOccupancy(spec_, res);
    if (occ.residentWarps < kAutoMinResidentWarps)
        return ReplayEngine::kLegacyScan;
    return ReplayEngine::kEventDriven;
}

TimingResult
TimingSimulator::run(const funcsim::LaunchTrace &trace) const
{
    if (resolveEngine(trace) == ReplayEngine::kLegacyScan)
        return detail::replayLegacyScan(spec_, trace);
    return detail::replayEventDriven(spec_, trace);
}

TimingResult
TimingSimulator::run(const funcsim::KernelProfile &profile) const
{
    if (profile.key.fingerprint != arch::FuncsimFingerprint::of(spec_))
        fatal("kernel '%s': profile was produced under an incompatible "
              "functional-simulation fingerprint — recompute it for "
              "spec '%s'", profile.kernelName.c_str(),
              spec_.name.c_str());
    return run(profile.trace);
}

} // namespace timing
} // namespace gpuperf
