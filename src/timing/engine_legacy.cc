/**
 * @file
 * The legacy scan replay engine — the original timing-simulator inner
 * loop, kept verbatim as the reference implementation the event-driven
 * engine (engine_event.cc) is pinned against.
 *
 * Per issued operation it re-scans every live warp of the SM in
 * round-robin order, recomputing each warp's earliest issue time from
 * its register dependencies and the SM's pipeline busy clocks, and
 * picks the earliest (first in scan order on ties). O(live warps) per
 * issue; the candidate scan also performs barrier arrivals and
 * releases as side effects.
 */

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "arch/instr_class.h"
#include "common/logging.h"
#include "timing/replay_engine.h"
#include "timing/texture_cache.h"

namespace gpuperf {
namespace timing {
namespace detail {

namespace {

using funcsim::LaunchTrace;
using funcsim::TraceOp;
using funcsim::WarpTrace;
using isa::UnitKind;

constexpr double kInf = 1e300;

/** Mutable replay state of one resident warp. */
struct WarpCtx
{
    const WarpTrace *trace = nullptr;
    size_t opIdx = 0;
    double inorderReady = 0.0;  ///< earliest issue time of the next op
    double drainTime = 0.0;     ///< all issued results available
    double lastIssue = 0.0;
    double sharedNext = 0.0;    ///< per-warp shared-pass rate limit
    /** Completion time of the warp's shared-memory stores; barriers
     *  wait for these (but not for in-flight global loads). */
    double sharedDrain = 0.0;
    std::vector<double> regReady;  ///< index = register + 1
    bool done = false;
    bool arrived = false;       ///< waiting at a barrier
    int blockSlot = -1;
};

/** A resident block. */
struct BlockCtx
{
    std::vector<int> warps;   ///< warp slot indices
    int arrivedCount = 0;
    int doneCount = 0;
};

/** Cluster-level memory pipeline state. */
struct ClusterCtx
{
    double portBusy = 0.0;
    TextureCache *tex = nullptr;
};

/** One streaming multiprocessor. */
struct SmCtx
{
    std::vector<WarpCtx> warps;      // grows; done warps removed from live
    std::vector<int> live;           // indices of non-done warps
    std::vector<BlockCtx> blocks;    // grows over the run
    double arithBusy = 0.0;
    double sharedBusy = 0.0;
    double issueBusy = 0.0;
    int rr = 0;
    int cluster = 0;
    int residentBlocks = 0;
};

/** Whole-machine replay engine. */
class Engine
{
  public:
    Engine(const arch::GpuSpec &spec, const LaunchTrace &trace)
        : spec_(spec), trace_(trace)
    {
        for (int t = 0; t < arch::kNumInstrTypes; ++t) {
            arithOcc_[t] = arch::issueIntervalCycles(
                               spec_, static_cast<arch::InstrType>(t)) +
                           spec_.issueOverheadCycles;
        }
        sharedPassCycles_ = static_cast<double>(spec_.warpSize) /
                            spec_.sharedIssueGroup;
        clusterRate_ = spec_.clusterBytesPerCycle();
    }

    TimingResult run();

  private:
    /** Assign block @p block_id to @p sm, warps ready at @p start. */
    void placeBlock(SmCtx &sm, int block_id, double start);

    /**
     * Find the earliest issuable operation on @p sm, performing any
     * pending barrier releases and block replacements on the way.
     * @return issue time, or kInf when the SM has nothing left.
     */
    double nextCandidate(SmCtx &sm, int &warp_out);

    /** Issue the next op of warp @p wi on @p sm; updates all state. */
    void issue(SmCtx &sm, int wi);

    void finishWarp(SmCtx &sm, int wi);

    const arch::GpuSpec &spec_;
    const LaunchTrace &trace_;

    std::vector<SmCtx> sms_;
    std::vector<ClusterCtx> clusters_;
    std::vector<TextureCache> texStorage_;
    int nextBlock_ = 0;

    double arithOcc_[arch::kNumInstrTypes] = {};
    double sharedPassCycles_ = 2.0;
    double clusterRate_ = 1.0;

    double endTime_ = 0.0;
    TimingResult result_;
};

void
Engine::placeBlock(SmCtx &sm, int block_id, double start)
{
    BlockCtx block;
    const auto &bt = trace_.blocks[block_id];
    for (int trace_idx : bt.warpTraceIdx) {
        WarpCtx w;
        w.trace = &trace_.pool[trace_idx];
        w.inorderReady = start;
        w.drainTime = start;
        w.lastIssue = start;
        w.regReady.assign(
            static_cast<size_t>(trace_.registersPerThread) + 1, start);
        w.blockSlot = static_cast<int>(sm.blocks.size());
        const int slot = static_cast<int>(sm.warps.size());
        if (w.trace->ops.empty()) {
            w.done = true;
        } else {
            sm.live.push_back(slot);
        }
        block.warps.push_back(slot);
        if (w.done)
            ++block.doneCount;
        sm.warps.push_back(std::move(w));
    }
    sm.blocks.push_back(std::move(block));
    ++sm.residentBlocks;
    // A fully-empty block frees its slot immediately.
    BlockCtx &placed = sm.blocks.back();
    if (placed.doneCount == static_cast<int>(placed.warps.size())) {
        --sm.residentBlocks;
        if (nextBlock_ < static_cast<int>(trace_.blocks.size()))
            placeBlock(sm, nextBlock_++, start);
    }
}

double
Engine::nextCandidate(SmCtx &sm, int &warp_out)
{
    while (true) {
        double best = kInf;
        int best_warp = -1;
        bool released = false;

        const int n = static_cast<int>(sm.live.size());
        for (int k = 0; k < n; ++k) {
            const int wi = sm.live[(sm.rr + k) % n];
            WarpCtx &w = sm.warps[wi];
            GPUPERF_ASSERT(!w.done, "done warp on live list");
            const TraceOp &op = w.trace->ops[w.opIdx];

            if (op.unit == UnitKind::kBarrier) {
                if (!w.arrived) {
                    w.arrived = true;
                    const int slot = w.blockSlot;
                    ++sm.blocks[slot].arrivedCount;
                    const int waiting =
                        static_cast<int>(sm.blocks[slot].warps.size()) -
                        sm.blocks[slot].doneCount;
                    if (sm.blocks[slot].arrivedCount == waiting) {
                        // Release: all live warps of the block pass the
                        // barrier once every outstanding result drains.
                        // Copy the member list: finishWarp() may place a
                        // new block and reallocate sm.blocks.
                        const std::vector<int> members =
                            sm.blocks[slot].warps;
                        // A barrier waits until every warp has issued
                        // all prior instructions and its shared-memory
                        // stores are visible; in-flight global loads
                        // keep going across the barrier.
                        double release = 0.0;
                        for (int bw : members) {
                            WarpCtx &other = sm.warps[bw];
                            if (other.done)
                                continue;
                            release = std::max(
                                release, std::max(other.inorderReady,
                                                  other.sharedDrain));
                        }
                        for (int bw : members) {
                            WarpCtx &other = sm.warps[bw];
                            if (other.done)
                                continue;
                            other.arrived = false;
                            other.inorderReady = release;
                            ++other.opIdx;
                            if (other.opIdx == other.trace->ops.size())
                                finishWarp(sm, bw);
                        }
                        sm.blocks[slot].arrivedCount = 0;
                        released = true;
                        break;  // live list may have changed; rescan
                    }
                }
                continue;  // waiting at the barrier
            }

            double t = std::max(w.inorderReady, sm.issueBusy);
            for (int s = 0; s < 3; ++s) {
                if (op.src[s])
                    t = std::max(t, w.regReady[op.src[s]]);
            }
            switch (op.unit) {
              case UnitKind::kArithI:
              case UnitKind::kArithII:
              case UnitKind::kArithIII:
              case UnitKind::kArithIV:
                t = std::max(t, sm.arithBusy);
                if (op.sharedPasses > 0) {
                    t = std::max(t, sm.sharedBusy);
                    t = std::max(t, w.sharedNext);
                }
                break;
              case UnitKind::kSharedMem:
                t = std::max(t, sm.sharedBusy);
                t = std::max(t, w.sharedNext);
                break;
              default:
                break;
            }
            if (t < best) {
                best = t;
                best_warp = wi;
            }
        }

        if (released)
            continue;  // rescan after a barrier release
        warp_out = best_warp;
        return best_warp >= 0 ? best : kInf;
    }
}

void
Engine::finishWarp(SmCtx &sm, int wi)
{
    WarpCtx &w = sm.warps[wi];
    w.done = true;
    endTime_ = std::max(endTime_, w.drainTime);
    auto it = std::find(sm.live.begin(), sm.live.end(), wi);
    if (it != sm.live.end()) {
        *it = sm.live.back();
        sm.live.pop_back();
    }

    BlockCtx &block = sm.blocks[w.blockSlot];
    ++block.doneCount;
    if (block.doneCount == static_cast<int>(block.warps.size())) {
        double finish = 0.0;
        for (int bw : block.warps)
            finish = std::max(finish, sm.warps[bw].drainTime);
        --sm.residentBlocks;
        if (nextBlock_ < static_cast<int>(trace_.blocks.size()))
            placeBlock(sm, nextBlock_++, finish);
    }
}

void
Engine::issue(SmCtx &sm, int wi)
{
    WarpCtx &w = sm.warps[wi];
    const TraceOp &op = w.trace->ops[w.opIdx];
    ClusterCtx &cluster = clusters_[sm.cluster];

    // Recompute the issue time (the candidate scan already proved all
    // constraints; recomputing keeps this function self-contained).
    double t = std::max(w.inorderReady, sm.issueBusy);
    for (int s = 0; s < 3; ++s) {
        if (op.src[s])
            t = std::max(t, w.regReady[op.src[s]]);
    }

    double dst_ready = t;
    switch (op.unit) {
      case UnitKind::kArithI:
      case UnitKind::kArithII:
      case UnitKind::kArithIII:
      case UnitKind::kArithIV: {
        const int type_idx = static_cast<int>(op.unit);
        t = std::max(t, sm.arithBusy);
        if (op.sharedPasses > 0) {
            t = std::max(t, sm.sharedBusy);
            t = std::max(t, w.sharedNext);
        }
        const double occ = arithOcc_[type_idx];
        sm.arithBusy = t + occ;
        result_.arithBusyCycles += occ;
        double latency = std::max<double>(spec_.aluDepCycles, occ);
        if (op.sharedPasses > 0) {
            // A shared operand occupies the shared pipeline too and the
            // result arrives with the shared pipeline's latency.
            const double shared_occ = op.sharedPasses * sharedPassCycles_;
            sm.sharedBusy = t + shared_occ;
            w.sharedNext =
                t + op.sharedPasses * spec_.warpSharedPassIntervalCycles;
            result_.sharedBusyCycles += shared_occ;
            latency = std::max<double>(latency, spec_.sharedDepCycles);
        }
        dst_ready = t + latency;
        break;
      }
      case UnitKind::kSharedMem: {
        t = std::max(t, sm.sharedBusy);
        t = std::max(t, w.sharedNext);
        const double occ = op.conflict * sharedPassCycles_ +
                           spec_.issueOverheadCycles;
        sm.sharedBusy = t + occ;
        w.sharedNext =
            t + op.conflict * spec_.warpSharedPassIntervalCycles;
        result_.sharedBusyCycles += occ;
        dst_ready = t + std::max<double>(spec_.sharedDepCycles, occ);
        if (!op.dst) {
            // Store: barriers must see it complete.
            w.sharedDrain = std::max(w.sharedDrain, dst_ready);
        }
        break;
      }
      case UnitKind::kGlobalLoad:
      case UnitKind::kGlobalStore: {
        const double start = std::max(t + 1.0, cluster.portBusy);
        const double service =
            op.numXacts * spec_.transactionOverheadCycles +
            op.xactBytes / clusterRate_;
        cluster.portBusy = start + service;
        result_.portBusyCycles += service;
        endTime_ = std::max(endTime_, cluster.portBusy);
        dst_ready = cluster.portBusy + spec_.globalLatencyCycles;
        if (op.unit == UnitKind::kGlobalStore) {
            // Stores complete at port service for drain purposes.
            dst_ready = cluster.portBusy;
        }
        break;
      }
      case UnitKind::kTexLoad: {
        int miss_bytes = 0;
        int misses = 0;
        if (spec_.textureCacheEnabled) {
            for (uint16_t i = 0; i < op.numXacts; ++i) {
                const uint32_t line =
                    w.trace->texLines[op.texIdx + i];
                if (!cluster.tex->access(line, t)) {
                    ++misses;
                    miss_bytes += spec_.textureCacheLineBytes;
                }
            }
        } else {
            misses = op.numXacts;
            miss_bytes = op.xactBytes;
        }
        if (misses > 0) {
            const double start = std::max(t + 1.0, cluster.portBusy);
            const double service =
                misses * spec_.transactionOverheadCycles +
                miss_bytes / clusterRate_;
            cluster.portBusy = start + service;
            result_.portBusyCycles += service;
            endTime_ = std::max(endTime_, cluster.portBusy);
            dst_ready = cluster.portBusy + spec_.globalLatencyCycles;
        } else {
            dst_ready = t + spec_.textureHitLatencyCycles;
        }
        break;
      }
      case UnitKind::kBarrier:
      case UnitKind::kNone:
        panic("barrier/none ops never reach issue()");
    }

    sm.issueBusy = t + 1.0;
    w.inorderReady = t + 1.0;
    w.lastIssue = t;
    if (op.dst)
        w.regReady[op.dst] = dst_ready;
    w.drainTime = std::max(w.drainTime, dst_ready);
    endTime_ = std::max(endTime_, w.drainTime);
    sm.rr = (sm.rr + 1);

    ++result_.totalOps;
    ++w.opIdx;
    if (w.opIdx == w.trace->ops.size())
        finishWarp(sm, wi);
}

TimingResult
Engine::run()
{
    const int grid = static_cast<int>(trace_.blocks.size());
    if (grid == 0)
        fatal("timing: empty launch trace");

    arch::KernelResources res;
    res.registersPerThread = trace_.registersPerThread;
    res.sharedBytesPerBlock = trace_.sharedBytesPerBlock;
    res.threadsPerBlock = trace_.blockDim;
    result_.occupancy = arch::computeOccupancy(spec_, res);
    const int max_resident = result_.occupancy.residentBlocks;

    sms_.resize(spec_.numSms);
    clusters_.resize(spec_.numClusters());
    texStorage_.clear();
    texStorage_.reserve(clusters_.size());
    for (size_t c = 0; c < clusters_.size(); ++c) {
        texStorage_.emplace_back(spec_.textureCacheBytesPerCluster,
                                 spec_.textureCacheLineBytes,
                                 spec_.textureCacheWays);
        clusters_[c].tex = &texStorage_[c];
    }
    for (int i = 0; i < spec_.numSms; ++i)
        sms_[i].cluster = i / spec_.smsPerCluster;

    // Initial distribution: uniform round-robin across CLUSTERS first
    // (then across the SMs within each cluster), as the paper observes
    // for GT200 block scheduling — this balances the shared memory
    // pipelines and produces Figure 3's period-10 sawtooth.
    std::vector<int> sm_order(spec_.numSms);
    const int clusters = spec_.numClusters();
    for (int i = 0; i < spec_.numSms; ++i)
        sm_order[i] = (i % clusters) * spec_.smsPerCluster + i / clusters;
    nextBlock_ = 0;
    for (int round = 0; round < max_resident; ++round) {
        for (int i = 0; i < spec_.numSms && nextBlock_ < grid; ++i) {
            SmCtx &sm = sms_[sm_order[i]];
            if (sm.residentBlocks < max_resident)
                placeBlock(sm, nextBlock_++, 0.0);
        }
    }

    using HeapItem = std::pair<double, int>;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>> heap;
    for (int s = 0; s < spec_.numSms; ++s) {
        int warp = -1;
        const double t = nextCandidate(sms_[s], warp);
        if (t < kInf)
            heap.push({t, s});
    }

    while (!heap.empty()) {
        const auto [t, s] = heap.top();
        heap.pop();
        SmCtx &sm = sms_[s];
        int warp = -1;
        const double fresh = nextCandidate(sm, warp);
        if (fresh >= kInf)
            continue;  // SM drained
        if (fresh > t + 1e-9) {
            heap.push({fresh, s});
            continue;  // candidate moved; retry in global order
        }
        issue(sm, warp);
        int next_warp = -1;
        const double next_t = nextCandidate(sm, next_warp);
        if (next_t < kInf)
            heap.push({next_t, s});
    }

    // Sanity: everything must have completed.
    for (const SmCtx &sm : sms_) {
        if (!sm.live.empty())
            panic("timing: SM finished with %zu live warps — deadlock?",
                  sm.live.size());
    }
    if (nextBlock_ != grid)
        panic("timing: only %d of %d blocks were scheduled", nextBlock_,
              grid);

    result_.cycles = endTime_;
    result_.seconds = endTime_ / spec_.coreClockHz;
    for (const auto &tc : texStorage_) {
        result_.texHits += tc.hits();
        result_.texMisses += tc.misses();
    }
    return result_;
}

} // namespace

TimingResult
replayLegacyScan(const arch::GpuSpec &spec,
                 const funcsim::LaunchTrace &trace)
{
    Engine engine(spec, trace);
    return engine.run();
}

} // namespace detail
} // namespace timing
} // namespace gpuperf
