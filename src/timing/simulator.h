/**
 * @file
 * Cycle-approximate GT200-class timing simulator.
 *
 * This component plays the role the physical GTX 285 plays in the
 * paper: microbenchmarks are *measured* against it to calibrate the
 * analytical model, and applications are *measured* against it to
 * evaluate the model's predictions. It replays the per-warp traces
 * produced by the functional simulator.
 *
 * Machine model (one SM):
 *  - greedy-ready round-robin warp scheduler, one issue per cycle;
 *  - in-order issue per warp with register scoreboarding;
 *  - a single arithmetic pipeline whose per-warp-instruction occupancy
 *    is warpSize / functionalUnits(type) cycles (plus a small issue
 *    overhead), with a fixed register read-after-write latency;
 *  - a banked shared-memory pipeline: each serialized half-warp pass
 *    occupies the pipe; conflicts multiply passes; a longer dependency
 *    latency than the ALU (the paper's "longer memory pipeline");
 *  - barriers synchronize all warps of a block after outstanding
 *    results drain.
 *
 * Memory system: SMs are grouped into clusters of three sharing one
 * memory pipeline (the source of the paper's sawtooth in Figure 3).
 * Each hardware transaction occupies the cluster port for
 * bytes / clusterBytesPerCycle plus a fixed overhead; loads complete a
 * full memory latency after port service. An optional per-cluster
 * texture cache filters LDT line requests.
 *
 * Blocks are distributed round-robin over SMs initially and then pulled
 * from a global queue as resident blocks finish, up to the kernel's
 * occupancy limit.
 */

#ifndef GPUPERF_TIMING_SIMULATOR_H
#define GPUPERF_TIMING_SIMULATOR_H

#include <cstdint>

#include "arch/gpu_spec.h"
#include "arch/occupancy.h"
#include "funcsim/profile.h"
#include "funcsim/trace.h"

namespace gpuperf {
namespace timing {

/** Result of a timing-simulator run ("measured" performance). */
struct TimingResult
{
    /** End-to-end kernel time in core clock cycles. */
    double cycles = 0.0;
    /** Same in seconds, given the spec's core clock. */
    double seconds = 0.0;

    /** Warp-level operations replayed. */
    uint64_t totalOps = 0;

    // Utilization diagnostics (summed over SMs/clusters).
    double arithBusyCycles = 0.0;
    double sharedBusyCycles = 0.0;
    double portBusyCycles = 0.0;

    uint64_t texHits = 0;
    uint64_t texMisses = 0;

    /** Occupancy used for the launch. */
    arch::Occupancy occupancy;

    double milliseconds() const { return seconds * 1e3; }

    /**
     * Exact (bit-level for the doubles) equality of every field.
     * Used by the engine A/B tests and the timing memo, both of
     * which promise bit-identical results, never "close enough".
     */
    bool operator==(const TimingResult &other) const;
    bool operator!=(const TimingResult &other) const
    {
        return !(*this == other);
    }
};

/**
 * Replay-engine selection. Both engines produce bit-identical
 * TimingResults for every valid trace (pinned by
 * tests/test_timing_engine.cc); the event-driven engine is the
 * default and asymptotically cheaper per issued operation, the legacy
 * scan engine is kept as the reference for differential testing and
 * the bench_timing_replay speedup study.
 *
 * kAuto picks per launch: the event engine's heap/bitmask bookkeeping
 * only pays off when enough warp-level operations amortize it and
 * enough warps are resident per SM for the legacy per-issue scan to
 * hurt; tiny or low-occupancy replays (the ~720-op saxpy that runs at
 * ~0.8x under the event engine) take the legacy scan path. Selection
 * never changes results — the engines are bit-identical — only which
 * replay loop produces them, so kAuto is always safe; the explicit
 * event engine stays the default.
 */
enum class ReplayEngine
{
    kEventDriven = 0,
    kLegacyScan = 1,
    kAuto = 2,
};

/**
 * kAuto thresholds: the legacy scan engine is selected when a trace
 * replays fewer total warp-level operations than kAutoMinOps, or when
 * fewer warps than kAutoMinResidentWarps are resident per SM (a scan
 * over a handful of live warps is cheaper than maintaining the event
 * engine's per-class heaps). Values chosen from bench_timing_replay:
 * the event engine's 3-4x wins are on >=100k-op, >=16-warp launches,
 * its losses on sub-5k-op low-residency ones.
 */
constexpr uint64_t kAutoMinOps = 16384;
constexpr int kAutoMinResidentWarps = 8;

/** The timing simulator. */
class TimingSimulator
{
  public:
    explicit TimingSimulator(
        const arch::GpuSpec &spec,
        ReplayEngine engine = ReplayEngine::kEventDriven);

    /**
     * Replay @p trace and return the simulated execution time.
     * The kernel's occupancy is derived from the trace's resource
     * usage; blocks beyond the resident limit wait in the global
     * queue.
     */
    TimingResult run(const funcsim::LaunchTrace &trace) const;

    /**
     * Replay a shared functional-simulation artifact. The profile's
     * funcsim fingerprint must match this simulator's spec (checked);
     * timing-only spec fields may differ from the profile's producer —
     * that is the point of sharing one profile across spec variants.
     */
    TimingResult run(const funcsim::KernelProfile &profile) const;

    /**
     * The engine run() will replay @p trace with: the configured one,
     * or — under kAuto — the per-launch choice from the trace's total
     * op count and resident-warp occupancy. Exposed so tests and
     * benches can pin the selection without timing anything.
     */
    ReplayEngine resolveEngine(const funcsim::LaunchTrace &trace) const;

    const arch::GpuSpec &spec() const { return spec_; }
    ReplayEngine engine() const { return engine_; }

  private:
    arch::GpuSpec spec_;
    ReplayEngine engine_;
};

} // namespace timing
} // namespace gpuperf

#endif // GPUPERF_TIMING_SIMULATOR_H
