#include "timing/texture_cache.h"

namespace gpuperf {
namespace timing {

TextureCache::TextureCache(int capacity_bytes, int line_bytes, int ways)
    : ways_(ways)
{
    if (capacity_bytes <= 0 || line_bytes <= 0 || ways <= 0)
        fatal("texture cache: bad geometry (%d B, %d B lines, %d ways)",
              capacity_bytes, line_bytes, ways);
    const int num_lines = capacity_bytes / line_bytes;
    sets_ = num_lines / ways_;
    if (sets_ <= 0)
        fatal("texture cache: capacity %d too small for %d ways",
              capacity_bytes, ways);
    lines_.assign(static_cast<size_t>(sets_) * ways_, Line{});
}

bool
TextureCache::access(uint32_t line_id, double now)
{
    const int set = static_cast<int>(line_id % sets_);
    Line *base = &lines_[static_cast<size_t>(set) * ways_];
    int victim = 0;
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].id == line_id) {
            base[w].lastUse = now;
            ++hits_;
            return true;
        }
        if (!base[w].valid) {
            victim = w;
        } else if (base[victim].valid &&
                   base[w].lastUse < base[victim].lastUse) {
            victim = w;
        }
    }
    base[victim].valid = true;
    base[victim].id = line_id;
    base[victim].lastUse = now;
    ++misses_;
    return false;
}

void
TextureCache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    hits_ = 0;
    misses_ = 0;
}

} // namespace timing
} // namespace gpuperf
