/**
 * @file
 * The event-driven replay engine (the default).
 *
 * The legacy engine re-derives every live warp's earliest issue time
 * from scratch for each issued operation — O(live warps) per issue,
 * and the dominant cost of a replay at high occupancy (32 resident
 * warps per SM). This engine exploits two invariants of the machine
 * model to make selection O(log warps):
 *
 *  1. A warp's *dependency readiness* — the max of its in-order
 *     ready time, its source registers' ready times and (for
 *     shared-memory traffic) its per-warp pass limit — is fixed from
 *     the moment its current op becomes current until that op issues:
 *     registers, sharedNext and inorderReady are only written by the
 *     warp's own issues and by barrier releases, both of which
 *     re-prepare the op. It can therefore be computed once and used
 *     as a stable heap key.
 *
 *  2. The remaining constraints are SM-wide busy clocks that depend
 *     only on the *unit class* of the op: pure arithmetic
 *     (issue+arith), arithmetic with a shared operand
 *     (issue+arith+shared), shared memory (issue+shared), and memory
 *     port ops (issue only). A warp's earliest issue time is
 *     max(readiness, classBusy), so the per-class minimum over warps
 *     is max(classBusy, min readiness) — four heap peeks.
 *
 * Structure per SM: one pending 4-ary min-heap per class keyed by
 * readiness, and one ready bitmask per class over live-list
 * positions. An op whose readiness is already within its class's busy
 * clock enters the ready mask directly (the common case for
 * back-to-back instruction streams); a warp moves from pending to
 * ready only when its readiness falls at or below its class's busy
 * clock — from then on its issue time IS the busy clock (which only
 * grows), so membership stays valid for the rest of the op's life and
 * stalled warps drain in batches, at most once per op. Warps whose
 * readiness exactly equals the candidate time while exceeding their
 * class's busy clock (dependency-bound ties) are enumerated in place
 * by a read-only heap-prefix walk; heap entries carry the warp's op
 * epoch so an entry orphaned by a tie issue is skipped lazily. The
 * legacy round-robin tie-break — first warp in scan order (rr + k) %
 * n among those issuable at the candidate time — becomes a circular
 * first-set-bit query over the union of the participating ready
 * masks and the tie walk; that union provably equals the legacy
 * scan's arg-min set, which is what makes the two engines
 * bit-identical (pinned by tests/test_timing_engine.cc).
 *
 * Across SMs, per-SM candidates are cached (they depend only on
 * SM-local state) and ordered by a tournament winner tree whose only
 * per-issue cost is one root-path replay — replacing the global
 * priority queue's push + pop pair.
 *
 * Barrier arrivals, which the legacy engine performs as side effects
 * of the candidate scan, happen eagerly here the moment a warp's
 * current op becomes a barrier; completed blocks queue on a per-SM
 * release list processed after the triggering event. The state each
 * release reads (members' in-order and shared-drain times) is only
 * written by issues, so eager processing observes exactly what the
 * legacy engine's next scan would have observed.
 */

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "arch/instr_class.h"
#include "common/logging.h"
#include "timing/replay_engine.h"
#include "timing/texture_cache.h"

namespace gpuperf {
namespace timing {
namespace detail {

namespace {

using funcsim::LaunchTrace;
using funcsim::TraceOp;
using funcsim::WarpTrace;
using isa::UnitKind;

constexpr double kInf = 1e300;

/** Unit classes sharing one set of SM-wide busy constraints. */
enum WarpClass : int
{
    kClassArith = 0,        ///< arith, no shared operand
    kClassArithShared = 1,  ///< arith with shared-memory passes
    kClassShared = 2,       ///< LDS/STS
    kClassMem = 3,          ///< global/texture port ops
};
constexpr int kNumClasses = 4;

/** Mutable replay state of one resident warp. */
struct WarpCtx
{
    const WarpTrace *trace = nullptr;
    size_t opIdx = 0;
    double inorderReady = 0.0;  ///< earliest issue time of the next op
    double drainTime = 0.0;     ///< all issued results available
    double lastIssue = 0.0;
    double sharedNext = 0.0;    ///< per-warp shared-pass rate limit
    /** Completion time of the warp's shared-memory stores; barriers
     *  wait for these (but not for in-flight global loads). */
    double sharedDrain = 0.0;
    std::vector<double> regReady;  ///< index = register + 1
    bool done = false;
    bool arrived = false;       ///< waiting at a barrier

    // --- Event-driven bookkeeping -------------------------------------
    /** Unit class of the current op. */
    int cls = kClassMem;
    /** Position in SmCtx::live, -1 once removed. */
    int livePos = -1;
    /** In the class ready mask (drained from pending). */
    bool inReadyMask = false;
    /**
     * Bumped whenever the warp's current op advances; a pending-heap
     * entry with a stale epoch refers to an already-issued op and is
     * discarded lazily.
     */
    uint32_t epoch = 0;

    int blockSlot = -1;
};

/** A resident block. */
struct BlockCtx
{
    std::vector<int> warps;   ///< warp slot indices
    int arrivedCount = 0;
    int doneCount = 0;
};

/** Cluster-level memory pipeline state. */
struct ClusterCtx
{
    double portBusy = 0.0;
    TextureCache *tex = nullptr;
};

/** Set a bit in a position mask, growing it as needed. */
inline void
maskSet(std::vector<uint64_t> &mask, int pos)
{
    const size_t word = static_cast<size_t>(pos) >> 6;
    if (word >= mask.size())
        mask.resize(word + 1, 0);
    mask[word] |= uint64_t{1} << (pos & 63);
}

inline void
maskClear(std::vector<uint64_t> &mask, int pos)
{
    mask[static_cast<size_t>(pos) >> 6] &=
        ~(uint64_t{1} << (pos & 63));
}

/** A pending-heap entry: readiness, warp slot, op epoch. */
struct PendItem
{
    double ready;
    int32_t warp;
    /** Truncated WarpCtx::epoch; 32 bits outlive any trace (the
     *  functional simulator aborts warps beyond maxWarpOps). */
    uint32_t epoch;

    bool operator>(const PendItem &o) const { return ready > o.ready; }
};

/**
 * Open-coded 4-ary array min-heap of pending warps: half the depth
 * of a binary heap over the 24-32 resident warps of a busy SM, with
 * the four children of a node on one cache line. Beyond push/pop, it
 * supports a read-only enumeration of every entry at or below a
 * threshold (the subtree-prefix property of a heap), which is how
 * candidate-time ties are collected without pop/re-push churn.
 */
struct PendHeap
{
    std::vector<PendItem> a;

    bool empty() const { return a.empty(); }
    const PendItem &top() const { return a.front(); }

    void push(const PendItem &v)
    {
        size_t i = a.size();
        a.push_back(v);
        while (i > 0) {
            const size_t parent = (i - 1) >> 2;
            if (a[parent].ready <= v.ready)
                break;
            a[i] = a[parent];
            i = parent;
        }
        a[i] = v;
    }

    void pop()
    {
        const PendItem v = a.back();
        a.pop_back();
        if (a.empty())
            return;
        const size_t n = a.size();
        size_t i = 0;
        while (true) {
            const size_t first = 4 * i + 1;
            if (first >= n)
                break;
            size_t min_child = first;
            const size_t last = std::min(first + 4, n);
            for (size_t c = first + 1; c < last; ++c) {
                if (a[c].ready < a[min_child].ready)
                    min_child = c;
            }
            if (a[min_child].ready >= v.ready)
                break;
            a[i] = a[min_child];
            i = min_child;
        }
        a[i] = v;
    }

    /** Invoke @p f on every entry with ready <= @p threshold. */
    template <typename F>
    void forEachAtMost(double threshold, F &&f) const
    {
        if (!a.empty())
            visit(0, threshold, f);
    }

  private:
    template <typename F>
    void visit(size_t i, double threshold, F &f) const
    {
        if (a[i].ready > threshold)
            return;
        f(a[i]);
        const size_t first = 4 * i + 1;
        const size_t last = std::min(first + 4, a.size());
        for (size_t c = first; c < last; ++c)
            visit(c, threshold, f);
    }
};

/** One streaming multiprocessor. */
struct SmCtx
{
    std::vector<WarpCtx> warps;      // grows; done warps removed from live
    std::vector<int> live;           // indices of non-done warps
    std::vector<BlockCtx> blocks;    // grows over the run
    double arithBusy = 0.0;
    double sharedBusy = 0.0;
    double issueBusy = 0.0;
    /** Issue counter driving the round-robin tie-break; 64-bit so the
     *  position arithmetic stays defined for arbitrarily long runs. */
    int64_t rr = 0;
    int cluster = 0;
    int residentBlocks = 0;

    /** Warps whose readiness lies beyond their class's busy clock;
     *  drained in batches as the busy clocks advance. */
    PendHeap pending[kNumClasses];
    /** Stale entries (tie-issued pending warps) per class heap; when
     *  zero, the top needs no epoch validation. */
    int staleCount[kNumClasses] = {0, 0, 0, 0};
    /** Live-list position masks of drained (busy-bound) warps. */
    std::vector<uint64_t> readyMask[kNumClasses];
    int readyCount[kNumClasses] = {0, 0, 0, 0};

    /** Block slots with a completed barrier awaiting release (FIFO). */
    std::vector<int> releaseQueue;

    /**
     * Cached nextCandidate() result. Per-SM candidates depend only
     * on SM-local state, which no other SM's issue can touch, so the
     * value computed when the SM enters the global heap is still
     * exact when it pops; issuing invalidates it.
     */
    double candT = 0.0;
    int candWarp = -1;
    bool candValid = false;
};

/**
 * Tournament winner tree over the SMs, keyed by (candidate time, SM
 * index) with invalidated candidates at +inf. Replacing the winner's
 * key — the only mutation the replay loop ever performs — costs
 * log2(SMs) compares along one root path, with no element moves; the
 * global priority queue this replaces paid a full push + pop pair per
 * issued operation. The selection order is identical (least candidate
 * time, ties to the lower SM index).
 */
class SmTournament
{
  public:
    /** All keys start at +inf; set() them before relying on winner(). */
    void init(int sms)
    {
        k_ = sms;
        p_ = 1;
        while (p_ < k_)
            p_ <<= 1;
        // Keys live in a dense array of their own so a match compares
        // two adjacent doubles, not fields of two far-apart SmCtx.
        key_.assign(static_cast<size_t>(p_), kInf);
        w_.assign(static_cast<size_t>(2 * p_), -1);
        for (int s = 0; s < k_; ++s)
            w_[p_ + s] = s;
        for (int n = p_ - 1; n >= 1; --n)
            w_[n] = better(w_[2 * n], w_[2 * n + 1]);
    }

    /** Change @p s's key and re-run the matches on its root path. */
    void set(int s, double key)
    {
        key_[s] = key;
        for (int n = (p_ + s) >> 1; n >= 1; n >>= 1)
            w_[n] = better(w_[2 * n], w_[2 * n + 1]);
    }

    /** SM with the least (key, index); -1 when empty. */
    int winner() const { return w_[1]; }

    double winnerKey() const { return w_[1] < 0 ? kInf : key_[w_[1]]; }

  private:
    int better(int a, int b) const
    {
        if (a < 0)
            return b;
        if (b < 0)
            return a;
        const double ta = key_[a];
        const double tb = key_[b];
        if (ta < tb)
            return a;
        if (tb < ta)
            return b;
        return a < b ? a : b;
    }

    int k_ = 0;
    int p_ = 1;
    std::vector<double> key_;
    std::vector<int> w_;
};

/** Whole-machine replay engine. */
class EventEngine
{
  public:
    EventEngine(const arch::GpuSpec &spec, const LaunchTrace &trace)
        : spec_(spec), trace_(trace)
    {
        for (int t = 0; t < arch::kNumInstrTypes; ++t) {
            arithOcc_[t] = arch::issueIntervalCycles(
                               spec_, static_cast<arch::InstrType>(t)) +
                           spec_.issueOverheadCycles;
        }
        sharedPassCycles_ = static_cast<double>(spec_.warpSize) /
                            spec_.sharedIssueGroup;
        clusterRate_ = spec_.clusterBytesPerCycle();
    }

    TimingResult run();

  private:
    void placeBlock(SmCtx &sm, int block_id, double start);

    /**
     * Classify and key warp @p wi's current (non-done) op: barrier
     * ops arrive immediately (queueing the block for release when
     * complete); everything else computes its dependency readiness
     * and enters the class pending heap.
     */
    void advanceWarp(SmCtx &sm, int wi);

    /** Release every queued completed barrier, in FIFO order. */
    void processReleases(SmCtx &sm);

    /**
     * Earliest issuable operation on @p sm: four heap peeks for the
     * candidate time, a batched drain of newly-ready warps, and a
     * circular first-set-bit for the round-robin tie-break.
     * @return issue time, or kInf when the SM has nothing left.
     */
    double nextCandidate(SmCtx &sm, int &warp_out);

    /**
     * Issue the next op of warp @p wi on @p sm at time @p t (the
     * candidate time nextCandidate() proved exact — equal to what
     * the legacy engine's per-issue recomputation would produce, so
     * no constraint needs re-deriving here); updates all state.
     */
    void issue(SmCtx &sm, int wi, double t);

    void finishWarp(SmCtx &sm, int wi);

    const arch::GpuSpec &spec_;
    const LaunchTrace &trace_;

    std::vector<SmCtx> sms_;
    std::vector<ClusterCtx> clusters_;
    std::vector<TextureCache> texStorage_;
    int nextBlock_ = 0;

    double arithOcc_[arch::kNumInstrTypes] = {};
    double sharedPassCycles_ = 2.0;
    double clusterRate_ = 1.0;

    double endTime_ = 0.0;
    TimingResult result_;

    /** Per-call scratch of nextCandidate (single-threaded engine). */
    std::vector<uint64_t> tieMask_;
};

void
EventEngine::placeBlock(SmCtx &sm, int block_id, double start)
{
    BlockCtx block;
    const auto &bt = trace_.blocks[block_id];
    for (int trace_idx : bt.warpTraceIdx) {
        WarpCtx w;
        w.trace = &trace_.pool[trace_idx];
        w.inorderReady = start;
        w.drainTime = start;
        w.lastIssue = start;
        w.regReady.assign(
            static_cast<size_t>(trace_.registersPerThread) + 1, start);
        w.blockSlot = static_cast<int>(sm.blocks.size());
        const int slot = static_cast<int>(sm.warps.size());
        if (w.trace->ops.empty()) {
            w.done = true;
        } else {
            w.livePos = static_cast<int>(sm.live.size());
            sm.live.push_back(slot);
        }
        block.warps.push_back(slot);
        if (w.done)
            ++block.doneCount;
        sm.warps.push_back(std::move(w));
    }
    sm.blocks.push_back(std::move(block));
    ++sm.residentBlocks;

    // Prepare every live warp of the block (the legacy engine does
    // the equivalent lazily on its next candidate scan).
    const BlockCtx &placed_ref = sm.blocks.back();
    for (int wi : placed_ref.warps) {
        if (!sm.warps[wi].done)
            advanceWarp(sm, wi);
    }

    // A fully-empty block frees its slot immediately.
    BlockCtx &placed = sm.blocks.back();
    if (placed.doneCount == static_cast<int>(placed.warps.size())) {
        --sm.residentBlocks;
        if (nextBlock_ < static_cast<int>(trace_.blocks.size()))
            placeBlock(sm, nextBlock_++, start);
    }
}

void
EventEngine::advanceWarp(SmCtx &sm, int wi)
{
    WarpCtx &w = sm.warps[wi];
    GPUPERF_ASSERT(!w.done && w.opIdx < w.trace->ops.size(),
                   "advancing a finished warp");
    const TraceOp &op = w.trace->ops[w.opIdx];

    if (op.unit == UnitKind::kBarrier) {
        // Eager arrival; the release itself is deferred to the queue
        // so cascades fire in the legacy engine's discovery order.
        w.arrived = true;
        BlockCtx &block = sm.blocks[w.blockSlot];
        ++block.arrivedCount;
        const int waiting =
            static_cast<int>(block.warps.size()) - block.doneCount;
        if (block.arrivedCount == waiting)
            sm.releaseQueue.push_back(w.blockSlot);
        return;
    }

    double r = w.inorderReady;
    for (int s = 0; s < 3; ++s) {
        if (op.src[s])
            r = std::max(r, w.regReady[op.src[s]]);
    }
    int cls;
    switch (op.unit) {
      case UnitKind::kArithI:
      case UnitKind::kArithII:
      case UnitKind::kArithIII:
      case UnitKind::kArithIV:
        if (op.sharedPasses > 0) {
            cls = kClassArithShared;
            r = std::max(r, w.sharedNext);
        } else {
            cls = kClassArith;
        }
        break;
      case UnitKind::kSharedMem:
        cls = kClassShared;
        r = std::max(r, w.sharedNext);
        break;
      default:
        cls = kClassMem;
        break;
    }
    w.cls = cls;
    // An op whose dependencies are already within its class's busy
    // clock is issue-limited, not dependency-limited: it enters the
    // ready mask directly and never touches the heap. This is the
    // common case for back-to-back instruction streams (the next
    // op's in-order time is exactly the issue clock).
    double clock;
    switch (cls) {
      case kClassArith:
        clock = std::max(sm.issueBusy, sm.arithBusy);
        break;
      case kClassArithShared:
        clock = std::max(std::max(sm.issueBusy, sm.arithBusy),
                         sm.sharedBusy);
        break;
      case kClassShared:
        clock = std::max(sm.issueBusy, sm.sharedBusy);
        break;
      default:
        clock = sm.issueBusy;
        break;
    }
    if (r <= clock) {
        maskSet(sm.readyMask[cls], w.livePos);
        w.inReadyMask = true;
        ++sm.readyCount[cls];
    } else {
        w.inReadyMask = false;
        sm.pending[cls].push(PendItem{r, wi, w.epoch});
    }
}

void
EventEngine::processReleases(SmCtx &sm)
{
    // Index-based FIFO: releases may queue further releases (via
    // placed blocks or consecutive barriers) while we iterate.
    for (size_t head = 0; head < sm.releaseQueue.size(); ++head) {
        const int slot = sm.releaseQueue[head];
        // Copy the member list: finishWarp() may place a new block
        // and reallocate sm.blocks.
        const std::vector<int> members = sm.blocks[slot].warps;
        // A barrier waits until every warp has issued all prior
        // instructions and its shared-memory stores are visible;
        // in-flight global loads keep going across the barrier.
        double release = 0.0;
        for (int bw : members) {
            WarpCtx &other = sm.warps[bw];
            if (other.done)
                continue;
            release = std::max(release, std::max(other.inorderReady,
                                                 other.sharedDrain));
        }
        for (int bw : members) {
            WarpCtx &other = sm.warps[bw];
            if (other.done)
                continue;
            other.arrived = false;
            other.inorderReady = release;
            ++other.epoch;
            ++other.opIdx;
            if (other.opIdx == other.trace->ops.size())
                finishWarp(sm, bw);
        }
        sm.blocks[slot].arrivedCount = 0;
        for (int bw : members) {
            if (!sm.warps[bw].done)
                advanceWarp(sm, bw);
        }
    }
    sm.releaseQueue.clear();
}

double
EventEngine::nextCandidate(SmCtx &sm, int &warp_out)
{
    warp_out = -1;
    const int n = static_cast<int>(sm.live.size());
    if (n == 0)
        return kInf;

    // Per-class SM-wide busy constraints (the non-warp half of the
    // legacy scan's max chain).
    double busy[kNumClasses];
    busy[kClassArith] = std::max(sm.issueBusy, sm.arithBusy);
    busy[kClassArithShared] = std::max(busy[kClassArith], sm.sharedBusy);
    busy[kClassShared] = std::max(sm.issueBusy, sm.sharedBusy);
    busy[kClassMem] = sm.issueBusy;

    // Valid top of a class's pending heap, discarding entries
    // orphaned by a tie-issued op (stale epoch). With no stale
    // entries outstanding the top is trusted as-is.
    auto peek = [&](int c) -> const PendItem * {
        PendHeap &pq = sm.pending[c];
        if (sm.staleCount[c] > 0) {
            while (!pq.empty() &&
                   pq.top().epoch != sm.warps[pq.top().warp].epoch) {
                pq.pop();
                --sm.staleCount[c];
            }
        }
        return pq.empty() ? nullptr : &pq.top();
    };

    // min over warps of max(readiness, classBusy)
    //   == min over classes of max(classBusy, min readiness):
    // ready warps all satisfy readiness <= classBusy.
    double best = kInf;
    for (int c = 0; c < kNumClasses; ++c) {
        if (sm.readyCount[c] > 0)
            best = std::min(best, busy[c]);
        if (const PendItem *top = peek(c))
            best = std::min(best, std::max(busy[c], top->ready));
    }
    if (best >= kInf)
        return kInf;  // every live warp is waiting at a barrier

    // Batched advancement: a warp becomes (permanently) ready once
    // its dependencies resolve at or below its class's busy clock —
    // its issue time is the busy clock from here on, and busy clocks
    // only grow, so this happens at most once per op.
    for (int c = 0; c < kNumClasses; ++c) {
        const double threshold = std::min(best, busy[c]);
        while (const PendItem *top = peek(c)) {
            if (top->ready > threshold)
                break;
            WarpCtx &w = sm.warps[top->warp];
            sm.pending[c].pop();
            maskSet(sm.readyMask[c], w.livePos);
            w.inReadyMask = true;
            ++sm.readyCount[c];
        }
    }

    // Tie-break identical to the legacy scan: among the warps
    // issuable exactly at `best` — every (permanently) ready warp of
    // a class whose busy clock has been reached, plus the pending
    // warps whose readiness lands exactly on the candidate time
    // (dependency-bound ties, enumerated in place) — take the first
    // live-list position in circular order from rr.
    const int start = static_cast<int>(sm.rr % n);
    int pos = -1;
    if (n <= 64) {
        // Fast path: every live position fits one word.
        uint64_t tied = 0;
        for (int c = 0; c < kNumClasses; ++c) {
            if (busy[c] > best)
                continue;
            if (sm.readyCount[c] > 0)
                tied |= sm.readyMask[c][0];
            sm.pending[c].forEachAtMost(
                best, [&](const PendItem &item) {
                    const WarpCtx &w = sm.warps[item.warp];
                    if (item.epoch == w.epoch)
                        tied |= uint64_t{1} << w.livePos;
                });
        }
        GPUPERF_ASSERT(tied != 0, "candidate time with no tied warp");
        const uint64_t from_start = tied & (~uint64_t{0} << start);
        pos = __builtin_ctzll(from_start ? from_start : tied);
    } else {
        const int nwords = (n + 63) >> 6;
        tieMask_.assign(static_cast<size_t>(nwords), 0);
        for (int c = 0; c < kNumClasses; ++c) {
            if (busy[c] > best)
                continue;
            if (sm.readyCount[c] > 0) {
                const auto &mask = sm.readyMask[c];
                const size_t limit =
                    std::min(mask.size(), static_cast<size_t>(nwords));
                for (size_t word = 0; word < limit; ++word)
                    tieMask_[word] |= mask[word];
            }
            sm.pending[c].forEachAtMost(
                best, [&](const PendItem &item) {
                    const WarpCtx &w = sm.warps[item.warp];
                    if (item.epoch == w.epoch)
                        maskSet(tieMask_, w.livePos);
                });
        }
        const int start_word = start >> 6;
        uint64_t w0 =
            tieMask_[start_word] & (~uint64_t{0} << (start & 63));
        if (w0) {
            pos = (start_word << 6) + __builtin_ctzll(w0);
        } else {
            for (int word = start_word + 1; word < nwords; ++word) {
                if (tieMask_[word]) {
                    pos = (word << 6) + __builtin_ctzll(tieMask_[word]);
                    break;
                }
            }
            if (pos < 0) {
                for (int word = 0; word <= start_word; ++word) {
                    uint64_t u = tieMask_[word];
                    if (word == start_word) {
                        const int bit = start & 63;
                        u &= bit ? (uint64_t{1} << bit) - 1
                                 : uint64_t{0};
                    }
                    if (u) {
                        pos = (word << 6) + __builtin_ctzll(u);
                        break;
                    }
                }
            }
        }
    }
    GPUPERF_ASSERT(pos >= 0 && pos < n, "ready mask/live desync");
    warp_out = sm.live[pos];
    return best;
}

void
EventEngine::finishWarp(SmCtx &sm, int wi)
{
    WarpCtx &w = sm.warps[wi];
    GPUPERF_ASSERT(!w.inReadyMask, "finishing a ready warp");
    w.done = true;
    endTime_ = std::max(endTime_, w.drainTime);

    const int p = w.livePos;
    if (p >= 0) {
        const int last = static_cast<int>(sm.live.size()) - 1;
        if (p != last) {
            const int moved = sm.live[last];
            sm.live[p] = moved;
            WarpCtx &mw = sm.warps[moved];
            mw.livePos = p;
            if (mw.inReadyMask) {
                maskClear(sm.readyMask[mw.cls], last);
                maskSet(sm.readyMask[mw.cls], p);
            }
        }
        sm.live.pop_back();
        w.livePos = -1;
    }

    BlockCtx &block = sm.blocks[w.blockSlot];
    ++block.doneCount;
    if (block.doneCount == static_cast<int>(block.warps.size())) {
        double finish = 0.0;
        for (int bw : block.warps)
            finish = std::max(finish, sm.warps[bw].drainTime);
        --sm.residentBlocks;
        if (nextBlock_ < static_cast<int>(trace_.blocks.size()))
            placeBlock(sm, nextBlock_++, finish);
    }
}

void
EventEngine::issue(SmCtx &sm, int wi, double t)
{
    WarpCtx &w = sm.warps[wi];
    const TraceOp &op = w.trace->ops[w.opIdx];
    ClusterCtx &cluster = clusters_[sm.cluster];

    // Leave the ready set (a transient-tie warp never entered it; its
    // pending entry goes stale through the epoch bump below).
    if (w.inReadyMask) {
        maskClear(sm.readyMask[w.cls], w.livePos);
        --sm.readyCount[w.cls];
        w.inReadyMask = false;
    } else {
        ++sm.staleCount[w.cls];
    }

    // The legacy engine re-derives the issue time from the warp's
    // dependencies and the busy clocks here; @p t is that exact value
    // (max(readiness, class busy clock) — the candidate's invariant,
    // cross-checked against a fresh recomputation in debug builds),
    // so the update arithmetic below starts from it directly. It is
    // kept textually identical to engine_legacy.cc otherwise —
    // bit-identity depends on it.
    double dst_ready = t;
    switch (op.unit) {
      case UnitKind::kArithI:
      case UnitKind::kArithII:
      case UnitKind::kArithIII:
      case UnitKind::kArithIV: {
        const int type_idx = static_cast<int>(op.unit);
        const double occ = arithOcc_[type_idx];
        sm.arithBusy = t + occ;
        result_.arithBusyCycles += occ;
        double latency = std::max<double>(spec_.aluDepCycles, occ);
        if (op.sharedPasses > 0) {
            // A shared operand occupies the shared pipeline too and the
            // result arrives with the shared pipeline's latency.
            const double shared_occ = op.sharedPasses * sharedPassCycles_;
            sm.sharedBusy = t + shared_occ;
            w.sharedNext =
                t + op.sharedPasses * spec_.warpSharedPassIntervalCycles;
            result_.sharedBusyCycles += shared_occ;
            latency = std::max<double>(latency, spec_.sharedDepCycles);
        }
        dst_ready = t + latency;
        break;
      }
      case UnitKind::kSharedMem: {
        const double occ = op.conflict * sharedPassCycles_ +
                           spec_.issueOverheadCycles;
        sm.sharedBusy = t + occ;
        w.sharedNext =
            t + op.conflict * spec_.warpSharedPassIntervalCycles;
        result_.sharedBusyCycles += occ;
        dst_ready = t + std::max<double>(spec_.sharedDepCycles, occ);
        if (!op.dst) {
            // Store: barriers must see it complete.
            w.sharedDrain = std::max(w.sharedDrain, dst_ready);
        }
        break;
      }
      case UnitKind::kGlobalLoad:
      case UnitKind::kGlobalStore: {
        const double start = std::max(t + 1.0, cluster.portBusy);
        const double service =
            op.numXacts * spec_.transactionOverheadCycles +
            op.xactBytes / clusterRate_;
        cluster.portBusy = start + service;
        result_.portBusyCycles += service;
        endTime_ = std::max(endTime_, cluster.portBusy);
        dst_ready = cluster.portBusy + spec_.globalLatencyCycles;
        if (op.unit == UnitKind::kGlobalStore) {
            // Stores complete at port service for drain purposes.
            dst_ready = cluster.portBusy;
        }
        break;
      }
      case UnitKind::kTexLoad: {
        int miss_bytes = 0;
        int misses = 0;
        if (spec_.textureCacheEnabled) {
            for (uint16_t i = 0; i < op.numXacts; ++i) {
                const uint32_t line =
                    w.trace->texLines[op.texIdx + i];
                if (!cluster.tex->access(line, t)) {
                    ++misses;
                    miss_bytes += spec_.textureCacheLineBytes;
                }
            }
        } else {
            misses = op.numXacts;
            miss_bytes = op.xactBytes;
        }
        if (misses > 0) {
            const double start = std::max(t + 1.0, cluster.portBusy);
            const double service =
                misses * spec_.transactionOverheadCycles +
                miss_bytes / clusterRate_;
            cluster.portBusy = start + service;
            result_.portBusyCycles += service;
            endTime_ = std::max(endTime_, cluster.portBusy);
            dst_ready = cluster.portBusy + spec_.globalLatencyCycles;
        } else {
            dst_ready = t + spec_.textureHitLatencyCycles;
        }
        break;
      }
      case UnitKind::kBarrier:
      case UnitKind::kNone:
        panic("barrier/none ops never reach issue()");
    }

    sm.issueBusy = t + 1.0;
    w.inorderReady = t + 1.0;
    w.lastIssue = t;
    if (op.dst)
        w.regReady[op.dst] = dst_ready;
    w.drainTime = std::max(w.drainTime, dst_ready);
    endTime_ = std::max(endTime_, w.drainTime);
    sm.rr = sm.rr + 1;

    ++result_.totalOps;
    ++w.epoch;
    ++w.opIdx;
    sm.candValid = false;
    if (w.opIdx == w.trace->ops.size())
        finishWarp(sm, wi);
    else
        advanceWarp(sm, wi);
    if (!sm.releaseQueue.empty())
        processReleases(sm);
}

TimingResult
EventEngine::run()
{
    const int grid = static_cast<int>(trace_.blocks.size());
    if (grid == 0)
        fatal("timing: empty launch trace");

    arch::KernelResources res;
    res.registersPerThread = trace_.registersPerThread;
    res.sharedBytesPerBlock = trace_.sharedBytesPerBlock;
    res.threadsPerBlock = trace_.blockDim;
    result_.occupancy = arch::computeOccupancy(spec_, res);
    const int max_resident = result_.occupancy.residentBlocks;

    sms_.resize(spec_.numSms);
    clusters_.resize(spec_.numClusters());
    texStorage_.clear();
    texStorage_.reserve(clusters_.size());
    for (size_t c = 0; c < clusters_.size(); ++c) {
        texStorage_.emplace_back(spec_.textureCacheBytesPerCluster,
                                 spec_.textureCacheLineBytes,
                                 spec_.textureCacheWays);
        clusters_[c].tex = &texStorage_[c];
    }
    for (int i = 0; i < spec_.numSms; ++i)
        sms_[i].cluster = i / spec_.smsPerCluster;

    // Initial distribution: uniform round-robin across CLUSTERS first
    // (then across the SMs within each cluster), exactly as in the
    // legacy engine.
    std::vector<int> sm_order(spec_.numSms);
    const int clusters = spec_.numClusters();
    for (int i = 0; i < spec_.numSms; ++i)
        sm_order[i] = (i % clusters) * spec_.smsPerCluster + i / clusters;
    nextBlock_ = 0;
    for (int round = 0; round < max_resident; ++round) {
        for (int i = 0; i < spec_.numSms && nextBlock_ < grid; ++i) {
            SmCtx &sm = sms_[sm_order[i]];
            if (sm.residentBlocks < max_resident)
                placeBlock(sm, nextBlock_++, 0.0);
        }
    }

    // The tournament tree orders SMs by their cached per-SM
    // candidates. A cached candidate stays exact until the SM's next
    // own issue: it depends only on SM-local state, which no other
    // SM's issue can change (placeBlock always targets the finishing
    // SM, and the shared cluster port never constrains issue times,
    // only completions). Debug builds re-derive and cross-check it at
    // every selection.
    SmTournament tournament;
    tournament.init(spec_.numSms);
    auto refreshCandidate = [&](int s) {
        SmCtx &sm = sms_[s];
        int warp = -1;
        const double t = nextCandidate(sm, warp);
        if (t < kInf) {
            sm.candT = t;
            sm.candWarp = warp;
            sm.candValid = true;
        }
        tournament.set(s, t);
    };
    for (int s = 0; s < spec_.numSms; ++s) {
        // Initial barrier releases in SM order, matching the legacy
        // engine's first per-SM candidate scans (they consume the
        // global block queue in this order).
        processReleases(sms_[s]);
        refreshCandidate(s);
    }

    while (tournament.winnerKey() < kInf) {
        const int s = tournament.winner();
        SmCtx &sm = sms_[s];
        GPUPERF_ASSERT(sm.candValid, "tournament selected a drained SM");
#ifndef NDEBUG
        {
            int check_warp = -1;
            const double check_t = nextCandidate(sm, check_warp);
            GPUPERF_ASSERT(check_t == sm.candT &&
                               check_warp == sm.candWarp,
                           "cached SM candidate diverged from fresh");
        }
#endif
        issue(sm, sm.candWarp, sm.candT);  // invalidates the cache
        refreshCandidate(s);
    }

    // Sanity: everything must have completed.
    for (const SmCtx &sm : sms_) {
        if (!sm.live.empty())
            panic("timing: SM finished with %zu live warps — deadlock?",
                  sm.live.size());
    }
    if (nextBlock_ != grid)
        panic("timing: only %d of %d blocks were scheduled", nextBlock_,
              grid);

    result_.cycles = endTime_;
    result_.seconds = endTime_ / spec_.coreClockHz;
    for (const auto &tc : texStorage_) {
        result_.texHits += tc.hits();
        result_.texMisses += tc.misses();
    }
    return result_;
}

} // namespace

TimingResult
replayEventDriven(const arch::GpuSpec &spec,
                  const funcsim::LaunchTrace &trace)
{
    EventEngine engine(spec, trace);
    return engine.run();
}

} // namespace detail
} // namespace timing
} // namespace gpuperf
