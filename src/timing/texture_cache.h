/**
 * @file
 * Per-cluster texture cache model (set-associative, LRU).
 *
 * The paper's model does not include a texture cache — the authors use
 * it only experimentally (Figure 12). This small model lets the timing
 * simulator reproduce the +Cache variants of that figure.
 */

#ifndef GPUPERF_TIMING_TEXTURE_CACHE_H
#define GPUPERF_TIMING_TEXTURE_CACHE_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace gpuperf {
namespace timing {

/** Simple set-associative LRU cache indexed by line id. */
class TextureCache
{
  public:
    /**
     * @param capacity_bytes total capacity
     * @param line_bytes     line size
     * @param ways           associativity
     */
    TextureCache(int capacity_bytes, int line_bytes, int ways);

    /**
     * Access @p line_id at time @p now.
     * @return true on hit; on miss the line is filled.
     */
    bool access(uint32_t line_id, double now);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    void reset();

  private:
    struct Line
    {
        uint32_t id = UINT32_MAX;
        double lastUse = -1.0;
        bool valid = false;
    };

    int sets_;
    int ways_;
    std::vector<Line> lines_;   // [set * ways + way]
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace timing
} // namespace gpuperf

#endif // GPUPERF_TIMING_TEXTURE_CACHE_H
