/**
 * @file
 * Internal interface between TimingSimulator and its two replay
 * engines. Both produce bit-identical TimingResults for every valid
 * LaunchTrace (pinned by tests/test_timing_engine.cc):
 *
 *  - the legacy scan engine (engine_legacy.cc): the original
 *    reference implementation, re-scanning every live warp of an SM
 *    for each issued operation;
 *  - the event-driven engine (engine_event.cc): per-SM per-class
 *    ready heaps with batched drain of stalled warps, the default.
 *
 * Not installed API — include only from src/timing/.
 */

#ifndef GPUPERF_TIMING_REPLAY_ENGINE_H
#define GPUPERF_TIMING_REPLAY_ENGINE_H

#include "arch/gpu_spec.h"
#include "funcsim/trace.h"
#include "timing/simulator.h"

namespace gpuperf {
namespace timing {
namespace detail {

/** Replay @p trace with the original O(live warps)-per-issue scan. */
TimingResult replayLegacyScan(const arch::GpuSpec &spec,
                              const funcsim::LaunchTrace &trace);

/** Replay @p trace with the event-driven scheduler. */
TimingResult replayEventDriven(const arch::GpuSpec &spec,
                               const funcsim::LaunchTrace &trace);

} // namespace detail
} // namespace timing
} // namespace gpuperf

#endif // GPUPERF_TIMING_REPLAY_ENGINE_H
