/**
 * @file
 * Shared-memory bank-conflict analysis.
 *
 * Shared memory stores adjacent 4-byte words in adjacent banks
 * (16 banks on GT200). When multiple threads of a half-warp access
 * *different* words in the same bank, the accesses serialize; the
 * paper's model corrects the shared-memory transaction count by this
 * serialization degree. Accesses by several threads to the *same* word
 * are satisfied by a broadcast and do not conflict.
 *
 * The paper had to specify conflict degrees by hand because Barra does
 * not collect them; because our functional simulator interprets real
 * addresses, this analyzer computes them exactly (addressing the
 * paper's future-work item 2, "develop a bank-conflict simulator for
 * more general cases").
 */

#ifndef GPUPERF_MEMXACT_BANK_CONFLICTS_H
#define GPUPERF_MEMXACT_BANK_CONFLICTS_H

#include <cstdint>
#include <vector>

#include "arch/gpu_spec.h"

namespace gpuperf {
namespace memxact {

/** Conflict analysis result for one access group (half-warp). */
struct ConflictInfo
{
    /** Serialization factor: number of shared-memory passes (>= 1). */
    int degree = 1;
    /** Number of active lanes analyzed. */
    int activeLanes = 0;
};

/** Computes bank conflict degrees for shared-memory access groups. */
class BankConflictAnalyzer
{
  public:
    /**
     * @param num_banks  banks in the shared memory (16 on GT200, 17 in
     *                   the paper's prime-bank what-if)
     * @param bank_width bytes per bank row (4)
     * @param group_size threads that access shared memory together (16)
     */
    BankConflictAnalyzer(int num_banks, int bank_width, int group_size);

    /**
     * Configure from the funcsim-relevant spec slice. Taking the
     * fingerprint (not the full GpuSpec) is what guarantees two specs
     * with equal funcsim fingerprints conflict identically — the
     * KernelProfile sharing contract.
     */
    explicit BankConflictAnalyzer(const arch::FuncsimFingerprint &fp);

    /** Configure from a GpuSpec (via its funcsim fingerprint). */
    explicit BankConflictAnalyzer(const arch::GpuSpec &spec);

    /**
     * Conflict degree of one access group given per-lane byte
     * addresses. Inactive lanes (mask bit clear) are ignored.
     */
    ConflictInfo analyzeGroup(const uint64_t *addresses,
                              uint32_t active_mask, int first_lane,
                              int num_lanes) const;

    /**
     * Total serialization passes of a full warp access: the warp is
     * split into groups of groupSize lanes and each group's degree is
     * summed (each group with any active lane costs >= 1 pass).
     */
    int warpTransactions(const uint64_t *addresses, uint32_t active_mask,
                         int warp_size) const;

    /**
     * Exactly warpTransactions(), allocation-free: the vectorized
     * interpreter's per-shared-op hot path. Uses fixed lane/bank
     * scratch arrays instead of per-call set-vectors; falls back to
     * the general implementation when the configuration exceeds the
     * fixed bounds (warp > 32 lanes or > 64 banks). Tests pin the two
     * paths equal on every mask/address pattern they generate.
     */
    int warpTransactionsFast(const uint64_t *addresses,
                             uint32_t active_mask, int warp_size) const;

    /** Bank index of a byte address. */
    int bankOf(uint64_t address) const;

    int numBanks() const { return numBanks_; }
    int groupSize() const { return groupSize_; }

  private:
    int numBanks_;
    int bankWidth_;
    int groupSize_;
};

} // namespace memxact
} // namespace gpuperf

#endif // GPUPERF_MEMXACT_BANK_CONFLICTS_H
