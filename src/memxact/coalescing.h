/**
 * @file
 * Memory transaction (coalescing) simulator.
 *
 * Implements the CUDA compute-capability 1.2/1.3 coalescing protocol
 * described in Section 4.3 of the paper:
 *
 *  1. find the memory segment that contains the address requested by
 *     the lowest numbered active thread;
 *  2. find all other threads whose requested address lies in this
 *     segment;
 *  3. reduce the segment size if possible;
 *  4. repeat until all threads in the half-warp are served.
 *
 * The minimum segment size is configurable so the paper's transaction-
 * granularity study (32 B hardware, hypothetical 16 B and 4 B) can be
 * reproduced.
 */

#ifndef GPUPERF_MEMXACT_COALESCING_H
#define GPUPERF_MEMXACT_COALESCING_H

#include <cstdint>
#include <vector>

#include "arch/gpu_spec.h"

namespace gpuperf {
namespace memxact {

/** One hardware memory transaction. */
struct Transaction
{
    uint64_t base = 0;   ///< segment-aligned start address
    int bytes = 0;       ///< segment size

    bool operator==(const Transaction &other) const
    {
        return base == other.base && bytes == other.bytes;
    }
};

/** A thread's memory request within an access group. */
struct Request
{
    uint64_t address = 0;
    bool active = false;
};

/** How a served segment is turned into wire transactions. */
enum class CoalescePolicy
{
    /**
     * The literal CC 1.2/1.3 behaviour: one transaction per serviced
     * segment, halved only while one half covers every member access.
     */
    kSegment,
    /**
     * Sectored transfer: within the serviced segment, only the
     * min-granularity sectors actually touched are transferred
     * (adjacent touched sectors merge into one transaction). Used for
     * the paper's hypothetical smaller-transaction-granularity
     * studies, where ideal gathers fetch exactly the touched words.
     */
    kSectored,
};

/**
 * Simulates the half-warp coalescing hardware.
 *
 * Thread-safe: all state is immutable configuration.
 */
class CoalescingSimulator
{
  public:
    /**
     * @param min_segment_bytes smallest transaction the memory system
     *                          issues (32 on GT200)
     * @param max_segment_bytes largest transaction (128 on GT200)
     * @param group_size        threads coalesced together (16 = half warp)
     * @param policy            segment vs. sectored transfer
     */
    CoalescingSimulator(int min_segment_bytes, int max_segment_bytes,
                        int group_size,
                        CoalescePolicy policy = CoalescePolicy::kSegment);

    /**
     * Configure from the funcsim-relevant spec slice. Taking the
     * fingerprint (not the full GpuSpec) is what guarantees two specs
     * with equal funcsim fingerprints coalesce identically — the
     * KernelProfile sharing contract.
     */
    explicit CoalescingSimulator(const arch::FuncsimFingerprint &fp);

    /** Configure from a GpuSpec (via its funcsim fingerprint). */
    explicit CoalescingSimulator(const arch::GpuSpec &spec);

    /**
     * Coalesce one access group.
     *
     * @param requests   one request per thread in the group (size may be
     *                   smaller than the group for tail warps)
     * @param word_bytes bytes read/written per thread (4 for float)
     * @return the hardware transactions issued, in service order
     */
    std::vector<Transaction>
    coalesce(const std::vector<Request> &requests, int word_bytes) const;

    /**
     * Coalesce a full warp given per-lane byte addresses and an active
     * mask; the warp is split into groups of groupSize threads.
     */
    std::vector<Transaction>
    coalesceWarp(const uint64_t *addresses, uint32_t active_mask,
                 int warp_size, int word_bytes) const;

    /**
     * Exactly coalesceWarp() — same transactions in the same service
     * order — but allocation-free: results land in the caller-owned
     * @p out (cleared first), and membership bookkeeping is bitmask
     * arithmetic instead of per-group Request/served vectors. This is
     * the vectorized interpreter's per-global-op hot path. Falls back
     * to the general implementation for the kSectored policy or
     * configurations beyond its fixed bounds; tests pin the two paths
     * equal on every pattern they generate.
     */
    void coalesceWarpInto(const uint64_t *addresses, uint32_t active_mask,
                          int warp_size, int word_bytes,
                          std::vector<Transaction> &out) const;

    int minSegmentBytes() const { return minSegment_; }
    int maxSegmentBytes() const { return maxSegment_; }
    int groupSize() const { return groupSize_; }

    /** Sum of transaction bytes. */
    static uint64_t totalBytes(const std::vector<Transaction> &xacts);

  private:
    int minSegment_;
    int maxSegment_;
    int groupSize_;
    CoalescePolicy policy_;
};

} // namespace memxact
} // namespace gpuperf

#endif // GPUPERF_MEMXACT_COALESCING_H
