#include "memxact/bank_conflicts.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace gpuperf {
namespace memxact {

BankConflictAnalyzer::BankConflictAnalyzer(int num_banks, int bank_width,
                                           int group_size)
    : numBanks_(num_banks), bankWidth_(bank_width), groupSize_(group_size)
{
    if (numBanks_ <= 0 || bankWidth_ <= 0 || groupSize_ <= 0)
        fatal("bank analyzer: all parameters must be positive "
              "(banks %d, width %d, group %d)", numBanks_, bankWidth_,
              groupSize_);
}

BankConflictAnalyzer::BankConflictAnalyzer(
    const arch::FuncsimFingerprint &fp)
    : BankConflictAnalyzer(fp.numSharedBanks, fp.sharedBankWidth,
                           fp.sharedIssueGroup)
{
}

BankConflictAnalyzer::BankConflictAnalyzer(const arch::GpuSpec &spec)
    : BankConflictAnalyzer(arch::FuncsimFingerprint::of(spec))
{
}

int
BankConflictAnalyzer::bankOf(uint64_t address) const
{
    return static_cast<int>((address / bankWidth_) % numBanks_);
}

ConflictInfo
BankConflictAnalyzer::analyzeGroup(const uint64_t *addresses,
                                   uint32_t active_mask, int first_lane,
                                   int num_lanes) const
{
    // Distinct words per bank; same-word accesses broadcast.
    std::vector<std::set<uint64_t>> words(numBanks_);
    ConflictInfo info;
    for (int lane = first_lane; lane < first_lane + num_lanes; ++lane) {
        if (!((active_mask >> lane) & 1u))
            continue;
        ++info.activeLanes;
        const uint64_t word = addresses[lane] / bankWidth_;
        words[bankOf(addresses[lane])].insert(word);
    }
    if (info.activeLanes == 0) {
        info.degree = 0;
        return info;
    }
    size_t max_words = 1;
    for (const auto &w : words)
        max_words = std::max(max_words, w.size());
    info.degree = static_cast<int>(max_words);
    return info;
}

int
BankConflictAnalyzer::warpTransactions(const uint64_t *addresses,
                                       uint32_t active_mask,
                                       int warp_size) const
{
    int total = 0;
    for (int start = 0; start < warp_size; start += groupSize_) {
        const int lanes = std::min(groupSize_, warp_size - start);
        ConflictInfo info =
            analyzeGroup(addresses, active_mask, start, lanes);
        total += info.degree;
    }
    return total;
}

} // namespace memxact
} // namespace gpuperf
