#include "memxact/bank_conflicts.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace gpuperf {
namespace memxact {

BankConflictAnalyzer::BankConflictAnalyzer(int num_banks, int bank_width,
                                           int group_size)
    : numBanks_(num_banks), bankWidth_(bank_width), groupSize_(group_size)
{
    if (numBanks_ <= 0 || bankWidth_ <= 0 || groupSize_ <= 0)
        fatal("bank analyzer: all parameters must be positive "
              "(banks %d, width %d, group %d)", numBanks_, bankWidth_,
              groupSize_);
}

BankConflictAnalyzer::BankConflictAnalyzer(
    const arch::FuncsimFingerprint &fp)
    : BankConflictAnalyzer(fp.numSharedBanks, fp.sharedBankWidth,
                           fp.sharedIssueGroup)
{
}

BankConflictAnalyzer::BankConflictAnalyzer(const arch::GpuSpec &spec)
    : BankConflictAnalyzer(arch::FuncsimFingerprint::of(spec))
{
}

int
BankConflictAnalyzer::bankOf(uint64_t address) const
{
    return static_cast<int>((address / bankWidth_) % numBanks_);
}

ConflictInfo
BankConflictAnalyzer::analyzeGroup(const uint64_t *addresses,
                                   uint32_t active_mask, int first_lane,
                                   int num_lanes) const
{
    // Distinct words per bank; same-word accesses broadcast.
    std::vector<std::set<uint64_t>> words(numBanks_);
    ConflictInfo info;
    for (int lane = first_lane; lane < first_lane + num_lanes; ++lane) {
        if (!((active_mask >> lane) & 1u))
            continue;
        ++info.activeLanes;
        const uint64_t word = addresses[lane] / bankWidth_;
        words[bankOf(addresses[lane])].insert(word);
    }
    if (info.activeLanes == 0) {
        info.degree = 0;
        return info;
    }
    size_t max_words = 1;
    for (const auto &w : words)
        max_words = std::max(max_words, w.size());
    info.degree = static_cast<int>(max_words);
    return info;
}

int
BankConflictAnalyzer::warpTransactions(const uint64_t *addresses,
                                       uint32_t active_mask,
                                       int warp_size) const
{
    int total = 0;
    for (int start = 0; start < warp_size; start += groupSize_) {
        const int lanes = std::min(groupSize_, warp_size - start);
        ConflictInfo info =
            analyzeGroup(addresses, active_mask, start, lanes);
        total += info.degree;
    }
    return total;
}

int
BankConflictAnalyzer::warpTransactionsFast(const uint64_t *addresses,
                                           uint32_t active_mask,
                                           int warp_size) const
{
    if (warp_size > 32 || numBanks_ > 64)
        return warpTransactions(addresses, active_mask, warp_size);

    int total = 0;
    for (int start = 0; start < warp_size; start += groupSize_) {
        const int end = std::min(start + groupSize_, warp_size);

        // Words and banks of the group's active lanes, densely packed.
        uint64_t words[32];
        uint8_t banks[32];
        int k = 0;
        for (int lane = start; lane < end; ++lane) {
            if (!((active_mask >> lane) & 1u))
                continue;
            const uint64_t word = addresses[lane] / bankWidth_;
            words[k] = word;
            banks[k] = static_cast<uint8_t>(word % numBanks_);
            ++k;
        }
        if (k == 0)
            continue;   // no active lanes: degree 0, as analyzeGroup

        // Same semantics as analyzeGroup: degree = max distinct words
        // in any one bank (same-word accesses broadcast), min 1. The
        // groups are at most 32 lanes, so the O(k^2) distinct-word
        // scan beats per-call set allocation by a wide margin.
        int counts[64] = {};
        int degree = 1;
        for (int i = 0; i < k; ++i) {
            bool dup = false;
            for (int j = 0; j < i; ++j) {
                if (words[j] == words[i]) {
                    dup = true;
                    break;
                }
            }
            if (!dup)
                degree = std::max(degree, ++counts[banks[i]]);
        }
        total += degree;
    }
    return total;
}

} // namespace memxact
} // namespace gpuperf
