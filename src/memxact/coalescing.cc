#include "memxact/coalescing.h"

#include <algorithm>

#include "common/logging.h"

namespace gpuperf {
namespace memxact {

namespace {

bool
isPow2(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

CoalescingSimulator::CoalescingSimulator(int min_segment_bytes,
                                         int max_segment_bytes,
                                         int group_size,
                                         CoalescePolicy policy)
    : minSegment_(min_segment_bytes),
      maxSegment_(max_segment_bytes),
      groupSize_(group_size),
      policy_(policy)
{
    if (!isPow2(minSegment_) || !isPow2(maxSegment_))
        fatal("coalescing: segment sizes must be powers of two (%d, %d)",
              minSegment_, maxSegment_);
    if (minSegment_ > maxSegment_)
        fatal("coalescing: min segment %d exceeds max segment %d",
              minSegment_, maxSegment_);
    if (groupSize_ <= 0)
        fatal("coalescing: group size must be positive (%d)", groupSize_);
}

CoalescingSimulator::CoalescingSimulator(
    const arch::FuncsimFingerprint &fp)
    : CoalescingSimulator(fp.minSegmentBytes, fp.maxSegmentBytes,
                          fp.coalesceGroup)
{
}

CoalescingSimulator::CoalescingSimulator(const arch::GpuSpec &spec)
    : CoalescingSimulator(arch::FuncsimFingerprint::of(spec))
{
}

std::vector<Transaction>
CoalescingSimulator::coalesce(const std::vector<Request> &requests,
                              int word_bytes) const
{
    GPUPERF_ASSERT(word_bytes > 0, "word size must be positive");
    std::vector<Transaction> result;
    std::vector<bool> served(requests.size(), false);
    for (size_t i = 0; i < requests.size(); ++i) {
        if (!requests[i].active)
            served[i] = true;
    }

    while (true) {
        // Step 1: lowest numbered unserved thread.
        size_t leader = requests.size();
        for (size_t i = 0; i < requests.size(); ++i) {
            if (!served[i]) {
                leader = i;
                break;
            }
        }
        if (leader == requests.size())
            break;

        uint64_t seg = static_cast<uint64_t>(maxSegment_);
        uint64_t base = requests[leader].address / seg * seg;

        // Step 2: all threads whose access falls inside the segment.
        std::vector<size_t> members;
        uint64_t lo = UINT64_MAX;
        uint64_t hi = 0;
        for (size_t i = leader; i < requests.size(); ++i) {
            if (served[i])
                continue;
            const uint64_t a = requests[i].address;
            if (a >= base && a + word_bytes <= base + seg) {
                members.push_back(i);
                lo = std::min(lo, a);
                hi = std::max(hi, a + word_bytes);
            }
        }
        GPUPERF_ASSERT(!members.empty(), "leader must be in its segment");

        // Step 3: reduce the segment while one half still covers all
        // member accesses and the reduced size remains legal.
        while (seg > static_cast<uint64_t>(minSegment_) &&
               seg / 2 >= static_cast<uint64_t>(word_bytes)) {
            const uint64_t half = seg / 2;
            if (hi <= base + half) {
                seg = half;
            } else if (lo >= base + half) {
                base += half;
                seg = half;
            } else {
                break;
            }
        }

        if (policy_ == CoalescePolicy::kSectored) {
            // Transfer only the touched min-granularity sectors,
            // merging adjacent touched sectors into one transaction.
            const uint64_t sector = static_cast<uint64_t>(
                std::max(minSegment_, word_bytes));
            const size_t num_sectors = seg / sector;
            std::vector<bool> touched(num_sectors, false);
            for (size_t i : members) {
                const uint64_t first =
                    (requests[i].address - base) / sector;
                const uint64_t last =
                    (requests[i].address + word_bytes - 1 - base) /
                    sector;
                for (uint64_t sidx = first; sidx <= last; ++sidx)
                    touched[sidx] = true;
            }
            size_t sidx = 0;
            while (sidx < num_sectors) {
                if (!touched[sidx]) {
                    ++sidx;
                    continue;
                }
                size_t end = sidx;
                while (end + 1 < num_sectors && touched[end + 1])
                    ++end;
                result.push_back(
                    {base + sidx * sector,
                     static_cast<int>((end - sidx + 1) * sector)});
                sidx = end + 1;
            }
        } else {
            result.push_back({base, static_cast<int>(seg)});
        }

        for (size_t i : members)
            served[i] = true;
    }
    return result;
}

std::vector<Transaction>
CoalescingSimulator::coalesceWarp(const uint64_t *addresses,
                                  uint32_t active_mask, int warp_size,
                                  int word_bytes) const
{
    std::vector<Transaction> all;
    for (int start = 0; start < warp_size; start += groupSize_) {
        std::vector<Request> group;
        group.reserve(groupSize_);
        bool any = false;
        const int end = std::min(start + groupSize_, warp_size);
        for (int lane = start; lane < end; ++lane) {
            const bool active = (active_mask >> lane) & 1u;
            group.push_back({addresses[lane], active});
            any = any || active;
        }
        if (!any)
            continue;
        auto xacts = coalesce(group, word_bytes);
        all.insert(all.end(), xacts.begin(), xacts.end());
    }
    return all;
}

void
CoalescingSimulator::coalesceWarpInto(const uint64_t *addresses,
                                      uint32_t active_mask, int warp_size,
                                      int word_bytes,
                                      std::vector<Transaction> &out) const
{
    out.clear();
    if (warp_size > 32 || groupSize_ > 32 ||
        policy_ != CoalescePolicy::kSegment) {
        const auto all =
            coalesceWarp(addresses, active_mask, warp_size, word_bytes);
        out.assign(all.begin(), all.end());
        return;
    }
    GPUPERF_ASSERT(word_bytes > 0, "word size must be positive");

    for (int start = 0; start < warp_size; start += groupSize_) {
        const int end = std::min(start + groupSize_, warp_size);
        uint32_t unserved = 0;
        for (int lane = start; lane < end; ++lane)
            unserved |= ((active_mask >> lane) & 1u)
                        << static_cast<unsigned>(lane - start);

        while (unserved) {
            // Step 1: lowest numbered unserved thread.
            const int leader = start + __builtin_ctz(unserved);

            uint64_t seg = static_cast<uint64_t>(maxSegment_);
            uint64_t base = addresses[leader] / seg * seg;

            // Step 2: all threads whose access falls in the segment.
            uint32_t members = 0;
            uint64_t lo = UINT64_MAX;
            uint64_t hi = 0;
            for (uint32_t m = unserved; m; m &= m - 1) {
                const int rel = __builtin_ctz(m);
                const uint64_t a = addresses[start + rel];
                if (a >= base && a + word_bytes <= base + seg) {
                    members |= 1u << static_cast<unsigned>(rel);
                    lo = std::min(lo, a);
                    hi = std::max(hi, a + word_bytes);
                }
            }
            GPUPERF_ASSERT(members != 0,
                           "leader must be in its segment");

            // Step 3: reduce the segment while one half still covers
            // all member accesses and the reduced size remains legal.
            while (seg > static_cast<uint64_t>(minSegment_) &&
                   seg / 2 >= static_cast<uint64_t>(word_bytes)) {
                const uint64_t half = seg / 2;
                if (hi <= base + half) {
                    seg = half;
                } else if (lo >= base + half) {
                    base += half;
                    seg = half;
                } else {
                    break;
                }
            }

            out.push_back({base, static_cast<int>(seg)});
            unserved &= ~members;
        }
    }
}

uint64_t
CoalescingSimulator::totalBytes(const std::vector<Transaction> &xacts)
{
    uint64_t sum = 0;
    for (const auto &t : xacts)
        sum += t.bytes;
    return sum;
}

} // namespace memxact
} // namespace gpuperf
