#include "sched/policy.h"

namespace gpuperf {
namespace sched {

bool
parseSchedPolicy(const std::string &name, SchedPolicy *out)
{
    if (name == "fifo")
        *out = SchedPolicy::kFifo;
    else if (name == "biggest-first")
        *out = SchedPolicy::kBiggestFirst;
    else if (name == "sjf")
        *out = SchedPolicy::kSjf;
    else if (name == "fair-share")
        *out = SchedPolicy::kFairShare;
    else
        return false;
    return true;
}

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::kFifo:
        return "fifo";
      case SchedPolicy::kBiggestFirst:
        return "biggest-first";
      case SchedPolicy::kSjf:
        return "sjf";
      case SchedPolicy::kFairShare:
        return "fair-share";
    }
    return "fifo";
}

} // namespace sched
} // namespace gpuperf
