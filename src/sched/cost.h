/**
 * @file
 * Per-cell cost prediction for the schedulers.
 *
 * The paper's own inputs are cheap static predictors of runtime cost:
 * a replay's wall time scales with the warp-op count of the trace and
 * the resident-warp pressure of the launch. CostModel turns those
 * into comparable cost numbers two ways:
 *
 *  - static fallback: calibration-free units from CostFeatures (warp
 *    ops + warps), converted to approximate milliseconds by a learned
 *    ms-per-unit factor so static and observed estimates stay
 *    comparable inside one queue;
 *  - observed: an EWMA of historical wall times per observation key
 *    (the (profile key, timing fingerprint) string), seeded from the
 *    TimingStore's persisted observation side-channel so a fleet
 *    learns across processes.
 *
 * Thread-safe; one instance is shared by every scheduler in a process.
 */

#ifndef GPUPERF_SCHED_COST_H
#define GPUPERF_SCHED_COST_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gpuperf {
namespace sched {

/** Static, pre-execution predictors of one cell's cost. */
struct CostFeatures
{
    /** Warp-op count (dynamic trace size, or a static bound on it). */
    uint64_t warpOps = 0;
    /** Warps the launch makes resident (grid warps). */
    uint64_t warps = 0;
};

class CostModel
{
  public:
    /** EWMA smoothing for observed wall times. */
    static constexpr double kAlpha = 0.3;
    /** Default ms-per-static-unit before any observation calibrates it. */
    static constexpr double kDefaultMsPerUnit = 1e-4;

    /**
     * Calibration-free static cost in abstract units. Monotone in
     * every feature: more ops or more warps never predicts cheaper.
     */
    static double staticUnits(const CostFeatures &f);

    /** prev EWMA (count samples) merged with one new sample. */
    static double ewmaMerge(double prev, uint64_t prevCount,
                            double sample, double alpha = kAlpha);

    /**
     * Predicted cost (approximate ms) for a cell: the observed EWMA
     * for @p key when one exists, else staticUnits scaled by the
     * learned ms-per-unit factor.
     */
    double estimate(const std::string &key,
                    const CostFeatures &f) const;

    /** The static fallback alone (key unknown or never observed). */
    double estimateStatic(const CostFeatures &f) const;

    /**
     * Record one measured wall time for @p key, refining both the
     * per-key EWMA and the static-units-to-ms factor.
     */
    void observe(const std::string &key, const CostFeatures &f,
                 double ms);

    /**
     * Install a persisted observation (from the TimingStore
     * side-channel) unless a fresher in-process one already exists.
     */
    void seed(const std::string &key, double ms, uint64_t count);

    /** The observed EWMA for @p key, if any. */
    bool observed(const std::string &key, double *ms,
                  uint64_t *count = nullptr) const;

    /** |predicted - measured| accumulation for the stats surface. */
    double predictionErrorAbsSum() const;
    uint64_t predictionSamples() const;

  private:
    struct Observation
    {
        double ewmaMs = 0.0;
        uint64_t count = 0;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Observation> observations_;
    double msPerUnit_ = kDefaultMsPerUnit;
    uint64_t msPerUnitCount_ = 0;
    double errorAbsSum_ = 0.0;
    uint64_t errorSamples_ = 0;
};

} // namespace sched
} // namespace gpuperf

#endif // GPUPERF_SCHED_COST_H
