/**
 * @file
 * Scheduling policies and the policy-ordered pending queue shared by
 * every execution seam (task-graph ready set, spool claim order, fleet
 * dispatcher).
 *
 * A policy only ever changes the ORDER work is started in — never its
 * results: every consumer is pinned bit-identical to its FIFO run.
 *
 *  - kFifo          arrival order (the pre-policy behaviour; default)
 *  - kBiggestFirst  largest predicted cost first — maximizes
 *                   throughput on a closed batch (long poles start
 *                   early, small jobs backfill the tail)
 *  - kSjf           smallest predicted cost first — minimizes tail
 *                   latency under interactive load
 *  - kFairShare     deficit round robin across client identities
 *                   (SJF within a client) — one tenant's monster
 *                   batch cannot starve another's trivia
 *
 * PendingQueue is deliberately O(n)-scan on pop: every queue in this
 * system holds at most a few thousand entries, and a linear scan under
 * the owner's lock is both simpler and cache-friendlier than a heap
 * per (policy, client).
 */

#ifndef GPUPERF_SCHED_POLICY_H
#define GPUPERF_SCHED_POLICY_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace gpuperf {
namespace sched {

enum class SchedPolicy : uint8_t
{
    kFifo = 0,
    kBiggestFirst,
    kSjf,
    kFairShare,
};

/** Parse "fifo" / "biggest-first" / "sjf" / "fair-share". */
bool parseSchedPolicy(const std::string &name, SchedPolicy *out);

/** The canonical spelling parseSchedPolicy accepts. */
const char *schedPolicyName(SchedPolicy policy);

/** Per-client accounting snapshot (stats surface). */
struct ClientShare
{
    std::string client;
    size_t queued = 0;        ///< entries currently waiting
    uint64_t popped = 0;      ///< entries handed out so far
    double costCharged = 0.0; ///< predicted cost handed out so far
    double deficit = 0.0;     ///< unspent fair-share credit
};

/**
 * A policy-ordered queue of pending work items. NOT thread-safe —
 * callers (Dispatcher, spoolServe, tests) already own a lock around
 * their queue.
 *
 * Urgent entries (pushUrgent) model the dispatcher's crash-steal
 * "push_front": they drain FIFO before any policy-ordered entry, under
 * every policy, so a stolen job is never re-parked behind fresh work.
 */
template <typename T>
class PendingQueue
{
  public:
    explicit PendingQueue(SchedPolicy policy = SchedPolicy::kFifo,
                          double quantum = 0.0)
        : policy_(policy), quantum_(quantum)
    {
    }

    SchedPolicy policy() const { return policy_; }

    void push(T item, double cost, const std::string &client = {})
    {
        Entry e;
        e.item = item;
        e.cost = cost < 0.0 ? 0.0 : cost;
        e.client = clientIndex(client);
        e.seq = nextSeq_++;
        entries_.push_back(e);
    }

    /** FIFO-first regardless of policy (crash-steal re-dispatch). */
    void pushUrgent(T item)
    {
        urgent_.push_back(item);
    }

    bool empty() const { return urgent_.empty() && entries_.empty(); }

    size_t size() const { return urgent_.size() + entries_.size(); }

    /**
     * Remove and return the next item per policy. Precondition:
     * !empty().
     */
    T pop()
    {
        if (!urgent_.empty()) {
            T item = urgent_.front();
            urgent_.pop_front();
            return item;
        }
        const size_t at = pickIndex();
        const Entry e = entries_[at];
        entries_.erase(entries_.begin() +
                       static_cast<ptrdiff_t>(at));
        Client &c = clients_[e.client];
        ++c.popped;
        c.costCharged += e.cost;
        if (policy_ == SchedPolicy::kFairShare)
            settleFairShare(e);
        return e.item;
    }

    /** Remove @p item wherever it waits. True when found. */
    bool erase(const T &item)
    {
        for (auto it = urgent_.begin(); it != urgent_.end(); ++it) {
            if (*it == item) {
                urgent_.erase(it);
                return true;
            }
        }
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->item == item) {
                entries_.erase(it);
                return true;
            }
        }
        return false;
    }

    /** Per-client accounting, in first-seen client order. */
    std::vector<ClientShare> shares() const
    {
        std::vector<ClientShare> out;
        out.reserve(clients_.size());
        for (size_t ci = 0; ci < clients_.size(); ++ci) {
            ClientShare s;
            s.client = clients_[ci].name;
            s.popped = clients_[ci].popped;
            s.costCharged = clients_[ci].costCharged;
            s.deficit = clients_[ci].deficit;
            for (const Entry &e : entries_) {
                if (e.client == ci)
                    ++s.queued;
            }
            out.push_back(std::move(s));
        }
        return out;
    }

  private:
    struct Entry
    {
        T item{};
        double cost = 0.0;
        size_t client = 0;
        uint64_t seq = 0;
    };

    struct Client
    {
        std::string name;
        uint64_t popped = 0;
        double costCharged = 0.0;
        double deficit = 0.0;
    };

    size_t clientIndex(const std::string &name)
    {
        for (size_t i = 0; i < clients_.size(); ++i) {
            if (clients_[i].name == name)
                return i;
        }
        Client c;
        c.name = name;
        clients_.push_back(std::move(c));
        return clients_.size() - 1;
    }

    /** Index into entries_ of the next pop under policy_. */
    size_t pickIndex()
    {
        switch (policy_) {
          case SchedPolicy::kFifo:
            return pickBy([](const Entry &a, const Entry &b) {
                return a.seq < b.seq;
            });
          case SchedPolicy::kSjf:
            return pickBy([](const Entry &a, const Entry &b) {
                return a.cost != b.cost ? a.cost < b.cost
                                        : a.seq < b.seq;
            });
          case SchedPolicy::kBiggestFirst:
            return pickBy([](const Entry &a, const Entry &b) {
                return a.cost != b.cost ? a.cost > b.cost
                                        : a.seq < b.seq;
            });
          case SchedPolicy::kFairShare:
            return pickFairShare();
        }
        return 0;
    }

    template <typename Better>
    size_t pickBy(Better better) const
    {
        size_t best = 0;
        for (size_t i = 1; i < entries_.size(); ++i) {
            if (better(entries_[i], entries_[best]))
                best = i;
        }
        return best;
    }

    /**
     * Deficit round robin, fast-forwarded: instead of looping one
     * quantum at a time, grant every active client the minimum number
     * of whole rounds that lets SOME client afford its cheapest item,
     * then serve the first affordable client in round-robin order
     * from the cursor. Equivalent to classic DRR visit-by-visit, in
     * O(active clients) per pop. A client whose queue drains forfeits
     * its leftover deficit (no hoarding credit while idle).
     */
    size_t pickFairShare()
    {
        // Cheapest entry per active client (SJF within a client).
        std::vector<size_t> cheapest(clients_.size(), kNone);
        double costSum = 0.0;
        for (size_t i = 0; i < entries_.size(); ++i) {
            const Entry &e = entries_[i];
            costSum += e.cost;
            const size_t cur = cheapest[e.client];
            if (cur == kNone ||
                e.cost < entries_[cur].cost ||
                (e.cost == entries_[cur].cost &&
                 e.seq < entries_[cur].seq)) {
                cheapest[e.client] = i;
            }
        }
        const double quantum =
            quantum_ > 0.0
                ? quantum_
                : (costSum > 0.0
                       ? costSum / static_cast<double>(entries_.size())
                       : 1.0);

        // Idle clients forfeit their credit.
        for (size_t ci = 0; ci < clients_.size(); ++ci) {
            if (cheapest[ci] == kNone)
                clients_[ci].deficit = 0.0;
        }

        // Whole rounds until somebody can afford their cheapest item.
        uint64_t need = UINT64_MAX;
        for (size_t ci = 0; ci < clients_.size(); ++ci) {
            if (cheapest[ci] == kNone)
                continue;
            const double gap =
                entries_[cheapest[ci]].cost - clients_[ci].deficit;
            uint64_t rounds = 0;
            if (gap > 0.0) {
                rounds = static_cast<uint64_t>(gap / quantum);
                if (static_cast<double>(rounds) * quantum < gap)
                    ++rounds;
            }
            if (rounds < need)
                need = rounds;
        }
        if (need > 0 && need != UINT64_MAX) {
            const double grant =
                static_cast<double>(need) * quantum;
            for (size_t ci = 0; ci < clients_.size(); ++ci) {
                if (cheapest[ci] != kNone)
                    clients_[ci].deficit += grant;
            }
        }

        // First affordable client in round-robin order from cursor_.
        const size_t n = clients_.size();
        for (size_t step = 0; step < n; ++step) {
            const size_t ci = (cursor_ + step) % n;
            if (cheapest[ci] == kNone)
                continue;
            if (clients_[ci].deficit >=
                entries_[cheapest[ci]].cost) {
                cursor_ = ci; // keep serving this client while it
                              // can still afford work (DRR visit)
                return cheapest[ci];
            }
        }
        // Unreachable after the grant above; keep pop() total anyway.
        for (size_t ci = 0; ci < n; ++ci) {
            if (cheapest[ci] != kNone)
                return cheapest[ci];
        }
        return 0;
    }

    void settleFairShare(const Entry &e)
    {
        Client &c = clients_[e.client];
        c.deficit -= e.cost;
        if (c.deficit < 0.0)
            c.deficit = 0.0;
    }

    static constexpr size_t kNone = static_cast<size_t>(-1);

    SchedPolicy policy_;
    double quantum_;
    uint64_t nextSeq_ = 0;
    std::deque<T> urgent_;
    std::vector<Entry> entries_;
    std::vector<Client> clients_;
    size_t cursor_ = 0;
};

} // namespace sched
} // namespace gpuperf

#endif // GPUPERF_SCHED_POLICY_H
