#include "sched/cost.h"

#include <cmath>

namespace gpuperf {
namespace sched {

double
CostModel::staticUnits(const CostFeatures &f)
{
    // Replay wall time is dominated by the warp-op count of the
    // trace; resident warps add scheduler pressure on top. Additive
    // terms keep the estimate monotone in each feature and give a
    // floor of one unit so an all-zero cell still has a cost.
    return 1.0 + static_cast<double>(f.warpOps) +
           0.25 * static_cast<double>(f.warps);
}

double
CostModel::ewmaMerge(double prev, uint64_t prevCount, double sample,
                     double alpha)
{
    if (prevCount == 0)
        return sample;
    return alpha * sample + (1.0 - alpha) * prev;
}

double
CostModel::estimate(const std::string &key, const CostFeatures &f) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = observations_.find(key);
    if (it != observations_.end() && it->second.count > 0)
        return it->second.ewmaMs;
    return staticUnits(f) * msPerUnit_;
}

double
CostModel::estimateStatic(const CostFeatures &f) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return staticUnits(f) * msPerUnit_;
}

void
CostModel::observe(const std::string &key, const CostFeatures &f,
                   double ms)
{
    if (!(ms >= 0.0) || !std::isfinite(ms))
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = observations_.find(key);
    const double predicted =
        (it != observations_.end() && it->second.count > 0)
            ? it->second.ewmaMs
            : staticUnits(f) * msPerUnit_;
    errorAbsSum_ += std::fabs(predicted - ms);
    ++errorSamples_;

    Observation &obs = observations_[key];
    obs.ewmaMs = ewmaMerge(obs.ewmaMs, obs.count, ms);
    ++obs.count;

    const double units = staticUnits(f);
    if (units > 0.0 && ms > 0.0) {
        msPerUnit_ =
            ewmaMerge(msPerUnit_, msPerUnitCount_, ms / units);
        ++msPerUnitCount_;
    }
}

void
CostModel::seed(const std::string &key, double ms, uint64_t count)
{
    if (count == 0 || !(ms >= 0.0) || !std::isfinite(ms))
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Observation &obs = observations_[key];
    if (obs.count > 0)
        return; // in-process observations are fresher
    obs.ewmaMs = ms;
    obs.count = count;
}

bool
CostModel::observed(const std::string &key, double *ms,
                    uint64_t *count) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = observations_.find(key);
    if (it == observations_.end() || it->second.count == 0)
        return false;
    if (ms)
        *ms = it->second.ewmaMs;
    if (count)
        *count = it->second.count;
    return true;
}

double
CostModel::predictionErrorAbsSum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return errorAbsSum_;
}

uint64_t
CostModel::predictionSamples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return errorSamples_;
}

} // namespace sched
} // namespace gpuperf
