#include "store/timing_store.h"

#include "sched/cost.h"
#include "store/codecs.h"
#include "store/lifecycle/segment.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

std::string
TimingStore::keyFor(const funcsim::ProfileKey &key,
                    const arch::TimingFingerprint &fp)
{
    return key.str() + "|timing=" + fp.key();
}

TimingStore::TimingStore(std::string dir) : dir_(std::move(dir))
{
    makeDirs(dir_);
}

std::shared_ptr<const timing::TimingResult>
TimingStore::load(const funcsim::ProfileKey &key,
                  const arch::TimingFingerprint &fp) const
{
    const std::string key_str = keyFor(key, fp);
    std::string payload;
    if (!readStoreEntry(dir_, fileStem("timing", key_str) + ".timing",
                        kFormatVersion, key_str, &payload,
                        &counters_)) {
        counters_.miss();
        return nullptr;
    }
    auto result = std::make_shared<timing::TimingResult>();
    ByteReader r(payload);
    if (!readTiming(r, result.get()) || !r.atEnd()) {
        counters_.miss();
        return nullptr;
    }
    counters_.hit();
    return result;
}

bool
TimingStore::exists(const funcsim::ProfileKey &key,
                    const arch::TimingFingerprint &fp) const
{
    const std::string key_str = keyFor(key, fp);
    return storeEntryExists(dir_,
                            fileStem("timing", key_str) + ".timing",
                            kFormatVersion, key_str, &counters_);
}

std::string
TimingStore::leasePath(const std::string &key_str) const
{
    return dir_ + "/" + fileStem("timing", key_str) + ".lease";
}

Lease
TimingStore::tryAcquireLease(const funcsim::ProfileKey &key,
                             const arch::TimingFingerprint &fp) const
{
    return store::tryAcquireLease(leasePath(keyFor(key, fp)),
                                  leaseStaleAfterMs_, &counters_);
}

bool
TimingStore::leaseHeld(const funcsim::ProfileKey &key,
                       const arch::TimingFingerprint &fp) const
{
    return leaseFresh(leasePath(keyFor(key, fp)), leaseStaleAfterMs_);
}

bool
TimingStore::recordObservationMs(const funcsim::ProfileKey &key,
                                 const arch::TimingFingerprint &fp,
                                 double ms) const
{
    const std::string key_str = keyFor(key, fp);
    const std::string name = fileStem("obs", key_str) + ".obs";
    double ewma = 0.0;
    uint64_t count = 0;
    std::string payload;
    // Read through segments (a compacted .obs history keeps merging)
    // but ALWAYS write loose: the atomic loose write is the
    // last-write-wins arbiter, and the compactor folds it back in
    // later.
    if (readStoreEntry(dir_, name, kObservationFormatVersion, key_str,
                       &payload, &counters_)) {
        ByteReader r(payload);
        const double storedEwma = r.f64();
        const uint64_t storedCount = r.u64();
        if (r.atEnd()) {
            ewma = storedEwma;
            count = storedCount;
        }
    }
    ewma = sched::CostModel::ewmaMerge(ewma, count, ms);
    ++count;
    ByteWriter w;
    w.f64(ewma);
    w.u64(count);
    return writeEntryFile(dir_ + "/" + name, kObservationFormatVersion,
                          key_str, w.bytes(), &counters_);
}

bool
TimingStore::loadObservationMs(const funcsim::ProfileKey &key,
                               const arch::TimingFingerprint &fp,
                               double *ms, uint64_t *count) const
{
    const std::string key_str = keyFor(key, fp);
    std::string payload;
    if (!readStoreEntry(dir_, fileStem("obs", key_str) + ".obs",
                        kObservationFormatVersion, key_str, &payload,
                        &counters_))
        return false;
    ByteReader r(payload);
    const double ewma = r.f64();
    const uint64_t n = r.u64();
    if (!r.atEnd() || n == 0)
        return false;
    if (ms)
        *ms = ewma;
    if (count)
        *count = n;
    return true;
}

bool
TimingStore::save(const funcsim::ProfileKey &key,
                  const arch::TimingFingerprint &fp,
                  const timing::TimingResult &result) const
{
    const std::string key_str = keyFor(key, fp);
    const std::string path =
        dir_ + "/" + fileStem("timing", key_str) + ".timing";
    ByteWriter w;
    writeTiming(w, result);
    return writeEntryFile(path, kFormatVersion, key_str, w.bytes(),
                          &counters_);
}

} // namespace store
} // namespace gpuperf
