#include "store/timing_store.h"

#include "store/codecs.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

std::string
TimingStore::keyFor(const funcsim::ProfileKey &key,
                    const arch::TimingFingerprint &fp)
{
    return key.str() + "|timing=" + fp.key();
}

TimingStore::TimingStore(std::string dir) : dir_(std::move(dir))
{
    makeDirs(dir_);
}

std::shared_ptr<const timing::TimingResult>
TimingStore::load(const funcsim::ProfileKey &key,
                  const arch::TimingFingerprint &fp) const
{
    const std::string key_str = keyFor(key, fp);
    const std::string path =
        dir_ + "/" + fileStem("timing", key_str) + ".timing";
    std::string payload;
    if (!readEntryFile(path, kFormatVersion, key_str, &payload)) {
        ++misses_;
        return nullptr;
    }
    auto result = std::make_shared<timing::TimingResult>();
    ByteReader r(payload);
    if (!readTiming(r, result.get()) || !r.atEnd()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return result;
}

bool
TimingStore::exists(const funcsim::ProfileKey &key,
                    const arch::TimingFingerprint &fp) const
{
    const std::string key_str = keyFor(key, fp);
    return readEntryHeader(dir_ + "/" + fileStem("timing", key_str) +
                               ".timing",
                           kFormatVersion, key_str);
}

std::string
TimingStore::leasePath(const std::string &key_str) const
{
    return dir_ + "/" + fileStem("timing", key_str) + ".lease";
}

Lease
TimingStore::tryAcquireLease(const funcsim::ProfileKey &key,
                             const arch::TimingFingerprint &fp) const
{
    return store::tryAcquireLease(leasePath(keyFor(key, fp)),
                                  leaseStaleAfterMs_);
}

bool
TimingStore::leaseHeld(const funcsim::ProfileKey &key,
                       const arch::TimingFingerprint &fp) const
{
    return leaseFresh(leasePath(keyFor(key, fp)), leaseStaleAfterMs_);
}

bool
TimingStore::save(const funcsim::ProfileKey &key,
                  const arch::TimingFingerprint &fp,
                  const timing::TimingResult &result) const
{
    const std::string key_str = keyFor(key, fp);
    const std::string path =
        dir_ + "/" + fileStem("timing", key_str) + ".timing";
    ByteWriter w;
    writeTiming(w, result);
    return writeEntryFile(path, kFormatVersion, key_str, w.bytes());
}

} // namespace store
} // namespace gpuperf
