/**
 * @file
 * Cache-health telemetry for the persistent stores: every store keeps
 * one StoreCounters (thread-safe monotonic counters bumped on the hot
 * path), snapshotted into plain StoreStats values that ride
 * AnalysisService -> Server::stats() -> `gpuperf-serve --stats-json`,
 * the admin `gpuperf-worker stats` verb, and the batch bench JSON. A
 * fleet operator reads hit rates, byte traffic and lease steals per
 * store kind without attaching a debugger to any worker.
 *
 * Counters are process-local (each process counts what IT did to the
 * shared store); the disk-side complement — entry counts, live bytes,
 * segment/quarantine populations — comes from scanning the store root
 * (store/lifecycle/lifecycle.h, StoreUsage).
 */

#ifndef GPUPERF_STORE_STATS_H
#define GPUPERF_STORE_STATS_H

#include <atomic>
#include <cstdint>
#include <string>

namespace gpuperf {
namespace store {

/** One store's counters as plain values (snapshot or aggregate). */
struct StoreStats
{
    uint64_t hits = 0;         ///< loads served (entry decoded + valid)
    uint64_t misses = 0;       ///< loads that recompute (absent/stale/corrupt)
    uint64_t writes = 0;       ///< entries persisted (atomic publishes)
    uint64_t writeFailures = 0;///< publishes that failed (degraded to miss)
    uint64_t bytesRead = 0;    ///< file bytes read (entries + headers + obs)
    uint64_t bytesWritten = 0; ///< file bytes written
    uint64_t leaseSteals = 0;  ///< stale leases this process broke

    StoreStats &operator+=(const StoreStats &o)
    {
        hits += o.hits;
        misses += o.misses;
        writes += o.writes;
        writeFailures += o.writeFailures;
        bytesRead += o.bytesRead;
        bytesWritten += o.bytesWritten;
        leaseSteals += o.leaseSteals;
        return *this;
    }
};

/**
 * The live counter block each store owns. Relaxed atomics: these are
 * telemetry — torn cross-field reads are fine, lost increments are
 * not (hence atomics, not plain ints).
 */
class StoreCounters
{
  public:
    void hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
    void miss() { misses_.fetch_add(1, std::memory_order_relaxed); }
    void wrote(uint64_t bytes)
    {
        writes_.fetch_add(1, std::memory_order_relaxed);
        bytesWritten_.fetch_add(bytes, std::memory_order_relaxed);
    }
    void writeFailed()
    {
        writeFailures_.fetch_add(1, std::memory_order_relaxed);
    }
    void read(uint64_t bytes)
    {
        bytesRead_.fetch_add(bytes, std::memory_order_relaxed);
    }
    void stoleLease()
    {
        leaseSteals_.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    StoreStats snapshot() const
    {
        StoreStats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.writes = writes_.load(std::memory_order_relaxed);
        s.writeFailures =
            writeFailures_.load(std::memory_order_relaxed);
        s.bytesRead = bytesRead_.load(std::memory_order_relaxed);
        s.bytesWritten = bytesWritten_.load(std::memory_order_relaxed);
        s.leaseSteals = leaseSteals_.load(std::memory_order_relaxed);
        return s;
    }

  private:
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> writes_{0};
    std::atomic<uint64_t> writeFailures_{0};
    std::atomic<uint64_t> bytesRead_{0};
    std::atomic<uint64_t> bytesWritten_{0};
    std::atomic<uint64_t> leaseSteals_{0};
};

/**
 * The four stores' counters side by side — what one BatchRunner (and,
 * summed across executors, one AnalysisService) reports.
 */
struct StoreLayerStats
{
    StoreStats profiles;
    StoreStats calibrations;
    StoreStats timings;
    StoreStats results;

    StoreStats total() const
    {
        StoreStats t;
        t += profiles;
        t += calibrations;
        t += timings;
        t += results;
        return t;
    }

    StoreLayerStats &operator+=(const StoreLayerStats &o)
    {
        profiles += o.profiles;
        calibrations += o.calibrations;
        timings += o.timings;
        results += o.results;
        return *this;
    }
};

/**
 * One deterministic JSON object for @p stats (keys in declaration
 * order) — shared by statsToJson, the stats admin verb and the batch
 * bench. @p indent prefixes every line (nesting under a parent
 * object).
 */
std::string storeStatsJson(const StoreStats &stats,
                           const std::string &indent = "");

/** The layer as JSON: per-kind objects plus a "total". */
std::string storeLayerStatsJson(const StoreLayerStats &stats,
                                const std::string &indent = "");

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_STATS_H
