#include "store/profile_store.h"

#include "store/codecs.h"
#include "store/lifecycle/segment.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

ProfileStore::ProfileStore(std::string dir) : dir_(std::move(dir))
{
    makeDirs(dir_);
}

std::string
ProfileStore::path(const funcsim::ProfileKey &key,
                   const std::string &key_str) const
{
    (void)key;
    return dir_ + "/" + fileStem("profile", key_str) + ".profile";
}

std::shared_ptr<const funcsim::KernelProfile>
ProfileStore::load(const funcsim::ProfileKey &key) const
{
    const std::string key_str = key.str();
    std::string payload;
    if (!readStoreEntry(dir_, fileStem("profile", key_str) + ".profile",
                        kFormatVersion, key_str, &payload,
                        &counters_)) {
        counters_.miss();
        return nullptr;
    }
    auto profile = std::make_shared<funcsim::KernelProfile>();
    ByteReader r(payload);
    if (!readProfile(r, profile.get()) || !r.atEnd() ||
        profile->key != key) {
        counters_.miss();
        return nullptr;
    }
    counters_.hit();
    return profile;
}

bool
ProfileStore::readKey(const funcsim::ProfileKey &key) const
{
    const std::string key_str = key.str();
    return storeEntryExists(dir_,
                            fileStem("profile", key_str) + ".profile",
                            kFormatVersion, key_str, &counters_);
}

std::string
ProfileStore::leasePath(const funcsim::ProfileKey &key) const
{
    return dir_ + "/" + fileStem("profile", key.str()) + ".lease";
}

Lease
ProfileStore::tryAcquireLease(const funcsim::ProfileKey &key) const
{
    return store::tryAcquireLease(leasePath(key), leaseStaleAfterMs_,
                                  &counters_);
}

bool
ProfileStore::leaseHeld(const funcsim::ProfileKey &key) const
{
    return leaseFresh(leasePath(key), leaseStaleAfterMs_);
}

bool
ProfileStore::save(const funcsim::KernelProfile &profile) const
{
    const std::string key_str = profile.key.str();
    ByteWriter w;
    writeProfile(w, profile);
    return writeEntryFile(path(profile.key, key_str), kFormatVersion,
                          key_str, w.bytes(), &counters_);
}

} // namespace store
} // namespace gpuperf
