#include "store/result_store.h"

#include "store/codecs.h"
#include "store/lifecycle/segment.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

void
writeBatchResult(ByteWriter &w, const driver::BatchResult &r)
{
    w.str(r.kernelName);
    w.str(r.specName);
    writeAnalysis(w, r.analysis);
    w.u64(r.whatifs.size());
    for (const driver::RankedWhatIf &wi : r.whatifs) {
        w.u8(static_cast<uint8_t>(wi.point.kind));
        w.f64(wi.point.value);
        writePrediction(w, wi.result.before);
        writePrediction(w, wi.result.after);
    }
}

bool
readBatchResult(ByteReader &r, driver::BatchResult *result)
{
    result->kernelName = r.str();
    result->specName = r.str();
    if (!readAnalysis(r, &result->analysis))
        return false;
    const uint64_t n = r.u64();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
        driver::RankedWhatIf wi;
        const uint8_t kind = r.u8();
        if (kind > static_cast<uint8_t>(
                       driver::SweepPoint::Kind::kCoalescingFraction)) {
            r.fail();
            return false;
        }
        wi.point.kind = static_cast<driver::SweepPoint::Kind>(kind);
        wi.point.value = r.f64();
        if (!readPrediction(r, &wi.result.before) ||
            !readPrediction(r, &wi.result.after)) {
            return false;
        }
        result->whatifs.push_back(std::move(wi));
    }
    return r.ok();
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    makeDirs(dir_);
}

std::string
ResultStore::path(const std::string &key) const
{
    return dir_ + "/" + fileStem("result", key) + ".result";
}

std::unique_ptr<driver::BatchResult>
ResultStore::load(const std::string &key) const
{
    std::string payload;
    if (!readStoreEntry(dir_, fileStem("result", key) + ".result",
                        kFormatVersion, key, &payload, &counters_)) {
        counters_.miss();
        return nullptr;
    }
    auto result = std::make_unique<driver::BatchResult>();
    ByteReader r(payload);
    if (!readBatchResult(r, result.get()) || !r.atEnd()) {
        counters_.miss();
        return nullptr;
    }
    // Only ok results are ever persisted; re-stamp that on the way
    // out (the payload codec carries no ok/error framing).
    result->ok = true;
    result->error.clear();
    counters_.hit();
    return result;
}

bool
ResultStore::save(const std::string &key,
                  const driver::BatchResult &result) const
{
    ByteWriter w;
    writeBatchResult(w, result);
    return writeEntryFile(path(key), kFormatVersion, key, w.bytes(),
                          &counters_);
}

} // namespace store
} // namespace gpuperf
