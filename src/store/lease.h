/**
 * @file
 * Advisory cross-process lease markers — the in-flight protocol every
 * store shares (calibrations since PR 4; profiles, timings and spool
 * jobs since PR 5).
 *
 * A lease is a marker file created with O_CREAT|O_EXCL (so exactly one
 * creator wins) recording the holder's pid, start time and hostname.
 * Cooperating processes take a key's lease before computing the keyed
 * artifact; processes that lose the race poll the store for the
 * published entry instead of duplicating the work.
 *
 * The lock is ADVISORY and crash-safe by staleness: a lease whose pid
 * is no longer alive (same-host check) or whose marker is older than
 * the stale threshold is broken and re-acquired. The worst case of
 * every race — two writers after a broken lease, a holder dying
 * mid-compute — is one duplicated computation, never wrong data
 * (store entries stay self-validating and atomically renamed into
 * place, so a duplicate write is a bit-identical overwrite).
 */

#ifndef GPUPERF_STORE_LEASE_H
#define GPUPERF_STORE_LEASE_H

#include <cstdint>
#include <string>

#include "store/stats.h"

namespace gpuperf {
namespace store {

/** Default staleness threshold: far above any real sweep or replay. */
constexpr int64_t kLeaseStaleAfterMsDefault = 15 * 60 * 1000;

/**
 * RAII handle on one key's lease (the advisory cross-process in-flight
 * marker). Releasing (or destroying) a held lease removes the marker
 * file so waiters stop polling.
 */
class Lease
{
  public:
    Lease() = default;
    ~Lease() { release(); }

    Lease(Lease &&other) noexcept
        : path_(std::move(other.path_)), held_(other.held_)
    {
        other.path_.clear();
        other.held_ = false;
    }
    Lease &operator=(Lease &&other) noexcept;
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;

    /**
     * True when the caller owns the right to compute. Usually backed
     * by a marker file; on an unwritable store directory the lease is
     * held WITHOUT a marker (the safe degradation: possibly duplicated
     * work, never a stuck waiter).
     */
    bool held() const { return held_; }

    /** Remove the marker file, if any (idempotent). */
    void release();

  private:
    friend Lease tryAcquireLease(const std::string &, int64_t,
                                 StoreCounters *);
    Lease(std::string path, bool held)
        : path_(std::move(path)), held_(held)
    {
    }

    std::string path_; ///< marker file; empty = none to remove
    bool held_ = false;
};

/**
 * Try to take the lease at @p marker_path. Returns a held lease on
 * success; an empty (not held) one while another LIVE process holds
 * it. A stale marker — older than @p stale_after_ms, or written by a
 * dead same-host pid — is broken and re-acquired; each break bumps
 * @p counters (optional) lease-steal telemetry.
 */
Lease tryAcquireLease(const std::string &marker_path,
                      int64_t stale_after_ms = kLeaseStaleAfterMsDefault,
                      StoreCounters *counters = nullptr);

/**
 * True while some process (possibly this one) holds a fresh lease at
 * @p marker_path.
 */
bool leaseFresh(const std::string &marker_path,
                int64_t stale_after_ms = kLeaseStaleAfterMsDefault);

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_LEASE_H
