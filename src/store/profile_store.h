/**
 * @file
 * Persistent on-disk store of KernelProfiles, keyed by the full
 * ProfileKey (kernel hash x launch shape x run options x funcsim
 * fingerprint). Repeated batch runs — in the same process or across
 * restarts — load the profile and skip functional simulation entirely.
 *
 * Invalidation is by key mismatch: any change to the kernel, the
 * launch, the run options, the funcsim-relevant machine fields, or the
 * store format version makes the lookup miss and the profile is
 * recomputed. Entries are self-validating (the full key is stored in
 * the file), so filename hash collisions and stale files degrade to
 * misses, never to wrong data.
 */

#ifndef GPUPERF_STORE_PROFILE_STORE_H
#define GPUPERF_STORE_PROFILE_STORE_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "funcsim/profile.h"
#include "store/lease.h"
#include "store/stats.h"

namespace gpuperf {
namespace store {

/** Thread-safe; load/save may be called from any worker. */
class ProfileStore
{
  public:
    /**
     * Bump on ANY change that alters what a cached entry would
     * contain — the payload encoding OR the behaviour that computed
     * it (functional simulator, memxact models, trace generation).
     * The key only identifies the inputs; the version identifies the
     * computation, and a stale version must never be served.
     */
    static constexpr uint32_t kFormatVersion = 1;

    /** @param dir store directory, created if absent. */
    explicit ProfileStore(std::string dir);

    /** The stored profile for @p key, or nullptr on any miss. */
    std::shared_ptr<const funcsim::KernelProfile>
    load(const funcsim::ProfileKey &key) const;

    /**
     * Key-only lookup: true iff a valid entry for @p key exists —
     * header validated (magic, format version, full key echo, length)
     * WITHOUT deserializing the profile payload. For callers that
     * need an entry's existence or validity (warmth probes, tooling)
     * a header read replaces a trace decode; batch cells go further
     * and derive their result keys without touching the store at all
     * (BatchRunner::profileKeyFor). Does not count as a hit or miss.
     */
    bool readKey(const funcsim::ProfileKey &key) const;

    /** Persist @p profile under its own key. */
    bool save(const funcsim::KernelProfile &profile) const;

    const std::string &dir() const { return dir_; }

    /** Successful loads since construction. */
    uint64_t hits() const { return counters_.hits(); }
    /** Failed loads (absent, stale or corrupt entry). */
    uint64_t misses() const { return counters_.misses(); }

    /** Full cache-health snapshot (hits, misses, bytes, steals...). */
    StoreStats stats() const { return counters_.snapshot(); }

    // --- Cross-process in-flight lease --------------------------------
    //
    // Same protocol as the calibration lease (store/lease.h): sharded
    // processes pointing at one store split the functional simulations
    // instead of duplicating them — before simulating @p key's
    // profile, take its lease; losers poll load() for the published
    // entry. Advisory and crash-safe by staleness; the worst case of
    // any race is one duplicated funcsim, never wrong data.

    /**
     * Try to take the in-flight lease for @p key's profile. Returns a
     * held lease on success; an empty (not held) one while another
     * LIVE process holds it. A stale lease is broken and re-acquired.
     */
    Lease tryAcquireLease(const funcsim::ProfileKey &key) const;

    /**
     * True while some process (possibly this one) holds a fresh lease
     * on @p key's profile.
     */
    bool leaseHeld(const funcsim::ProfileKey &key) const;

    /**
     * Age threshold beyond which a lease whose holder cannot be
     * probed is considered abandoned. The default (15 min) is far
     * above any real funcsim; tests shrink it to exercise stealing.
     */
    void setLeaseStaleAfter(std::chrono::milliseconds age)
    {
        leaseStaleAfterMs_ = age.count();
    }

  private:
    std::string path(const funcsim::ProfileKey &key,
                     const std::string &key_str) const;
    std::string leasePath(const funcsim::ProfileKey &key) const;

    std::string dir_;
    int64_t leaseStaleAfterMs_ = kLeaseStaleAfterMsDefault;
    mutable StoreCounters counters_;
};

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_PROFILE_STORE_H
