#include "store/lease.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace gpuperf {
namespace store {

namespace {

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** This machine's name, for host-scoping the pid liveness probe. */
std::string
localHostname()
{
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return std::string();
    return std::string(buf);
}

/**
 * Parse "pid created_ms [hostname]" out of a lease marker; false on
 * garbage. A missing hostname (older marker) parses with host empty.
 */
bool
readLeaseMarker(const std::string &path, long *pid, int64_t *created_ms,
                std::string *host)
{
    std::ifstream in(path);
    if (!in)
        return false;
    long long p = 0, t = 0;
    if (!(in >> p >> t))
        return false;
    *pid = static_cast<long>(p);
    *created_ms = static_cast<int64_t>(t);
    host->clear();
    in >> *host; // optional
    return true;
}

/**
 * Same-host liveness probe. EPERM means "alive but not ours"; only
 * ESRCH proves the holder is gone.
 */
bool
pidAlive(long pid)
{
    if (pid <= 0)
        return false;
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

} // namespace

Lease &
Lease::operator=(Lease &&other) noexcept
{
    if (this != &other) {
        release();
        path_ = std::move(other.path_);
        held_ = other.held_;
        other.path_.clear();
        other.held_ = false;
    }
    return *this;
}

void
Lease::release()
{
    if (!path_.empty())
        ::unlink(path_.c_str());
    path_.clear();
    held_ = false;
}

bool
leaseFresh(const std::string &marker_path, int64_t stale_after_ms)
{
    long pid = 0;
    int64_t created_ms = 0;
    std::string host;
    if (!readLeaseMarker(marker_path, &pid, &created_ms, &host)) {
        // Unreadable or half-written marker: treat a very young file
        // as in-flight (the writer may be mid-create), anything else
        // as garbage. The age is bounded in BOTH directions — on a
        // shared filesystem whose server clock runs ahead, a
        // truncated marker would otherwise look "younger than now"
        // forever and spin every waiter in a poll loop.
        struct stat st;
        if (::stat(marker_path.c_str(), &st) != 0)
            return false; // gone — not held
        const int64_t age_ms =
            wallClockMs() - static_cast<int64_t>(st.st_mtime) * 1000;
        return age_ms > -2000 && age_ms < 2000;
    }
    if (wallClockMs() - created_ms > stale_after_ms)
        return false;
    // The kill(pid, 0) probe only means something for a holder on
    // THIS host; for a lease taken on another machine (shared
    // filesystem deployment) the local pid table says nothing — a
    // remote holder would look "dead" and have its fresh lease broken
    // constantly, defeating the work splitting. Cross-host leases are
    // governed by the age threshold alone.
    const std::string local = localHostname();
    if (!host.empty() && !local.empty() && host != local)
        return true;
    if (host.empty()) {
        // Hostname-less marker (legacy writer, or gethostname()
        // failed at acquire time): its provenance is unknown, so the
        // pid probe can lie in the dangerous direction — the pid may
        // have been recycled by an unrelated process here, or belong
        // to a privileged one (EPERM reads as "alive"), keeping a
        // dead holder's lease fresh until someone notices. Age is the
        // only trustworthy signal; use it alone.
        return true; // young (checked above) => fresh
    }
    return pidAlive(pid);
}

Lease
tryAcquireLease(const std::string &marker_path, int64_t stale_after_ms,
                StoreCounters *counters)
{
    for (int attempt = 0; attempt < 2; ++attempt) {
        const int fd = ::open(marker_path.c_str(),
                              O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            char buf[384];
            const int n = std::snprintf(
                buf, sizeof(buf), "%ld %lld %s\n",
                static_cast<long>(::getpid()),
                static_cast<long long>(wallClockMs()),
                localHostname().c_str());
            if (n > 0)
                (void)!::write(fd, buf, static_cast<size_t>(n));
            ::close(fd);
            return Lease(marker_path, /*held=*/true);
        }
        if (errno != EEXIST) {
            warn("lease '%s': %s — proceeding unlocked",
                 marker_path.c_str(), std::strerror(errno));
            // Held-without-marker: the caller computes (possibly
            // duplicating another process's work), which is the safe
            // degradation for an unwritable store directory — a
            // waiter stuck on a lease nobody can write would never
            // wake.
            return Lease(std::string(), /*held=*/true);
        }
        if (leaseFresh(marker_path, stale_after_ms))
            return Lease(std::string(), /*held=*/false);
        // Stale: break it and retry the exclusive create once. Two
        // breakers can race; O_EXCL arbitrates, the loser waits.
        if (counters)
            counters->stoleLease();
        ::unlink(marker_path.c_str());
    }
    return Lease(std::string(), /*held=*/false);
}

} // namespace store
} // namespace gpuperf
