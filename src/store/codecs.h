/**
 * @file
 * Binary codecs for the pipeline artifacts the stores persist:
 * functional-simulation profiles (stats + traces), calibration tables,
 * and full analysis/what-if results.
 *
 * Every writeX has a readX returning false on malformed input; readers
 * never partially populate their output on failure paths that matter
 * (callers discard the object when a read fails). Doubles round-trip
 * bit-exactly, so a loaded artifact drives the model to bit-identical
 * predictions.
 */

#ifndef GPUPERF_STORE_CODECS_H
#define GPUPERF_STORE_CODECS_H

#include "funcsim/profile.h"
#include "model/calibration.h"
#include "model/report.h"
#include "model/session.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

void writeStats(ByteWriter &w, const funcsim::DynamicStats &stats);
bool readStats(ByteReader &r, funcsim::DynamicStats *stats);

void writeTrace(ByteWriter &w, const funcsim::LaunchTrace &trace);
bool readTrace(ByteReader &r, funcsim::LaunchTrace *trace);

void writeProfile(ByteWriter &w, const funcsim::KernelProfile &profile);
bool readProfile(ByteReader &r, funcsim::KernelProfile *profile);

/**
 * TimingResult round-trips bit-exactly (every double as raw IEEE-754
 * bits), which is what lets the persistent timing memo (TimingStore)
 * serve replays that are indistinguishable from recomputation.
 */
void writeTiming(ByteWriter &w, const timing::TimingResult &t);
bool readTiming(ByteReader &r, timing::TimingResult *t);

void writeTables(ByteWriter &w, const model::CalibrationTables &tables);
bool readTables(ByteReader &r, model::CalibrationTables *tables);

/**
 * Content digest of a table set (its serialized bytes hashed): part
 * of persistent result keys, so results computed under one
 * calibration are never served to a session using another.
 */
uint64_t tablesDigest(const model::CalibrationTables &tables);

void writeAnalysis(ByteWriter &w, const model::Analysis &analysis);
bool readAnalysis(ByteReader &r, model::Analysis *analysis);

void writePrediction(ByteWriter &w, const model::Prediction &p);
bool readPrediction(ByteReader &r, model::Prediction *p);

// The batch-cell codec (writeBatchResult/readBatchResult) lives in
// store/result_store.h: BatchResult is a driver-layer type, and this
// header stays below the driver.

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_CODECS_H
