#include "store/calibration_store.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/logging.h"
#include "store/codecs.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

namespace {

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** This machine's name, for host-scoping the pid liveness probe. */
std::string
localHostname()
{
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return std::string();
    return std::string(buf);
}

/**
 * Parse "pid created_ms [hostname]" out of a lease marker; false on
 * garbage. A missing hostname (older marker) parses with host empty.
 */
bool
readLeaseMarker(const std::string &path, long *pid, int64_t *created_ms,
                std::string *host)
{
    std::ifstream in(path);
    if (!in)
        return false;
    long long p = 0, t = 0;
    if (!(in >> p >> t))
        return false;
    *pid = static_cast<long>(p);
    *created_ms = static_cast<int64_t>(t);
    host->clear();
    in >> *host; // optional
    return true;
}

/**
 * Same-host liveness probe. EPERM means "alive but not ours"; only
 * ESRCH proves the holder is gone.
 */
bool
pidAlive(long pid)
{
    if (pid <= 0)
        return false;
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

} // namespace

CalibrationLease &
CalibrationLease::operator=(CalibrationLease &&other) noexcept
{
    if (this != &other) {
        release();
        path_ = std::move(other.path_);
        held_ = other.held_;
        other.path_.clear();
        other.held_ = false;
    }
    return *this;
}

void
CalibrationLease::release()
{
    if (!path_.empty())
        ::unlink(path_.c_str());
    path_.clear();
    held_ = false;
}

CalibrationStore::CalibrationStore(std::string dir)
    : dir_(std::move(dir))
{
    makeDirs(dir_);
}

std::string
CalibrationStore::path(const arch::GpuSpec &spec,
                       const std::string &key) const
{
    return dir_ + "/" + fileStem(spec.name, key) + ".calibration";
}

std::shared_ptr<const model::CalibrationTables>
CalibrationStore::load(const arch::GpuSpec &spec) const
{
    const std::string key = spec.fingerprint();
    std::string payload;
    if (!readEntryFile(path(spec, key), kFormatVersion, key, &payload)) {
        ++misses_;
        return nullptr;
    }
    auto tables = std::make_shared<model::CalibrationTables>();
    ByteReader r(payload);
    if (!readTables(r, tables.get()) || !r.atEnd()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return tables;
}

bool
CalibrationStore::save(const arch::GpuSpec &spec,
                       const model::CalibrationTables &tables) const
{
    const std::string key = spec.fingerprint();
    ByteWriter w;
    writeTables(w, tables);
    return writeEntryFile(path(spec, key), kFormatVersion, key,
                          w.bytes());
}

bool
CalibrationStore::saveBenchResults(const arch::GpuSpec &spec,
                                   std::vector<BenchEntry> entries) const
{
    // Merge with what is already stored so shapes measured by earlier
    // batches survive a batch that happened not to need them.
    std::vector<BenchEntry> merged = loadBenchResults(spec);
    for (BenchEntry &e : entries) {
        bool known = false;
        for (const BenchEntry &m : merged) {
            if (m.first == e.first) {
                known = true;
                break;
            }
        }
        if (!known)
            merged.push_back(std::move(e));
    }

    const std::string key = "bench|" + spec.fingerprint();
    ByteWriter w;
    w.u64(merged.size());
    for (const BenchEntry &e : merged) {
        w.i32(std::get<0>(e.first));
        w.i32(std::get<1>(e.first));
        w.i32(std::get<2>(e.first));
        w.f64(e.second.seconds);
        w.u64(e.second.transactions);
        w.u64(e.second.requestBytes);
        w.f64(e.second.bandwidth);
        w.f64(e.second.xactThroughput);
    }
    return writeEntryFile(dir_ + "/" + fileStem(spec.name, key) +
                              ".bench",
                          kFormatVersion, key, w.bytes());
}

std::string
CalibrationStore::leasePath(const arch::GpuSpec &spec) const
{
    return dir_ + "/" + fileStem(spec.name, spec.fingerprint()) +
           ".lease";
}

bool
CalibrationStore::leaseFresh(const std::string &path) const
{
    long pid = 0;
    int64_t created_ms = 0;
    std::string host;
    if (!readLeaseMarker(path, &pid, &created_ms, &host)) {
        // Unreadable or half-written marker: treat a very young file
        // as in-flight (the writer may be mid-create), anything else
        // as garbage. The age is bounded in BOTH directions — on a
        // shared filesystem whose server clock runs ahead, a
        // truncated marker would otherwise look "younger than now"
        // forever and spin every waiter in calibrate()'s poll loop.
        struct stat st;
        if (::stat(path.c_str(), &st) != 0)
            return false; // gone — not held
        const int64_t age_ms =
            wallClockMs() -
            static_cast<int64_t>(st.st_mtime) * 1000;
        return age_ms > -2000 && age_ms < 2000;
    }
    if (wallClockMs() - created_ms > leaseStaleAfterMs_)
        return false;
    // The kill(pid, 0) probe only means something for a holder on
    // THIS host; for a lease taken on another machine (shared
    // filesystem deployment) the local pid table says nothing — a
    // remote holder would look "dead" and have its fresh lease broken
    // constantly, defeating the sweep splitting. Cross-host leases
    // are governed by the age threshold alone.
    const std::string local = localHostname();
    if (!host.empty() && !local.empty() && host != local)
        return true;
    return pidAlive(pid);
}

CalibrationLease
CalibrationStore::tryAcquireLease(const arch::GpuSpec &spec) const
{
    const std::string path = leasePath(spec);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const int fd = ::open(path.c_str(),
                              O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            char buf[384];
            const int n = std::snprintf(
                buf, sizeof(buf), "%ld %lld %s\n",
                static_cast<long>(::getpid()),
                static_cast<long long>(wallClockMs()),
                localHostname().c_str());
            if (n > 0)
                (void)!::write(fd, buf, static_cast<size_t>(n));
            ::close(fd);
            return CalibrationLease(path, /*held=*/true);
        }
        if (errno != EEXIST) {
            warn("calibration lease '%s': %s — proceeding unlocked",
                 path.c_str(), std::strerror(errno));
            // Held-without-marker: the caller calibrates (possibly
            // duplicating another process's work), which is the safe
            // degradation for an unwritable store directory — a
            // waiter stuck on a lease nobody can write would never
            // wake.
            return CalibrationLease(std::string(), /*held=*/true);
        }
        if (leaseFresh(path))
            return CalibrationLease(std::string(), /*held=*/false);
        // Stale: break it and retry the exclusive create once. Two
        // breakers can race; O_EXCL arbitrates, the loser waits.
        ::unlink(path.c_str());
    }
    return CalibrationLease(std::string(), /*held=*/false);
}

bool
CalibrationStore::leaseHeld(const arch::GpuSpec &spec) const
{
    return leaseFresh(leasePath(spec));
}

std::vector<CalibrationStore::BenchEntry>
CalibrationStore::loadBenchResults(const arch::GpuSpec &spec) const
{
    const std::string key = "bench|" + spec.fingerprint();
    std::string payload;
    if (!readEntryFile(dir_ + "/" + fileStem(spec.name, key) + ".bench",
                       kFormatVersion, key, &payload)) {
        return {};
    }
    ByteReader r(payload);
    std::vector<BenchEntry> entries;
    const uint64_t n = r.u64();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
        BenchEntry e;
        const int blocks = r.i32();
        const int threads = r.i32();
        const int requests = r.i32();
        e.first = std::make_tuple(blocks, threads, requests);
        e.second.seconds = r.f64();
        e.second.transactions = r.u64();
        e.second.requestBytes = r.u64();
        e.second.bandwidth = r.f64();
        e.second.xactThroughput = r.f64();
        entries.push_back(std::move(e));
    }
    if (!r.atEnd())
        return {};
    return entries;
}

} // namespace store
} // namespace gpuperf
