#include "store/calibration_store.h"

#include "store/codecs.h"
#include "store/lifecycle/segment.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

CalibrationStore::CalibrationStore(std::string dir)
    : dir_(std::move(dir))
{
    makeDirs(dir_);
}

std::string
CalibrationStore::path(const arch::GpuSpec &spec,
                       const std::string &key) const
{
    return dir_ + "/" + fileStem(spec.name, key) + ".calibration";
}

std::shared_ptr<const model::CalibrationTables>
CalibrationStore::load(const arch::GpuSpec &spec) const
{
    const std::string key = spec.fingerprint();
    std::string payload;
    if (!readStoreEntry(dir_, fileStem(spec.name, key) + ".calibration",
                        kFormatVersion, key, &payload, &counters_)) {
        counters_.miss();
        return nullptr;
    }
    auto tables = std::make_shared<model::CalibrationTables>();
    ByteReader r(payload);
    if (!readTables(r, tables.get()) || !r.atEnd()) {
        counters_.miss();
        return nullptr;
    }
    counters_.hit();
    return tables;
}

bool
CalibrationStore::save(const arch::GpuSpec &spec,
                       const model::CalibrationTables &tables) const
{
    const std::string key = spec.fingerprint();
    ByteWriter w;
    writeTables(w, tables);
    return writeEntryFile(path(spec, key), kFormatVersion, key,
                          w.bytes(), &counters_);
}

bool
CalibrationStore::saveBenchResults(const arch::GpuSpec &spec,
                                   std::vector<BenchEntry> entries) const
{
    // Merge with what is already stored so shapes measured by earlier
    // batches survive a batch that happened not to need them.
    std::vector<BenchEntry> merged = loadBenchResults(spec);
    for (BenchEntry &e : entries) {
        bool known = false;
        for (const BenchEntry &m : merged) {
            if (m.first == e.first) {
                known = true;
                break;
            }
        }
        if (!known)
            merged.push_back(std::move(e));
    }

    const std::string key = "bench|" + spec.fingerprint();
    ByteWriter w;
    w.u64(merged.size());
    for (const BenchEntry &e : merged) {
        w.i32(std::get<0>(e.first));
        w.i32(std::get<1>(e.first));
        w.i32(std::get<2>(e.first));
        w.f64(e.second.seconds);
        w.u64(e.second.transactions);
        w.u64(e.second.requestBytes);
        w.f64(e.second.bandwidth);
        w.f64(e.second.xactThroughput);
    }
    return writeEntryFile(dir_ + "/" + fileStem(spec.name, key) +
                              ".bench",
                          kFormatVersion, key, w.bytes(), &counters_);
}

std::string
CalibrationStore::leasePath(const arch::GpuSpec &spec) const
{
    return dir_ + "/" + fileStem(spec.name, spec.fingerprint()) +
           ".lease";
}

CalibrationLease
CalibrationStore::tryAcquireLease(const arch::GpuSpec &spec) const
{
    return store::tryAcquireLease(leasePath(spec), leaseStaleAfterMs_,
                                  &counters_);
}

bool
CalibrationStore::leaseHeld(const arch::GpuSpec &spec) const
{
    return leaseFresh(leasePath(spec), leaseStaleAfterMs_);
}

std::vector<CalibrationStore::BenchEntry>
CalibrationStore::loadBenchResults(const arch::GpuSpec &spec) const
{
    const std::string key = "bench|" + spec.fingerprint();
    std::string payload;
    if (!readStoreEntry(dir_, fileStem(spec.name, key) + ".bench",
                        kFormatVersion, key, &payload, &counters_)) {
        return {};
    }
    ByteReader r(payload);
    std::vector<BenchEntry> entries;
    const uint64_t n = r.u64();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
        BenchEntry e;
        const int blocks = r.i32();
        const int threads = r.i32();
        const int requests = r.i32();
        e.first = std::make_tuple(blocks, threads, requests);
        e.second.seconds = r.f64();
        e.second.transactions = r.u64();
        e.second.requestBytes = r.u64();
        e.second.bandwidth = r.f64();
        e.second.xactThroughput = r.f64();
        entries.push_back(std::move(e));
    }
    if (!r.atEnd())
        return {};
    return entries;
}

} // namespace store
} // namespace gpuperf
