/**
 * @file
 * Indexed segment files: the many-small-files cure for 10^5+-entry
 * store directories. A segment concatenates loose entry files
 * byte-for-byte (each slice is exactly what writeEntryFile() put on
 * disk, checksum trailer included) and appends a name->slice index
 * plus a self-validating footer. The Compactor folds loose files into
 * segments under a lease; every store READS through transparently —
 * loose file first (always fresher: writes stay loose), then the
 * newest segment holding the name — so the hot paths never know the
 * layout changed and a warm run is bit-identical either way.
 *
 * Concurrency story: segments are immutable once published (atomic
 * temp+rename, like entries). A rewrite (GC eviction, verifier
 * dropping a corrupt slice, compactor merging) publishes a NEW
 * segment and unlinks the old, so a reader holding a stale index
 * simply fails to open the old file, refreshes its catalog once, and
 * retries; the worst case of every race is a cache miss, never wrong
 * data (slices re-validate magic/version/key/checksum on read).
 *
 * File layout:
 *   [entry blob 0][entry blob 1]...            (the slices)
 *   index: u32 count, then per entry
 *          str name, u64 offset, u64 length
 *   footer (32 bytes, fixed, at EOF):
 *          u64 index_offset, u64 index_length,
 *          u64 fnv1a64(index bytes), u64 segment magic
 */

#ifndef GPUPERF_STORE_LIFECYCLE_SEGMENT_H
#define GPUPERF_STORE_LIFECYCLE_SEGMENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "store/stats.h"

namespace gpuperf {
namespace store {

/** Segment file suffix (segments live beside the loose entries). */
extern const char kSegmentSuffix[]; // ".seg"

/** One named slice of a segment file. */
struct SegmentEntry
{
    std::string name; ///< the loose filename this slice replaces
    uint64_t offset = 0;
    uint64_t length = 0;
};

/**
 * Segment files in @p dir, sorted by name. Names embed a fixed-width
 * hex timestamp, so this order is also publication order — later
 * segments shadow earlier ones for a duplicated name.
 */
std::vector<std::string> listSegmentFiles(const std::string &dir);

/**
 * Parse @p seg_path's index. False on a missing, torn, or
 * wrong-magic segment (the verifier treats that as a corrupt segment;
 * readers treat it as "holds nothing").
 */
bool readSegmentIndex(const std::string &seg_path,
                      std::vector<SegmentEntry> *out);

/** Read one slice's raw blob bytes. False on I/O failure. */
bool readSegmentSlice(const std::string &seg_path, uint64_t offset,
                      uint64_t length, std::string *blob);

/**
 * Accumulates named blobs and publishes them as one segment file.
 * Duplicate names keep the LAST add (the freshest loose version).
 */
class SegmentWriter
{
  public:
    /** Queue @p blob (exact loose-file bytes) under @p name. */
    void add(const std::string &name, const std::string &blob);

    size_t count() const { return entries_.size(); }
    uint64_t blobBytes() const;

    /**
     * Atomically publish into @p dir as pack-<stamp>.seg (temp file +
     * rename; the stamp sorts after every existing segment so this
     * one shadows them). Returns the published path, or empty on
     * failure — in which case nothing was made visible and the loose
     * files stay authoritative.
     */
    std::string publish(const std::string &dir,
                        StoreCounters *counters = nullptr);

  private:
    std::vector<std::pair<std::string, std::string>> entries_;
};

// --- Transparent read-through ----------------------------------------
//
// The two calls every store uses in place of bare readEntryFile /
// readEntryHeader. Loose file first; on a loose miss, a process-wide
// per-directory catalog of segment indexes answers from the newest
// slice. The catalog refreshes itself when the directory's segment
// set changes (compact/gc publish or unlink), so long-lived workers
// follow rewrites without restarts.

/**
 * readEntryFile() through the segment layer: loose @p dir/@p name
 * first, then segments. Validates version, key echo and checksum
 * exactly like the loose path.
 */
bool readStoreEntry(const std::string &dir, const std::string &name,
                    uint32_t version, const std::string &key,
                    std::string *payload,
                    StoreCounters *counters = nullptr);

/**
 * readEntryHeader() through the segment layer: true iff a valid entry
 * for @p key exists loose or in a segment.
 */
bool storeEntryExists(const std::string &dir, const std::string &name,
                      uint32_t version, const std::string &key,
                      StoreCounters *counters = nullptr);

/**
 * Drop the cached catalog for @p dir (or every directory when empty).
 * The compactor/GC/verifier call this after rewriting segments in
 * their own process; other processes converge via refresh-on-miss.
 */
void invalidateSegmentCatalog(const std::string &dir = std::string());

/**
 * Rewrite every segment in @p dir that holds a name in @p drop,
 * republishing the surviving slices and unlinking the originals; a
 * segment left empty is simply unlinked. The GC's and Verifier's
 * eviction primitive — the caller MUST hold @p dir's compact lease.
 * @p dropped_bytes (optional) accumulates the evicted slice bytes.
 * False when any rewrite failed to publish (the original segment is
 * kept in that case — over-retention, never data loss).
 */
bool rewriteSegmentsDropping(const std::string &dir,
                             const std::vector<std::string> &drop,
                             uint64_t *dropped_bytes = nullptr,
                             StoreCounters *counters = nullptr);

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_LIFECYCLE_SEGMENT_H
