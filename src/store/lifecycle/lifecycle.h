/**
 * @file
 * Shared scaffolding for the store lifecycle subsystem (GC, verify,
 * compaction, usage telemetry): what KIND of file each name in a
 * store directory is, which subdirectories a store root owns, the
 * last-access sidecar index the GC's LRU runs on, and the disk-side
 * usage scan that complements the process-side StoreCounters.
 *
 * A store directory holds exactly these citizens:
 *   entries     *.profile *.calibration *.bench *.timing *.obs *.result
 *   leases      *.lease (advisory in-flight markers, store/lease.h)
 *   temps       *<anything>.tmp.<pid>.<seq> (in-flight atomic writes)
 *   segments    pack-*.seg (store/lifecycle/segment.h)
 *   sidecar     access.idx (last-access index, this file)
 *   janitor     compact.lease (one compactor/GC per dir at a time)
 *   quarantine/ corrupt entries the Verifier moved aside
 */

#ifndef GPUPERF_STORE_LIFECYCLE_LIFECYCLE_H
#define GPUPERF_STORE_LIFECYCLE_LIFECYCLE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpuperf {
namespace store {

extern const char kAccessIndexName[];   // "access.idx"
extern const char kQuarantineDirName[]; // "quarantine"
extern const char kCompactLeaseName[];  // "compact.lease"

/** True for the entry suffixes every store writes. */
bool isEntryFileName(const std::string &name);
/** True for in-flight atomic-write temp files (".tmp." infix). */
bool isTempFileName(const std::string &name);
/** True for lease markers (entry leases and the compact lease). */
bool isLeaseFileName(const std::string &name);

/**
 * The entry's lease-marker filename ("profile-abc.profile" ->
 * "profile-abc.lease"): the convention every store follows, which is
 * what lets the GC check holder-ship without asking the stores.
 */
std::string leaseNameFor(const std::string &entry_name);

/** Immediate subdirectories of @p root (quarantine excluded). */
std::vector<std::string> listStoreSubdirs(const std::string &root);

/** Plain files directly in @p dir, unsorted. */
std::vector<std::string> listDirFiles(const std::string &dir);

/** st_size of @p path, or 0 when it cannot be stat'ed. */
uint64_t fileSizeOf(const std::string &path);
/** st_mtime of @p path in ms since epoch, or 0. */
int64_t fileMtimeMs(const std::string &path);

// --- Last-access sidecar ----------------------------------------------
//
// The GC's LRU order. Touches are buffered in memory by a
// process-wide tracker (the read path pays one mutexed map insert,
// no I/O) and folded into dir/access.idx every few hundred touches
// and on demand — merge-max against whatever is on disk, so
// concurrent processes only ever advance a timestamp. An entry absent
// from the index falls back to its file mtime, so a lost flush costs
// recency precision, never correctness.

/** Buffer "this process read @p name in @p dir just now". */
void recordAccess(const std::string &dir, const std::string &name);

/** Fold every buffered touch into its directory's access.idx. */
void flushAccessIndexes();

/**
 * The merged view of @p dir's access.idx plus this process's
 * unflushed touches: name -> last-access ms. Unreadable or torn
 * sidecars read as empty (mtime fallback covers the gap).
 */
void loadAccessIndex(const std::string &dir,
                     std::map<std::string, int64_t> *out);

// --- Disk-side usage --------------------------------------------------

/** What a scan of one store subdirectory found. */
struct DirUsage
{
    uint64_t looseEntries = 0;
    uint64_t looseBytes = 0;
    uint64_t segmentFiles = 0;
    uint64_t segmentEntries = 0; ///< live (un-shadowed) slices
    uint64_t segmentBytes = 0;   ///< bytes of those live slices
    uint64_t leases = 0;
    uint64_t tempFiles = 0;
    uint64_t quarantined = 0;

    uint64_t entries() const { return looseEntries + segmentEntries; }
    uint64_t liveBytes() const { return looseBytes + segmentBytes; }
};

/** The whole store root, by subdirectory. */
struct StoreUsage
{
    std::map<std::string, DirUsage> dirs;

    uint64_t entries() const;
    uint64_t liveBytes() const;
    uint64_t leases() const;
    uint64_t quarantined() const;
};

/**
 * Scan @p root (a --store directory: profiles/, calibrations/,
 * timing/, results/ beneath it). Read-only; safe to run against a
 * live store.
 */
StoreUsage scanStoreUsage(const std::string &root);

/** Deterministic JSON for the scan (per-dir objects + totals). */
std::string storeUsageJson(const StoreUsage &usage,
                           const std::string &indent = "");

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_LIFECYCLE_LIFECYCLE_H
