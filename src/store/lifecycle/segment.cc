#include "store/lifecycle/segment.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>

#include "common/fnv.h"
#include "common/logging.h"
#include "store/lifecycle/lifecycle.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

const char kSegmentSuffix[] = ".seg";

namespace {

/** "GPUPERFG" as little-endian bytes — closes a segment footer. */
constexpr uint64_t kSegmentMagic = 0x47465245'50555047ull;
constexpr size_t kFooterBytes = 32;

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** Where a name resolves inside a directory's segment set. */
struct SliceLoc
{
    std::string segPath;
    uint64_t offset = 0;
    uint64_t length = 0;
};

/**
 * One directory's loaded segment indexes. `segments` remembers which
 * files the map was built from so a cheap listing comparison detects
 * publishes and unlinks.
 */
struct DirCatalog
{
    std::set<std::string> segments;
    std::map<std::string, SliceLoc> byName;
};

/**
 * Process-wide segment catalog: every store instance in this process
 * shares one cache of parsed indexes, so a 10^5-entry segment is
 * parsed once, not once per store object.
 */
class SegmentCatalog
{
  public:
    static SegmentCatalog &instance()
    {
        static SegmentCatalog cat;
        return cat;
    }

    /**
     * Find @p name in @p dir's segments, refreshing the cached
     * indexes when the directory's segment listing changed. False
     * when no segment holds the name.
     */
    bool locate(const std::string &dir, const std::string &name,
                SliceLoc *loc, StoreCounters *counters)
    {
        std::lock_guard<std::mutex> lock(mu_);
        DirCatalog &cat = dirs_[dir];
        auto it = cat.byName.find(name);
        if (it == cat.byName.end()) {
            // Miss against the cached view: reconcile with the disk
            // listing (a compactor here or elsewhere may have
            // published or rewritten segments) and look again.
            if (!refreshLocked(dir, &cat, counters))
                return false;
            it = cat.byName.find(name);
            if (it == cat.byName.end())
                return false;
        }
        *loc = it->second;
        return true;
    }

    /** Force-reload @p dir on next lookup (or everything when empty). */
    void invalidate(const std::string &dir)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (dir.empty())
            dirs_.clear();
        else
            dirs_.erase(dir);
    }

  private:
    /**
     * Reload any segment files the cached view doesn't match. True
     * when the view changed (worth re-looking-up the name).
     */
    bool refreshLocked(const std::string &dir, DirCatalog *cat,
                       StoreCounters *counters)
    {
        std::vector<std::string> files = listSegmentFiles(dir);
        std::set<std::string> listing(files.begin(), files.end());
        if (listing == cat->segments)
            return false;
        cat->segments = std::move(listing);
        cat->byName.clear();
        // Sorted order == publication order: a later segment's slice
        // for a name shadows an earlier one's (the compactor folds
        // fresher loose files into newer segments).
        for (const std::string &file : files) {
            const std::string path = dir + "/" + file;
            std::vector<SegmentEntry> index;
            if (!readSegmentIndex(path, &index))
                continue; // torn segment: holds nothing (verify fixes)
            if (counters)
                counters->read(kFooterBytes); // index parse I/O (approx)
            for (SegmentEntry &e : index) {
                SliceLoc loc;
                loc.segPath = path;
                loc.offset = e.offset;
                loc.length = e.length;
                cat->byName[e.name] = loc;
            }
        }
        return true;
    }

    std::mutex mu_;
    std::map<std::string, DirCatalog> dirs_;
};

/**
 * Resolve @p name via the catalog and read+validate its blob. One
 * refresh-and-retry absorbs a segment rewrite racing this read.
 */
bool
readThroughSegments(const std::string &dir, const std::string &name,
                    uint32_t version, const std::string &key,
                    std::string *payload, StoreCounters *counters)
{
    for (int attempt = 0; attempt < 2; ++attempt) {
        SliceLoc loc;
        if (!SegmentCatalog::instance().locate(dir, name, &loc,
                                               counters))
            return false;
        std::string blob;
        if (readSegmentSlice(loc.segPath, loc.offset, loc.length,
                             &blob)) {
            if (counters)
                counters->read(blob.size());
            std::string stored_key;
            std::string stored_payload;
            if (parseEntryBlob(blob, version, &stored_key,
                               &stored_payload) &&
                stored_key == key) {
                *payload = std::move(stored_payload);
                return true;
            }
            // A valid slice with the wrong content never self-heals;
            // don't retry into the same answer.
            return false;
        }
        // The segment vanished under us (rewrite): reload and retry.
        SegmentCatalog::instance().invalidate(dir);
    }
    return false;
}

} // namespace

std::vector<std::string>
listSegmentFiles(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return out;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (hasSuffix(name, kSegmentSuffix))
            out.push_back(name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

bool
readSegmentIndex(const std::string &seg_path,
                 std::vector<SegmentEntry> *out)
{
    std::ifstream in(seg_path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    const std::streamoff file_size = in.tellg();
    if (file_size < static_cast<std::streamoff>(kFooterBytes))
        return false;
    in.seekg(file_size - static_cast<std::streamoff>(kFooterBytes));
    std::string footer(kFooterBytes, '\0');
    in.read(&footer[0], static_cast<std::streamsize>(kFooterBytes));
    if (!in)
        return false;
    ByteReader f(footer);
    const uint64_t index_offset = f.u64();
    const uint64_t index_length = f.u64();
    const uint64_t index_hash = f.u64();
    if (f.u64() != kSegmentMagic || !f.ok())
        return false;
    const uint64_t blob_end = index_offset;
    if (index_offset + index_length + kFooterBytes !=
        static_cast<uint64_t>(file_size))
        return false;
    in.seekg(static_cast<std::streamoff>(index_offset));
    std::string index_bytes(index_length, '\0');
    in.read(&index_bytes[0],
            static_cast<std::streamsize>(index_length));
    if (!in ||
        fnv1a64(index_bytes.data(), index_bytes.size()) != index_hash)
        return false;
    ByteReader r(index_bytes);
    const uint32_t count = r.u32();
    std::vector<SegmentEntry> entries;
    for (uint32_t i = 0; i < count && r.ok(); ++i) {
        SegmentEntry e;
        e.name = r.str();
        e.offset = r.u64();
        e.length = r.u64();
        if (e.offset + e.length < e.offset ||
            e.offset + e.length > blob_end) {
            return false;
        }
        entries.push_back(std::move(e));
    }
    if (!r.atEnd())
        return false;
    *out = std::move(entries);
    return true;
}

bool
readSegmentSlice(const std::string &seg_path, uint64_t offset,
                 uint64_t length, std::string *blob)
{
    std::ifstream in(seg_path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(static_cast<std::streamoff>(offset));
    std::string data(length, '\0');
    in.read(&data[0], static_cast<std::streamsize>(length));
    if (in.gcount() != static_cast<std::streamsize>(length))
        return false;
    *blob = std::move(data);
    return true;
}

void
SegmentWriter::add(const std::string &name, const std::string &blob)
{
    for (auto &e : entries_) {
        if (e.first == name) {
            e.second = blob; // freshest version wins
            return;
        }
    }
    entries_.emplace_back(name, blob);
}

uint64_t
SegmentWriter::blobBytes() const
{
    uint64_t total = 0;
    for (const auto &e : entries_)
        total += e.second.size();
    return total;
}

std::string
SegmentWriter::publish(const std::string &dir, StoreCounters *counters)
{
    if (entries_.empty())
        return std::string();

    ByteWriter index;
    index.u32(static_cast<uint32_t>(entries_.size()));
    uint64_t offset = 0;
    for (const auto &e : entries_) {
        index.str(e.first);
        index.u64(offset);
        index.u64(e.second.size());
        offset += e.second.size();
    }
    ByteWriter footer;
    footer.u64(offset); // index offset == total blob bytes
    footer.u64(index.bytes().size());
    footer.u64(fnv1a64(index.bytes().data(), index.bytes().size()));
    footer.u64(kSegmentMagic);

    // A stamp that sorts after every live segment: wall-clock ms in
    // fixed-width hex, then pid + a per-process sequence for
    // uniqueness under concurrent compactors.
    static std::atomic<uint64_t> seg_seq{0};
    char stamp[64];
    std::snprintf(stamp, sizeof(stamp), "pack-%016llx-%ld-%llu",
                  static_cast<unsigned long long>(wallClockMs()),
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(
                      seg_seq.fetch_add(1)));
    const std::string path =
        dir + "/" + stamp + kSegmentSuffix;
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(seg_seq.fetch_add(1));
    std::ofstream out(tmp, std::ios::binary);
    if (!out) {
        warn("segment: cannot write '%s'", path.c_str());
        if (counters)
            counters->writeFailed();
        return std::string();
    }
    uint64_t written = 0;
    for (const auto &e : entries_) {
        out.write(e.second.data(),
                  static_cast<std::streamsize>(e.second.size()));
        written += e.second.size();
    }
    out.write(index.bytes().data(),
              static_cast<std::streamsize>(index.bytes().size()));
    out.write(footer.bytes().data(),
              static_cast<std::streamsize>(footer.bytes().size()));
    out.close();
    if (!out) {
        warn("segment: short write to '%s'", path.c_str());
        std::remove(tmp.c_str());
        if (counters)
            counters->writeFailed();
        return std::string();
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("segment: cannot move segment into '%s'", path.c_str());
        std::remove(tmp.c_str());
        if (counters)
            counters->writeFailed();
        return std::string();
    }
    if (counters)
        counters->wrote(written + index.bytes().size() +
                        footer.bytes().size());
    return path;
}

bool
readStoreEntry(const std::string &dir, const std::string &name,
               uint32_t version, const std::string &key,
               std::string *payload, StoreCounters *counters)
{
    if (readEntryFile(dir + "/" + name, version, key, payload,
                      counters)) {
        recordAccess(dir, name);
        return true;
    }
    if (readThroughSegments(dir, name, version, key, payload,
                            counters)) {
        recordAccess(dir, name);
        return true;
    }
    return false;
}

bool
storeEntryExists(const std::string &dir, const std::string &name,
                 uint32_t version, const std::string &key,
                 StoreCounters *counters)
{
    if (readEntryHeader(dir + "/" + name, version, key, counters)) {
        recordAccess(dir, name);
        return true;
    }
    // Segment slices have no cheap header-only path (the slice is in
    // one contiguous read anyway); validate the whole blob.
    std::string payload;
    if (readThroughSegments(dir, name, version, key, &payload,
                            counters)) {
        recordAccess(dir, name);
        return true;
    }
    return false;
}

void
invalidateSegmentCatalog(const std::string &dir)
{
    SegmentCatalog::instance().invalidate(dir);
}

bool
rewriteSegmentsDropping(const std::string &dir,
                        const std::vector<std::string> &drop,
                        uint64_t *dropped_bytes,
                        StoreCounters *counters)
{
    const std::set<std::string> victims(drop.begin(), drop.end());
    bool ok = true;
    for (const std::string &seg : listSegmentFiles(dir)) {
        const std::string seg_path = dir + "/" + seg;
        std::vector<SegmentEntry> index;
        if (!readSegmentIndex(seg_path, &index))
            continue; // torn segment is the Verifier's problem
        bool touched = false;
        for (const SegmentEntry &e : index) {
            if (victims.count(e.name)) {
                touched = true;
                break;
            }
        }
        if (!touched)
            continue;
        SegmentWriter writer;
        bool readable = true;
        for (const SegmentEntry &e : index) {
            if (victims.count(e.name)) {
                if (dropped_bytes)
                    *dropped_bytes += e.length;
                continue;
            }
            std::string blob;
            if (!readSegmentSlice(seg_path, e.offset, e.length,
                                  &blob)) {
                readable = false;
                break;
            }
            writer.add(e.name, blob);
        }
        if (!readable) {
            ok = false;
            continue; // keep the original rather than lose slices
        }
        if (writer.count() > 0 &&
            writer.publish(dir, counters).empty()) {
            ok = false;
            continue;
        }
        ::unlink(seg_path.c_str());
    }
    invalidateSegmentCatalog(dir);
    return ok;
}

} // namespace store
} // namespace gpuperf
