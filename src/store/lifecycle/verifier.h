/**
 * @file
 * Integrity scan for a store root. Walks every loose entry and every
 * segment slice, re-validating the full entry framing (magic,
 * internal lengths, checksum trailer when present — entries from
 * before the trailer existed get the structural checks only), and:
 *
 *  - QUARANTINES corrupt loose entries into <dir>/quarantine/ —
 *    readers already treat them as misses; moving them aside keeps
 *    the evidence for a post-mortem without the scan cost forever;
 *  - rewrites segments minus their corrupt slices (a torn segment
 *    whose index will not parse is quarantined whole);
 *  - sweeps stale lease markers (holder dead or past the staleness
 *    threshold) and orphaned atomic-write temp files older than the
 *    stale age — the debris a crashed writer leaves behind.
 *
 * Verify never deletes a valid entry and never blocks a live store:
 * in-flight leases and young temps are left exactly as found.
 */

#ifndef GPUPERF_STORE_LIFECYCLE_VERIFIER_H
#define GPUPERF_STORE_LIFECYCLE_VERIFIER_H

#include <cstdint>
#include <string>

#include "store/lease.h"
#include "store/stats.h"

namespace gpuperf {
namespace store {

struct VerifyOptions
{
    /** Move corrupt entries aside and sweep debris (false = report only). */
    bool fix = true;
    /** Temp files older than this are orphans from a dead writer. */
    int64_t tempStaleMs = kLeaseStaleAfterMsDefault;
    /** Lease markers staler than this are swept (see leaseFresh()). */
    int64_t leaseStaleMs = kLeaseStaleAfterMsDefault;
};

struct VerifyReport
{
    uint64_t scannedEntries = 0;
    uint64_t scannedBytes = 0;
    uint64_t corruptEntries = 0;   ///< loose entries that failed validation
    uint64_t quarantined = 0;      ///< moved into quarantine/ (fix mode)
    uint64_t corruptSegments = 0;  ///< segments whose index failed
    uint64_t corruptSlices = 0;    ///< slices dropped from segments
    uint64_t staleLeases = 0;      ///< lease markers swept
    uint64_t staleTemps = 0;       ///< orphaned temp files reaped
    bool ok = true;                ///< false: a fix failed to apply

    /** True when the store is clean (nothing corrupt found). */
    bool clean() const
    {
        return corruptEntries == 0 && corruptSegments == 0 &&
               corruptSlices == 0;
    }

    /** Deterministic JSON (keys in declaration order). */
    std::string json(const std::string &indent = "") const;
};

/** Scan (and with opts.fix, repair) the store at @p root. */
VerifyReport runVerify(const std::string &root,
                       const VerifyOptions &opts,
                       StoreCounters *counters = nullptr);

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_LIFECYCLE_VERIFIER_H
