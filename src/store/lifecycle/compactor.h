/**
 * @file
 * Segment compaction: folds a store directory's loose entry files
 * into one indexed segment (store/lifecycle/segment.h) so a
 * 10^5-entry directory stops costing 10^5 inodes and per-file opens.
 * Writes always stay loose — the atomic rename IS the store's
 * publication protocol — and the compactor periodically folds them
 * in, so a directory converges to "a few segments plus the newest
 * loose writes".
 *
 * Safety order per directory, all under the compact lease:
 *   1. read every loose entry (remembering its size+mtime) and every
 *      existing segment slice (when merging);
 *   2. publish the new segment (atomic temp+rename) — from this
 *      instant readers can resolve every folded name;
 *   3. re-stat each loose file and unlink ONLY the unchanged ones —
 *      a file rewritten mid-fold (an .obs EWMA merge, a re-published
 *      entry) survives as the fresher loose version, which readers
 *      prefer over any segment slice.
 * A crash between 2 and 3 leaves duplicates (loose + slice), which
 * readers resolve loose-first and the next compaction folds again —
 * over-retention, never loss.
 */

#ifndef GPUPERF_STORE_LIFECYCLE_COMPACTOR_H
#define GPUPERF_STORE_LIFECYCLE_COMPACTOR_H

#include <cstdint>
#include <string>

#include "store/stats.h"

namespace gpuperf {
namespace store {

struct CompactOptions
{
    /** Leave directories with fewer loose entries than this alone. */
    uint64_t minLooseEntries = 64;
    /** Merge existing segments once a directory holds more of them. */
    uint64_t maxSegments = 4;
    /** Compact every directory regardless of the thresholds. */
    bool force = false;
    /**
     * Entries leased or younger than this stay loose — their writer
     * (or a waiter polling for them) is still active.
     */
    int64_t minAgeMs = 60 * 1000;
};

struct CompactReport
{
    uint64_t foldedEntries = 0;  ///< loose files folded into segments
    uint64_t foldedBytes = 0;
    uint64_t segmentsMerged = 0; ///< old segments folded forward
    uint64_t segmentsWritten = 0;
    uint64_t keptLoose = 0;      ///< spared: leased, young, or changed
    uint64_t dirsSkippedBusy = 0;
    bool ok = true;

    /** Deterministic JSON (keys in declaration order). */
    std::string json(const std::string &indent = "") const;
};

/** Compact every subdirectory of @p root per @p opts. */
CompactReport runCompact(const std::string &root,
                         const CompactOptions &opts,
                         StoreCounters *counters = nullptr);

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_LIFECYCLE_COMPACTOR_H
