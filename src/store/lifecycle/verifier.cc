#include "store/lifecycle/verifier.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/logging.h"
#include "store/lifecycle/lifecycle.h"
#include "store/lifecycle/segment.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

namespace {

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

bool
readWholeFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out->assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    return in.good() || in.eof();
}

/**
 * Validate one entry blob whose format version is whatever the blob
 * SAYS it is. The verifier scans entries of every store and version
 * side by side; an entry of an older format version is stale, not
 * corrupt (stores miss on it, GC ages it out), so the scan checks
 * structure and checksum against the blob's own declared version.
 */
bool
entryBlobValid(const std::string &blob)
{
    if (blob.size() < 8 + 4)
        return false;
    ByteReader r(blob);
    (void)r.u64(); // magic re-checked by parseEntryBlob
    const uint32_t declared = r.u32();
    std::string key, payload;
    return parseEntryBlob(blob, declared, &key, &payload);
}

/**
 * Move @p path into dir/quarantine/, keeping the filename (a stamp
 * suffix resolves a collision with an earlier quarantine of the same
 * name). False when the move failed.
 */
bool
quarantineFile(const std::string &dir, const std::string &name)
{
    const std::string qdir = dir + "/" + kQuarantineDirName;
    if (!makeDirs(qdir))
        return false;
    const std::string from = dir + "/" + name;
    std::string to = qdir + "/" + name;
    if (std::rename(from.c_str(), to.c_str()) == 0)
        return true;
    to += "." + std::to_string(wallClockMs());
    return std::rename(from.c_str(), to.c_str()) == 0;
}

void
appendJsonField(std::string *out, const std::string &indent,
                const char *name, uint64_t value, bool last)
{
    char line[128];
    std::snprintf(line, sizeof(line), "%s  \"%s\": %llu%s\n",
                  indent.c_str(), name,
                  static_cast<unsigned long long>(value),
                  last ? "" : ",");
    out->append(line);
}

} // namespace

std::string
VerifyReport::json(const std::string &indent) const
{
    std::string out = "{\n";
    appendJsonField(&out, indent, "scanned_entries", scannedEntries,
                    false);
    appendJsonField(&out, indent, "scanned_bytes", scannedBytes,
                    false);
    appendJsonField(&out, indent, "corrupt_entries", corruptEntries,
                    false);
    appendJsonField(&out, indent, "quarantined", quarantined, false);
    appendJsonField(&out, indent, "corrupt_segments", corruptSegments,
                    false);
    appendJsonField(&out, indent, "corrupt_slices", corruptSlices,
                    false);
    appendJsonField(&out, indent, "stale_leases", staleLeases, false);
    appendJsonField(&out, indent, "stale_temps", staleTemps, false);
    out += indent + "  \"ok\": " + (ok ? "true" : "false") + ",\n";
    out += indent +
           "  \"clean\": " + (clean() ? "true" : "false") + "\n";
    out += indent + "}";
    return out;
}

VerifyReport
runVerify(const std::string &root, const VerifyOptions &opts,
          StoreCounters *counters)
{
    VerifyReport report;
    const int64_t now = wallClockMs();

    for (const std::string &sub : listStoreSubdirs(root)) {
        const std::string dir = root + "/" + sub;

        // Loose entries, debris and markers in one directory walk.
        for (const std::string &name : listDirFiles(dir)) {
            const std::string path = dir + "/" + name;
            if (isTempFileName(name)) {
                // An in-flight atomic write lives milliseconds; a
                // temp past the stale age belongs to a dead writer.
                if (now - fileMtimeMs(path) > opts.tempStaleMs) {
                    ++report.staleTemps;
                    if (opts.fix && ::unlink(path.c_str()) != 0)
                        report.ok = false;
                }
                continue;
            }
            if (isLeaseFileName(name)) {
                if (!leaseFresh(path, opts.leaseStaleMs)) {
                    ++report.staleLeases;
                    // A failed unlink of a since-released marker is
                    // fine; one that is still there is not.
                    if (opts.fix && ::unlink(path.c_str()) != 0 &&
                        errno != ENOENT)
                        report.ok = false;
                }
                continue;
            }
            if (!isEntryFileName(name))
                continue;
            ++report.scannedEntries;
            std::string blob;
            const bool read_ok = readWholeFile(path, &blob);
            report.scannedBytes += blob.size();
            if (counters)
                counters->read(blob.size());
            if (read_ok && entryBlobValid(blob))
                continue;
            ++report.corruptEntries;
            if (!opts.fix)
                continue;
            if (quarantineFile(dir, name))
                ++report.quarantined;
            else
                report.ok = false;
        }

        // Segments: a torn index condemns the file; a corrupt slice
        // only itself. Rewrites happen under the compact lease so a
        // live compactor/GC is never raced.
        std::vector<std::string> drop_slices;
        for (const std::string &seg : listSegmentFiles(dir)) {
            const std::string seg_path = dir + "/" + seg;
            std::vector<SegmentEntry> index;
            if (!readSegmentIndex(seg_path, &index)) {
                ++report.corruptSegments;
                if (opts.fix) {
                    if (quarantineFile(dir, seg))
                        ++report.quarantined;
                    else
                        report.ok = false;
                }
                continue;
            }
            for (const SegmentEntry &e : index) {
                ++report.scannedEntries;
                std::string blob;
                if (readSegmentSlice(seg_path, e.offset, e.length,
                                     &blob)) {
                    report.scannedBytes += blob.size();
                    if (counters)
                        counters->read(blob.size());
                    if (entryBlobValid(blob))
                        continue;
                }
                ++report.corruptSlices;
                drop_slices.push_back(e.name);
            }
        }
        if (opts.fix && !drop_slices.empty()) {
            Lease janitor =
                tryAcquireLease(dir + "/" + kCompactLeaseName,
                                kLeaseStaleAfterMsDefault, counters);
            if (janitor.held()) {
                if (!rewriteSegmentsDropping(dir, drop_slices,
                                             nullptr, counters))
                    report.ok = false;
            } else {
                // Busy directory: the slices stay (readers already
                // treat them as misses); the next verify gets them.
                report.ok = false;
            }
        }
        invalidateSegmentCatalog(dir);
    }
    return report;
}

} // namespace store
} // namespace gpuperf
