/**
 * @file
 * Size- and age-bounded garbage collection for a store root. Eviction
 * is LRU on the last-access sidecar (file mtime as the fallback), and
 * LEASE-AWARE: an entry whose in-flight lease is fresh — some process
 * is computing or publishing it right now — is never touched, and
 * neither is anything younger than the min-age guard (an entry
 * between its writer's rename and its reader's first load looks idle
 * but isn't). The worst case of every race is over-RETENTION until
 * the next sweep; an evicted entry is always recomputable by
 * construction, so GC can never lose data, only warmth.
 *
 * One GC (or compactor — they share the per-directory compact lease)
 * runs against a directory at a time; a second janitor skips it and
 * reports rather than waits.
 */

#ifndef GPUPERF_STORE_LIFECYCLE_GC_H
#define GPUPERF_STORE_LIFECYCLE_GC_H

#include <cstdint>
#include <string>

#include "store/stats.h"

namespace gpuperf {
namespace store {

struct GcOptions
{
    /** Live-byte budget for the whole root; 0 = no size bound. */
    uint64_t maxBytes = 0;
    /** Evict anything idle longer than this; 0 = no age bound. */
    int64_t maxAgeMs = 0;
    /**
     * Never evict an entry younger than this, whatever the budget
     * says — the publish-to-first-read window must not be collectable
     * (a racing writer's rename landing just before the sweep).
     */
    int64_t minAgeMs = 60 * 1000;
    /** Report what WOULD be evicted without touching anything. */
    bool dryRun = false;
};

struct GcReport
{
    uint64_t scanned = 0;       ///< candidate entries considered
    uint64_t evicted = 0;       ///< entries removed (or would-be, dry run)
    uint64_t evictedBytes = 0;
    uint64_t keptLeased = 0;    ///< spared: fresh in-flight lease
    uint64_t keptYoung = 0;     ///< spared: under the min-age guard
    uint64_t dirsSkippedBusy = 0; ///< another janitor held the dir
    uint64_t liveBytesBefore = 0;
    uint64_t liveBytesAfter = 0;
    bool ok = true;             ///< false: some eviction failed to apply

    /** Deterministic JSON (keys in declaration order). */
    std::string json(const std::string &indent = "") const;
};

/**
 * Collect @p root to within @p opts. Safe against live readers and
 * writers sharing the store (see file comment for the race story).
 */
GcReport runGc(const std::string &root, const GcOptions &opts,
               StoreCounters *counters = nullptr);

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_LIFECYCLE_GC_H
