#include "store/lifecycle/gc.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "store/lease.h"
#include "store/lifecycle/lifecycle.h"
#include "store/lifecycle/segment.h"

namespace gpuperf {
namespace store {

namespace {

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** One evictable entry, loose or segment-resident. */
struct Candidate
{
    std::string sub;  ///< store subdirectory (e.g. "profiles")
    std::string name; ///< entry filename
    uint64_t bytes = 0;
    int64_t lastMs = 0;
    bool loose = false;
    bool inSegment = false;
};

void
appendJsonField(std::string *out, const std::string &indent,
                const char *name, uint64_t value, bool last)
{
    char line[128];
    std::snprintf(line, sizeof(line), "%s  \"%s\": %llu%s\n",
                  indent.c_str(), name,
                  static_cast<unsigned long long>(value),
                  last ? "" : ",");
    out->append(line);
}

} // namespace

std::string
GcReport::json(const std::string &indent) const
{
    std::string out = "{\n";
    appendJsonField(&out, indent, "scanned", scanned, false);
    appendJsonField(&out, indent, "evicted", evicted, false);
    appendJsonField(&out, indent, "evicted_bytes", evictedBytes,
                    false);
    appendJsonField(&out, indent, "kept_leased", keptLeased, false);
    appendJsonField(&out, indent, "kept_young", keptYoung, false);
    appendJsonField(&out, indent, "dirs_skipped_busy",
                    dirsSkippedBusy, false);
    appendJsonField(&out, indent, "live_bytes_before",
                    liveBytesBefore, false);
    appendJsonField(&out, indent, "live_bytes_after", liveBytesAfter,
                    false);
    out += indent + "  \"ok\": " + (ok ? "true" : "false") + "\n";
    out += indent + "}";
    return out;
}

GcReport
runGc(const std::string &root, const GcOptions &opts,
      StoreCounters *counters)
{
    GcReport report;
    const int64_t now = wallClockMs();

    // This process's buffered recency must be on disk before the scan
    // reads the sidecars, or a hot entry could look months idle.
    flushAccessIndexes();

    // Gather candidates across every subdirectory. Entries that must
    // never be evicted (fresh lease, under min-age) still count
    // toward live bytes — a budget met only by evicting in-flight
    // work is simply not met this sweep.
    std::vector<Candidate> evictable;
    uint64_t protected_bytes = 0;
    for (const std::string &sub : listStoreSubdirs(root)) {
        const std::string dir = root + "/" + sub;
        std::map<std::string, int64_t> access;
        loadAccessIndex(dir, &access);
        std::set<std::string> loose_names;
        std::vector<Candidate> dir_candidates;
        for (const std::string &name : listDirFiles(dir)) {
            if (!isEntryFileName(name))
                continue;
            Candidate c;
            c.sub = sub;
            c.name = name;
            c.bytes = fileSizeOf(dir + "/" + name);
            c.lastMs = fileMtimeMs(dir + "/" + name);
            c.loose = true;
            loose_names.insert(name);
            dir_candidates.push_back(std::move(c));
        }
        for (const std::string &seg : listSegmentFiles(dir)) {
            std::vector<SegmentEntry> index;
            if (!readSegmentIndex(dir + "/" + seg, &index))
                continue;
            const int64_t seg_mtime = fileMtimeMs(dir + "/" + seg);
            for (const SegmentEntry &e : index) {
                if (loose_names.count(e.name)) {
                    // Shadowed slice: the loose candidate already
                    // represents this name; mark it segment-resident
                    // so eviction also drops the stale slice.
                    for (Candidate &c : dir_candidates)
                        if (c.name == e.name)
                            c.inSegment = true;
                    continue;
                }
                bool merged = false;
                for (Candidate &c : dir_candidates) {
                    if (c.name == e.name) {
                        c.inSegment = true;
                        c.bytes += e.length;
                        merged = true;
                        break;
                    }
                }
                if (merged)
                    continue;
                Candidate c;
                c.sub = sub;
                c.name = e.name;
                c.bytes = e.length;
                c.lastMs = seg_mtime;
                c.inSegment = true;
                dir_candidates.push_back(std::move(c));
            }
        }
        for (Candidate &c : dir_candidates) {
            auto it = access.find(c.name);
            if (it != access.end() && it->second > c.lastMs)
                c.lastMs = it->second;
            ++report.scanned;
            if (leaseFresh(dir + "/" + leaseNameFor(c.name))) {
                ++report.keptLeased;
                protected_bytes += c.bytes;
                continue;
            }
            if (now - c.lastMs < opts.minAgeMs) {
                ++report.keptYoung;
                protected_bytes += c.bytes;
                continue;
            }
            evictable.push_back(std::move(c));
        }
    }

    uint64_t evictable_bytes = 0;
    for (const Candidate &c : evictable)
        evictable_bytes += c.bytes;
    report.liveBytesBefore = protected_bytes + evictable_bytes;

    // Selection: the age pass takes everything idle past maxAgeMs;
    // the size pass then walks the remainder oldest-access-first
    // until the whole root fits the budget.
    std::sort(evictable.begin(), evictable.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.lastMs != b.lastMs)
                      return a.lastMs < b.lastMs;
                  if (a.sub != b.sub)
                      return a.sub < b.sub;
                  return a.name < b.name;
              });
    std::vector<Candidate> victims;
    uint64_t remaining = report.liveBytesBefore;
    for (Candidate &c : evictable) {
        const bool too_old =
            opts.maxAgeMs > 0 && now - c.lastMs > opts.maxAgeMs;
        const bool over_budget =
            opts.maxBytes > 0 && remaining > opts.maxBytes;
        if (!too_old && !over_budget)
            continue;
        remaining -= c.bytes;
        victims.push_back(std::move(c));
    }

    for (const Candidate &c : victims) {
        report.evicted += 1;
        report.evictedBytes += c.bytes;
    }
    report.liveBytesAfter = report.liveBytesBefore;

    if (opts.dryRun || victims.empty()) {
        if (!opts.dryRun)
            report.liveBytesAfter = remaining;
        return report;
    }

    // Apply per directory under the compact lease, so a GC never
    // rewrites segments out from under a running compactor (or
    // another GC). A busy directory keeps its victims this sweep.
    std::map<std::string, std::vector<Candidate>> by_dir;
    for (Candidate &c : victims)
        by_dir[c.sub].push_back(std::move(c));
    for (auto &e : by_dir) {
        const std::string dir = root + "/" + e.first;
        Lease janitor = tryAcquireLease(dir + "/" + kCompactLeaseName,
                                        kLeaseStaleAfterMsDefault,
                                        counters);
        if (!janitor.held()) {
            ++report.dirsSkippedBusy;
            for (const Candidate &c : e.second) {
                report.evicted -= 1;
                report.evictedBytes -= c.bytes;
            }
            continue;
        }
        std::vector<std::string> drop_from_segments;
        for (const Candidate &c : e.second) {
            if (c.loose)
                ::unlink((dir + "/" + c.name).c_str());
            if (c.inSegment)
                drop_from_segments.push_back(c.name);
        }
        if (!drop_from_segments.empty() &&
            !rewriteSegmentsDropping(dir, drop_from_segments, nullptr,
                                     counters))
            report.ok = false;
        invalidateSegmentCatalog(dir);
    }
    report.liveBytesAfter =
        report.liveBytesBefore - report.evictedBytes;
    return report;
}

} // namespace store
} // namespace gpuperf
