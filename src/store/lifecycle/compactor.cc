#include "store/lifecycle/compactor.h"

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/logging.h"
#include "store/lease.h"
#include "store/lifecycle/lifecycle.h"
#include "store/lifecycle/segment.h"

namespace gpuperf {
namespace store {

namespace {

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

bool
readWholeFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out->assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    return in.good() || in.eof();
}

/** A loose file queued for folding, with its pre-fold identity. */
struct FoldedFile
{
    std::string name;
    uint64_t size = 0;
    int64_t mtimeMs = 0;
};

bool
statIdentity(const std::string &path, uint64_t *size, int64_t *mtime)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return false;
    *size = static_cast<uint64_t>(st.st_size);
    // Nanosecond mtime: an .obs EWMA rewritten within the same second
    // (same size, same st_mtime) must still read as "changed", or the
    // unlink below would eat the newer merge.
    *mtime = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
             static_cast<int64_t>(st.st_mtim.tv_nsec);
    return true;
}

void
appendJsonField(std::string *out, const std::string &indent,
                const char *name, uint64_t value, bool last)
{
    char line[128];
    std::snprintf(line, sizeof(line), "%s  \"%s\": %llu%s\n",
                  indent.c_str(), name,
                  static_cast<unsigned long long>(value),
                  last ? "" : ",");
    out->append(line);
}

} // namespace

std::string
CompactReport::json(const std::string &indent) const
{
    std::string out = "{\n";
    appendJsonField(&out, indent, "folded_entries", foldedEntries,
                    false);
    appendJsonField(&out, indent, "folded_bytes", foldedBytes, false);
    appendJsonField(&out, indent, "segments_merged", segmentsMerged,
                    false);
    appendJsonField(&out, indent, "segments_written", segmentsWritten,
                    false);
    appendJsonField(&out, indent, "kept_loose", keptLoose, false);
    appendJsonField(&out, indent, "dirs_skipped_busy",
                    dirsSkippedBusy, false);
    out += indent + "  \"ok\": " + (ok ? "true" : "false") + "\n";
    out += indent + "}";
    return out;
}

CompactReport
runCompact(const std::string &root, const CompactOptions &opts,
           StoreCounters *counters)
{
    CompactReport report;
    const int64_t now = wallClockMs();

    for (const std::string &sub : listStoreSubdirs(root)) {
        const std::string dir = root + "/" + sub;

        // Eligible loose entries: not leased, not fresh off a writer.
        std::vector<std::string> loose;
        for (const std::string &name : listDirFiles(dir)) {
            if (!isEntryFileName(name))
                continue;
            if (leaseFresh(dir + "/" + leaseNameFor(name)) ||
                now - fileMtimeMs(dir + "/" + name) < opts.minAgeMs) {
                ++report.keptLoose;
                continue;
            }
            loose.push_back(name);
        }
        const std::vector<std::string> segments =
            listSegmentFiles(dir);
        const bool merge_segments =
            opts.force || segments.size() > opts.maxSegments;
        if (!opts.force && loose.size() < opts.minLooseEntries &&
            !merge_segments) {
            report.keptLoose += loose.size();
            continue;
        }
        if (loose.empty() && !merge_segments)
            continue;

        Lease janitor = tryAcquireLease(dir + "/" + kCompactLeaseName,
                                        kLeaseStaleAfterMsDefault,
                                        counters);
        if (!janitor.held()) {
            ++report.dirsSkippedBusy;
            continue;
        }

        SegmentWriter writer;
        // Old segments first (oldest to newest), then loose files:
        // SegmentWriter::add keeps the LAST version of a duplicated
        // name, which is exactly the loose-shadows-segment rule the
        // readers apply.
        std::vector<std::string> merged_segments;
        if (merge_segments) {
            for (const std::string &seg : segments) {
                const std::string seg_path = dir + "/" + seg;
                std::vector<SegmentEntry> index;
                if (!readSegmentIndex(seg_path, &index))
                    continue; // torn: verify quarantines it, not us
                bool whole = true;
                std::vector<std::pair<std::string, std::string>>
                    slices;
                for (const SegmentEntry &e : index) {
                    std::string blob;
                    if (!readSegmentSlice(seg_path, e.offset,
                                          e.length, &blob)) {
                        whole = false;
                        break;
                    }
                    slices.emplace_back(e.name, std::move(blob));
                }
                if (!whole)
                    continue;
                for (auto &s : slices)
                    writer.add(s.first, s.second);
                merged_segments.push_back(seg_path);
            }
        }
        std::vector<FoldedFile> folded;
        for (const std::string &name : loose) {
            const std::string path = dir + "/" + name;
            FoldedFile f;
            f.name = name;
            if (!statIdentity(path, &f.size, &f.mtimeMs))
                continue; // vanished (GC'd) mid-walk
            std::string blob;
            if (!readWholeFile(path, &blob) ||
                blob.size() != f.size) {
                ++report.keptLoose;
                continue;
            }
            if (counters)
                counters->read(blob.size());
            writer.add(name, blob);
            folded.push_back(std::move(f));
        }

        if (writer.count() == 0)
            continue;
        if (writer.publish(dir, counters).empty()) {
            report.ok = false;
            continue; // nothing visible changed; loose files stand
        }
        ++report.segmentsWritten;

        // The fold is durable; now retire the sources. A loose file
        // whose identity changed since we read it was republished
        // mid-fold (an .obs merge, a duplicate writer) — its fresher
        // loose version must keep shadowing our stale slice.
        for (const FoldedFile &f : folded) {
            const std::string path = dir + "/" + f.name;
            uint64_t size = 0;
            int64_t mtime = 0;
            if (!statIdentity(path, &size, &mtime) ||
                size != f.size || mtime != f.mtimeMs) {
                ++report.keptLoose;
                continue;
            }
            if (::unlink(path.c_str()) == 0) {
                ++report.foldedEntries;
                report.foldedBytes += f.size;
            }
        }
        for (const std::string &seg_path : merged_segments) {
            if (::unlink(seg_path.c_str()) == 0)
                ++report.segmentsMerged;
        }
        invalidateSegmentCatalog(dir);
    }
    return report;
}

} // namespace store
} // namespace gpuperf
