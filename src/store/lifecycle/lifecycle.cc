#include "store/lifecycle/lifecycle.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>

#include "store/lifecycle/segment.h"
#include "store/serializer.h"

namespace gpuperf {
namespace store {

const char kAccessIndexName[] = "access.idx";
const char kQuarantineDirName[] = "quarantine";
const char kCompactLeaseName[] = "compact.lease";

namespace {

const char *const kEntrySuffixes[] = {
    ".profile", ".calibration", ".bench", ".timing", ".obs", ".result",
};

constexpr uint32_t kAccessIndexVersion = 1;
constexpr size_t kAccessFlushEvery = 256;

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** Parse dir/access.idx alone (no in-memory merge). */
void
loadAccessIndexFile(const std::string &dir,
                    std::map<std::string, int64_t> *out)
{
    std::ifstream in(dir + "/" + kAccessIndexName, std::ios::binary);
    if (!in)
        return;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ByteReader r(data);
    if (r.u32() != kAccessIndexVersion)
        return;
    const uint64_t n = r.u64();
    std::map<std::string, int64_t> parsed;
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
        const std::string name = r.str();
        const int64_t ms = r.i64();
        if (!name.empty())
            parsed[name] = ms;
    }
    if (!r.atEnd())
        return; // torn sidecar: mtime fallback covers it
    for (const auto &e : parsed) {
        auto it = out->find(e.first);
        if (it == out->end() || it->second < e.second)
            (*out)[e.first] = e.second;
    }
}

/**
 * The process-wide touch buffer. One mutexed map insert per store
 * read; the disk write happens every kAccessFlushEvery touches per
 * directory (and on flushAccessIndexes()), merge-max against the
 * sidecar so concurrent processes never regress a timestamp.
 */
class AccessTracker
{
  public:
    static AccessTracker &instance()
    {
        static AccessTracker t;
        return t;
    }

    void touch(const std::string &dir, const std::string &name)
    {
        std::string flush_dir;
        {
            std::lock_guard<std::mutex> lock(mu_);
            Buffer &buf = buffers_[dir];
            buf.touches[name] = wallClockMs();
            if (++buf.sinceFlush >= kAccessFlushEvery) {
                buf.sinceFlush = 0;
                flush_dir = dir;
            }
        }
        if (!flush_dir.empty())
            flushDir(flush_dir);
    }

    void flushAll()
    {
        std::vector<std::string> dirs;
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (const auto &e : buffers_)
                if (!e.second.touches.empty())
                    dirs.push_back(e.first);
        }
        for (const std::string &dir : dirs)
            flushDir(dir);
    }

    void merge(const std::string &dir,
               std::map<std::string, int64_t> *out)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = buffers_.find(dir);
        if (it == buffers_.end())
            return;
        for (const auto &e : it->second.touches) {
            auto jt = out->find(e.first);
            if (jt == out->end() || jt->second < e.second)
                (*out)[e.first] = e.second;
        }
    }

  private:
    struct Buffer
    {
        std::map<std::string, int64_t> touches;
        size_t sinceFlush = 0;
    };

    void flushDir(const std::string &dir)
    {
        std::map<std::string, int64_t> pending;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = buffers_.find(dir);
            if (it == buffers_.end() || it->second.touches.empty())
                return;
            pending.swap(it->second.touches);
            it->second.sinceFlush = 0;
        }
        std::map<std::string, int64_t> merged;
        loadAccessIndexFile(dir, &merged);
        for (const auto &e : pending) {
            auto it = merged.find(e.first);
            if (it == merged.end() || it->second < e.second)
                merged[e.first] = e.second;
        }
        ByteWriter w;
        w.u32(kAccessIndexVersion);
        w.u64(merged.size());
        for (const auto &e : merged) {
            w.str(e.first);
            w.i64(e.second);
        }
        const std::string path = dir + "/" + kAccessIndexName;
        const std::string tmp =
            path + ".tmp." + std::to_string(::getpid());
        std::ofstream out(tmp, std::ios::binary);
        if (!out) {
            // Unwritable dir: drop the touches (mtime fallback).
            return;
        }
        out.write(w.bytes().data(),
                  static_cast<std::streamsize>(w.bytes().size()));
        out.close();
        if (!out || std::rename(tmp.c_str(), path.c_str()) != 0)
            std::remove(tmp.c_str());
    }

    std::mutex mu_;
    std::map<std::string, Buffer> buffers_;
};

} // namespace

bool
isEntryFileName(const std::string &name)
{
    if (isTempFileName(name))
        return false;
    for (const char *suffix : kEntrySuffixes)
        if (hasSuffix(name, suffix))
            return true;
    return false;
}

bool
isTempFileName(const std::string &name)
{
    return name.find(".tmp.") != std::string::npos;
}

bool
isLeaseFileName(const std::string &name)
{
    return !isTempFileName(name) && hasSuffix(name, ".lease");
}

std::string
leaseNameFor(const std::string &entry_name)
{
    const size_t dot = entry_name.rfind('.');
    if (dot == std::string::npos)
        return entry_name + ".lease";
    return entry_name.substr(0, dot) + ".lease";
}

std::vector<std::string>
listStoreSubdirs(const std::string &root)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(root.c_str());
    if (!d)
        return out;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name == "." || name == ".." || name == kQuarantineDirName)
            continue;
        struct stat st;
        if (::stat((root + "/" + name).c_str(), &st) == 0 &&
            S_ISDIR(st.st_mode))
            out.push_back(name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
listDirFiles(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return out;
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name == "." || name == "..")
            continue;
        struct stat st;
        if (::stat((dir + "/" + name).c_str(), &st) == 0 &&
            S_ISREG(st.st_mode))
            out.push_back(name);
    }
    ::closedir(d);
    return out;
}

uint64_t
fileSizeOf(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<uint64_t>(st.st_size);
}

int64_t
fileMtimeMs(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<int64_t>(st.st_mtime) * 1000;
}

void
recordAccess(const std::string &dir, const std::string &name)
{
    AccessTracker::instance().touch(dir, name);
}

void
flushAccessIndexes()
{
    AccessTracker::instance().flushAll();
}

void
loadAccessIndex(const std::string &dir,
                std::map<std::string, int64_t> *out)
{
    loadAccessIndexFile(dir, out);
    AccessTracker::instance().merge(dir, out);
}

uint64_t
StoreUsage::entries() const
{
    uint64_t n = 0;
    for (const auto &e : dirs)
        n += e.second.entries();
    return n;
}

uint64_t
StoreUsage::liveBytes() const
{
    uint64_t n = 0;
    for (const auto &e : dirs)
        n += e.second.liveBytes();
    return n;
}

uint64_t
StoreUsage::leases() const
{
    uint64_t n = 0;
    for (const auto &e : dirs)
        n += e.second.leases;
    return n;
}

uint64_t
StoreUsage::quarantined() const
{
    uint64_t n = 0;
    for (const auto &e : dirs)
        n += e.second.quarantined;
    return n;
}

StoreUsage
scanStoreUsage(const std::string &root)
{
    StoreUsage usage;
    for (const std::string &sub : listStoreSubdirs(root)) {
        const std::string dir = root + "/" + sub;
        DirUsage du;
        std::set<std::string> loose_names;
        for (const std::string &name : listDirFiles(dir)) {
            const std::string path = dir + "/" + name;
            if (isTempFileName(name)) {
                ++du.tempFiles;
            } else if (isLeaseFileName(name)) {
                ++du.leases;
            } else if (hasSuffix(name, kSegmentSuffix)) {
                ++du.segmentFiles;
            } else if (isEntryFileName(name)) {
                ++du.looseEntries;
                du.looseBytes += fileSizeOf(path);
                loose_names.insert(name);
            }
        }
        for (const std::string &seg : listSegmentFiles(dir)) {
            std::vector<SegmentEntry> index;
            if (!readSegmentIndex(dir + "/" + seg, &index))
                continue;
            for (const SegmentEntry &e : index) {
                if (loose_names.count(e.name))
                    continue; // shadowed by a fresher loose write
                ++du.segmentEntries;
                du.segmentBytes += e.length;
            }
        }
        for (const std::string &name :
             listDirFiles(dir + "/" + kQuarantineDirName))
            (void)name, ++du.quarantined;
        usage.dirs[sub] = du;
    }
    return usage;
}

namespace {

void
appendUsageField(std::string *out, const std::string &indent,
                 const char *name, uint64_t value, bool last)
{
    char line[128];
    std::snprintf(line, sizeof(line), "%s  \"%s\": %llu%s\n",
                  indent.c_str(), name,
                  static_cast<unsigned long long>(value),
                  last ? "" : ",");
    out->append(line);
}

std::string
dirUsageJson(const DirUsage &du, const std::string &indent)
{
    std::string out = "{\n";
    appendUsageField(&out, indent, "entries", du.entries(), false);
    appendUsageField(&out, indent, "live_bytes", du.liveBytes(), false);
    appendUsageField(&out, indent, "loose_entries", du.looseEntries,
                     false);
    appendUsageField(&out, indent, "segment_files", du.segmentFiles,
                     false);
    appendUsageField(&out, indent, "segment_entries",
                     du.segmentEntries, false);
    appendUsageField(&out, indent, "leases", du.leases, false);
    appendUsageField(&out, indent, "temp_files", du.tempFiles, false);
    appendUsageField(&out, indent, "quarantined", du.quarantined,
                     true);
    out += indent + "}";
    return out;
}

} // namespace

std::string
storeUsageJson(const StoreUsage &usage, const std::string &indent)
{
    const std::string inner = indent + "  ";
    std::string out = "{\n";
    for (const auto &e : usage.dirs) {
        out += inner + "\"" + e.first + "\": " +
               dirUsageJson(e.second, inner) + ",\n";
    }
    out += inner + "\"entries\": " + std::to_string(usage.entries()) +
           ",\n";
    out += inner + "\"live_bytes\": " +
           std::to_string(usage.liveBytes()) + ",\n";
    out += inner + "\"leases\": " + std::to_string(usage.leases()) +
           ",\n";
    out += inner + "\"quarantined\": " +
           std::to_string(usage.quarantined()) + "\n";
    out += indent + "}";
    return out;
}

} // namespace store
} // namespace gpuperf
