/**
 * @file
 * Persistent binary store of microbenchmark calibration tables, keyed
 * by the FULL GpuSpec fingerprint (calibration measures the timing
 * simulator, so every spec field matters — unlike profiles, which key
 * on the funcsim sub-fingerprint only). Lets repeated batch runs skip
 * the calibration sweep across process restarts.
 */

#ifndef GPUPERF_STORE_CALIBRATION_STORE_H
#define GPUPERF_STORE_CALIBRATION_STORE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "arch/gpu_spec.h"
#include "model/calibration.h"

namespace gpuperf {
namespace store {

/** Thread-safe; load/save may be called from any worker. */
class CalibrationStore
{
  public:
    /**
     * Bump on ANY change that alters what a cached entry would
     * contain — the payload encoding OR the calibration behaviour
     * (microbenchmarks, sweep shapes, the simulators they measure);
     * see ProfileStore::kFormatVersion.
     */
    static constexpr uint32_t kFormatVersion = 1;

    /** @param dir store directory, created if absent. */
    explicit CalibrationStore(std::string dir);

    /** Stored tables for @p spec, or nullptr on any miss. */
    std::shared_ptr<const model::CalibrationTables>
    load(const arch::GpuSpec &spec) const;

    bool save(const arch::GpuSpec &spec,
              const model::CalibrationTables &tables) const;

    /** One synthetic global-benchmark memo entry, as persisted. */
    using BenchEntry =
        std::pair<std::tuple<int, int, int>, model::GlobalBenchResult>;

    /**
     * Persist the synthetic global-memory benchmark results measured
     * for @p spec (the memoized half of calibration the tables do not
     * cover). Entries accumulate across saves: a batch that measured
     * new launch shapes merges them into the stored set, so repeated
     * runs converge on zero microbenchmark work. The load-merge-write
     * is not atomic across processes — two writers racing on one
     * store can each persist only their own merge (last rename wins),
     * which costs a re-measurement on a later run, never wrong data.
     */
    bool saveBenchResults(const arch::GpuSpec &spec,
                          std::vector<BenchEntry> entries) const;

    /** The stored benchmark results for @p spec (empty on a miss). */
    std::vector<BenchEntry>
    loadBenchResults(const arch::GpuSpec &spec) const;

    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }

  private:
    std::string path(const arch::GpuSpec &spec,
                     const std::string &key) const;

    std::string dir_;
    mutable std::atomic<uint64_t> hits_{0};
    mutable std::atomic<uint64_t> misses_{0};
};

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_CALIBRATION_STORE_H
