/**
 * @file
 * Persistent binary store of microbenchmark calibration tables, keyed
 * by the FULL GpuSpec fingerprint (calibration measures the timing
 * simulator, so every spec field matters — unlike profiles, which key
 * on the funcsim sub-fingerprint only). Lets repeated batch runs skip
 * the calibration sweep across process restarts.
 */

#ifndef GPUPERF_STORE_CALIBRATION_STORE_H
#define GPUPERF_STORE_CALIBRATION_STORE_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "arch/gpu_spec.h"
#include "model/calibration.h"
#include "store/lease.h"
#include "store/stats.h"

namespace gpuperf {
namespace store {

/**
 * The calibration store's lease handle IS the generic store::Lease
 * (PR 5 generalized it; ProfileStore/TimingStore and the spool worker
 * protocol share the same mechanism). The alias keeps PR 4 callers
 * compiling.
 */
using CalibrationLease = Lease;

/** Thread-safe; load/save may be called from any worker. */
class CalibrationStore
{
  public:
    /**
     * Bump on ANY change that alters what a cached entry would
     * contain — the payload encoding OR the calibration behaviour
     * (microbenchmarks, sweep shapes, the simulators they measure);
     * see ProfileStore::kFormatVersion.
     */
    static constexpr uint32_t kFormatVersion = 1;

    /** @param dir store directory, created if absent. */
    explicit CalibrationStore(std::string dir);

    /** Stored tables for @p spec, or nullptr on any miss. */
    std::shared_ptr<const model::CalibrationTables>
    load(const arch::GpuSpec &spec) const;

    bool save(const arch::GpuSpec &spec,
              const model::CalibrationTables &tables) const;

    /** One synthetic global-benchmark memo entry, as persisted. */
    using BenchEntry =
        std::pair<std::tuple<int, int, int>, model::GlobalBenchResult>;

    /**
     * Persist the synthetic global-memory benchmark results measured
     * for @p spec (the memoized half of calibration the tables do not
     * cover). Entries accumulate across saves: a batch that measured
     * new launch shapes merges them into the stored set, so repeated
     * runs converge on zero microbenchmark work. The load-merge-write
     * is not atomic across processes — two writers racing on one
     * store can each persist only their own merge (last rename wins),
     * which costs a re-measurement on a later run, never wrong data.
     */
    bool saveBenchResults(const arch::GpuSpec &spec,
                          std::vector<BenchEntry> entries) const;

    /** The stored benchmark results for @p spec (empty on a miss). */
    std::vector<BenchEntry>
    loadBenchResults(const arch::GpuSpec &spec) const;

    uint64_t hits() const { return counters_.hits(); }
    uint64_t misses() const { return counters_.misses(); }

    /** Full cache-health snapshot (hits, misses, bytes, steals...). */
    StoreStats stats() const { return counters_.snapshot(); }

    const std::string &dir() const { return dir_; }

    // --- Cross-process calibration lease ------------------------------
    //
    // Sharded processes pointing at one store directory split the
    // microbenchmark sweep instead of duplicating it: before
    // calibrating a spec, a process takes the spec's lease — an
    // advisory marker file (O_CREAT|O_EXCL, so exactly one creator
    // wins) recording its pid and start time next to the calibration
    // entry. Processes that lose the race poll the store until the
    // entry appears, instead of re-running the sweep.
    //
    // The lock is ADVISORY and crash-safe by staleness: a lease whose
    // pid is no longer alive (same-host check) or whose file is older
    // than the stale timeout is broken and re-acquired. The worst
    // case of every race here — two writers after a broken lease, a
    // holder dying mid-sweep — is one duplicated calibration, never
    // wrong data (entries stay self-validating and atomically
    // renamed into place).

    /**
     * Try to take the calibration lease for @p spec. Returns a held
     * lease on success; an empty (not held) one while another LIVE
     * process holds it. A stale lease is broken and re-acquired.
     */
    CalibrationLease tryAcquireLease(const arch::GpuSpec &spec) const;

    /**
     * True while some process (possibly this one) holds a fresh
     * lease on @p spec's calibration.
     */
    bool leaseHeld(const arch::GpuSpec &spec) const;

    /**
     * Age threshold beyond which a lease whose holder cannot be
     * probed is considered abandoned. The default (15 min) is far
     * above any real sweep; tests shrink it to exercise stealing.
     */
    void setLeaseStaleAfter(std::chrono::milliseconds age)
    {
        leaseStaleAfterMs_ = age.count();
    }

  private:
    std::string path(const arch::GpuSpec &spec,
                     const std::string &key) const;
    std::string leasePath(const arch::GpuSpec &spec) const;

    std::string dir_;
    int64_t leaseStaleAfterMs_ = kLeaseStaleAfterMsDefault;
    mutable StoreCounters counters_;
};

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_CALIBRATION_STORE_H
