/**
 * @file
 * Versioned binary serialization primitives for the persistent
 * profile/calibration/result stores.
 *
 * Encoding: explicit little-endian byte order (portable across hosts),
 * doubles as their raw IEEE-754 bit pattern (round trips are exact —
 * a loaded profile or result is bit-identical to the stored one),
 * strings and containers length-prefixed.
 *
 * File format: a fixed magic, a store-wide format version, the entry's
 * full content key, then the payload. Readers reject any mismatch —
 * wrong magic, unknown version, or a key that differs from the one
 * requested (hash-collision safety) — and the caller recomputes; a
 * stale or foreign cache entry can therefore never be served.
 *
 * Entries written since the lifecycle subsystem additionally carry a
 * 16-byte checksum trailer after the payload (a trailer magic plus
 * the payload's FNV-1a hash), so a torn or bit-flipped entry is
 * detected as a miss instead of decoding to garbage, and
 * store::Verifier can scan a store without knowing any keys. Old
 * trailer-less entries remain readable — readers accept both sizes.
 */

#ifndef GPUPERF_STORE_SERIALIZER_H
#define GPUPERF_STORE_SERIALIZER_H

#include <cstdint>
#include <string>

#include "store/stats.h"

namespace gpuperf {
namespace store {

/** Append-only binary encoder. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    /** Raw IEEE-754 bits; round-trips exactly. */
    void f64(double v);
    void str(const std::string &s);

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Sequential binary decoder. Any overrun or malformed length sets a
 * sticky failure flag and makes every subsequent read return zero
 * values; callers check ok() once at the end instead of after every
 * field.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &data) : data_(data) {}

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    bool b() { return u8() != 0; }
    double f64();
    std::string str();

    /** Consume and return everything not yet read. */
    std::string rest();

    /** True while every read so far stayed in bounds. */
    bool ok() const { return ok_; }
    /** True when the whole buffer was consumed (and ok()). */
    bool atEnd() const { return ok_ && pos_ == data_.size(); }

    void fail() { ok_ = false; }

  private:
    bool take(void *out, size_t n);

    const std::string &data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** Bytes the checksum trailer adds to an entry blob. */
constexpr size_t kChecksumTrailerBytes = 16;

/**
 * Write magic + version + key + payload + checksum trailer to @p path
 * atomically (pid- and sequence-unique temp file + rename). Returns
 * false and warns on I/O failure — a store write error degrades to a
 * cache miss next time, never to corrupt data. @p counters (optional)
 * receives the write / write-failure / bytes-written bumps.
 */
bool writeEntryFile(const std::string &path, uint32_t version,
                    const std::string &key, const std::string &payload,
                    StoreCounters *counters = nullptr);

/**
 * Read an entry previously written by writeEntryFile(). Returns false
 * (a miss) unless the file exists, carries the expected magic and
 * @p version, stores exactly @p key, and — when a checksum trailer is
 * present — the payload hash matches. @p counters (optional) receives
 * the bytes-read bump (hit/miss semantics stay with the store, which
 * knows whether a failed read means recompute).
 */
bool readEntryFile(const std::string &path, uint32_t version,
                   const std::string &key, std::string *payload,
                   StoreCounters *counters = nullptr);

/**
 * Validate an entry's header only — magic, @p version, stored key ==
 * @p key, and a payload length consistent with the file size (with or
 * without trailer) — without reading the payload into memory. The
 * cheap existence check behind key-only paths such as
 * ProfileStore::readKey().
 */
bool readEntryHeader(const std::string &path, uint32_t version,
                     const std::string &key,
                     StoreCounters *counters = nullptr);

/**
 * Encode one entry (header + payload + checksum trailer) as the exact
 * bytes writeEntryFile() would put on disk. Segment files concatenate
 * these blobs verbatim, so a segment read is byte-identical to a
 * loose-file read.
 */
std::string encodeEntryBlob(uint32_t version, const std::string &key,
                            const std::string &payload);

/**
 * Parse one entry blob (a whole loose file or a segment slice)
 * without knowing its key in advance: validates magic, @p version,
 * internal lengths, and the checksum trailer when present, and
 * returns the stored key and payload. The primitive behind
 * readEntryFile(), segment read-through, and the Verifier scan.
 */
bool parseEntryBlob(const std::string &blob, uint32_t version,
                    std::string *key, std::string *payload);

/**
 * Short, filesystem-safe file stem for a store key: a sanitized prefix
 * of @p name (for humans) plus an FNV-1a hash of the full key (for
 * uniqueness). A hash collision is harmless: the key stored inside the
 * entry still validates, so the worst case is a cache miss.
 */
std::string fileStem(const std::string &name, const std::string &key);

/** mkdir -p. Returns false (with a warning) when creation fails. */
bool makeDirs(const std::string &path);

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_SERIALIZER_H
