/**
 * @file
 * Persistent on-disk memo of timing-simulator replays, keyed by
 * (ProfileKey, arch::TimingFingerprint) — the exact inputs a replay
 * depends on: the profile key determines the trace bit-for-bit, the
 * timing fingerprint the machine behaviour replaying it. A warm store
 * lets a batch cell skip the timing simulation entirely and still
 * produce bit-identical results (the codec round-trips every double
 * exactly).
 *
 * This is the timing-side complement of the ProfileStore: the profile
 * store deduplicates the paper's expensive Barra runs across spec
 * variants, the timing store deduplicates the "hardware measurement"
 * across sweep grids, calibrations and case renames — all of which
 * change the result-store key but not the replay.
 */

#ifndef GPUPERF_STORE_TIMING_STORE_H
#define GPUPERF_STORE_TIMING_STORE_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "arch/gpu_spec.h"
#include "funcsim/profile.h"
#include "store/lease.h"
#include "store/stats.h"
#include "timing/simulator.h"

namespace gpuperf {
namespace store {

/** Thread-safe; load/save may be called from any worker. */
class TimingStore
{
  public:
    /**
     * Bump on ANY change that alters what a cached entry would
     * contain — the payload encoding OR the replay behaviour that
     * computed it (either timing engine; they are bit-identical by
     * contract, so one version covers both).
     */
    static constexpr uint32_t kFormatVersion = 1;

    /** @param dir store directory, created if absent. */
    explicit TimingStore(std::string dir);

    /**
     * The full content key of a replay — one definition shared by
     * this store's entries and BatchRunner's in-memory timing memo,
     * so the two can never drift apart.
     */
    static std::string keyFor(const funcsim::ProfileKey &key,
                              const arch::TimingFingerprint &fp);

    /** The stored replay for (@p key, @p fp), or nullptr on a miss. */
    std::shared_ptr<const timing::TimingResult>
    load(const funcsim::ProfileKey &key,
         const arch::TimingFingerprint &fp) const;

    /**
     * Key-only lookup: true iff a valid entry exists (header
     * validated, payload untouched). Does not count as a hit or a
     * miss — the lease dance probes with this so a cold replay still
     * registers exactly one miss (see ProfileStore::readKey).
     */
    bool exists(const funcsim::ProfileKey &key,
                const arch::TimingFingerprint &fp) const;

    /** Persist @p result under (@p key, @p fp). */
    bool save(const funcsim::ProfileKey &key,
              const arch::TimingFingerprint &fp,
              const timing::TimingResult &result) const;

    const std::string &dir() const { return dir_; }

    /** Successful loads since construction. */
    uint64_t hits() const { return counters_.hits(); }
    /** Failed loads (absent, stale or corrupt entry). */
    uint64_t misses() const { return counters_.misses(); }

    /** Full cache-health snapshot (hits, misses, bytes, steals...). */
    StoreStats stats() const { return counters_.snapshot(); }

    // --- Cross-process in-flight lease --------------------------------
    //
    // Same protocol as the calibration/profile leases (store/lease.h):
    // before replaying (@p key, @p fp), take its lease; losers poll
    // load() for the published entry instead of duplicating the
    // replay. Advisory, crash-safe by staleness.

    /** Try to take the in-flight lease for the (@p key, @p fp) replay. */
    Lease tryAcquireLease(const funcsim::ProfileKey &key,
                          const arch::TimingFingerprint &fp) const;

    /** True while some process holds a fresh lease on the replay. */
    bool leaseHeld(const funcsim::ProfileKey &key,
                   const arch::TimingFingerprint &fp) const;

    /** Lease staleness threshold (see ProfileStore::setLeaseStaleAfter). */
    void setLeaseStaleAfter(std::chrono::milliseconds age)
    {
        leaseStaleAfterMs_ = age.count();
    }

    // --- Observation side-channel -------------------------------------
    //
    // An EWMA of measured replay wall times per (key, fp), persisted
    // NEXT TO the timing entry (".obs" sibling) so the schedulers'
    // cost model learns across processes: a fleet that replayed a
    // fingerprint once predicts its cost forever after. Advisory and
    // race-tolerant — concurrent writers last-write-win through the
    // atomic entry write, and the EWMA only ever approximates — so no
    // lease is taken.

    /** Payload format of .obs entries (f64 EWMA ms + u64 count). */
    static constexpr uint32_t kObservationFormatVersion = 1;

    /**
     * Merge one measured wall time into the persisted EWMA for
     * (@p key, @p fp). False on I/O failure (degrades to a colder
     * prediction, never to corrupt data).
     */
    bool recordObservationMs(const funcsim::ProfileKey &key,
                             const arch::TimingFingerprint &fp,
                             double ms) const;

    /** The persisted EWMA for (@p key, @p fp), if any. */
    bool loadObservationMs(const funcsim::ProfileKey &key,
                           const arch::TimingFingerprint &fp,
                           double *ms, uint64_t *count = nullptr) const;

  private:
    std::string leasePath(const std::string &key_str) const;

    std::string dir_;
    int64_t leaseStaleAfterMs_ = kLeaseStaleAfterMsDefault;
    mutable StoreCounters counters_;
};

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_TIMING_STORE_H
