#include "store/stats.h"

#include <cstdio>

namespace gpuperf {
namespace store {

namespace {

void
appendField(std::string *out, const std::string &indent,
            const char *name, uint64_t value, bool last)
{
    char line[128];
    std::snprintf(line, sizeof(line), "%s  \"%s\": %llu%s\n",
                  indent.c_str(), name,
                  static_cast<unsigned long long>(value),
                  last ? "" : ",");
    out->append(line);
}

} // namespace

std::string
storeStatsJson(const StoreStats &stats, const std::string &indent)
{
    std::string out = "{\n";
    appendField(&out, indent, "hits", stats.hits, false);
    appendField(&out, indent, "misses", stats.misses, false);
    appendField(&out, indent, "writes", stats.writes, false);
    appendField(&out, indent, "write_failures", stats.writeFailures,
                false);
    appendField(&out, indent, "bytes_read", stats.bytesRead, false);
    appendField(&out, indent, "bytes_written", stats.bytesWritten,
                false);
    appendField(&out, indent, "lease_steals", stats.leaseSteals, true);
    out += indent + "}";
    return out;
}

std::string
storeLayerStatsJson(const StoreLayerStats &stats,
                    const std::string &indent)
{
    const std::string inner = indent + "  ";
    std::string out = "{\n";
    out += inner + "\"profiles\": " +
           storeStatsJson(stats.profiles, inner) + ",\n";
    out += inner + "\"calibrations\": " +
           storeStatsJson(stats.calibrations, inner) + ",\n";
    out += inner + "\"timings\": " +
           storeStatsJson(stats.timings, inner) + ",\n";
    out += inner + "\"results\": " +
           storeStatsJson(stats.results, inner) + ",\n";
    out += inner + "\"total\": " +
           storeStatsJson(stats.total(), inner) + "\n";
    out += indent + "}";
    return out;
}

} // namespace store
} // namespace gpuperf
