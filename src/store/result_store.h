/**
 * @file
 * Persistent on-disk store of finished batch-analysis results, keyed
 * by the full content identity of one cell: kernel-case name, profile
 * key (kernel hash x launch x options x funcsim fingerprint), target
 * spec fingerprint, and sweep-grid fingerprint. A warm store lets a
 * repeated batch skip the whole cell — timing replay, extraction,
 * prediction and sweep — and still return bit-identical results,
 * because every number round-trips through the binary codec exactly.
 *
 * Only successful (ok) results are stored; failures are recomputed so
 * transient errors never stick.
 */

#ifndef GPUPERF_STORE_RESULT_STORE_H
#define GPUPERF_STORE_RESULT_STORE_H

#include <cstdint>
#include <memory>
#include <string>

#include "driver/batch_runner.h"
#include "store/serializer.h"
#include "store/stats.h"

namespace gpuperf {
namespace store {

/**
 * The payload half of a finished batch cell — names, analysis and
 * ranked what-ifs. ok/error are NOT encoded: the result store only
 * persists successes (its load() re-stamps ok), while the api layer
 * wraps this with its own ok/error framing for failed cells.
 * Declared here rather than store/codecs.h so the generic codec
 * header stays below the driver layer.
 */
void writeBatchResult(ByteWriter &w, const driver::BatchResult &r);
bool readBatchResult(ByteReader &r, driver::BatchResult *result);

/** Thread-safe; load/save may be called from any worker. */
class ResultStore
{
  public:
    /**
     * Bump on ANY change that alters what a cached entry would
     * contain — the payload encoding OR the pipeline behaviour that
     * computed it (timing simulator, extractor, model, sweep
     * evaluation); see ProfileStore::kFormatVersion.
     */
    static constexpr uint32_t kFormatVersion = 1;

    /** @param dir store directory, created if absent. */
    explicit ResultStore(std::string dir);

    /** The stored result for @p key, or nullptr on any miss. */
    std::unique_ptr<driver::BatchResult>
    load(const std::string &key) const;

    /** Persist @p result (callers only pass ok results). */
    bool save(const std::string &key,
              const driver::BatchResult &result) const;

    uint64_t hits() const { return counters_.hits(); }
    uint64_t misses() const { return counters_.misses(); }

    /** Full cache-health snapshot (hits, misses, bytes, steals...). */
    StoreStats stats() const { return counters_.snapshot(); }

    const std::string &dir() const { return dir_; }

  private:
    std::string path(const std::string &key) const;

    std::string dir_;
    mutable StoreCounters counters_;
};

} // namespace store
} // namespace gpuperf

#endif // GPUPERF_STORE_RESULT_STORE_H
