#include "store/serializer.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/fnv.h"
#include "common/logging.h"

namespace gpuperf {
namespace store {

namespace {

/** "GPUPERFS" as little-endian bytes. */
constexpr uint64_t kMagic = 0x53465245'50555047ull;

/** "GPUPERFC" as little-endian bytes — opens the checksum trailer. */
constexpr uint64_t kChecksumMagic = 0x43465245'50555047ull;

/**
 * Split an entry body (everything after the payload-length field)
 * into payload and optional trailer. @p size is the declared payload
 * length. True when the body is exactly a payload (legacy) or a
 * payload plus a valid checksum trailer.
 */
bool
checkEntryBody(const std::string &body, uint64_t size)
{
    if (body.size() == size)
        return true; // legacy trailer-less entry
    if (body.size() != size + kChecksumTrailerBytes)
        return false;
    const std::string trailer = body.substr(size);
    ByteReader t(trailer);
    const uint64_t magic = t.u64();
    const uint64_t sum = t.u64();
    return t.ok() && magic == kChecksumMagic &&
           sum == fnv1a64(body.data(), size);
}

} // namespace

void
ByteWriter::u16(uint16_t v)
{
    buf_.push_back(static_cast<char>(v & 0xff));
    buf_.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
ByteWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<char>((v >> (i * 8)) & 0xff));
}

void
ByteWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<char>((v >> (i * 8)) & 0xff));
}

void
ByteWriter::f64(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string &s)
{
    u64(s.size());
    buf_.append(s);
}

bool
ByteReader::take(void *out, size_t n)
{
    if (!ok_ || pos_ + n > data_.size() || pos_ + n < pos_) {
        ok_ = false;
        std::memset(out, 0, n);
        return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
}

uint8_t
ByteReader::u8()
{
    uint8_t v = 0;
    take(&v, 1);
    return v;
}

uint16_t
ByteReader::u16()
{
    unsigned char b[2] = {};
    take(b, 2);
    return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t
ByteReader::u32()
{
    unsigned char b[4] = {};
    take(b, 4);
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t
ByteReader::u64()
{
    unsigned char b[8] = {};
    take(b, 8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

double
ByteReader::f64()
{
    const uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    const uint64_t n = u64();
    if (!ok_ || pos_ + n > data_.size() || pos_ + n < pos_) {
        ok_ = false;
        return "";
    }
    std::string s(data_.data() + pos_, n);
    pos_ += n;
    return s;
}

std::string
ByteReader::rest()
{
    if (!ok_)
        return "";
    std::string s(data_.data() + pos_, data_.size() - pos_);
    pos_ = data_.size();
    return s;
}

std::string
encodeEntryBlob(uint32_t version, const std::string &key,
                const std::string &payload)
{
    ByteWriter w;
    w.u64(kMagic);
    w.u32(version);
    w.str(key);
    w.u64(payload.size());
    std::string blob = w.bytes();
    blob.append(payload);
    ByteWriter trailer;
    trailer.u64(kChecksumMagic);
    trailer.u64(fnv1a64(payload.data(), payload.size()));
    blob.append(trailer.bytes());
    return blob;
}

bool
parseEntryBlob(const std::string &blob, uint32_t version,
               std::string *key, std::string *payload)
{
    ByteReader r(blob);
    if (r.u64() != kMagic || r.u32() != version)
        return false;
    std::string stored_key = r.str();
    const uint64_t size = r.u64();
    if (!r.ok())
        return false;
    std::string body = r.rest();
    if (!checkEntryBody(body, size))
        return false;
    body.resize(size);
    *key = std::move(stored_key);
    *payload = std::move(body);
    return true;
}

bool
writeEntryFile(const std::string &path, uint32_t version,
               const std::string &key, const std::string &payload,
               StoreCounters *counters)
{
    const std::string blob = encodeEntryBlob(version, key, payload);

    // Unique per process AND per call: concurrent writers of the
    // same entry (e.g. two batch cells sharing a profile key) must
    // never truncate each other's in-flight temp file, or a reader
    // of the renamed result could observe a torn entry.
    static std::atomic<uint64_t> write_seq{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(write_seq.fetch_add(1));
    std::ofstream out(tmp, std::ios::binary);
    if (!out) {
        warn("store: cannot write '%s'", path.c_str());
        if (counters)
            counters->writeFailed();
        return false;
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.close();
    if (!out) {
        warn("store: short write to '%s'", path.c_str());
        std::remove(tmp.c_str());
        if (counters)
            counters->writeFailed();
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("store: cannot move entry into '%s'", path.c_str());
        std::remove(tmp.c_str());
        if (counters)
            counters->writeFailed();
        return false;
    }
    if (counters)
        counters->wrote(blob.size());
    return true;
}

bool
readEntryFile(const std::string &path, uint32_t version,
              const std::string &key, std::string *payload,
              StoreCounters *counters)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    const std::streamoff file_size = in.tellg();
    if (file_size < 0)
        return false;
    in.seekg(0, std::ios::beg);
    std::string data(static_cast<size_t>(file_size), '\0');
    in.read(&data[0], file_size);
    if (!in)
        return false;
    if (counters)
        counters->read(data.size());
    std::string stored_key;
    return parseEntryBlob(data, version, &stored_key, payload) &&
           stored_key == key;
}

bool
readEntryHeader(const std::string &path, uint32_t version,
                const std::string &key, StoreCounters *counters)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    // Read only the fixed header plus the key: magic (8) + version
    // (4) + key length (8) + key bytes + payload length (8). The
    // payload — the expensive part of a profile entry — stays on
    // disk.
    const size_t header_size = 8 + 4 + 8 + key.size() + 8;
    std::string data(header_size, '\0');
    in.read(&data[0], static_cast<std::streamsize>(header_size));
    if (in.gcount() != static_cast<std::streamsize>(header_size))
        return false;
    if (counters)
        counters->read(header_size);
    ByteReader r(data);
    if (r.u64() != kMagic || r.u32() != version || r.str() != key)
        return false;
    // Payload length must be consistent with what is actually there
    // (a truncated entry is a miss, exactly as in readEntryFile);
    // entries written before the checksum trailer existed are 16
    // bytes shorter and stay readable.
    const uint64_t size = r.u64();
    if (!r.ok())
        return false;
    in.seekg(0, std::ios::end);
    const std::streamoff file_size = in.tellg();
    if (file_size < 0)
        return false;
    const uint64_t actual = static_cast<uint64_t>(file_size);
    return actual == header_size + size ||
           actual == header_size + size + kChecksumTrailerBytes;
}

std::string
fileStem(const std::string &name, const std::string &key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    std::string out;
    for (char c : name.substr(0, 48)) {
        out.push_back(
            std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    }
    if (!out.empty())
        out.push_back('-');
    return out + hex;
}

bool
makeDirs(const std::string &path)
{
    if (path.empty())
        return false;
    std::string partial;
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i != path.size() && path[i] != '/')
            continue;
        partial = path.substr(0, i == path.size() ? i : i + 1);
        if (partial.empty() || partial == "/")
            continue;
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
            warn("store: cannot create directory '%s'", partial.c_str());
            return false;
        }
    }
    return true;
}

} // namespace store
} // namespace gpuperf
