#include "store/codecs.h"

#include "common/fnv.h"

namespace gpuperf {
namespace store {

namespace {

void
writeStage(ByteWriter &w, const funcsim::StageStats &s)
{
    for (uint64_t c : s.typeCounts)
        w.u64(c);
    w.u64(s.madCount);
    w.u64(s.totalWarpInstrs);
    w.u64(s.sharedInstrs);
    w.u64(s.globalInstrs);
    w.u64(s.sharedTransactions);
    w.u64(s.sharedTransactionsIdeal);
    w.u64(s.sharedBytes);
    w.u64(s.globalTransactions);
    w.u64(s.globalBytes);
    w.u64(s.globalRequestBytes);
    w.u64(s.globalXactBySize.size());
    for (const auto &[size, count] : s.globalXactBySize) {
        w.i32(size);
        w.u64(count);
    }
    w.f64(s.activeWarpsPerBlock);
}

bool
readStage(ByteReader &r, funcsim::StageStats *s)
{
    for (uint64_t &c : s->typeCounts)
        c = r.u64();
    s->madCount = r.u64();
    s->totalWarpInstrs = r.u64();
    s->sharedInstrs = r.u64();
    s->globalInstrs = r.u64();
    s->sharedTransactions = r.u64();
    s->sharedTransactionsIdeal = r.u64();
    s->sharedBytes = r.u64();
    s->globalTransactions = r.u64();
    s->globalBytes = r.u64();
    s->globalRequestBytes = r.u64();
    const uint64_t sizes = r.u64();
    for (uint64_t i = 0; i < sizes && r.ok(); ++i) {
        const int size = r.i32();
        s->globalXactBySize[size] = r.u64();
    }
    s->activeWarpsPerBlock = r.f64();
    return r.ok();
}

void
writeTraceOp(ByteWriter &w, const funcsim::TraceOp &op)
{
    w.u8(static_cast<uint8_t>(op.unit));
    w.u8(op.conflict);
    w.u8(op.sharedPasses);
    w.u16(op.dst);
    w.u16(op.src[0]);
    w.u16(op.src[1]);
    w.u16(op.src[2]);
    w.u16(op.numXacts);
    w.u32(op.xactBytes);
    w.u32(op.texIdx);
}

bool
readTraceOp(ByteReader &r, funcsim::TraceOp *op)
{
    const uint8_t unit = r.u8();
    if (unit > static_cast<uint8_t>(isa::UnitKind::kNone)) {
        r.fail();
        return false;
    }
    op->unit = static_cast<isa::UnitKind>(unit);
    op->conflict = r.u8();
    op->sharedPasses = r.u8();
    op->dst = r.u16();
    op->src[0] = r.u16();
    op->src[1] = r.u16();
    op->src[2] = r.u16();
    op->numXacts = r.u16();
    op->xactBytes = r.u32();
    op->texIdx = r.u32();
    return r.ok();
}

void
writeKey(ByteWriter &w, const funcsim::ProfileKey &key)
{
    w.u64(key.kernelHash);
    w.u64(key.inputHash);
    w.i32(key.cfg.gridDim);
    w.i32(key.cfg.blockDim);
    w.b(key.homogeneous);
    w.i32(key.sampleBlocks);
    w.u64(key.maxWarpOps);
    const arch::FuncsimFingerprint &fp = key.fingerprint;
    w.i32(fp.warpSize);
    w.i32(fp.coalesceGroup);
    w.i32(fp.minSegmentBytes);
    w.i32(fp.maxSegmentBytes);
    w.i32(fp.numSharedBanks);
    w.i32(fp.sharedBankWidth);
    w.i32(fp.sharedIssueGroup);
    w.i32(fp.textureCacheLineBytes);
}

bool
readKey(ByteReader &r, funcsim::ProfileKey *key)
{
    key->kernelHash = r.u64();
    key->inputHash = r.u64();
    key->cfg.gridDim = r.i32();
    key->cfg.blockDim = r.i32();
    key->homogeneous = r.b();
    key->sampleBlocks = r.i32();
    key->maxWarpOps = r.u64();
    arch::FuncsimFingerprint &fp = key->fingerprint;
    fp.warpSize = r.i32();
    fp.coalesceGroup = r.i32();
    fp.minSegmentBytes = r.i32();
    fp.maxSegmentBytes = r.i32();
    fp.numSharedBanks = r.i32();
    fp.sharedBankWidth = r.i32();
    fp.sharedIssueGroup = r.i32();
    fp.textureCacheLineBytes = r.i32();
    return r.ok();
}

void
writeOccupancy(ByteWriter &w, const arch::Occupancy &o)
{
    w.i32(o.blocksByRegisters);
    w.i32(o.blocksBySharedMem);
    w.i32(o.blocksByThreads);
    w.i32(o.blocksByBlockLimit);
    w.i32(o.blocksByWarpLimit);
    w.i32(o.residentBlocks);
    w.i32(o.residentWarps);
    w.u8(static_cast<uint8_t>(o.limit));
    w.i32(o.warpsPerBlock);
}

bool
readOccupancy(ByteReader &r, arch::Occupancy *o)
{
    o->blocksByRegisters = r.i32();
    o->blocksBySharedMem = r.i32();
    o->blocksByThreads = r.i32();
    o->blocksByBlockLimit = r.i32();
    o->blocksByWarpLimit = r.i32();
    o->residentBlocks = r.i32();
    o->residentWarps = r.i32();
    const uint8_t limit = r.u8();
    if (limit > static_cast<uint8_t>(arch::OccupancyLimit::Warps)) {
        r.fail();
        return false;
    }
    o->limit = static_cast<arch::OccupancyLimit>(limit);
    o->warpsPerBlock = r.i32();
    return r.ok();
}

} // namespace

void
writeTiming(ByteWriter &w, const timing::TimingResult &t)
{
    w.f64(t.cycles);
    w.f64(t.seconds);
    w.u64(t.totalOps);
    w.f64(t.arithBusyCycles);
    w.f64(t.sharedBusyCycles);
    w.f64(t.portBusyCycles);
    w.u64(t.texHits);
    w.u64(t.texMisses);
    writeOccupancy(w, t.occupancy);
}

bool
readTiming(ByteReader &r, timing::TimingResult *t)
{
    t->cycles = r.f64();
    t->seconds = r.f64();
    t->totalOps = r.u64();
    t->arithBusyCycles = r.f64();
    t->sharedBusyCycles = r.f64();
    t->portBusyCycles = r.f64();
    t->texHits = r.u64();
    t->texMisses = r.u64();
    return readOccupancy(r, &t->occupancy);
}

namespace {

void
writeInput(ByteWriter &w, const model::ModelInput &in)
{
    w.u64(in.stages.size());
    for (const model::StageInput &s : in.stages) {
        for (uint64_t c : s.typeCounts)
            w.u64(c);
        w.u64(s.madCount);
        w.u64(s.totalWarpInstrs);
        w.u64(s.sharedTransactions);
        w.u64(s.sharedTransactionsIdeal);
        w.u64(s.sharedBytes);
        w.u64(s.globalTransactions);
        w.u64(s.globalBytes);
        w.u64(s.globalRequestBytes);
        w.f64(s.effective64Xacts);
        w.f64(s.activeWarpsPerSm);
    }
    w.i32(in.gridDim);
    w.i32(in.blockDim);
    writeOccupancy(w, in.occupancy);
    w.i32(in.concurrentBlocksPerSm);
    w.b(in.stagesSerialized);
}

bool
readInput(ByteReader &r, model::ModelInput *in)
{
    const uint64_t n = r.u64();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
        model::StageInput s;
        for (uint64_t &c : s.typeCounts)
            c = r.u64();
        s.madCount = r.u64();
        s.totalWarpInstrs = r.u64();
        s.sharedTransactions = r.u64();
        s.sharedTransactionsIdeal = r.u64();
        s.sharedBytes = r.u64();
        s.globalTransactions = r.u64();
        s.globalBytes = r.u64();
        s.globalRequestBytes = r.u64();
        s.effective64Xacts = r.f64();
        s.activeWarpsPerSm = r.f64();
        in->stages.push_back(s);
    }
    in->gridDim = r.i32();
    in->blockDim = r.i32();
    if (!readOccupancy(r, &in->occupancy))
        return false;
    in->concurrentBlocksPerSm = r.i32();
    in->stagesSerialized = r.b();
    return r.ok();
}

bool
readComponent(ByteReader &r, model::Component *c)
{
    const uint8_t v = r.u8();
    if (v > static_cast<uint8_t>(model::Component::kGlobal)) {
        r.fail();
        return false;
    }
    *c = static_cast<model::Component>(v);
    return true;
}

void
writeMetrics(ByteWriter &w, const model::ReportMetrics &m)
{
    w.f64(m.computationalDensity);
    w.f64(m.bankConflictFactor);
    w.f64(m.coalescingEfficiency);
    w.f64(m.avgActiveWarpsPerBlock);
}

bool
readMetrics(ByteReader &r, model::ReportMetrics *m)
{
    m->computationalDensity = r.f64();
    m->bankConflictFactor = r.f64();
    m->coalescingEfficiency = r.f64();
    m->avgActiveWarpsPerBlock = r.f64();
    return r.ok();
}

} // namespace

void
writeStats(ByteWriter &w, const funcsim::DynamicStats &stats)
{
    w.u64(stats.stages.size());
    for (const funcsim::StageStats &s : stats.stages)
        writeStage(w, s);
    w.i32(stats.gridDim);
    w.i32(stats.blockDim);
    w.i32(stats.warpsPerBlock);
    w.i32(stats.barriersPerBlock);
    w.i32(stats.sampledBlocks);
}

bool
readStats(ByteReader &r, funcsim::DynamicStats *stats)
{
    const uint64_t n = r.u64();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
        funcsim::StageStats s;
        if (!readStage(r, &s))
            return false;
        stats->stages.push_back(std::move(s));
    }
    stats->gridDim = r.i32();
    stats->blockDim = r.i32();
    stats->warpsPerBlock = r.i32();
    stats->barriersPerBlock = r.i32();
    stats->sampledBlocks = r.i32();
    return r.ok();
}

void
writeTrace(ByteWriter &w, const funcsim::LaunchTrace &trace)
{
    w.u64(trace.pool.size());
    for (const funcsim::WarpTrace &wt : trace.pool) {
        w.u64(wt.ops.size());
        for (const funcsim::TraceOp &op : wt.ops)
            writeTraceOp(w, op);
        w.u64(wt.texLines.size());
        for (uint32_t line : wt.texLines)
            w.u32(line);
    }
    w.u64(trace.blocks.size());
    for (const funcsim::BlockTrace &b : trace.blocks) {
        w.u64(b.warpTraceIdx.size());
        for (int idx : b.warpTraceIdx)
            w.i32(idx);
    }
    w.i32(trace.blockDim);
    w.i32(trace.warpsPerBlock);
    w.i32(trace.registersPerThread);
    w.i32(trace.sharedBytesPerBlock);
}

bool
readTrace(ByteReader &r, funcsim::LaunchTrace *trace)
{
    const uint64_t pool = r.u64();
    for (uint64_t i = 0; i < pool && r.ok(); ++i) {
        funcsim::WarpTrace wt;
        const uint64_t ops = r.u64();
        for (uint64_t j = 0; j < ops && r.ok(); ++j) {
            funcsim::TraceOp op;
            if (!readTraceOp(r, &op))
                return false;
            wt.ops.push_back(op);
        }
        const uint64_t lines = r.u64();
        for (uint64_t j = 0; j < lines && r.ok(); ++j)
            wt.texLines.push_back(r.u32());
        trace->pool.push_back(std::move(wt));
    }
    const uint64_t blocks = r.u64();
    for (uint64_t i = 0; i < blocks && r.ok(); ++i) {
        funcsim::BlockTrace b;
        const uint64_t warps = r.u64();
        for (uint64_t j = 0; j < warps && r.ok(); ++j) {
            const int idx = r.i32();
            if (idx < 0 ||
                static_cast<size_t>(idx) >= trace->pool.size()) {
                r.fail();
                return false;
            }
            b.warpTraceIdx.push_back(idx);
        }
        trace->blocks.push_back(std::move(b));
    }
    trace->blockDim = r.i32();
    trace->warpsPerBlock = r.i32();
    trace->registersPerThread = r.i32();
    trace->sharedBytesPerBlock = r.i32();
    return r.ok();
}

void
writeProfile(ByteWriter &w, const funcsim::KernelProfile &profile)
{
    writeKey(w, profile.key);
    w.str(profile.kernelName);
    w.i32(profile.resources.registersPerThread);
    w.i32(profile.resources.sharedBytesPerBlock);
    w.i32(profile.resources.threadsPerBlock);
    writeStats(w, profile.stats);
    writeTrace(w, profile.trace);
}

bool
readProfile(ByteReader &r, funcsim::KernelProfile *profile)
{
    if (!readKey(r, &profile->key))
        return false;
    profile->kernelName = r.str();
    profile->resources.registersPerThread = r.i32();
    profile->resources.sharedBytesPerBlock = r.i32();
    profile->resources.threadsPerBlock = r.i32();
    return readStats(r, &profile->stats) &&
           readTrace(r, &profile->trace);
}

void
writeTables(ByteWriter &w, const model::CalibrationTables &tables)
{
    w.i32(tables.maxWarps);
    w.i32(tables.bytesPerPass);
    for (const std::vector<double> &t : tables.instrThroughput) {
        w.u64(t.size());
        for (double v : t)
            w.f64(v);
    }
    w.u64(tables.sharedPassThroughput.size());
    for (double v : tables.sharedPassThroughput)
        w.f64(v);
}

bool
readTables(ByteReader &r, model::CalibrationTables *tables)
{
    tables->maxWarps = r.i32();
    tables->bytesPerPass = r.i32();
    if (tables->maxWarps <= 0 || tables->maxWarps > 1024) {
        r.fail();
        return false;
    }
    for (std::vector<double> &t : tables->instrThroughput) {
        const uint64_t n = r.u64();
        for (uint64_t i = 0; i < n && r.ok(); ++i)
            t.push_back(r.f64());
    }
    const uint64_t n = r.u64();
    for (uint64_t i = 0; i < n && r.ok(); ++i)
        tables->sharedPassThroughput.push_back(r.f64());
    return r.ok();
}

uint64_t
tablesDigest(const model::CalibrationTables &tables)
{
    ByteWriter w;
    writeTables(w, tables);
    return fnv1a64(w.bytes());
}

void
writePrediction(ByteWriter &w, const model::Prediction &p)
{
    w.u64(p.stages.size());
    for (const model::StagePrediction &s : p.stages) {
        w.f64(s.tInstr);
        w.f64(s.tShared);
        w.f64(s.tGlobal);
        w.u8(static_cast<uint8_t>(s.bottleneck));
        w.f64(s.stageTime);
        w.f64(s.activeWarpsPerSm);
        w.f64(s.sharedBandwidth);
    }
    w.b(p.serialized);
    w.f64(p.tInstrTotal);
    w.f64(p.tSharedTotal);
    w.f64(p.tGlobalTotal);
    w.f64(p.totalSeconds);
    w.u8(static_cast<uint8_t>(p.bottleneck));
    w.u8(static_cast<uint8_t>(p.nextBottleneck));
}

bool
readPrediction(ByteReader &r, model::Prediction *p)
{
    const uint64_t n = r.u64();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
        model::StagePrediction s;
        s.tInstr = r.f64();
        s.tShared = r.f64();
        s.tGlobal = r.f64();
        if (!readComponent(r, &s.bottleneck))
            return false;
        s.stageTime = r.f64();
        s.activeWarpsPerSm = r.f64();
        s.sharedBandwidth = r.f64();
        p->stages.push_back(s);
    }
    p->serialized = r.b();
    p->tInstrTotal = r.f64();
    p->tSharedTotal = r.f64();
    p->tGlobalTotal = r.f64();
    p->totalSeconds = r.f64();
    return readComponent(r, &p->bottleneck) &&
           readComponent(r, &p->nextBottleneck) && r.ok();
}

void
writeAnalysis(ByteWriter &w, const model::Analysis &analysis)
{
    writeStats(w, analysis.measurement.stats);
    writeTiming(w, analysis.measurement.timing);
    writeInput(w, analysis.input);
    writePrediction(w, analysis.prediction);
    writeMetrics(w, analysis.metrics);
}

bool
readAnalysis(ByteReader &r, model::Analysis *analysis)
{
    return readStats(r, &analysis->measurement.stats) &&
           readTiming(r, &analysis->measurement.timing) &&
           readInput(r, &analysis->input) &&
           readPrediction(r, &analysis->prediction) &&
           readMetrics(r, &analysis->metrics);
}

} // namespace store
} // namespace gpuperf
