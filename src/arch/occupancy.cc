#include "arch/occupancy.h"

#include <algorithm>

#include "common/logging.h"

namespace gpuperf {
namespace arch {

namespace {

/** Round @p v up to a multiple of @p unit. */
int
roundUp(int v, int unit)
{
    if (unit <= 1)
        return v;
    return (v + unit - 1) / unit * unit;
}

} // namespace

const char *
occupancyLimitName(OccupancyLimit limit)
{
    switch (limit) {
      case OccupancyLimit::Registers:
        return "registers";
      case OccupancyLimit::SharedMemory:
        return "shared memory";
      case OccupancyLimit::Threads:
        return "threads";
      case OccupancyLimit::Blocks:
        return "resident-block ceiling";
      case OccupancyLimit::Warps:
        return "resident-warp ceiling";
    }
    panic("unknown occupancy limit %d", static_cast<int>(limit));
}

Occupancy
computeOccupancy(const GpuSpec &spec, const KernelResources &res)
{
    if (res.threadsPerBlock <= 0)
        fatal("occupancy: threads per block must be positive (got %d)",
              res.threadsPerBlock);
    if (res.threadsPerBlock > spec.maxThreadsPerBlock)
        fatal("occupancy: block of %d threads exceeds the %d-thread "
              "block ceiling", res.threadsPerBlock,
              spec.maxThreadsPerBlock);

    Occupancy occ;
    occ.warpsPerBlock =
        (res.threadsPerBlock + spec.warpSize - 1) / spec.warpSize;

    const int regs_per_block = roundUp(
        std::max(res.registersPerThread, 1) * res.threadsPerBlock,
        spec.registerAllocUnit);
    occ.blocksByRegisters = spec.registersPerSm / regs_per_block;

    const int smem_per_block = roundUp(
        res.sharedBytesPerBlock + spec.sharedStaticPerBlock,
        spec.sharedAllocUnit);
    occ.blocksBySharedMem =
        smem_per_block > 0 ? spec.sharedMemPerSm / smem_per_block
                           : spec.maxBlocksPerSm;

    occ.blocksByThreads = spec.maxThreadsPerSm / res.threadsPerBlock;
    occ.blocksByBlockLimit = spec.maxBlocksPerSm;
    occ.blocksByWarpLimit = spec.maxWarpsPerSm / occ.warpsPerBlock;

    occ.residentBlocks = std::min(
        {occ.blocksByRegisters, occ.blocksBySharedMem, occ.blocksByThreads,
         occ.blocksByBlockLimit, occ.blocksByWarpLimit});
    if (occ.residentBlocks <= 0)
        fatal("occupancy: kernel does not fit on one SM (regs/thread %d, "
              "smem/block %d, threads/block %d)", res.registersPerThread,
              res.sharedBytesPerBlock, res.threadsPerBlock);
    occ.residentWarps = occ.residentBlocks * occ.warpsPerBlock;

    // Identify the binding constraint, with ties resolved in the order
    // the paper discusses them.
    struct Entry { int blocks; OccupancyLimit limit; };
    const Entry entries[] = {
        {occ.blocksByRegisters, OccupancyLimit::Registers},
        {occ.blocksBySharedMem, OccupancyLimit::SharedMemory},
        {occ.blocksByThreads, OccupancyLimit::Threads},
        {occ.blocksByBlockLimit, OccupancyLimit::Blocks},
        {occ.blocksByWarpLimit, OccupancyLimit::Warps},
    };
    for (const auto &e : entries) {
        if (e.blocks == occ.residentBlocks) {
            occ.limit = e.limit;
            break;
        }
    }
    return occ;
}

} // namespace arch
} // namespace gpuperf
