/**
 * @file
 * Occupancy calculator: how many blocks and warps fit on one SM given a
 * kernel's resource usage (paper Table 2).
 */

#ifndef GPUPERF_ARCH_OCCUPANCY_H
#define GPUPERF_ARCH_OCCUPANCY_H

#include "arch/gpu_spec.h"

namespace gpuperf {
namespace arch {

/** Resource usage of one kernel launch, per thread / per block. */
struct KernelResources
{
    int registersPerThread = 0;
    int sharedBytesPerBlock = 0;
    int threadsPerBlock = 0;
};

/** Which resource ceiling limits occupancy. */
enum class OccupancyLimit
{
    Registers,
    SharedMemory,
    Threads,
    Blocks,
    Warps,
};

const char *occupancyLimitName(OccupancyLimit limit);

/** Result of the occupancy computation for one SM. */
struct Occupancy
{
    /** Blocks that fit under each individual ceiling. */
    int blocksByRegisters = 0;
    int blocksBySharedMem = 0;
    int blocksByThreads = 0;
    int blocksByBlockLimit = 0;
    int blocksByWarpLimit = 0;

    /** min over the ceilings. */
    int residentBlocks = 0;
    /** residentBlocks * warps per block. */
    int residentWarps = 0;
    /** The binding constraint (first one reached). */
    OccupancyLimit limit = OccupancyLimit::Blocks;

    int warpsPerBlock = 0;
};

/**
 * Compute occupancy for @p res on @p spec.
 *
 * Register usage is rounded to the register allocation unit per block
 * and shared memory to the shared allocation unit, plus the static
 * per-block runtime reservation — mirroring how the CUDA 2.x driver
 * allocated resources on GT200.
 */
Occupancy computeOccupancy(const GpuSpec &spec, const KernelResources &res);

} // namespace arch
} // namespace gpuperf

#endif // GPUPERF_ARCH_OCCUPANCY_H
