#include "arch/instr_class.h"

#include "common/logging.h"

namespace gpuperf {
namespace arch {

const char *
instrTypeName(InstrType type)
{
    switch (type) {
      case InstrType::TypeI:
        return "Type I";
      case InstrType::TypeII:
        return "Type II";
      case InstrType::TypeIII:
        return "Type III";
      case InstrType::TypeIV:
        return "Type IV";
    }
    panic("unknown instruction type %d", static_cast<int>(type));
}

const char *
instrTypeExamples(InstrType type)
{
    switch (type) {
      case InstrType::TypeI:
        return "mul";
      case InstrType::TypeII:
        return "mov, add, mad";
      case InstrType::TypeIII:
        return "sin, cos, log, rcp";
      case InstrType::TypeIV:
        return "double precision floating point";
    }
    panic("unknown instruction type %d", static_cast<int>(type));
}

int
functionalUnits(const GpuSpec &spec, InstrType type)
{
    switch (type) {
      case InstrType::TypeI:
        return spec.spsPerSm + spec.sfuMulPerSm;
      case InstrType::TypeII:
        return spec.spsPerSm;
      case InstrType::TypeIII:
        return spec.sfuPerSm;
      case InstrType::TypeIV:
        return spec.dpPerSm;
    }
    panic("unknown instruction type %d", static_cast<int>(type));
}

double
issueIntervalCycles(const GpuSpec &spec, InstrType type)
{
    return static_cast<double>(spec.warpSize) / functionalUnits(spec, type);
}

double
peakThroughput(const GpuSpec &spec, InstrType type)
{
    return functionalUnits(spec, type) * spec.coreClockHz * spec.numSms /
           spec.warpSize;
}

double
peakFlops(const GpuSpec &spec)
{
    // MAD runs on the 8 FPUs (type II); one MAD = 2 flops per thread.
    return peakThroughput(spec, InstrType::TypeII) * spec.warpSize * 2.0;
}

} // namespace arch
} // namespace gpuperf
