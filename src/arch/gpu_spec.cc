#include "arch/gpu_spec.h"

#include "common/logging.h"

namespace gpuperf {
namespace arch {

double
GpuSpec::peakGlobalBandwidth() const
{
    return memClockHz * busWidthBits / 8.0;
}

double
GpuSpec::peakSharedBandwidth() const
{
    // Paper Section 4.2: numberSP * numberSM * frequency * 4 B.
    return static_cast<double>(spsPerSm) * numSms * coreClockHz *
           sharedBankWidth;
}

double
GpuSpec::clusterBytesPerCycle() const
{
    return peakGlobalBandwidth() / numClusters() / coreClockHz;
}

void
GpuSpec::validate() const
{
    if (numSms <= 0 || smsPerCluster <= 0 || numSms % smsPerCluster != 0)
        fatal("GpuSpec '%s': SM count %d not divisible into clusters of %d",
              name.c_str(), numSms, smsPerCluster);
    if (warpSize <= 0 || warpSize % coalesceGroup != 0)
        fatal("GpuSpec '%s': warp size %d not a multiple of the coalescing "
              "group %d", name.c_str(), warpSize, coalesceGroup);
    if (minSegmentBytes <= 0 || maxSegmentBytes < minSegmentBytes)
        fatal("GpuSpec '%s': bad segment sizes [%d, %d]", name.c_str(),
              minSegmentBytes, maxSegmentBytes);
    if ((minSegmentBytes & (minSegmentBytes - 1)) != 0)
        fatal("GpuSpec '%s': minimum segment size %d not a power of two",
              name.c_str(), minSegmentBytes);
    if (numSharedBanks <= 0)
        fatal("GpuSpec '%s': need at least one shared bank", name.c_str());
    if (maxWarpsPerSm * warpSize < maxThreadsPerSm)
        fatal("GpuSpec '%s': warp ceiling %d cannot cover thread ceiling %d",
              name.c_str(), maxWarpsPerSm, maxThreadsPerSm);
}

GpuSpec
GpuSpec::gtx285()
{
    return GpuSpec{};
}

GpuSpec
GpuSpec::gtx285MoreBlocks()
{
    GpuSpec s;
    s.name = "GTX 285 + 16 resident blocks";
    s.maxBlocksPerSm = 16;
    return s;
}

GpuSpec
GpuSpec::gtx285BigResources()
{
    GpuSpec s;
    s.name = "GTX 285 + 2x registers/shared memory";
    s.registersPerSm *= 2;
    s.sharedMemPerSm *= 2;
    return s;
}

GpuSpec
GpuSpec::gtx285PrimeBanks()
{
    GpuSpec s;
    s.name = "GTX 285 + 17 shared banks";
    s.numSharedBanks = 17;
    return s;
}

GpuSpec
GpuSpec::gtx285SmallSegments(int min_segment_bytes)
{
    GpuSpec s;
    s.name = "GTX 285 + " + std::to_string(min_segment_bytes) +
             "B transactions";
    s.minSegmentBytes = min_segment_bytes;
    if (s.maxSegmentBytes < min_segment_bytes)
        s.maxSegmentBytes = min_segment_bytes;
    return s;
}

} // namespace arch
} // namespace gpuperf
