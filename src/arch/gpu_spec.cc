#include "arch/gpu_spec.h"

#include <cstdio>

#include "common/logging.h"

namespace gpuperf {
namespace arch {

double
GpuSpec::peakGlobalBandwidth() const
{
    return memClockHz * busWidthBits / 8.0;
}

double
GpuSpec::peakSharedBandwidth() const
{
    // Paper Section 4.2: numberSP * numberSM * frequency * 4 B.
    return static_cast<double>(spsPerSm) * numSms * coreClockHz *
           sharedBankWidth;
}

double
GpuSpec::clusterBytesPerCycle() const
{
    return peakGlobalBandwidth() / numClusters() / coreClockHz;
}

void
GpuSpec::validate() const
{
    if (numSms <= 0 || smsPerCluster <= 0 || numSms % smsPerCluster != 0)
        fatal("GpuSpec '%s': SM count %d not divisible into clusters of %d",
              name.c_str(), numSms, smsPerCluster);
    if (warpSize <= 0 || warpSize % coalesceGroup != 0)
        fatal("GpuSpec '%s': warp size %d not a multiple of the coalescing "
              "group %d", name.c_str(), warpSize, coalesceGroup);
    if (minSegmentBytes <= 0 || maxSegmentBytes < minSegmentBytes)
        fatal("GpuSpec '%s': bad segment sizes [%d, %d]", name.c_str(),
              minSegmentBytes, maxSegmentBytes);
    if ((minSegmentBytes & (minSegmentBytes - 1)) != 0)
        fatal("GpuSpec '%s': minimum segment size %d not a power of two",
              name.c_str(), minSegmentBytes);
    if (numSharedBanks <= 0)
        fatal("GpuSpec '%s': need at least one shared bank", name.c_str());
    if (maxWarpsPerSm * warpSize < maxThreadsPerSm)
        fatal("GpuSpec '%s': warp ceiling %d cannot cover thread ceiling %d",
              name.c_str(), maxWarpsPerSm, maxThreadsPerSm);
}

std::string
GpuSpec::fingerprint() const
{
    // Every field, in declaration order. Keep in sync with the struct
    // (see the header comment on fingerprint()). The name is
    // concatenated separately so an arbitrarily long name can never
    // truncate the numeric fields out of the key.
    char buf[512];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "|sms=%d|spc=%d|sp=%d|sfum=%d|sfu=%d|dp=%d|ws=%d|clk=%.17g|"
        "regs=%d|smem=%d|thr=%d|tpb=%d|blk=%d|warps=%d|rau=%d|sau=%d|"
        "ssb=%d|banks=%d|bw=%d|ig=%d|mem=%.17g|bus=%d|cg=%d|seg=%d-%d|"
        "alu=%d|shd=%d|pass=%.17g|lat=%d|ovh=%d|iss=%.17g|"
        "tex=%d-%d-%d-%d-%d",
        numSms, smsPerCluster, spsPerSm, sfuMulPerSm,
        sfuPerSm, dpPerSm, warpSize, coreClockHz, registersPerSm,
        sharedMemPerSm, maxThreadsPerSm, maxThreadsPerBlock,
        maxBlocksPerSm, maxWarpsPerSm, registerAllocUnit,
        sharedAllocUnit, sharedStaticPerBlock, numSharedBanks,
        sharedBankWidth, sharedIssueGroup, memClockHz, busWidthBits,
        coalesceGroup, minSegmentBytes, maxSegmentBytes, aluDepCycles,
        sharedDepCycles, warpSharedPassIntervalCycles,
        globalLatencyCycles, transactionOverheadCycles,
        issueOverheadCycles, textureCacheEnabled ? 1 : 0,
        textureCacheBytesPerCluster, textureCacheLineBytes,
        textureCacheWays, textureHitLatencyCycles);
    GPUPERF_ASSERT(n > 0 && n < static_cast<int>(sizeof(buf)),
                   "GpuSpec fingerprint overflow");
    // Length-prefix the free-form name so a name containing
    // "|field=" text can never collide with another spec's fields.
    return std::to_string(name.size()) + ":" + name + buf;
}

FuncsimFingerprint
FuncsimFingerprint::of(const GpuSpec &spec)
{
    FuncsimFingerprint fp;
    fp.warpSize = spec.warpSize;
    fp.coalesceGroup = spec.coalesceGroup;
    fp.minSegmentBytes = spec.minSegmentBytes;
    fp.maxSegmentBytes = spec.maxSegmentBytes;
    fp.numSharedBanks = spec.numSharedBanks;
    fp.sharedBankWidth = spec.sharedBankWidth;
    fp.sharedIssueGroup = spec.sharedIssueGroup;
    fp.textureCacheLineBytes = spec.textureCacheLineBytes;
    return fp;
}

std::string
FuncsimFingerprint::key() const
{
    char buf[160];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "ws=%d|cg=%d|seg=%d-%d|banks=%d|bw=%d|ig=%d|texline=%d",
        warpSize, coalesceGroup, minSegmentBytes, maxSegmentBytes,
        numSharedBanks, sharedBankWidth, sharedIssueGroup,
        textureCacheLineBytes);
    GPUPERF_ASSERT(n > 0 && n < static_cast<int>(sizeof(buf)),
                   "FuncsimFingerprint key overflow");
    return buf;
}

bool
FuncsimFingerprint::operator==(const FuncsimFingerprint &other) const
{
    return warpSize == other.warpSize &&
           coalesceGroup == other.coalesceGroup &&
           minSegmentBytes == other.minSegmentBytes &&
           maxSegmentBytes == other.maxSegmentBytes &&
           numSharedBanks == other.numSharedBanks &&
           sharedBankWidth == other.sharedBankWidth &&
           sharedIssueGroup == other.sharedIssueGroup &&
           textureCacheLineBytes == other.textureCacheLineBytes;
}

TimingFingerprint
TimingFingerprint::of(const GpuSpec &spec)
{
    TimingFingerprint fp;
    fp.numSms = spec.numSms;
    fp.smsPerCluster = spec.smsPerCluster;
    fp.spsPerSm = spec.spsPerSm;
    fp.sfuMulPerSm = spec.sfuMulPerSm;
    fp.sfuPerSm = spec.sfuPerSm;
    fp.dpPerSm = spec.dpPerSm;
    fp.warpSize = spec.warpSize;
    fp.coreClockHz = spec.coreClockHz;
    fp.registersPerSm = spec.registersPerSm;
    fp.sharedMemPerSm = spec.sharedMemPerSm;
    fp.maxThreadsPerSm = spec.maxThreadsPerSm;
    fp.maxThreadsPerBlock = spec.maxThreadsPerBlock;
    fp.maxBlocksPerSm = spec.maxBlocksPerSm;
    fp.maxWarpsPerSm = spec.maxWarpsPerSm;
    fp.registerAllocUnit = spec.registerAllocUnit;
    fp.sharedAllocUnit = spec.sharedAllocUnit;
    fp.sharedStaticPerBlock = spec.sharedStaticPerBlock;
    fp.sharedIssueGroup = spec.sharedIssueGroup;
    fp.memClockHz = spec.memClockHz;
    fp.busWidthBits = spec.busWidthBits;
    fp.aluDepCycles = spec.aluDepCycles;
    fp.sharedDepCycles = spec.sharedDepCycles;
    fp.warpSharedPassIntervalCycles = spec.warpSharedPassIntervalCycles;
    fp.globalLatencyCycles = spec.globalLatencyCycles;
    fp.transactionOverheadCycles = spec.transactionOverheadCycles;
    fp.issueOverheadCycles = spec.issueOverheadCycles;
    fp.textureCacheEnabled = spec.textureCacheEnabled;
    fp.textureCacheBytesPerCluster = spec.textureCacheBytesPerCluster;
    fp.textureCacheLineBytes = spec.textureCacheLineBytes;
    fp.textureCacheWays = spec.textureCacheWays;
    fp.textureHitLatencyCycles = spec.textureHitLatencyCycles;
    return fp;
}

std::string
TimingFingerprint::key() const
{
    char buf[512];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "sms=%d|spc=%d|sp=%d|sfum=%d|sfu=%d|dp=%d|ws=%d|clk=%.17g|"
        "regs=%d|smem=%d|thr=%d|tpb=%d|blk=%d|warps=%d|rau=%d|sau=%d|"
        "ssb=%d|ig=%d|mem=%.17g|bus=%d|alu=%d|shd=%d|pass=%.17g|"
        "lat=%d|ovh=%d|iss=%.17g|tex=%d-%d-%d-%d-%d",
        numSms, smsPerCluster, spsPerSm, sfuMulPerSm, sfuPerSm, dpPerSm,
        warpSize, coreClockHz, registersPerSm, sharedMemPerSm,
        maxThreadsPerSm, maxThreadsPerBlock, maxBlocksPerSm,
        maxWarpsPerSm, registerAllocUnit, sharedAllocUnit,
        sharedStaticPerBlock, sharedIssueGroup, memClockHz, busWidthBits,
        aluDepCycles, sharedDepCycles, warpSharedPassIntervalCycles,
        globalLatencyCycles, transactionOverheadCycles,
        issueOverheadCycles, textureCacheEnabled ? 1 : 0,
        textureCacheBytesPerCluster, textureCacheLineBytes,
        textureCacheWays, textureHitLatencyCycles);
    GPUPERF_ASSERT(n > 0 && n < static_cast<int>(sizeof(buf)),
                   "TimingFingerprint key overflow");
    return buf;
}

bool
TimingFingerprint::operator==(const TimingFingerprint &other) const
{
    return numSms == other.numSms &&
           smsPerCluster == other.smsPerCluster &&
           spsPerSm == other.spsPerSm &&
           sfuMulPerSm == other.sfuMulPerSm &&
           sfuPerSm == other.sfuPerSm && dpPerSm == other.dpPerSm &&
           warpSize == other.warpSize &&
           coreClockHz == other.coreClockHz &&
           registersPerSm == other.registersPerSm &&
           sharedMemPerSm == other.sharedMemPerSm &&
           maxThreadsPerSm == other.maxThreadsPerSm &&
           maxThreadsPerBlock == other.maxThreadsPerBlock &&
           maxBlocksPerSm == other.maxBlocksPerSm &&
           maxWarpsPerSm == other.maxWarpsPerSm &&
           registerAllocUnit == other.registerAllocUnit &&
           sharedAllocUnit == other.sharedAllocUnit &&
           sharedStaticPerBlock == other.sharedStaticPerBlock &&
           sharedIssueGroup == other.sharedIssueGroup &&
           memClockHz == other.memClockHz &&
           busWidthBits == other.busWidthBits &&
           aluDepCycles == other.aluDepCycles &&
           sharedDepCycles == other.sharedDepCycles &&
           warpSharedPassIntervalCycles ==
               other.warpSharedPassIntervalCycles &&
           globalLatencyCycles == other.globalLatencyCycles &&
           transactionOverheadCycles == other.transactionOverheadCycles &&
           issueOverheadCycles == other.issueOverheadCycles &&
           textureCacheEnabled == other.textureCacheEnabled &&
           textureCacheBytesPerCluster ==
               other.textureCacheBytesPerCluster &&
           textureCacheLineBytes == other.textureCacheLineBytes &&
           textureCacheWays == other.textureCacheWays &&
           textureHitLatencyCycles == other.textureHitLatencyCycles;
}

GpuSpec
GpuSpec::gtx285()
{
    return GpuSpec{};
}

GpuSpec
GpuSpec::gtx285MoreBlocks()
{
    GpuSpec s;
    s.name = "GTX 285 + 16 resident blocks";
    s.maxBlocksPerSm = 16;
    return s;
}

GpuSpec
GpuSpec::gtx285BigResources()
{
    GpuSpec s;
    s.name = "GTX 285 + 2x registers/shared memory";
    s.registersPerSm *= 2;
    s.sharedMemPerSm *= 2;
    return s;
}

GpuSpec
GpuSpec::gtx285PrimeBanks()
{
    GpuSpec s;
    s.name = "GTX 285 + 17 shared banks";
    s.numSharedBanks = 17;
    return s;
}

GpuSpec
GpuSpec::gtx285SmallSegments(int min_segment_bytes)
{
    GpuSpec s;
    s.name = "GTX 285 + " + std::to_string(min_segment_bytes) +
             "B transactions";
    s.minSegmentBytes = min_segment_bytes;
    if (s.maxSegmentBytes < min_segment_bytes)
        s.maxSegmentBytes = min_segment_bytes;
    return s;
}

} // namespace arch
} // namespace gpuperf
