/**
 * @file
 * Machine description for the modeled GPU.
 *
 * The default preset reproduces the NVIDIA GeForce GTX 285 (GT200) as
 * described in Section 4 of Zhang & Owens (HPCA 2011). What-if variants
 * used for the paper's architectural-improvement studies (Section 5) are
 * provided as named presets as well.
 */

#ifndef GPUPERF_ARCH_GPU_SPEC_H
#define GPUPERF_ARCH_GPU_SPEC_H

#include <cstdint>
#include <string>

namespace gpuperf {
namespace arch {

/**
 * Static hardware parameters of the modeled GPU.
 *
 * All per-SM resource ceilings from the paper are represented: register
 * file size, shared memory size, maximum threads, maximum resident
 * blocks, and maximum resident warps. Timing-related parameters
 * (pipeline depths, memory latency) parameterize the timing simulator
 * that plays the role of the physical board.
 */
struct GpuSpec
{
    std::string name = "GTX 285";

    // --- Compute organization -------------------------------------------
    /** Number of streaming multiprocessors. */
    int numSms = 30;
    /** SMs per cluster (TPC); cluster shares one memory pipeline. */
    int smsPerCluster = 3;
    /** Scalar processors (FPUs) per SM. */
    int spsPerSm = 8;
    /** Extra multipliers in the special functional units per SM. */
    int sfuMulPerSm = 2;
    /** Special-function units usable for transcendental ops per SM. */
    int sfuPerSm = 4;
    /** Double-precision units per SM. */
    int dpPerSm = 1;
    /** Threads per warp. */
    int warpSize = 32;
    /** Core (shader) clock in Hz. */
    double coreClockHz = 1.476e9;

    // --- Per-SM resource ceilings ----------------------------------------
    int registersPerSm = 16384;
    int sharedMemPerSm = 16384;      ///< bytes
    int maxThreadsPerSm = 1024;      ///< 32 warps
    int maxThreadsPerBlock = 512;    ///< launch ceiling per block
    int maxBlocksPerSm = 8;
    int maxWarpsPerSm = 32;
    /** Register allocation granularity (registers rounded per block). */
    int registerAllocUnit = 512;
    /** Shared memory allocation granularity in bytes. */
    int sharedAllocUnit = 512;
    /** Shared memory reserved per block by the runtime (kernel args). */
    int sharedStaticPerBlock = 16;

    // --- Shared memory organization ---------------------------------------
    int numSharedBanks = 16;
    int sharedBankWidth = 4;         ///< bytes per bank per cycle
    /** Threads per shared-memory access issue group (half warp). */
    int sharedIssueGroup = 16;

    // --- Global memory ------------------------------------------------------
    /** Effective memory clock in Hz (DDR already folded in). */
    double memClockHz = 2.484e9;
    /** Memory bus width in bits. */
    int busWidthBits = 512;
    /** Threads per coalescing group (half warp for CC 1.2/1.3). */
    int coalesceGroup = 16;
    /** Minimum memory segment (transaction) size in bytes. */
    int minSegmentBytes = 32;
    /** Maximum memory segment size in bytes. */
    int maxSegmentBytes = 128;

    // --- Timing-simulator parameters (the "hardware") ---------------------
    /**
     * Register read-after-write latency of the arithmetic pipelines, in
     * core cycles. ~24 cycles gives the paper's observed saturation of
     * type II instructions at about 6 warps (issue interval 4 cycles).
     */
    int aluDepCycles = 24;
    /**
     * Dependency latency of the shared-memory pipeline in core cycles.
     * Longer than the ALU latency, so shared memory needs more warps to
     * saturate (paper Figure 2, right).
     */
    int sharedDepCycles = 72;
    /**
     * Minimum interval between shared-memory passes issued by ONE warp,
     * in core cycles (per-warp bank buffering limit). This is what
     * makes shared-memory throughput scale with warp-level parallelism
     * — the paper's central shared-memory observation — regardless of
     * whether the serialized passes come from bank conflicts or from
     * independent accesses. One warp alone sustains at most
     * 1/interval of the pipe's pass rate (the pipe serves one pass
     * per warpSize/sharedIssueGroup cycles).
     */
    double warpSharedPassIntervalCycles = 18.0;
    /** Round-trip global memory latency in core cycles. */
    int globalLatencyCycles = 520;
    /** Fixed cluster-port overhead charged per memory transaction. */
    int transactionOverheadCycles = 2;
    /** Issue overhead cycles charged by the scheduler per instruction. */
    double issueOverheadCycles = 0.35;

    // --- Texture cache (extension; used for Fig. 12 +Cache variants) ------
    bool textureCacheEnabled = false;
    int textureCacheBytesPerCluster = 24576;
    int textureCacheLineBytes = 32;
    int textureCacheWays = 8;
    int textureHitLatencyCycles = 40;

    // --- Derived quantities -----------------------------------------------
    int numClusters() const { return numSms / smsPerCluster; }

    /** Peak DRAM bandwidth in bytes/s: memClock * busWidth / 8. */
    double peakGlobalBandwidth() const;

    /** Peak shared-memory bandwidth in bytes/s (paper Section 4.2). */
    double peakSharedBandwidth() const;

    /** DRAM bytes per core cycle for one cluster's memory pipeline. */
    double clusterBytesPerCycle() const;

    /** Validate internal consistency; fatal() on user error. */
    void validate() const;

    /**
     * Deterministic serialization of EVERY field, used to key shared
     * calibrations: two specs with equal fingerprints behave
     * identically under simulation and may share tables. When adding
     * a field to this struct, add it to fingerprint() as well.
     */
    std::string fingerprint() const;

    // --- Presets -----------------------------------------------------------
    /** The paper's evaluation platform. */
    static GpuSpec gtx285();

    /** GTX 285 with the max-resident-blocks ceiling raised to 16 (§5.1). */
    static GpuSpec gtx285MoreBlocks();

    /** GTX 285 with doubled register file and shared memory (§5.1). */
    static GpuSpec gtx285BigResources();

    /** GTX 285 with a prime (17) number of shared banks (§5.2). */
    static GpuSpec gtx285PrimeBanks();

    /** GTX 285 with a smaller minimum transaction granularity (§5.3). */
    static GpuSpec gtx285SmallSegments(int min_segment_bytes);
};

/**
 * The slice of a GpuSpec the functional simulator reads — a sub-key of
 * GpuSpec::fingerprint(). Two specs with equal funcsim fingerprints
 * produce bit-identical dynamic statistics and replay traces for any
 * kernel launch, so they may share one KernelProfile even when their
 * timing, clock or occupancy fields differ (the launch-ceiling checks
 * the functional simulator also performs are re-validated per spec by
 * the profile consumer).
 *
 * When the functional simulator or the memory-transaction models start
 * reading a new GpuSpec field, add it here and to key() as well —
 * exactly like the GpuSpec::fingerprint() contract.
 */
struct FuncsimFingerprint
{
    int warpSize = 0;
    /** Coalescing generation: group width and segment size range. */
    int coalesceGroup = 0;
    int minSegmentBytes = 0;
    int maxSegmentBytes = 0;
    /** Shared-memory organization (bank conflicts, pass counting). */
    int numSharedBanks = 0;
    int sharedBankWidth = 0;
    int sharedIssueGroup = 0;
    /** Texture line size (LDT line-id generation in traces). */
    int textureCacheLineBytes = 0;

    /** Extract the funcsim-relevant slice of @p spec. */
    static FuncsimFingerprint of(const GpuSpec &spec);

    /** Deterministic serialization, usable as a cache key component. */
    std::string key() const;

    bool operator==(const FuncsimFingerprint &other) const;
    bool operator!=(const FuncsimFingerprint &other) const
    {
        return !(*this == other);
    }
};

/**
 * The slice of a GpuSpec the timing simulator reads — the
 * timing-relevant complement of FuncsimFingerprint (a sub-key of
 * GpuSpec::fingerprint()). Two specs with equal timing fingerprints
 * replay any given KernelProfile to bit-identical TimingResults:
 * everything the replay engines, the occupancy calculation they embed,
 * and the per-spec launch-ceiling revalidation consult is included.
 * Fields read only by the functional simulator (coalescing generation,
 * shared-bank organization) and the free-form name are excluded — a
 * TimingResult may be shared across specs differing only in those.
 *
 * When the timing simulator or the occupancy calculator starts
 * reading a new GpuSpec field, add it here and to key() as well —
 * exactly like the GpuSpec::fingerprint() contract.
 */
struct TimingFingerprint
{
    // Compute organization (issue intervals, clusters, clocks).
    int numSms = 0;
    int smsPerCluster = 0;
    int spsPerSm = 0;
    int sfuMulPerSm = 0;
    int sfuPerSm = 0;
    int dpPerSm = 0;
    int warpSize = 0;
    double coreClockHz = 0.0;
    // Occupancy ceilings and allocation granularity.
    int registersPerSm = 0;
    int sharedMemPerSm = 0;
    int maxThreadsPerSm = 0;
    int maxThreadsPerBlock = 0;
    int maxBlocksPerSm = 0;
    int maxWarpsPerSm = 0;
    int registerAllocUnit = 0;
    int sharedAllocUnit = 0;
    int sharedStaticPerBlock = 0;
    /** Shared pass width: warpSize / sharedIssueGroup cycles. */
    int sharedIssueGroup = 0;
    // Cluster memory pipeline rate.
    double memClockHz = 0.0;
    int busWidthBits = 0;
    // Pipeline latencies and overheads.
    int aluDepCycles = 0;
    int sharedDepCycles = 0;
    double warpSharedPassIntervalCycles = 0.0;
    int globalLatencyCycles = 0;
    int transactionOverheadCycles = 0;
    double issueOverheadCycles = 0.0;
    // Texture cache (geometry and latencies).
    bool textureCacheEnabled = false;
    int textureCacheBytesPerCluster = 0;
    int textureCacheLineBytes = 0;
    int textureCacheWays = 0;
    int textureHitLatencyCycles = 0;

    /** Extract the timing-relevant slice of @p spec. */
    static TimingFingerprint of(const GpuSpec &spec);

    /** Deterministic serialization, usable as a cache key component. */
    std::string key() const;

    bool operator==(const TimingFingerprint &other) const;
    bool operator!=(const TimingFingerprint &other) const
    {
        return !(*this == other);
    }
};

} // namespace arch
} // namespace gpuperf

#endif // GPUPERF_ARCH_GPU_SPEC_H
