/**
 * @file
 * Instruction type classification (paper Table 1).
 *
 * Instructions are classified by how many functional units per SM can
 * execute them; the theoretical peak throughput of a type follows as
 * numberFunctionalUnits * frequency * numberSM / warpSize.
 */

#ifndef GPUPERF_ARCH_INSTR_CLASS_H
#define GPUPERF_ARCH_INSTR_CLASS_H

#include <array>
#include <string>

#include "arch/gpu_spec.h"

namespace gpuperf {
namespace arch {

/**
 * The four instruction types of Table 1.
 *
 * - TypeI:   10 units (the 8 FPUs plus 2 SFU multipliers) — mul
 * - TypeII:   8 units — mov, add, mad and most integer/logic ops
 * - TypeIII:  4 units — transcendental: sin, cos, log, rcp
 * - TypeIV:   1 unit  — double-precision floating point
 */
enum class InstrType : int { TypeI = 0, TypeII = 1, TypeIII = 2, TypeIV = 3 };

constexpr int kNumInstrTypes = 4;

/** All types, for iteration. */
constexpr std::array<InstrType, kNumInstrTypes> kAllInstrTypes = {
    InstrType::TypeI, InstrType::TypeII, InstrType::TypeIII,
    InstrType::TypeIV};

/** Human-readable name ("Type I" .. "Type IV"). */
const char *instrTypeName(InstrType type);

/** Example instructions for the type, as in Table 1. */
const char *instrTypeExamples(InstrType type);

/** Number of functional units per SM able to run this type. */
int functionalUnits(const GpuSpec &spec, InstrType type);

/**
 * Issue interval in core cycles for one warp-instruction of this type:
 * warpSize / functionalUnits.
 */
double issueIntervalCycles(const GpuSpec &spec, InstrType type);

/**
 * Theoretical peak throughput in warp-instructions per second
 * (paper: "Giga instructions/s" counts warp-level instructions).
 */
double peakThroughput(const GpuSpec &spec, InstrType type);

/**
 * Theoretical peak single-precision FLOP rate, counting MAD as two
 * flops (paper Section 4.1: 710.4 GFLOPS for the GTX 285).
 */
double peakFlops(const GpuSpec &spec);

} // namespace arch
} // namespace gpuperf

#endif // GPUPERF_ARCH_INSTR_CLASS_H
