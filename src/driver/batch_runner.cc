#include "driver/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/task_graph.h"
#include "sched/cost.h"
#include "store/calibration_store.h"
#include "store/codecs.h"
#include "store/profile_store.h"
#include "store/result_store.h"
#include "store/serializer.h"
#include "store/timing_store.h"

namespace gpuperf {
namespace driver {

namespace {

using TablesPtr = std::shared_ptr<const model::CalibrationTables>;

using BenchMemoPtr = std::shared_ptr<model::GlobalBenchMemo>;

/**
 * Error packaging shared by every evaluation path: run @p body,
 * converting any exception into a failed-but-present result so one
 * bad case never aborts the batch (even for exotic non-std
 * exceptions).
 */
template <typename Body>
BatchResult
guardedCell(const std::string &kernel_name, const std::string &spec_name,
            Body body)
{
    BatchResult r;
    r.kernelName = kernel_name;
    r.specName = spec_name;
    try {
        body(r);
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    } catch (...) {
        r.ok = false;
        r.error = "unknown exception from kernel case";
    }
    return r;
}

/**
 * Shared analysis core of one cell: fresh session adopting the
 * per-spec calibration state, one analysis from @p produce, then the
 * sweep. Both the per-cell and the profile-sharing pipelines end
 * here, which is what keeps them bit-identical by construction.
 */
void
analyzeInto(
    BatchResult &r, const arch::GpuSpec &spec, TablesPtr tables,
    BenchMemoPtr memo, const SweepSpec &sweep,
    timing::ReplayEngine engine,
    const std::function<model::Analysis(model::AnalysisSession &)>
        &produce)
{
    model::SessionConfig config;
    config.engine = engine;
    config.tables = std::move(tables);
    model::AnalysisSession session(spec, config);
    if (memo)
        session.calibrator().shareGlobalMemo(std::move(memo));
    r.analysis = produce(session);
    if (!sweep.empty()) {
        // The analysis already predicted the unmodified input; the
        // sweep reuses that as every hypothesis's baseline.
        r.whatifs = runSweep(session.model(), r.analysis.input, sweep,
                             r.analysis.prediction);
    }
    r.ok = true;
}

/**
 * One full per-cell evaluation: fresh memory image, analyze, sweep.
 * Self-contained so the serial loop and the pool workers share it.
 * @p tables and @p memo carry the per-spec shared calibration state.
 */
BatchResult
evaluateOne(const KernelCase &kernel_case, const arch::GpuSpec &spec,
            TablesPtr tables, BenchMemoPtr memo, const SweepSpec &sweep,
            timing::ReplayEngine engine =
                timing::ReplayEngine::kEventDriven)
{
    return guardedCell(kernel_case.name, spec.name, [&](BatchResult &r) {
        if (!kernel_case.make)
            throw std::runtime_error("kernel case has no factory");
        PreparedLaunch launch = kernel_case.make();
        if (!launch.gmem)
            throw std::runtime_error("kernel case produced no memory");
        analyzeInto(r, spec, std::move(tables), std::move(memo), sweep,
                    engine, [&](model::AnalysisSession &session) {
                        return session.analyze(launch.kernel, launch.cfg,
                                               *launch.gmem,
                                               launch.options);
                    });
    });
}

/** Run @p kc's factory, validating the case and its output. */
PreparedLaunch
makeLaunch(const KernelCase &kc)
{
    if (!kc.make)
        throw std::runtime_error("kernel case has no factory");
    PreparedLaunch launch = kc.make();
    if (!launch.gmem)
        throw std::runtime_error("kernel case produced no memory");
    return launch;
}

/** The options a profile run uses: trace collection forced on. */
funcsim::RunOptions
profileOptions(const PreparedLaunch &launch)
{
    funcsim::RunOptions options = launch.options;
    options.collectTrace = true;
    return options;
}

/** The profile key of @p launch (pristine memory image) on @p spec. */
funcsim::ProfileKey
profileKeyOf(const PreparedLaunch &launch, const arch::GpuSpec &spec)
{
    return funcsim::makeProfileKey(launch.kernel, launch.cfg,
                                   profileOptions(launch), spec,
                                   *launch.gmem);
}

/** Functionally simulate @p launch into a profile under @p key. */
std::shared_ptr<const funcsim::KernelProfile>
simulateProfile(const arch::GpuSpec &spec, PreparedLaunch &launch,
                const funcsim::ProfileKey &key)
{
    funcsim::FunctionalSimulator sim(spec);
    return std::make_shared<const funcsim::KernelProfile>(
        funcsim::profileKernel(sim, launch.kernel, launch.cfg,
                               *launch.gmem, profileOptions(launch),
                               key));
}

/**
 * Guard the keyed-profile paths against a factory that violates the
 * documented repeatability contract: a launch rebuilt after the key
 * was derived must still digest to that key, or the simulation would
 * be persisted under another image's identity — poisoning the store
 * for every later run. The image hash is noise next to the
 * functional simulation that follows.
 */
void
requireRepeatableFactory(const KernelCase &kc,
                         const PreparedLaunch &launch,
                         const arch::GpuSpec &spec,
                         const funcsim::ProfileKey &key)
{
    if (profileKeyOf(launch, spec) != key) {
        throw std::runtime_error(
            "kernel case '" + kc.name +
            "' is not repeatable: a rebuilt launch no longer matches "
            "the profile key derived from its first factory run");
    }
}

/**
 * One kernel case's factory output together with its profile key,
 * shared run-locally per (case position, funcsim fingerprint): the
 * factory runs ONCE whether a cell needs only the key (warm
 * result-store path) or the key and then, on a profile-store miss,
 * the launch itself — the profile build takes the stashed launch
 * instead of re-running the factory.
 */
struct PreparedCase
{
    funcsim::ProfileKey key;
    std::mutex mutex;
    std::unique_ptr<PreparedLaunch> launch;  ///< null once consumed

    /** Drop the stashed input image (idempotent). */
    void discardLaunch()
    {
        std::lock_guard<std::mutex> lock(mutex);
        launch.reset();
    }
};

/**
 * Content identity of one finished cell for the persistent result
 * store: the case name, the profile's full key (kernel hash, input
 * hash, launch, options, funcsim fingerprint), the target spec's
 * full fingerprint, the digest of the calibration tables the
 * prediction used (adopted toy tables must never alias a real
 * calibration), and the sweep grid. Any change to any of them misses
 * and the cell recomputes.
 */
std::string
resultKey(const std::string &case_name,
          const funcsim::ProfileKey &profile_key,
          const arch::GpuSpec &spec, uint64_t tables_digest,
          const SweepSpec &sweep)
{
    char cal[32];
    std::snprintf(cal, sizeof(cal), "%016llx",
                  static_cast<unsigned long long>(tables_digest));
    return std::to_string(case_name.size()) + ":" + case_name + "|" +
           profile_key.str() + "|spec=" + spec.fingerprint() +
           "|cal=" + cal + "|sweep=" + sweep.fingerprint();
}

// --- Per-batch task-graph node outputs ---------------------------------
//
// Graph nodes communicate through these slots instead of futures: a
// producing node stores its value OR the exception it caught, and
// consuming nodes translate a stored exception into a failed
// BatchResult — so node bodies themselves never throw, every cell is
// delivered exactly once, and one bad stage never aborts the batch.

/** Output of the calibrate + bench-memo nodes for one distinct spec. */
struct SpecSlot
{
    TablesPtr tables;
    BenchMemoPtr memo;
    /** Result-store calibration digest (0 without a result store). */
    uint64_t digest = 0;
    std::exception_ptr calError;
    std::exception_ptr memoError;
};

/**
 * Output of the prepare node for one (case, funcsim fingerprint):
 * the factory runs ONCE — sibling cells across spec variants reuse
 * the profile key, the stashed launch, and (the fix this slot
 * exists for) a captured factory error, instead of paying a
 * rebuild-and-rethrow attempt per cell.
 */
struct PreparedSlot
{
    std::shared_ptr<PreparedCase> pc;
    std::exception_ptr error;
};

/** Output of the profile node for one (case, funcsim fingerprint). */
struct ProfileSlot
{
    std::shared_ptr<const funcsim::KernelProfile> profile;
    std::exception_ptr error;
};

/** Output of the timing node for one (profile key, timing fp). */
struct TimingSlot
{
    std::shared_ptr<const timing::TimingResult> result;
    std::exception_ptr error;
};

/** A failed result carrying @p error, via the usual packaging. */
BatchResult
failedCell(const std::string &kernel_name, const std::string &spec_name,
           const std::exception_ptr &error)
{
    return guardedCell(kernel_name, spec_name, [&](BatchResult &) {
        std::rethrow_exception(error);
    });
}

/**
 * The shared lease dance (same protocol as calibrate()'s): serve a
 * store-backed artifact, waiting out another process's in-flight
 * computation. @p load returns the published artifact or null;
 * @p acquire tries the artifact's lease; @p probe is a CHEAP
 * header-only existence re-check under a freshly won lease (so the
 * common cold path counts exactly one store miss). Returns the
 * artifact, or null with *@p lease held — the caller computes,
 * saves, then releases. Advisory and crash-safe: a holder that dies
 * leaves a stale lease the next acquire breaks, so the worst failure
 * mode is one duplicated computation, never a stuck process.
 */
template <typename LoadFn, typename AcquireFn, typename ProbeFn>
auto
awaitPublished(const LoadFn &load, const AcquireFn &acquire,
               const ProbeFn &probe, store::Lease *lease, int poll_ms)
    -> decltype(load())
{
    for (;;) {
        if (auto artifact = load())
            return artifact;
        *lease = acquire();
        if (lease->held()) {
            // Re-check under the lease: the previous holder may have
            // published between our miss and this acquisition.
            if (probe()) {
                if (auto artifact = load()) {
                    lease->release();
                    return artifact;
                }
            }
            return nullptr;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(poll_ms));
    }
}

} // namespace

BatchRunner::BatchRunner() : BatchRunner(Options{}) {}

BatchRunner::BatchRunner(Options options)
    : options_(std::move(options)), pool_(options_.numThreads)
{
    if (!options_.storeDir.empty()) {
        profileStore_ = std::make_unique<store::ProfileStore>(
            options_.storeDir + "/profiles");
        calibrationStore_ = std::make_unique<store::CalibrationStore>(
            options_.storeDir + "/calibrations");
        resultStore_ = std::make_unique<store::ResultStore>(
            options_.storeDir + "/results");
        timingStore_ = std::make_unique<store::TimingStore>(
            options_.storeDir + "/timing");
    }
}

BatchRunner::~BatchRunner() = default;

store::StoreLayerStats
BatchRunner::storeStats() const
{
    store::StoreLayerStats s;
    if (profileStore_)
        s.profiles = profileStore_->stats();
    if (calibrationStore_)
        s.calibrations = calibrationStore_->stats();
    if (timingStore_)
        s.timings = timingStore_->stats();
    if (resultStore_)
        s.results = resultStore_->stats();
    return s;
}

std::string
BatchRunner::specKey(const arch::GpuSpec &spec)
{
    // GpuSpec::fingerprint() serializes every field, so two specs
    // that differ in anything simulation-relevant never alias.
    return spec.fingerprint();
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::runCalibration(const arch::GpuSpec &spec,
                            const std::string &key)
{
    ++calibrationsComputed_;
    model::AnalysisSession session(spec);
    if (!options_.calibrationCacheDir.empty()) {
        session.calibrator().setCacheFile(
            options_.calibrationCacheDir + "/" +
            store::fileStem(spec.name, key) + ".cache");
    }
    return session.shareCalibration();
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::calibrate(const arch::GpuSpec &spec,
                       const std::string &key)
{
    if (!calibrationStore_)
        return runCalibration(spec, key);

    // Concurrent processes sharing this store split the
    // microbenchmark sweeps: only the holder of the spec's lease
    // runs this one, everyone else polls for the published entry
    // (awaitPublished — the same dance profiles and timings use).
    // The under-lease probe is a full load: calibrations are rare
    // and expensive, so an extra counted miss is noise here.
    store::Lease lease;
    if (auto tables = awaitPublished(
            [&] { return calibrationStore_->load(spec); },
            [&] { return calibrationStore_->tryAcquireLease(spec); },
            [] { return true; }, &lease, /*poll_ms=*/20)) {
        return tables;
    }
    auto tables = runCalibration(spec, key);
    calibrationStore_->save(spec, *tables);
    return tables; // lease marker removed after the save
}

funcsim::ProfileKey
BatchRunner::profileKeyFor(const KernelCase &kc,
                           const arch::GpuSpec &spec)
{
    const PreparedLaunch launch = makeLaunch(kc);
    return profileKeyOf(launch, spec);
}

std::shared_ptr<const funcsim::KernelProfile>
BatchRunner::profileAwait(const funcsim::ProfileKey &key,
                          store::Lease *lease)
{
    if (!profileStore_)
        return nullptr;
    // Only the holder of the key's lease simulates; everyone else
    // polls for the published entry (see awaitPublished).
    return awaitPublished(
        [&] { return profileStore_->load(key); },
        [&] { return profileStore_->tryAcquireLease(key); },
        [&] { return profileStore_->readKey(key); }, lease,
        /*poll_ms=*/10);
}

std::shared_ptr<const funcsim::KernelProfile>
BatchRunner::profileFor(const KernelCase &kc, const arch::GpuSpec &spec)
{
    PreparedLaunch launch = makeLaunch(kc);
    // One key computation (it digests the memory image) serves both
    // the store lookup and, on a miss, the built profile.
    const funcsim::ProfileKey key = profileKeyOf(launch, spec);
    store::Lease lease;
    if (auto profile = profileAwait(key, &lease))
        return profile;
    auto profile = simulateProfile(spec, launch, key);
    ++funcsimsComputed_;
    if (profileStore_)
        profileStore_->save(*profile);
    return profile; // the held lease releases after the save
}

std::shared_ptr<const funcsim::KernelProfile>
BatchRunner::profileFor(const KernelCase &kc, const arch::GpuSpec &spec,
                        const funcsim::ProfileKey &key)
{
    // Known key: a store hit needs no factory run at all — the entry
    // self-validates against the key, which profileKeyFor() already
    // derived from the same (repeatable) factory.
    store::Lease lease;
    if (auto profile = profileAwait(key, &lease))
        return profile;
    PreparedLaunch launch = makeLaunch(kc);
    requireRepeatableFactory(kc, launch, spec, key);
    auto profile = simulateProfile(spec, launch, key);
    ++funcsimsComputed_;
    if (profileStore_)
        profileStore_->save(*profile);
    return profile; // the held lease releases after the save
}

std::shared_ptr<const timing::TimingResult>
BatchRunner::timingCompute(
    const std::shared_ptr<const funcsim::KernelProfile> &profile,
    const arch::GpuSpec &spec, bool *computed,
    std::shared_ptr<store::Lease> *lease_out)
{
    GPUPERF_ASSERT(profile != nullptr, "timing of a null profile");
    const arch::TimingFingerprint fp = arch::TimingFingerprint::of(spec);
    const std::string key = store::TimingStore::keyFor(profile->key, fp);
    *computed = false;
    return timings_.getOrCompute(
        key, [&]() -> std::shared_ptr<const timing::TimingResult> {
            if (timingStore_) {
                // Same lease dance as profiles/calibrations: only the
                // holder replays; losers poll for the published entry.
                auto lease = std::make_shared<store::Lease>();
                if (auto stored = awaitPublished(
                        [&] {
                            return timingStore_->load(profile->key,
                                                      fp);
                        },
                        [&] {
                            return timingStore_->tryAcquireLease(
                                profile->key, fp);
                        },
                        [&] {
                            return timingStore_->exists(profile->key,
                                                        fp);
                        },
                        lease.get(), /*poll_ms=*/5)) {
                    return stored;
                }
                *lease_out = std::move(lease);
            }
            // A standalone simulator for the spec replays exactly what
            // a session's device would (both are deterministic
            // functions of the trace and the timing fingerprint).
            timing::TimingSimulator sim(spec, options_.engine);
            auto result = std::make_shared<const timing::TimingResult>(
                sim.run(*profile));
            *computed = true;
            ++timingsComputed_;
            return result;
        });
}

std::shared_ptr<const timing::TimingResult>
BatchRunner::timingFor(
    const std::shared_ptr<const funcsim::KernelProfile> &profile,
    const arch::GpuSpec &spec)
{
    bool computed = false;
    std::shared_ptr<store::Lease> lease;
    auto result = timingCompute(profile, spec, &computed, &lease);
    if (computed && timingStore_) {
        timingStore_->save(profile->key,
                           arch::TimingFingerprint::of(spec), *result);
    }
    if (lease)
        lease->release(); // after the save: waiters load, not replay
    return result;
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::calibrationFor(const arch::GpuSpec &spec)
{
    const std::string key = specKey(spec);
    return calibrations_.getOrCompute(
        key, [&]() { return calibrate(spec, key); });
}

std::shared_ptr<model::GlobalBenchMemo>
BatchRunner::benchMemoFor(const arch::GpuSpec &spec)
{
    return benchMemos_.getOrCompute(specKey(spec), [&]() {
        auto memo = std::make_shared<model::GlobalBenchMemo>();
        if (calibrationStore_) {
            for (auto &entry :
                 calibrationStore_->loadBenchResults(spec)) {
                memo->put(entry.first, entry.second);
            }
        }
        return memo;
    });
}

void
BatchRunner::adoptCalibration(
    const arch::GpuSpec &spec,
    std::shared_ptr<const model::CalibrationTables> tables)
{
    GPUPERF_ASSERT(tables != nullptr, "cannot adopt null tables");
    calibrations_.put(specKey(spec), std::move(tables));
}

std::vector<BatchResult>
BatchRunner::run(const std::vector<KernelCase> &kernels,
                 const std::vector<arch::GpuSpec> &specs,
                 const SweepSpec &sweep)
{
    // Collect-and-reorder wrapper over the streaming core:
    // deliveries arrive in completion order carrying their
    // kernel-major index; placing them by index restores the
    // deterministic order. Deliveries are serialized, so the vector
    // needs no locking.
    std::vector<BatchResult> results(kernels.size() * specs.size());
    runStream(kernels, specs, sweep,
              [&results](size_t index, BatchResult r) {
                  results[index] = std::move(r);
              });
    return results;
}

BatchRunner::StreamStats
BatchRunner::runStream(const std::vector<KernelCase> &kernels,
                       const std::vector<arch::GpuSpec> &specs,
                       const SweepSpec &sweep,
                       const ResultCallback &onResult)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    const auto since = [t0]() {
        return std::chrono::duration<double>(Clock::now() - t0)
            .count();
    };

    StreamStats stats;
    stats.cells = kernels.size() * specs.size();

    TaskGraph graph(pool_);
    switch (options_.schedPolicy) {
    case sched::SchedPolicy::kFifo:
        break;
    case sched::SchedPolicy::kBiggestFirst:
        graph.setReadyOrder(TaskGraph::ReadyOrder::kBiggestFirst);
        break;
    case sched::SchedPolicy::kSjf:
    case sched::SchedPolicy::kFairShare:
        // The task graph has no client identity; fair-share degrades
        // to shortest-job-first at this level.
        graph.setReadyOrder(TaskGraph::ReadyOrder::kSmallestFirst);
        break;
    }
    const bool costed_ready =
        options_.schedPolicy != sched::SchedPolicy::kFifo;

    // State shared by node lambdas: the dedup maps behind the
    // dynamically created profile/timing nodes, and the serialized
    // delivery channel. Nodes die when graph.run() returns, but a
    // shared_ptr keeps every capture trivially safe.
    struct Shared
    {
        std::mutex buildMutex;
        std::map<std::string, std::pair<TaskGraph::NodeId,
                                        std::shared_ptr<ProfileSlot>>>
            profiles;
        std::map<std::string, std::pair<TaskGraph::NodeId,
                                        std::shared_ptr<TimingSlot>>>
            timings;

        /**
         * Never held across user code — nodes stamp stream stats
         * here without queueing behind a slow onResult callback.
         */
        std::mutex statsMutex;
        bool firstDelivered = false;
        double firstResultSec = 0.0;
        double lastCalibrationSec = 0.0;

        /** Held across onResult: serializes the delivery channel. */
        std::mutex deliverMutex;
        bool callbackBroken = false;
        std::exception_ptr callbackError;
    };
    auto shared = std::make_shared<Shared>();

    // Serialized completion-order delivery. After the callback's
    // first exception the channel is closed (later results are
    // dropped) but the batch still drains — a throwing consumer must
    // not wedge workers or skip store writes.
    const auto deliver = [shared, &onResult, &since](size_t index,
                                                     BatchResult r) {
        {
            std::lock_guard<std::mutex> lock(shared->statsMutex);
            if (!shared->firstDelivered) {
                shared->firstDelivered = true;
                shared->firstResultSec = since();
            }
        }
        std::lock_guard<std::mutex> lock(shared->deliverMutex);
        if (shared->callbackBroken)
            return;
        try {
            onResult(index, std::move(r));
        } catch (...) {
            shared->callbackBroken = true;
            shared->callbackError = std::current_exception();
        }
    };

    // --- calibrate(spec) + benchMemo(spec): one node each per
    // distinct fingerprint; duplicate specs share slot and nodes. ---
    std::vector<std::shared_ptr<SpecSlot>> spec_slots(specs.size());
    std::vector<TaskGraph::NodeId> cal_nodes(specs.size());
    std::vector<TaskGraph::NodeId> memo_nodes(specs.size());
    std::map<std::string, size_t> spec_owner;
    for (size_t si = 0; si < specs.size(); ++si) {
        const arch::GpuSpec *spec = &specs[si];
        const auto [it, fresh] = spec_owner.emplace(specKey(*spec), si);
        if (!fresh) {
            spec_slots[si] = spec_slots[it->second];
            cal_nodes[si] = cal_nodes[it->second];
            memo_nodes[si] = memo_nodes[it->second];
            continue;
        }
        auto slot = std::make_shared<SpecSlot>();
        spec_slots[si] = slot;
        cal_nodes[si] = graph.add(
            "calibrate:" + spec->name,
            [this, spec, slot, shared, since]() {
                try {
                    slot->tables = calibrationFor(*spec);
                    if (resultStore_ && slot->tables)
                        slot->digest =
                            store::tablesDigest(*slot->tables);
                } catch (...) {
                    slot->calError = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(shared->statsMutex);
                shared->lastCalibrationSec =
                    std::max(shared->lastCalibrationSec, since());
            });
        memo_nodes[si] =
            graph.add("bench-memo:" + spec->name, [this, spec, slot]() {
                try {
                    slot->memo = benchMemoFor(*spec);
                } catch (...) {
                    slot->memoError = std::current_exception();
                }
            });
    }

    // --- Lazy shared simulation chain: profile(case, funcsim fp) and
    // timing(profile key, timing fp) nodes exist only when some cell
    // actually misses the result store. ---
    const auto ensure_profile =
        [this, &graph,
         shared](const std::string &pkey, const KernelCase *kc,
                 const arch::GpuSpec *spec,
                 std::shared_ptr<PreparedSlot> pslot,
                 TaskGraph::NodeId prep_node) {
            std::lock_guard<std::mutex> lock(shared->buildMutex);
            const auto it = shared->profiles.find(pkey);
            if (it != shared->profiles.end())
                return it->second;
            auto slot = std::make_shared<ProfileSlot>();
            const auto id = graph.add(
                "profile:" + kc->name,
                [this, &graph, kc, spec, pslot, slot]() {
                    try {
                        auto pc = pslot->pc;
                        auto lease = std::make_shared<store::Lease>();
                        if (auto p = profileAwait(pc->key,
                                                  lease.get())) {
                            slot->profile = std::move(p);
                            pc->discardLaunch();
                            return;
                        }
                        std::unique_ptr<PreparedLaunch> launch;
                        {
                            std::lock_guard<std::mutex> l(pc->mutex);
                            launch = std::move(pc->launch);
                        }
                        if (!launch) {
                            // A finished sibling cell already
                            // discarded the stash; rebuild, holding
                            // the factory to its repeatability
                            // contract.
                            launch = std::make_unique<PreparedLaunch>(
                                makeLaunch(*kc));
                            requireRepeatableFactory(*kc, *launch,
                                                     *spec, pc->key);
                        }
                        slot->profile =
                            simulateProfile(*spec, *launch, pc->key);
                        ++funcsimsComputed_;
                        if (profileStore_) {
                            // Writer node: persistence runs beside
                            // the cells consuming the profile, not
                            // ahead of them. The in-flight lease is
                            // released only after the save, so a
                            // cooperating process polling the key
                            // loads the entry instead of duplicating
                            // the funcsim.
                            auto profile = slot->profile;
                            graph.add("write-profile:" + kc->name,
                                      [this, profile, lease]() {
                                          profileStore_->save(*profile);
                                          lease->release();
                                      });
                        }
                    } catch (...) {
                        slot->error = std::current_exception();
                    }
                },
                {prep_node});
            const auto entry = std::make_pair(id, slot);
            shared->profiles.emplace(pkey, entry);
            return entry;
        };

    const auto ensure_timing =
        [this, &graph,
         shared](const std::string &tkey, const KernelCase *kc,
                 const arch::GpuSpec *spec,
                 std::pair<TaskGraph::NodeId,
                           std::shared_ptr<ProfileSlot>>
                     prof) {
            std::lock_guard<std::mutex> lock(shared->buildMutex);
            const auto it = shared->timings.find(tkey);
            if (it != shared->timings.end())
                return it->second;
            auto slot = std::make_shared<TimingSlot>();
            auto prof_slot = prof.second;
            const auto id = graph.add(
                "timing:" + kc->name,
                [this, &graph, kc, spec, prof_slot, slot]() {
                    if (prof_slot->error) {
                        slot->error = prof_slot->error;
                        return;
                    }
                    try {
                        bool computed = false;
                        std::shared_ptr<store::Lease> lease;
                        slot->result = timingCompute(
                            prof_slot->profile, *spec, &computed,
                            &lease);
                        if (computed && timingStore_) {
                            auto profile = prof_slot->profile;
                            auto result = slot->result;
                            graph.add(
                                "write-timing:" + kc->name,
                                [this, profile, result, spec,
                                 lease]() {
                                    timingStore_->save(
                                        profile->key,
                                        arch::TimingFingerprint::of(
                                            *spec),
                                        *result);
                                    if (lease)
                                        lease->release();
                                });
                        } else if (lease) {
                            lease->release();
                        }
                    } catch (...) {
                        slot->error = std::current_exception();
                    }
                },
                {prof.first});
            const auto entry = std::make_pair(id, slot);
            shared->timings.emplace(tkey, entry);
            return entry;
        };

    // --- One cell(case, spec) node per batch cell. ---
    const size_t num_specs = specs.size();
    std::map<std::string, std::pair<TaskGraph::NodeId,
                                    std::shared_ptr<PreparedSlot>>>
        prepared;
    for (size_t ki = 0; ki < kernels.size(); ++ki) {
        const KernelCase *kc = &kernels[ki];
        for (size_t si = 0; si < num_specs; ++si) {
            const arch::GpuSpec *spec = &specs[si];
            const size_t index = ki * num_specs + si;
            auto sslot = spec_slots[si];

            if (!options_.shareProfiles) {
                // Reference per-cell pipeline: nothing shared beyond
                // the spec's calibration state, stores bypassed.
                graph.add(
                    "cell:" + kc->name + "@" + spec->name,
                    [this, kc, spec, sslot, &sweep, index, deliver]() {
                        bool delivered = false;
                        try {
                            if (sslot->calError || sslot->memoError) {
                                delivered = true;
                                deliver(index,
                                        failedCell(
                                            kc->name, spec->name,
                                            sslot->calError
                                                ? sslot->calError
                                                : sslot->memoError));
                                return;
                            }
                            BatchResult r = evaluateOne(
                                *kc, *spec, sslot->tables,
                                sslot->memo, sweep, options_.engine);
                            delivered = true;
                            deliver(index, std::move(r));
                        } catch (...) {
                            if (!delivered) {
                                deliver(
                                    index,
                                    failedCell(
                                        kc->name, spec->name,
                                        std::current_exception()));
                            }
                        }
                    },
                    {cal_nodes[si], memo_nodes[si]});
                continue;
            }

            // prepare(case, funcsim fp): the factory runs once per
            // distinct fingerprint; sibling cells reuse the key, the
            // stashed launch AND a captured factory error.
            const std::string pkey =
                std::to_string(ki) + "#" +
                arch::FuncsimFingerprint::of(*spec).key();
            auto pit = prepared.find(pkey);
            if (pit == prepared.end()) {
                auto pslot = std::make_shared<PreparedSlot>();
                const auto pid = graph.add(
                    "prepare:" + kc->name, [kc, spec, pslot]() {
                        try {
                            auto pc = std::make_shared<PreparedCase>();
                            pc->launch =
                                std::make_unique<PreparedLaunch>(
                                    makeLaunch(*kc));
                            pc->key = profileKeyOf(*pc->launch, *spec);
                            pslot->pc = std::move(pc);
                        } catch (...) {
                            pslot->error = std::current_exception();
                        }
                    });
                pit = prepared
                          .emplace(pkey, std::make_pair(pid, pslot))
                          .first;
            }
            const TaskGraph::NodeId prep_node = pit->second.first;
            auto pslot = pit->second.second;

            // The cell's probe half: settle dependency errors, try
            // the warm result store, otherwise extend the graph with
            // the shared simulation chain and an analyze node behind
            // it. Runs once per cell; never throws.
            graph.add(
                "cell:" + kc->name + "@" + spec->name,
                [this, &graph, kc, spec, sslot, pslot, &sweep, index,
                 deliver, pkey, prep_node, ensure_profile,
                 ensure_timing, costed_ready]() {
                    // Exactly-once delivery even if this body throws
                    // somewhere unexpected (allocation, store I/O):
                    // an undelivered cell would surface as a silent
                    // default-empty result.
                    bool delivered = false;
                    const auto deliver_cell = [&](BatchResult r) {
                        delivered = true;
                        deliver(index, std::move(r));
                    };
                    try {
                    std::exception_ptr dep_error;
                    if (sslot->calError)
                        dep_error = sslot->calError;
                    else if (sslot->memoError)
                        dep_error = sslot->memoError;
                    else if (pslot->error)
                        dep_error = pslot->error;
                    if (dep_error) {
                        deliver_cell(failedCell(kc->name, spec->name,
                                                dep_error));
                        return;
                    }
                    auto pc = pslot->pc;
                    std::string rkey;
                    if (resultStore_) {
                        // Key-only warmth probe: the result key needs
                        // the profile's identity, not the profile — a
                        // warm cell deserializes (and simulates)
                        // nothing.
                        rkey = resultKey(kc->name, pc->key, *spec,
                                         sslot->digest, sweep);
                        if (options_.reuseStoredResults) {
                            if (auto stored =
                                    resultStore_->load(rkey)) {
                                // Names come from the current batch
                                // so a renamed case or spec can never
                                // leak a stale label.
                                stored->kernelName = kc->name;
                                stored->specName = spec->name;
                                deliver_cell(std::move(*stored));
                                pc->discardLaunch();
                                return;
                            }
                        }
                    }
                    auto prof = ensure_profile(pkey, kc, spec, pslot,
                                               prep_node);
                    TaskGraph::NodeId timing_dep = prof.first;
                    std::shared_ptr<TimingSlot> tslot;
                    if (options_.shareTiming) {
                        // Node dedup is scoped per PROFILE NODE
                        // (content key + pkey), not per content key
                        // alone: a content-only key would wire one
                        // timing node to one case's profile slot,
                        // leaking that case's profile failure into a
                        // different same-content case whose own
                        // profile succeeded. The replay itself is
                        // still computed once per content key —
                        // timingCompute()'s memo dedups across the
                        // (rare) twin nodes.
                        const std::string tkey =
                            store::TimingStore::keyFor(
                                pc->key,
                                arch::TimingFingerprint::of(*spec)) +
                            "|node=" + pkey;
                        auto t =
                            ensure_timing(tkey, kc, spec, prof);
                        timing_dep = t.first;
                        tslot = t.second;
                    }
                    auto prof_slot = prof.second;
                    // Predicted analyze cost for the priority ready
                    // orders: the observation side-channel's EWMA
                    // wall time for this exact (profile key, timing
                    // fingerprint), falling back to a launch-size
                    // estimate on a cold store.
                    double analyze_cost = 0.0;
                    if (costed_ready) {
                        double obs_ms = 0.0;
                        if (timingStore_ &&
                            timingStore_->loadObservationMs(
                                pc->key,
                                arch::TimingFingerprint::of(*spec),
                                &obs_ms)) {
                            analyze_cost = obs_ms;
                        } else {
                            sched::CostFeatures feat;
                            feat.warps =
                                static_cast<uint64_t>(
                                    pc->key.cfg.gridDim) *
                                ((static_cast<uint64_t>(
                                      pc->key.cfg.blockDim) +
                                  31) /
                                 32);
                            analyze_cost =
                                sched::CostModel::staticUnits(feat) *
                                sched::CostModel::kDefaultMsPerUnit;
                        }
                    }
                    // The analyze node depends on its own profile
                    // node explicitly as well as the timing node:
                    // belt and braces against any future re-keying
                    // of the timing dedup detaching a cell from the
                    // profile slot it reads.
                    graph.add(
                        "analyze:" + kc->name + "@" + spec->name,
                        [this, &graph, kc, spec, sslot, prof_slot,
                         tslot, pc, &sweep, index, deliver, rkey]() {
                            bool delivered = false;
                            const auto a0 =
                                std::chrono::steady_clock::now();
                            try {
                            BatchResult r = guardedCell(
                                kc->name, spec->name,
                                [&](BatchResult &r) {
                                    if (prof_slot->error)
                                        std::rethrow_exception(
                                            prof_slot->error);
                                    if (tslot && tslot->error)
                                        std::rethrow_exception(
                                            tslot->error);
                                    auto profile = prof_slot->profile;
                                    analyzeInto(
                                        r, *spec, sslot->tables,
                                        sslot->memo, sweep,
                                        options_.engine,
                                        [&](model::AnalysisSession
                                                &session) {
                                            if (tslot)
                                                return session.analyze(
                                                    profile,
                                                    tslot->result);
                                            return session.analyze(
                                                profile);
                                        });
                                });
                            if (resultStore_ && r.ok) {
                                // Writer node: the cell's latency
                                // ends at delivery, not at the disk.
                                auto copy =
                                    std::make_shared<BatchResult>(r);
                                graph.add("write-result:" + kc->name,
                                          [this, rkey, copy]() {
                                              resultStore_->save(
                                                  rkey, *copy);
                                          });
                            }
                            const bool record = r.ok && timingStore_;
                            delivered = true;
                            deliver(index, std::move(r));
                            // Siblings get the profile from the
                            // shared node (or the store); megabytes
                            // of stashed input image buy nothing now.
                            pc->discardLaunch();
                            // Feed the observation side-channel
                            // AFTER delivery (read-modify-write disk
                            // I/O never sits on the cell's latency
                            // path): the next process predicts this
                            // cell's analyze cost from measured wall
                            // time instead of launch size.
                            if (record) {
                                const double analyze_ms =
                                    std::chrono::duration<
                                        double, std::milli>(
                                        std::chrono::steady_clock::
                                            now() -
                                        a0)
                                        .count();
                                timingStore_->recordObservationMs(
                                    pc->key,
                                    arch::TimingFingerprint::of(
                                        *spec),
                                    analyze_ms);
                            }
                            } catch (...) {
                                if (!delivered) {
                                    deliver(
                                        index,
                                        failedCell(
                                            kc->name, spec->name,
                                            std::current_exception()));
                                }
                            }
                        },
                        {prof.first, timing_dep}, analyze_cost);
                    } catch (...) {
                        if (!delivered) {
                            deliver(index,
                                    failedCell(
                                        kc->name, spec->name,
                                        std::current_exception()));
                        }
                    }
                },
                {cal_nodes[si], memo_nodes[si], prep_node});
        }
    }

    graph.run();

    // Safety net: node bodies package their own failures into
    // delivered results, so a failed node here is a scheduler-level
    // surprise — surface it instead of silently returning an empty
    // cell.
    for (TaskGraph::NodeId id : graph.failures()) {
        try {
            std::rethrow_exception(graph.error(id));
        } catch (const std::exception &e) {
            warn("batch task-graph node '%s' failed unexpectedly: %s",
                 graph.name(id).c_str(), e.what());
        } catch (...) {
            warn("batch task-graph node '%s' failed unexpectedly",
                 graph.name(id).c_str());
        }
    }

    // Persist what the batch measured: every synthetic-benchmark
    // result lands in the store so the next process starts warm.
    if (calibrationStore_) {
        std::map<std::string, size_t> distinct;
        for (size_t si = 0; si < specs.size(); ++si)
            distinct.emplace(specKey(specs[si]), si);
        for (const auto &[key, si] : distinct) {
            (void)key;
            if (spec_slots[si]->memo) {
                calibrationStore_->saveBenchResults(
                    specs[si], spec_slots[si]->memo->snapshot());
            }
        }
    }

    stats.firstResultSeconds = shared->firstResultSec;
    stats.lastCalibrationSeconds = shared->lastCalibrationSec;
    stats.totalSeconds = since();

    if (shared->callbackError)
        std::rethrow_exception(shared->callbackError);
    return stats;
}

std::vector<BatchResult>
runSerial(const std::vector<KernelCase> &kernels,
          const std::vector<arch::GpuSpec> &specs,
          const SweepSpec &sweep)
{
    // Share calibration state across the loop exactly like the
    // runner does: one table set and one benchmark memo per distinct
    // fingerprint, so duplicate specs don't recalibrate.
    std::map<std::string, std::pair<TablesPtr, BenchMemoPtr>> shared;
    std::vector<const std::pair<TablesPtr, BenchMemoPtr> *> per_spec;
    per_spec.reserve(specs.size());
    for (const arch::GpuSpec &spec : specs) {
        auto &entry = shared[spec.fingerprint()];
        if (!entry.first) {
            model::AnalysisSession session(spec);
            entry = {session.shareCalibration(),
                     std::make_shared<model::GlobalBenchMemo>()};
        }
        per_spec.push_back(&entry);
    }

    std::vector<BatchResult> results;
    results.reserve(kernels.size() * specs.size());
    for (const KernelCase &kc : kernels) {
        for (size_t si = 0; si < specs.size(); ++si) {
            results.push_back(evaluateOne(kc, specs[si],
                                          per_spec[si]->first,
                                          per_spec[si]->second,
                                          sweep));
        }
    }
    return results;
}

} // namespace driver
} // namespace gpuperf
