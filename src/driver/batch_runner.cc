#include "driver/batch_runner.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <future>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/logging.h"

namespace gpuperf {
namespace driver {

namespace {

using TablesPtr = std::shared_ptr<const model::CalibrationTables>;

using BenchMemoPtr = std::shared_ptr<model::GlobalBenchMemo>;

/**
 * One full evaluation: fresh session + memory image, analyze, sweep.
 * Self-contained so the serial loop and the pool workers share it.
 * @p tables and @p memo carry the per-spec shared calibration state.
 */
BatchResult
evaluateOne(const KernelCase &kernel_case, const arch::GpuSpec &spec,
            TablesPtr tables, BenchMemoPtr memo, const SweepSpec &sweep)
{
    BatchResult r;
    r.kernelName = kernel_case.name;
    r.specName = spec.name;
    try {
        model::AnalysisSession session(spec);
        if (tables)
            session.adoptCalibration(std::move(tables));
        if (memo)
            session.calibrator().shareGlobalMemo(std::move(memo));
        if (!kernel_case.make)
            throw std::runtime_error("kernel case has no factory");
        PreparedLaunch launch = kernel_case.make();
        if (!launch.gmem)
            throw std::runtime_error("kernel case produced no memory");
        r.analysis = session.analyze(launch.kernel, launch.cfg,
                                     *launch.gmem, launch.options);
        if (!sweep.empty()) {
            // analyze() already predicted the unmodified input; the
            // sweep reuses that as every hypothesis's baseline.
            r.whatifs = runSweep(session.model(), r.analysis.input,
                                 sweep, r.analysis.prediction);
        }
        r.ok = true;
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    } catch (...) {
        // Keep the documented contract — one bad case never aborts
        // the batch — even for exotic non-std exceptions.
        r.ok = false;
        r.error = "unknown exception from kernel case";
    }
    return r;
}

/**
 * Short, filesystem-safe cache-file stem for a spec key: a sanitized
 * prefix of the spec name (for humans) plus an FNV-1a hash of the
 * full key (for uniqueness). Keys are hundreds of characters — far
 * past NAME_MAX — so the raw key cannot be the filename. A hash
 * collision is harmless: the fingerprint line stored inside the
 * cache file still validates, so the worst case is a cache miss.
 */
std::string
cacheFileStem(const std::string &spec_name, const std::string &key)
{
    uint64_t hash = 1469598103934665603ull;
    for (char c : key) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));

    std::string out;
    for (char c : spec_name.substr(0, 48)) {
        out.push_back(
            std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    }
    return out + "-" + hex;
}

} // namespace

BatchRunner::BatchRunner() : BatchRunner(Options{}) {}

BatchRunner::BatchRunner(Options options)
    : options_(std::move(options)), pool_(options_.numThreads)
{
}

std::string
BatchRunner::specKey(const arch::GpuSpec &spec)
{
    // GpuSpec::fingerprint() serializes every field, so two specs
    // that differ in anything simulation-relevant never alias.
    return spec.fingerprint();
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::calibrate(const arch::GpuSpec &spec,
                       const std::string &key)
{
    model::AnalysisSession session(spec);
    if (!options_.calibrationCacheDir.empty()) {
        session.calibrator().setCacheFile(
            options_.calibrationCacheDir + "/" +
            cacheFileStem(spec.name, key) + ".cache");
    }
    return session.shareCalibration();
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::calibrationFor(const arch::GpuSpec &spec)
{
    const std::string key = specKey(spec);
    return calibrations_.getOrCompute(
        key, [&]() { return calibrate(spec, key); });
}

std::shared_ptr<model::GlobalBenchMemo>
BatchRunner::benchMemoFor(const std::string &key)
{
    return benchMemos_.getOrCompute(key, []() {
        return std::make_shared<model::GlobalBenchMemo>();
    });
}

void
BatchRunner::adoptCalibration(
    const arch::GpuSpec &spec,
    std::shared_ptr<const model::CalibrationTables> tables)
{
    GPUPERF_ASSERT(tables != nullptr, "cannot adopt null tables");
    calibrations_.put(specKey(spec), std::move(tables));
}

std::vector<BatchResult>
BatchRunner::run(const std::vector<KernelCase> &kernels,
                 const std::vector<arch::GpuSpec> &specs,
                 const SweepSpec &sweep)
{
    // Phase 1: one calibration per distinct spec, each on its own
    // worker. Duplicate keys coalesce inside calibrationFor().
    //
    // Both phases collect every future before rethrowing: the queued
    // tasks capture references to the caller's arguments, so
    // unwinding past a still-running task would leave workers with
    // dangling references.
    std::vector<TablesPtr> tables(specs.size());
    {
        std::vector<std::future<TablesPtr>> futures;
        futures.reserve(specs.size());
        for (const arch::GpuSpec &spec : specs) {
            futures.push_back(pool_.submit(
                [this, &spec]() { return calibrationFor(spec); }));
        }
        std::exception_ptr error;
        for (size_t i = 0; i < futures.size(); ++i) {
            try {
                tables[i] = futures[i].get();
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
    }

    // One shared synthetic-benchmark memo per spec: identical launch
    // shapes are simulated once per batch, not once per evaluation.
    std::vector<BenchMemoPtr> memos(specs.size());
    for (size_t si = 0; si < specs.size(); ++si)
        memos[si] = benchMemoFor(specKey(specs[si]));

    // Phase 2: all N x M evaluations, kernel-major. Futures keep the
    // result order deterministic however the pool schedules them.
    std::vector<std::future<BatchResult>> futures;
    futures.reserve(kernels.size() * specs.size());
    for (const KernelCase &kc : kernels) {
        for (size_t si = 0; si < specs.size(); ++si) {
            const arch::GpuSpec &spec = specs[si];
            TablesPtr t = tables[si];
            BenchMemoPtr m = memos[si];
            futures.push_back(
                pool_.submit([&kc, &spec, t, m, &sweep]() {
                    return evaluateOne(kc, spec, t, m, sweep);
                }));
        }
    }

    std::vector<BatchResult> results;
    results.reserve(futures.size());
    std::exception_ptr error;
    for (auto &f : futures) {
        try {
            results.push_back(f.get());
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
    }
    if (error)
        std::rethrow_exception(error);
    return results;
}

std::vector<BatchResult>
runSerial(const std::vector<KernelCase> &kernels,
          const std::vector<arch::GpuSpec> &specs,
          const SweepSpec &sweep)
{
    // Share calibration state across the loop exactly like the
    // runner does: one table set and one benchmark memo per distinct
    // fingerprint, so duplicate specs don't recalibrate.
    std::map<std::string, std::pair<TablesPtr, BenchMemoPtr>> shared;
    std::vector<const std::pair<TablesPtr, BenchMemoPtr> *> per_spec;
    per_spec.reserve(specs.size());
    for (const arch::GpuSpec &spec : specs) {
        auto &entry = shared[spec.fingerprint()];
        if (!entry.first) {
            model::AnalysisSession session(spec);
            entry = {session.shareCalibration(),
                     std::make_shared<model::GlobalBenchMemo>()};
        }
        per_spec.push_back(&entry);
    }

    std::vector<BatchResult> results;
    results.reserve(kernels.size() * specs.size());
    for (const KernelCase &kc : kernels) {
        for (size_t si = 0; si < specs.size(); ++si) {
            results.push_back(evaluateOne(kc, specs[si],
                                          per_spec[si]->first,
                                          per_spec[si]->second,
                                          sweep));
        }
    }
    return results;
}

} // namespace driver
} // namespace gpuperf
