#include "driver/batch_runner.h"

#include <cstdio>
#include <future>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/logging.h"
#include "store/calibration_store.h"
#include "store/codecs.h"
#include "store/profile_store.h"
#include "store/result_store.h"
#include "store/serializer.h"

namespace gpuperf {
namespace driver {

namespace {

using TablesPtr = std::shared_ptr<const model::CalibrationTables>;

using BenchMemoPtr = std::shared_ptr<model::GlobalBenchMemo>;

/**
 * Error packaging shared by every evaluation path: run @p body,
 * converting any exception into a failed-but-present result so one
 * bad case never aborts the batch (even for exotic non-std
 * exceptions).
 */
template <typename Body>
BatchResult
guardedCell(const std::string &kernel_name, const std::string &spec_name,
            Body body)
{
    BatchResult r;
    r.kernelName = kernel_name;
    r.specName = spec_name;
    try {
        body(r);
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    } catch (...) {
        r.ok = false;
        r.error = "unknown exception from kernel case";
    }
    return r;
}

/**
 * Shared analysis core of one cell: fresh session adopting the
 * per-spec calibration state, one analysis from @p produce, then the
 * sweep. Both the per-cell and the profile-sharing pipelines end
 * here, which is what keeps them bit-identical by construction.
 */
void
analyzeInto(
    BatchResult &r, const arch::GpuSpec &spec, TablesPtr tables,
    BenchMemoPtr memo, const SweepSpec &sweep,
    const std::function<model::Analysis(model::AnalysisSession &)>
        &produce)
{
    model::AnalysisSession session(spec);
    if (tables)
        session.adoptCalibration(std::move(tables));
    if (memo)
        session.calibrator().shareGlobalMemo(std::move(memo));
    r.analysis = produce(session);
    if (!sweep.empty()) {
        // The analysis already predicted the unmodified input; the
        // sweep reuses that as every hypothesis's baseline.
        r.whatifs = runSweep(session.model(), r.analysis.input, sweep,
                             r.analysis.prediction);
    }
    r.ok = true;
}

/**
 * One full per-cell evaluation: fresh memory image, analyze, sweep.
 * Self-contained so the serial loop and the pool workers share it.
 * @p tables and @p memo carry the per-spec shared calibration state.
 */
BatchResult
evaluateOne(const KernelCase &kernel_case, const arch::GpuSpec &spec,
            TablesPtr tables, BenchMemoPtr memo, const SweepSpec &sweep)
{
    return guardedCell(kernel_case.name, spec.name, [&](BatchResult &r) {
        if (!kernel_case.make)
            throw std::runtime_error("kernel case has no factory");
        PreparedLaunch launch = kernel_case.make();
        if (!launch.gmem)
            throw std::runtime_error("kernel case produced no memory");
        analyzeInto(r, spec, std::move(tables), std::move(memo), sweep,
                    [&](model::AnalysisSession &session) {
                        return session.analyze(launch.kernel, launch.cfg,
                                               *launch.gmem,
                                               launch.options);
                    });
    });
}

/**
 * Content identity of one finished cell for the persistent result
 * store: the case name, the profile's full key (kernel hash, input
 * hash, launch, options, funcsim fingerprint), the target spec's
 * full fingerprint, the digest of the calibration tables the
 * prediction used (adopted toy tables must never alias a real
 * calibration), and the sweep grid. Any change to any of them misses
 * and the cell recomputes.
 */
std::string
resultKey(const std::string &case_name,
          const funcsim::ProfileKey &profile_key,
          const arch::GpuSpec &spec, uint64_t tables_digest,
          const SweepSpec &sweep)
{
    char cal[32];
    std::snprintf(cal, sizeof(cal), "%016llx",
                  static_cast<unsigned long long>(tables_digest));
    return std::to_string(case_name.size()) + ":" + case_name + "|" +
           profile_key.str() + "|spec=" + spec.fingerprint() +
           "|cal=" + cal + "|sweep=" + sweep.fingerprint();
}

} // namespace

BatchRunner::BatchRunner() : BatchRunner(Options{}) {}

BatchRunner::BatchRunner(Options options)
    : options_(std::move(options)), pool_(options_.numThreads)
{
    if (!options_.storeDir.empty()) {
        profileStore_ = std::make_unique<store::ProfileStore>(
            options_.storeDir + "/profiles");
        calibrationStore_ = std::make_unique<store::CalibrationStore>(
            options_.storeDir + "/calibrations");
        resultStore_ = std::make_unique<store::ResultStore>(
            options_.storeDir + "/results");
    }
}

BatchRunner::~BatchRunner() = default;

std::string
BatchRunner::specKey(const arch::GpuSpec &spec)
{
    // GpuSpec::fingerprint() serializes every field, so two specs
    // that differ in anything simulation-relevant never alias.
    return spec.fingerprint();
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::calibrate(const arch::GpuSpec &spec,
                       const std::string &key)
{
    if (calibrationStore_) {
        if (auto tables = calibrationStore_->load(spec))
            return tables;
    }
    model::AnalysisSession session(spec);
    if (!options_.calibrationCacheDir.empty()) {
        session.calibrator().setCacheFile(
            options_.calibrationCacheDir + "/" +
            store::fileStem(spec.name, key) + ".cache");
    }
    auto tables = session.shareCalibration();
    if (calibrationStore_)
        calibrationStore_->save(spec, *tables);
    return tables;
}

std::shared_ptr<const funcsim::KernelProfile>
BatchRunner::profileFor(const KernelCase &kc, const arch::GpuSpec &spec)
{
    if (!kc.make)
        throw std::runtime_error("kernel case has no factory");
    PreparedLaunch launch = kc.make();
    if (!launch.gmem)
        throw std::runtime_error("kernel case produced no memory");
    funcsim::RunOptions options = launch.options;
    options.collectTrace = true;
    // One key computation (it digests the memory image) serves both
    // the store lookup and, on a miss, the built profile.
    const funcsim::ProfileKey key = funcsim::makeProfileKey(
        launch.kernel, launch.cfg, options, spec, *launch.gmem);
    if (profileStore_) {
        if (auto profile = profileStore_->load(key))
            return profile;
    }
    funcsim::FunctionalSimulator sim(spec);
    auto profile = std::make_shared<const funcsim::KernelProfile>(
        funcsim::profileKernel(sim, launch.kernel, launch.cfg,
                               *launch.gmem, options, key));
    if (profileStore_)
        profileStore_->save(*profile);
    return profile;
}

BatchResult
BatchRunner::evaluateCell(
    const KernelCase &kc, const arch::GpuSpec &spec, TablesPtr tables,
    BenchMemoPtr memo, const SweepSpec &sweep, uint64_t tables_digest,
    const std::function<std::shared_ptr<const funcsim::KernelProfile>()>
        &profile_for)
{
    if (!options_.shareProfiles)
        return evaluateOne(kc, spec, std::move(tables),
                           std::move(memo), sweep);

    return guardedCell(kc.name, spec.name, [&](BatchResult &r) {
        auto profile = profile_for();
        std::string rkey;
        if (resultStore_) {
            rkey = resultKey(kc.name, profile->key, spec,
                             tables_digest, sweep);
        }
        if (resultStore_ && options_.reuseStoredResults) {
            if (auto stored = resultStore_->load(rkey)) {
                // The stored payload is bit-identical to a recompute;
                // names come from the current batch so a renamed case
                // or spec can never leak a stale label (both are part
                // of the key, so this is belt and braces).
                stored->kernelName = kc.name;
                stored->specName = spec.name;
                r = std::move(*stored);
                return;
            }
        }
        analyzeInto(r, spec, std::move(tables), std::move(memo), sweep,
                    [&](model::AnalysisSession &session) {
                        return session.analyze(profile);
                    });
        // Persist regardless of reuseStoredResults: that switch gates
        // serving, not recording — a cold run must warm the store.
        if (resultStore_)
            resultStore_->save(rkey, r);
    });
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::calibrationFor(const arch::GpuSpec &spec)
{
    const std::string key = specKey(spec);
    return calibrations_.getOrCompute(
        key, [&]() { return calibrate(spec, key); });
}

std::shared_ptr<model::GlobalBenchMemo>
BatchRunner::benchMemoFor(const arch::GpuSpec &spec)
{
    return benchMemos_.getOrCompute(specKey(spec), [&]() {
        auto memo = std::make_shared<model::GlobalBenchMemo>();
        if (calibrationStore_) {
            for (auto &entry :
                 calibrationStore_->loadBenchResults(spec)) {
                memo->put(entry.first, entry.second);
            }
        }
        return memo;
    });
}

void
BatchRunner::adoptCalibration(
    const arch::GpuSpec &spec,
    std::shared_ptr<const model::CalibrationTables> tables)
{
    GPUPERF_ASSERT(tables != nullptr, "cannot adopt null tables");
    calibrations_.put(specKey(spec), std::move(tables));
}

std::vector<BatchResult>
BatchRunner::run(const std::vector<KernelCase> &kernels,
                 const std::vector<arch::GpuSpec> &specs,
                 const SweepSpec &sweep)
{
    // Phase 1: one calibration per distinct spec, each on its own
    // worker. Duplicate keys coalesce inside calibrationFor().
    //
    // Both phases collect every future before rethrowing: the queued
    // tasks capture references to the caller's arguments, so
    // unwinding past a still-running task would leave workers with
    // dangling references.
    std::vector<TablesPtr> tables(specs.size());
    {
        std::vector<std::future<TablesPtr>> futures;
        futures.reserve(specs.size());
        for (const arch::GpuSpec &spec : specs) {
            futures.push_back(pool_.submit(
                [this, &spec]() { return calibrationFor(spec); }));
        }
        std::exception_ptr error;
        for (size_t i = 0; i < futures.size(); ++i) {
            try {
                tables[i] = futures[i].get();
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
    }

    // One shared synthetic-benchmark memo per spec: identical launch
    // shapes are simulated once per batch, not once per evaluation
    // (and, with a store, once per store lifetime).
    std::vector<BenchMemoPtr> memos(specs.size());
    for (size_t si = 0; si < specs.size(); ++si)
        memos[si] = benchMemoFor(specs[si]);

    // Result-store keys include which calibration produced the
    // prediction (adopted toy tables must never alias a real
    // calibration); one digest per spec, not per cell.
    std::vector<uint64_t> digests(specs.size(), 0);
    if (resultStore_) {
        for (size_t si = 0; si < specs.size(); ++si) {
            if (tables[si])
                digests[si] = store::tablesDigest(*tables[si]);
        }
    }

    // Phase 2: all N x M evaluations, kernel-major. Futures keep the
    // result order deterministic however the pool schedules them.
    // Cells of one kernel share its profile through a run-local
    // compute-once map keyed by (case position, funcsim fingerprint):
    // the first cell to need it computes (or loads) it, concurrent
    // cells wait on that result, cells of other kernels proceed
    // freely. The map is scoped to this run() on purpose — a later
    // run() with a different case list must never alias positions
    // (the persistent store still deduplicates across runs, by
    // content).
    OnceMap<std::string, std::shared_ptr<const funcsim::KernelProfile>>
        run_profiles;
    std::vector<std::future<BatchResult>> futures;
    futures.reserve(kernels.size() * specs.size());
    for (size_t ki = 0; ki < kernels.size(); ++ki) {
        const KernelCase &kc = kernels[ki];
        for (size_t si = 0; si < specs.size(); ++si) {
            const arch::GpuSpec &spec = specs[si];
            TablesPtr t = tables[si];
            BenchMemoPtr m = memos[si];
            const uint64_t digest = digests[si];
            futures.push_back(pool_.submit(
                [this, ki, &kc, &spec, t, m, &sweep, digest,
                 &run_profiles]() {
                    auto profile_for = [this, ki, &kc, &spec,
                                        &run_profiles]() {
                        const std::string key =
                            std::to_string(ki) + "#" +
                            arch::FuncsimFingerprint::of(spec).key();
                        return run_profiles.getOrCompute(key, [&]() {
                            return profileFor(kc, spec);
                        });
                    };
                    return evaluateCell(kc, spec, t, m, sweep, digest,
                                        profile_for);
                }));
        }
    }

    std::vector<BatchResult> results;
    results.reserve(futures.size());
    std::exception_ptr error;
    for (auto &f : futures) {
        try {
            results.push_back(f.get());
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
    }
    if (error)
        std::rethrow_exception(error);

    // Persist what the batch measured: every synthetic-benchmark
    // result lands in the store so the next process starts warm.
    if (calibrationStore_) {
        std::map<std::string, size_t> distinct;
        for (size_t si = 0; si < specs.size(); ++si)
            distinct.emplace(specKey(specs[si]), si);
        for (const auto &[key, si] : distinct) {
            (void)key;
            calibrationStore_->saveBenchResults(specs[si],
                                                memos[si]->snapshot());
        }
    }
    return results;
}

std::vector<BatchResult>
runSerial(const std::vector<KernelCase> &kernels,
          const std::vector<arch::GpuSpec> &specs,
          const SweepSpec &sweep)
{
    // Share calibration state across the loop exactly like the
    // runner does: one table set and one benchmark memo per distinct
    // fingerprint, so duplicate specs don't recalibrate.
    std::map<std::string, std::pair<TablesPtr, BenchMemoPtr>> shared;
    std::vector<const std::pair<TablesPtr, BenchMemoPtr> *> per_spec;
    per_spec.reserve(specs.size());
    for (const arch::GpuSpec &spec : specs) {
        auto &entry = shared[spec.fingerprint()];
        if (!entry.first) {
            model::AnalysisSession session(spec);
            entry = {session.shareCalibration(),
                     std::make_shared<model::GlobalBenchMemo>()};
        }
        per_spec.push_back(&entry);
    }

    std::vector<BatchResult> results;
    results.reserve(kernels.size() * specs.size());
    for (const KernelCase &kc : kernels) {
        for (size_t si = 0; si < specs.size(); ++si) {
            results.push_back(evaluateOne(kc, specs[si],
                                          per_spec[si]->first,
                                          per_spec[si]->second,
                                          sweep));
        }
    }
    return results;
}

} // namespace driver
} // namespace gpuperf
