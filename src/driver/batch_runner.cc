#include "driver/batch_runner.h"

#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/logging.h"
#include "store/calibration_store.h"
#include "store/codecs.h"
#include "store/profile_store.h"
#include "store/result_store.h"
#include "store/serializer.h"
#include "store/timing_store.h"

namespace gpuperf {
namespace driver {

namespace {

using TablesPtr = std::shared_ptr<const model::CalibrationTables>;

using BenchMemoPtr = std::shared_ptr<model::GlobalBenchMemo>;

/**
 * Error packaging shared by every evaluation path: run @p body,
 * converting any exception into a failed-but-present result so one
 * bad case never aborts the batch (even for exotic non-std
 * exceptions).
 */
template <typename Body>
BatchResult
guardedCell(const std::string &kernel_name, const std::string &spec_name,
            Body body)
{
    BatchResult r;
    r.kernelName = kernel_name;
    r.specName = spec_name;
    try {
        body(r);
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    } catch (...) {
        r.ok = false;
        r.error = "unknown exception from kernel case";
    }
    return r;
}

/**
 * Shared analysis core of one cell: fresh session adopting the
 * per-spec calibration state, one analysis from @p produce, then the
 * sweep. Both the per-cell and the profile-sharing pipelines end
 * here, which is what keeps them bit-identical by construction.
 */
void
analyzeInto(
    BatchResult &r, const arch::GpuSpec &spec, TablesPtr tables,
    BenchMemoPtr memo, const SweepSpec &sweep,
    const std::function<model::Analysis(model::AnalysisSession &)>
        &produce)
{
    model::AnalysisSession session(spec);
    if (tables)
        session.adoptCalibration(std::move(tables));
    if (memo)
        session.calibrator().shareGlobalMemo(std::move(memo));
    r.analysis = produce(session);
    if (!sweep.empty()) {
        // The analysis already predicted the unmodified input; the
        // sweep reuses that as every hypothesis's baseline.
        r.whatifs = runSweep(session.model(), r.analysis.input, sweep,
                             r.analysis.prediction);
    }
    r.ok = true;
}

/**
 * One full per-cell evaluation: fresh memory image, analyze, sweep.
 * Self-contained so the serial loop and the pool workers share it.
 * @p tables and @p memo carry the per-spec shared calibration state.
 */
BatchResult
evaluateOne(const KernelCase &kernel_case, const arch::GpuSpec &spec,
            TablesPtr tables, BenchMemoPtr memo, const SweepSpec &sweep)
{
    return guardedCell(kernel_case.name, spec.name, [&](BatchResult &r) {
        if (!kernel_case.make)
            throw std::runtime_error("kernel case has no factory");
        PreparedLaunch launch = kernel_case.make();
        if (!launch.gmem)
            throw std::runtime_error("kernel case produced no memory");
        analyzeInto(r, spec, std::move(tables), std::move(memo), sweep,
                    [&](model::AnalysisSession &session) {
                        return session.analyze(launch.kernel, launch.cfg,
                                               *launch.gmem,
                                               launch.options);
                    });
    });
}

/** Run @p kc's factory, validating the case and its output. */
PreparedLaunch
makeLaunch(const KernelCase &kc)
{
    if (!kc.make)
        throw std::runtime_error("kernel case has no factory");
    PreparedLaunch launch = kc.make();
    if (!launch.gmem)
        throw std::runtime_error("kernel case produced no memory");
    return launch;
}

/** The options a profile run uses: trace collection forced on. */
funcsim::RunOptions
profileOptions(const PreparedLaunch &launch)
{
    funcsim::RunOptions options = launch.options;
    options.collectTrace = true;
    return options;
}

/** The profile key of @p launch (pristine memory image) on @p spec. */
funcsim::ProfileKey
profileKeyOf(const PreparedLaunch &launch, const arch::GpuSpec &spec)
{
    return funcsim::makeProfileKey(launch.kernel, launch.cfg,
                                   profileOptions(launch), spec,
                                   *launch.gmem);
}

/** Functionally simulate @p launch into a profile under @p key. */
std::shared_ptr<const funcsim::KernelProfile>
simulateProfile(const arch::GpuSpec &spec, PreparedLaunch &launch,
                const funcsim::ProfileKey &key)
{
    funcsim::FunctionalSimulator sim(spec);
    return std::make_shared<const funcsim::KernelProfile>(
        funcsim::profileKernel(sim, launch.kernel, launch.cfg,
                               *launch.gmem, profileOptions(launch),
                               key));
}

/**
 * Guard the keyed-profile paths against a factory that violates the
 * documented repeatability contract: a launch rebuilt after the key
 * was derived must still digest to that key, or the simulation would
 * be persisted under another image's identity — poisoning the store
 * for every later run. The image hash is noise next to the
 * functional simulation that follows.
 */
void
requireRepeatableFactory(const KernelCase &kc,
                         const PreparedLaunch &launch,
                         const arch::GpuSpec &spec,
                         const funcsim::ProfileKey &key)
{
    if (profileKeyOf(launch, spec) != key) {
        throw std::runtime_error(
            "kernel case '" + kc.name +
            "' is not repeatable: a rebuilt launch no longer matches "
            "the profile key derived from its first factory run");
    }
}

/**
 * One kernel case's factory output together with its profile key,
 * shared run-locally per (case position, funcsim fingerprint): the
 * factory runs ONCE whether a cell needs only the key (warm
 * result-store path) or the key and then, on a profile-store miss,
 * the launch itself — the profile build takes the stashed launch
 * instead of re-running the factory.
 */
struct PreparedCase
{
    funcsim::ProfileKey key;
    std::mutex mutex;
    std::unique_ptr<PreparedLaunch> launch;  ///< null once consumed

    /** Drop the stashed input image (idempotent). */
    void discardLaunch()
    {
        std::lock_guard<std::mutex> lock(mutex);
        launch.reset();
    }
};

/**
 * Content identity of one finished cell for the persistent result
 * store: the case name, the profile's full key (kernel hash, input
 * hash, launch, options, funcsim fingerprint), the target spec's
 * full fingerprint, the digest of the calibration tables the
 * prediction used (adopted toy tables must never alias a real
 * calibration), and the sweep grid. Any change to any of them misses
 * and the cell recomputes.
 */
std::string
resultKey(const std::string &case_name,
          const funcsim::ProfileKey &profile_key,
          const arch::GpuSpec &spec, uint64_t tables_digest,
          const SweepSpec &sweep)
{
    char cal[32];
    std::snprintf(cal, sizeof(cal), "%016llx",
                  static_cast<unsigned long long>(tables_digest));
    return std::to_string(case_name.size()) + ":" + case_name + "|" +
           profile_key.str() + "|spec=" + spec.fingerprint() +
           "|cal=" + cal + "|sweep=" + sweep.fingerprint();
}

} // namespace

BatchRunner::BatchRunner() : BatchRunner(Options{}) {}

BatchRunner::BatchRunner(Options options)
    : options_(std::move(options)), pool_(options_.numThreads)
{
    if (!options_.storeDir.empty()) {
        profileStore_ = std::make_unique<store::ProfileStore>(
            options_.storeDir + "/profiles");
        calibrationStore_ = std::make_unique<store::CalibrationStore>(
            options_.storeDir + "/calibrations");
        resultStore_ = std::make_unique<store::ResultStore>(
            options_.storeDir + "/results");
        timingStore_ = std::make_unique<store::TimingStore>(
            options_.storeDir + "/timing");
    }
}

BatchRunner::~BatchRunner() = default;

std::string
BatchRunner::specKey(const arch::GpuSpec &spec)
{
    // GpuSpec::fingerprint() serializes every field, so two specs
    // that differ in anything simulation-relevant never alias.
    return spec.fingerprint();
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::calibrate(const arch::GpuSpec &spec,
                       const std::string &key)
{
    if (calibrationStore_) {
        if (auto tables = calibrationStore_->load(spec))
            return tables;
    }
    model::AnalysisSession session(spec);
    if (!options_.calibrationCacheDir.empty()) {
        session.calibrator().setCacheFile(
            options_.calibrationCacheDir + "/" +
            store::fileStem(spec.name, key) + ".cache");
    }
    auto tables = session.shareCalibration();
    if (calibrationStore_)
        calibrationStore_->save(spec, *tables);
    return tables;
}

funcsim::ProfileKey
BatchRunner::profileKeyFor(const KernelCase &kc,
                           const arch::GpuSpec &spec)
{
    const PreparedLaunch launch = makeLaunch(kc);
    return profileKeyOf(launch, spec);
}

std::shared_ptr<const funcsim::KernelProfile>
BatchRunner::profileFor(const KernelCase &kc, const arch::GpuSpec &spec)
{
    PreparedLaunch launch = makeLaunch(kc);
    // One key computation (it digests the memory image) serves both
    // the store lookup and, on a miss, the built profile.
    const funcsim::ProfileKey key = profileKeyOf(launch, spec);
    if (profileStore_) {
        if (auto profile = profileStore_->load(key))
            return profile;
    }
    auto profile = simulateProfile(spec, launch, key);
    if (profileStore_)
        profileStore_->save(*profile);
    return profile;
}

std::shared_ptr<const funcsim::KernelProfile>
BatchRunner::profileFor(const KernelCase &kc, const arch::GpuSpec &spec,
                        const funcsim::ProfileKey &key)
{
    // Known key: a store hit needs no factory run at all — the entry
    // self-validates against the key, which profileKeyFor() already
    // derived from the same (repeatable) factory.
    if (profileStore_) {
        if (auto profile = profileStore_->load(key))
            return profile;
    }
    PreparedLaunch launch = makeLaunch(kc);
    requireRepeatableFactory(kc, launch, spec, key);
    auto profile = simulateProfile(spec, launch, key);
    if (profileStore_)
        profileStore_->save(*profile);
    return profile;
}

std::shared_ptr<const timing::TimingResult>
BatchRunner::timingFor(
    const std::shared_ptr<const funcsim::KernelProfile> &profile,
    const arch::GpuSpec &spec)
{
    GPUPERF_ASSERT(profile != nullptr, "timing of a null profile");
    const arch::TimingFingerprint fp = arch::TimingFingerprint::of(spec);
    const std::string key = store::TimingStore::keyFor(profile->key, fp);
    return timings_.getOrCompute(
        key, [&]() -> std::shared_ptr<const timing::TimingResult> {
            if (timingStore_) {
                if (auto stored = timingStore_->load(profile->key, fp))
                    return stored;
            }
            // A standalone simulator for the spec replays exactly what
            // a session's device would (both are deterministic
            // functions of the trace and the timing fingerprint).
            timing::TimingSimulator sim(spec);
            auto result = std::make_shared<const timing::TimingResult>(
                sim.run(*profile));
            if (timingStore_)
                timingStore_->save(profile->key, fp, *result);
            return result;
        });
}

BatchResult
BatchRunner::evaluateCell(
    const KernelCase &kc, const arch::GpuSpec &spec, TablesPtr tables,
    BenchMemoPtr memo, const SweepSpec &sweep, uint64_t tables_digest,
    const std::function<funcsim::ProfileKey()> &key_for,
    const std::function<std::shared_ptr<const funcsim::KernelProfile>()>
        &profile_for)
{
    if (!options_.shareProfiles)
        return evaluateOne(kc, spec, std::move(tables),
                           std::move(memo), sweep);

    return guardedCell(kc.name, spec.name, [&](BatchResult &r) {
        std::string rkey;
        if (resultStore_) {
            // Key-only path: the result key needs the profile's
            // identity, not the profile — a warm result cell never
            // deserializes (or simulates) the profile at all.
            rkey = resultKey(kc.name, key_for(), spec, tables_digest,
                             sweep);
            if (options_.reuseStoredResults) {
                if (auto stored = resultStore_->load(rkey)) {
                    // The stored payload is bit-identical to a
                    // recompute; names come from the current batch so
                    // a renamed case or spec can never leak a stale
                    // label (both are part of the key, so this is
                    // belt and braces).
                    stored->kernelName = kc.name;
                    stored->specName = spec.name;
                    r = std::move(*stored);
                    return;
                }
            }
        }
        auto profile = profile_for();
        analyzeInto(r, spec, std::move(tables), std::move(memo), sweep,
                    [&](model::AnalysisSession &session) {
                        if (options_.shareTiming)
                            return session.analyze(
                                profile, timingFor(profile, spec));
                        return session.analyze(profile);
                    });
        // Persist regardless of reuseStoredResults: that switch gates
        // serving, not recording — a cold run must warm the store.
        if (resultStore_)
            resultStore_->save(rkey, r);
    });
}

std::shared_ptr<const model::CalibrationTables>
BatchRunner::calibrationFor(const arch::GpuSpec &spec)
{
    const std::string key = specKey(spec);
    return calibrations_.getOrCompute(
        key, [&]() { return calibrate(spec, key); });
}

std::shared_ptr<model::GlobalBenchMemo>
BatchRunner::benchMemoFor(const arch::GpuSpec &spec)
{
    return benchMemos_.getOrCompute(specKey(spec), [&]() {
        auto memo = std::make_shared<model::GlobalBenchMemo>();
        if (calibrationStore_) {
            for (auto &entry :
                 calibrationStore_->loadBenchResults(spec)) {
                memo->put(entry.first, entry.second);
            }
        }
        return memo;
    });
}

void
BatchRunner::adoptCalibration(
    const arch::GpuSpec &spec,
    std::shared_ptr<const model::CalibrationTables> tables)
{
    GPUPERF_ASSERT(tables != nullptr, "cannot adopt null tables");
    calibrations_.put(specKey(spec), std::move(tables));
}

std::vector<BatchResult>
BatchRunner::run(const std::vector<KernelCase> &kernels,
                 const std::vector<arch::GpuSpec> &specs,
                 const SweepSpec &sweep)
{
    // Phase 1: one calibration per distinct spec, each on its own
    // worker. Duplicate keys coalesce inside calibrationFor().
    //
    // Both phases collect every future before rethrowing: the queued
    // tasks capture references to the caller's arguments, so
    // unwinding past a still-running task would leave workers with
    // dangling references.
    std::vector<TablesPtr> tables(specs.size());
    {
        std::vector<std::future<TablesPtr>> futures;
        futures.reserve(specs.size());
        for (const arch::GpuSpec &spec : specs) {
            futures.push_back(pool_.submit(
                [this, &spec]() { return calibrationFor(spec); }));
        }
        std::exception_ptr error;
        for (size_t i = 0; i < futures.size(); ++i) {
            try {
                tables[i] = futures[i].get();
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
    }

    // One shared synthetic-benchmark memo per spec: identical launch
    // shapes are simulated once per batch, not once per evaluation
    // (and, with a store, once per store lifetime).
    std::vector<BenchMemoPtr> memos(specs.size());
    for (size_t si = 0; si < specs.size(); ++si)
        memos[si] = benchMemoFor(specs[si]);

    // Result-store keys include which calibration produced the
    // prediction (adopted toy tables must never alias a real
    // calibration); one digest per spec, not per cell.
    std::vector<uint64_t> digests(specs.size(), 0);
    if (resultStore_) {
        for (size_t si = 0; si < specs.size(); ++si) {
            if (tables[si])
                digests[si] = store::tablesDigest(*tables[si]);
        }
    }

    // Phase 2: all N x M evaluations, kernel-major. Futures keep the
    // result order deterministic however the pool schedules them.
    // Cells of one kernel share its profile through a run-local
    // compute-once map keyed by (case position, funcsim fingerprint):
    // the first cell to need it computes (or loads) it, concurrent
    // cells wait on that result, cells of other kernels proceed
    // freely. The map is scoped to this run() on purpose — a later
    // run() with a different case list must never alias positions
    // (the persistent store still deduplicates across runs, by
    // content).
    OnceMap<std::string, std::shared_ptr<const funcsim::KernelProfile>>
        run_profiles;
    // The factory-output companion of run_profiles: one factory run
    // per (case position, funcsim fingerprint) yields the profile key
    // — all a warm result-store cell needs — AND stashes the launch,
    // which the profile build consumes on a store miss instead of
    // re-running the factory.
    OnceMap<std::string, std::shared_ptr<PreparedCase>> run_prepared;
    std::vector<std::future<BatchResult>> futures;
    futures.reserve(kernels.size() * specs.size());
    for (size_t ki = 0; ki < kernels.size(); ++ki) {
        const KernelCase &kc = kernels[ki];
        for (size_t si = 0; si < specs.size(); ++si) {
            const arch::GpuSpec &spec = specs[si];
            TablesPtr t = tables[si];
            BenchMemoPtr m = memos[si];
            const uint64_t digest = digests[si];
            futures.push_back(pool_.submit(
                [this, ki, &kc, &spec, t, m, &sweep, digest,
                 &run_profiles, &run_prepared]() {
                    const std::string key =
                        std::to_string(ki) + "#" +
                        arch::FuncsimFingerprint::of(spec).key();
                    auto prepared_for = [this, &kc, &spec,
                                         &run_prepared, &key]() {
                        return run_prepared.getOrCompute(key, [&]() {
                            auto pc = std::make_shared<PreparedCase>();
                            pc->launch =
                                std::make_unique<PreparedLaunch>(
                                    makeLaunch(kc));
                            pc->key = profileKeyOf(*pc->launch, spec);
                            return pc;
                        });
                    };
                    auto key_for = [&prepared_for]() {
                        return prepared_for()->key;
                    };
                    auto profile_for = [this, &kc, &spec,
                                        &run_profiles, &prepared_for,
                                        &key]() {
                        return run_profiles.getOrCompute(key, [&]() {
                            // Storeless runs take the one-pass path.
                            if (!profileStore_)
                                return profileFor(kc, spec);
                            auto pc = prepared_for();
                            if (auto profile =
                                    profileStore_->load(pc->key))
                                return profile;
                            // Miss: simulate on the stashed launch
                            // (rebuilt only if a completed sibling
                            // cell already discarded it).
                            std::unique_ptr<PreparedLaunch> launch;
                            {
                                std::lock_guard<std::mutex> lock(
                                    pc->mutex);
                                launch = std::move(pc->launch);
                            }
                            if (!launch) {
                                launch = std::make_unique<
                                    PreparedLaunch>(makeLaunch(kc));
                                requireRepeatableFactory(
                                    kc, *launch, spec, pc->key);
                            }
                            auto profile = simulateProfile(
                                spec, *launch, pc->key);
                            profileStore_->save(*profile);
                            return profile;
                        });
                    };
                    BatchResult cell =
                        evaluateCell(kc, spec, t, m, sweep, digest,
                                     key_for, profile_for);
                    // This cell is done with the stashed input image:
                    // siblings get the profile from run_profiles (or
                    // the store), so holding megabytes of memory
                    // image for the rest of the batch buys nothing.
                    if (auto pc = run_prepared.peek(key))
                        (*pc)->discardLaunch();
                    return cell;
                }));
        }
    }

    std::vector<BatchResult> results;
    results.reserve(futures.size());
    std::exception_ptr error;
    for (auto &f : futures) {
        try {
            results.push_back(f.get());
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
    }
    if (error)
        std::rethrow_exception(error);

    // Persist what the batch measured: every synthetic-benchmark
    // result lands in the store so the next process starts warm.
    if (calibrationStore_) {
        std::map<std::string, size_t> distinct;
        for (size_t si = 0; si < specs.size(); ++si)
            distinct.emplace(specKey(specs[si]), si);
        for (const auto &[key, si] : distinct) {
            (void)key;
            calibrationStore_->saveBenchResults(specs[si],
                                                memos[si]->snapshot());
        }
    }
    return results;
}

std::vector<BatchResult>
runSerial(const std::vector<KernelCase> &kernels,
          const std::vector<arch::GpuSpec> &specs,
          const SweepSpec &sweep)
{
    // Share calibration state across the loop exactly like the
    // runner does: one table set and one benchmark memo per distinct
    // fingerprint, so duplicate specs don't recalibrate.
    std::map<std::string, std::pair<TablesPtr, BenchMemoPtr>> shared;
    std::vector<const std::pair<TablesPtr, BenchMemoPtr> *> per_spec;
    per_spec.reserve(specs.size());
    for (const arch::GpuSpec &spec : specs) {
        auto &entry = shared[spec.fingerprint()];
        if (!entry.first) {
            model::AnalysisSession session(spec);
            entry = {session.shareCalibration(),
                     std::make_shared<model::GlobalBenchMemo>()};
        }
        per_spec.push_back(&entry);
    }

    std::vector<BatchResult> results;
    results.reserve(kernels.size() * specs.size());
    for (const KernelCase &kc : kernels) {
        for (size_t si = 0; si < specs.size(); ++si) {
            results.push_back(evaluateOne(kc, specs[si],
                                          per_spec[si]->first,
                                          per_spec[si]->second,
                                          sweep));
        }
    }
    return results;
}

} // namespace driver
} // namespace gpuperf
