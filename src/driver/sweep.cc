#include "driver/sweep.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace gpuperf {
namespace driver {

std::string
SweepPoint::label() const
{
    char buf[64];
    switch (kind) {
      case Kind::kNoBankConflicts:
        return "remove bank conflicts";
      case Kind::kWarpsPerSm:
        std::snprintf(buf, sizeof(buf), "warps/SM = %g", value);
        return buf;
      case Kind::kCoalescingFraction:
        std::snprintf(buf, sizeof(buf), "coalesce %g%% of waste",
                      value * 100.0);
        return buf;
    }
    panic("unknown sweep point kind %d", static_cast<int>(kind));
}

SweepSpec
SweepSpec::defaults(const arch::GpuSpec &spec)
{
    SweepSpec s;
    s.noBankConflicts = true;
    for (int w = 4; w <= spec.maxWarpsPerSm; w *= 2)
        s.warpsPerSm.push_back(w);
    s.coalescingFractions = {0.5, 1.0};
    return s;
}

std::vector<SweepPoint>
SweepSpec::enumerate() const
{
    std::vector<SweepPoint> points;
    points.reserve(size());
    if (noBankConflicts)
        points.push_back({SweepPoint::Kind::kNoBankConflicts, 0.0});
    for (double w : warpsPerSm)
        points.push_back({SweepPoint::Kind::kWarpsPerSm, w});
    for (double f : coalescingFractions)
        points.push_back({SweepPoint::Kind::kCoalescingFraction, f});
    return points;
}

size_t
SweepSpec::size() const
{
    return (noBankConflicts ? 1u : 0u) + warpsPerSm.size() +
           coalescingFractions.size();
}

std::string
SweepSpec::fingerprint() const
{
    std::string out = noBankConflicts ? "nbc=1|warps=" : "nbc=0|warps=";
    char buf[32];
    for (double w : warpsPerSm) {
        std::snprintf(buf, sizeof(buf), "%.17g,", w);
        out += buf;
    }
    out += "|coal=";
    for (double f : coalescingFractions) {
        std::snprintf(buf, sizeof(buf), "%.17g,", f);
        out += buf;
    }
    return out;
}

RankedWhatIf
evaluatePoint(const model::PerformanceModel &model,
              const model::ModelInput &input, const SweepPoint &point,
              const model::Prediction &before)
{
    RankedWhatIf r;
    r.point = point;
    switch (point.kind) {
      case SweepPoint::Kind::kNoBankConflicts:
        r.result = model::whatIfNoBankConflicts(model, input, before);
        break;
      case SweepPoint::Kind::kWarpsPerSm:
        r.result = model::whatIfWarpsPerSm(model, input, point.value,
                                           before);
        break;
      case SweepPoint::Kind::kCoalescingFraction:
        r.result = model::whatIfCoalescingFraction(
            model, input, point.value, before);
        break;
    }
    return r;
}

std::vector<RankedWhatIf>
runSweep(const model::PerformanceModel &model,
         const model::ModelInput &input, const SweepSpec &spec)
{
    if (spec.empty())
        return {};
    // One baseline prediction shared by every hypothesis.
    return runSweep(model, input, spec, model.predict(input));
}

std::vector<RankedWhatIf>
runSweep(const model::PerformanceModel &model,
         const model::ModelInput &input, const SweepSpec &spec,
         const model::Prediction &before)
{
    std::vector<RankedWhatIf> ranked;
    for (const SweepPoint &p : spec.enumerate())
        ranked.push_back(evaluatePoint(model, input, p, before));
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedWhatIf &a, const RankedWhatIf &b) {
                         return a.speedup() > b.speedup();
                     });
    return ranked;
}

} // namespace driver
} // namespace gpuperf
