/**
 * @file
 * What-if sweep grids (the batch-analysis front half of the paper's
 * Section 3/6 methodology): instead of asking one hypothetical
 * question at a time, enumerate a grid of candidate optimizations —
 * bank-conflict removal, warp-level-parallelism targets, partial
 * coalescing recovery — evaluate all of them against one model, and
 * return the answers ranked by predicted speedup so the most
 * profitable programming effort is at the top of the list.
 */

#ifndef GPUPERF_DRIVER_SWEEP_H
#define GPUPERF_DRIVER_SWEEP_H

#include <string>
#include <vector>

#include "arch/gpu_spec.h"
#include "model/whatif.h"

namespace gpuperf {
namespace driver {

/** One hypothetical input edit a sweep evaluates. */
struct SweepPoint
{
    enum class Kind {
        kNoBankConflicts,     ///< all stages at their ideal transactions
        kWarpsPerSm,          ///< run every stage at `value` warps/SM
        kCoalescingFraction,  ///< recover `value` of coalescing waste
    };

    Kind kind = Kind::kNoBankConflicts;
    /** Warps per SM or recovered fraction; unused for conflicts. */
    double value = 0.0;

    /** Human-readable description, e.g. "warps/SM = 16". */
    std::string label() const;
};

/**
 * Declarative description of a what-if grid. The default-constructed
 * spec is empty; defaults() gives the grid used by the batch driver
 * when the caller has no opinion.
 */
struct SweepSpec
{
    /** Include the remove-all-bank-conflicts point. */
    bool noBankConflicts = false;
    /** Warp-level-parallelism targets to evaluate (warps per SM). */
    std::vector<double> warpsPerSm;
    /** Coalescing-waste recovery fractions in (0, 1] to evaluate. */
    std::vector<double> coalescingFractions;

    /**
     * Conflict removal, perfect coalescing, half-recovered
     * coalescing, and a power-of-two warp ladder up to the spec's
     * residency ceiling.
     */
    static SweepSpec defaults(const arch::GpuSpec &spec);

    /** Materialize the grid, in a fixed deterministic order. */
    std::vector<SweepPoint> enumerate() const;

    /** Number of points enumerate() will produce. */
    size_t size() const;

    bool empty() const { return size() == 0; }

    /**
     * Deterministic serialization of the grid, used as a component of
     * persistent result-store keys: two sweeps with equal fingerprints
     * produce the same what-if list for any input.
     */
    std::string fingerprint() const;
};

/** A sweep point together with its evaluated what-if prediction. */
struct RankedWhatIf
{
    SweepPoint point;
    model::WhatIfResult result;

    double speedup() const { return result.speedup(); }
};

/**
 * Evaluate one what-if point against a model and extracted input,
 * reusing @p before as the already-predicted baseline for @p input.
 */
RankedWhatIf evaluatePoint(const model::PerformanceModel &model,
                           const model::ModelInput &input,
                           const SweepPoint &point,
                           const model::Prediction &before);

/**
 * Evaluate every point of @p spec and return the results ranked best
 * predicted speedup first. Ties keep enumeration order (stable sort),
 * so the ranking is deterministic.
 */
std::vector<RankedWhatIf> runSweep(const model::PerformanceModel &model,
                                   const model::ModelInput &input,
                                   const SweepSpec &spec);

/**
 * Like runSweep() but reusing @p before, an existing prediction of
 * the unmodified @p input (e.g. the one analyze() already produced),
 * instead of re-predicting the baseline.
 */
std::vector<RankedWhatIf> runSweep(const model::PerformanceModel &model,
                                   const model::ModelInput &input,
                                   const SweepSpec &spec,
                                   const model::Prediction &before);

} // namespace driver
} // namespace gpuperf

#endif // GPUPERF_DRIVER_SWEEP_H
