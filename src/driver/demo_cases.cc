#include "driver/demo_cases.h"

#include "apps/spmv/formats.h"
#include "apps/spmv/kernels.h"
#include "common/logging.h"
#include "isa/builder.h"

namespace gpuperf {
namespace driver {

namespace {

/** gtid = ctaid * ntid + tid, using three fresh registers. */
isa::Reg
emitGlobalThreadId(isa::KernelBuilder &b)
{
    isa::Reg tid = b.reg();
    isa::Reg cta = b.reg();
    isa::Reg ntid = b.reg();
    isa::Reg gtid = b.reg();
    b.s2r(tid, isa::SpecialReg::kTid);
    b.s2r(cta, isa::SpecialReg::kCtaid);
    b.s2r(ntid, isa::SpecialReg::kNtid);
    b.imad(gtid, cta, ntid, tid);
    return gtid;
}

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

KernelCase
makeSaxpyCase(const std::string &name, int grid_dim, int block_dim,
              float a)
{
    KernelCase kc;
    kc.name = name;
    kc.make = [grid_dim, block_dim, a]() {
        const int n = grid_dim * block_dim;
        auto gmem = std::make_unique<funcsim::GlobalMemory>(
            static_cast<size_t>(n) * 8 + (1u << 20));
        const uint64_t x_base =
            gmem->alloc(static_cast<size_t>(n) * 4);
        const uint64_t y_base =
            gmem->alloc(static_cast<size_t>(n) * 4);
        for (int i = 0; i < n; ++i) {
            gmem->f32(x_base)[i] = 1.0f;
            gmem->f32(y_base)[i] = static_cast<float>(i % 5);
        }

        isa::KernelBuilder b("saxpy");
        isa::Reg gtid = emitGlobalThreadId(b);
        isa::Reg xa = b.reg();
        isa::Reg ya = b.reg();
        isa::Reg xv = b.reg();
        isa::Reg yv = b.reg();
        isa::Reg av = b.reg();
        b.shlImm(xa, gtid, 2);
        b.iaddImm(ya, xa, static_cast<int32_t>(y_base));
        b.iaddImm(xa, xa, static_cast<int32_t>(x_base));
        b.ldg(xv, xa);
        b.ldg(yv, ya);
        b.movImmF(av, a);
        b.fmad(yv, av, xv, yv);
        b.stg(ya, yv);

        PreparedLaunch launch(b.build());
        launch.gmem = std::move(gmem);
        launch.cfg.gridDim = grid_dim;
        launch.cfg.blockDim = block_dim;
        return launch;
    };
    return kc;
}

KernelCase
makeStridedSaxpyCase(const std::string &name, int grid_dim,
                     int block_dim, int stride)
{
    const int n = grid_dim * block_dim;
    GPUPERF_ASSERT(isPowerOfTwo(n) && isPowerOfTwo(stride),
                   "strided case needs power-of-two size and stride");
    KernelCase kc;
    kc.name = name;
    kc.make = [grid_dim, block_dim, stride]() {
        const int n = grid_dim * block_dim;
        auto gmem = std::make_unique<funcsim::GlobalMemory>(
            static_cast<size_t>(n) * 8 + (1u << 20));
        const uint64_t x_base =
            gmem->alloc(static_cast<size_t>(n) * 4);
        const uint64_t y_base =
            gmem->alloc(static_cast<size_t>(n) * 4);
        for (int i = 0; i < n; ++i) {
            gmem->f32(x_base)[i] = 2.0f;
            gmem->f32(y_base)[i] = static_cast<float>(i % 3);
        }

        isa::KernelBuilder b("saxpy-strided");
        isa::Reg gtid = emitGlobalThreadId(b);
        isa::Reg idx = b.reg();
        isa::Reg xa = b.reg();
        isa::Reg ya = b.reg();
        isa::Reg xv = b.reg();
        isa::Reg yv = b.reg();
        isa::Reg av = b.reg();
        // idx = (gtid * stride) mod n: with power-of-two n this maps
        // `stride` threads onto each of n/stride elements, spreading
        // every half-warp across `stride` memory segments — the
        // uncoalesced pattern is the point; per-element output values
        // are NOT unique per thread.
        b.imulImm(idx, gtid, stride);
        b.andImm(idx, idx, n - 1);
        b.shlImm(xa, idx, 2);
        b.iaddImm(ya, xa, static_cast<int32_t>(y_base));
        b.iaddImm(xa, xa, static_cast<int32_t>(x_base));
        b.ldg(xv, xa);
        b.ldg(yv, ya);
        b.movImmF(av, 1.5f);
        b.fmad(yv, av, xv, yv);
        b.stg(ya, yv);

        PreparedLaunch launch(b.build());
        launch.gmem = std::move(gmem);
        launch.cfg.gridDim = grid_dim;
        launch.cfg.blockDim = block_dim;
        return launch;
    };
    return kc;
}

KernelCase
makeSharedConflictCase(const std::string &name, int grid_dim,
                       int block_dim, int stride, int iterations)
{
    KernelCase kc;
    kc.name = name;
    kc.make = [grid_dim, block_dim, stride, iterations]() {
        const int n = grid_dim * block_dim;
        const int shared_bytes = block_dim * stride * 4;
        auto gmem = std::make_unique<funcsim::GlobalMemory>(
            static_cast<size_t>(n) * 4 + (1u << 20));
        const uint64_t out_base =
            gmem->alloc(static_cast<size_t>(n) * 4);

        isa::KernelBuilder b("shared-conflict");
        isa::Reg gtid = emitGlobalThreadId(b);
        isa::Reg tid = b.reg();
        isa::Reg saddr = b.reg();
        isa::Reg val = b.reg();
        isa::Reg acc = b.reg();
        isa::Reg oa = b.reg();
        b.s2r(tid, isa::SpecialReg::kTid);
        // shared[tid * stride]: even strides collide on the 16-bank
        // layout exactly like unpadded cyclic reduction.
        b.imulImm(saddr, tid, stride * 4);
        b.movImmF(val, 1.25f);
        b.sts(saddr, val);
        b.bar();
        b.movImmF(acc, 0.0f);
        for (int i = 0; i < iterations; ++i) {
            b.lds(val, saddr);
            b.fadd(acc, acc, val);
        }
        b.shlImm(oa, gtid, 2);
        b.iaddImm(oa, oa, static_cast<int32_t>(out_base));
        b.stg(oa, acc);

        PreparedLaunch launch(b.build(shared_bytes));
        launch.gmem = std::move(gmem);
        launch.cfg.gridDim = grid_dim;
        launch.cfg.blockDim = block_dim;
        return launch;
    };
    return kc;
}

KernelCase
makeStencil1dCase(const std::string &name, int grid_dim, int block_dim)
{
    KernelCase kc;
    kc.name = name;
    kc.make = [grid_dim, block_dim]() {
        const int n = grid_dim * block_dim;
        // Tile of block_dim centers plus one halo word on each side.
        const int shared_bytes = (block_dim + 2) * 4;
        auto gmem = std::make_unique<funcsim::GlobalMemory>(
            static_cast<size_t>(n) * 8 + (1u << 20));
        const uint64_t x_base =
            gmem->alloc(static_cast<size_t>(n) * 4);
        const uint64_t y_base =
            gmem->alloc(static_cast<size_t>(n) * 4);
        for (int i = 0; i < n; ++i)
            gmem->f32(x_base)[i] = static_cast<float>(i % 7) * 0.5f;

        isa::KernelBuilder b("stencil1d");
        isa::Reg tid = b.reg();
        isa::Reg ntid = b.reg();
        isa::Reg cta = b.reg();
        isa::Reg gtid = b.reg();
        b.s2r(tid, isa::SpecialReg::kTid);
        b.s2r(ntid, isa::SpecialReg::kNtid);
        b.s2r(cta, isa::SpecialReg::kCtaid);
        b.imad(gtid, cta, ntid, tid);

        // Center: tile[tid + 1] = x[gtid], fully coalesced.
        isa::Reg xa = b.reg();
        isa::Reg sa = b.reg();
        isa::Reg v = b.reg();
        b.shlImm(xa, gtid, 2);
        b.iaddImm(xa, xa, static_cast<int32_t>(x_base));
        b.ldg(v, xa);
        b.shlImm(sa, tid, 2);
        b.iaddImm(sa, sa, 4);
        b.sts(sa, v);

        // Left halo: thread 0 fetches x[max(gtid - 1, 0)] — the
        // uncoalesced single-element boundary load.
        isa::Reg zero = b.reg();
        isa::Reg idx = b.reg();
        isa::Reg ha = b.reg();
        isa::Reg hv = b.reg();
        isa::Pred p_first = b.pred();
        b.movImm(zero, 0);
        b.setpIImm(p_first, isa::CmpOp::kEq, tid, 0);
        b.beginIf(p_first);
        b.iaddImm(idx, gtid, -1);
        b.imax(idx, idx, zero);
        b.shlImm(ha, idx, 2);
        b.iaddImm(ha, ha, static_cast<int32_t>(x_base));
        b.ldg(hv, ha);
        b.sts(zero, hv);
        b.endIf();

        // Right halo: the last thread fetches x[min(gtid + 1, n - 1)].
        isa::Reg nmax = b.reg();
        isa::Reg last = b.reg();
        isa::Pred p_last = b.pred();
        b.movImm(nmax, n - 1);
        b.iaddImm(last, ntid, -1);
        b.setpI(p_last, isa::CmpOp::kEq, tid, last);
        b.beginIf(p_last);
        b.iaddImm(idx, gtid, 1);
        b.imin(idx, idx, nmax);
        b.shlImm(ha, idx, 2);
        b.iaddImm(ha, ha, static_cast<int32_t>(x_base));
        b.ldg(hv, ha);
        b.movImm(idx, (block_dim + 1) * 4);
        b.sts(idx, hv);
        b.endIf();

        b.bar();

        // tile[tid] + tile[tid + 1] + tile[tid + 2], scaled by 1/3.
        isa::Reg l = b.reg();
        isa::Reg c = b.reg();
        isa::Reg r = b.reg();
        isa::Reg acc = b.reg();
        isa::Reg third = b.reg();
        isa::Reg ya = b.reg();
        b.lds(l, sa, -4);
        b.lds(c, sa, 0);
        b.lds(r, sa, 4);
        b.fadd(acc, l, c);
        b.fadd(acc, acc, r);
        b.movImmF(third, 1.0f / 3.0f);
        b.fmul(acc, acc, third);
        b.shlImm(ya, gtid, 2);
        b.iaddImm(ya, ya, static_cast<int32_t>(y_base));
        b.stg(ya, acc);

        PreparedLaunch launch(b.build(shared_bytes));
        launch.gmem = std::move(gmem);
        launch.cfg.gridDim = grid_dim;
        launch.cfg.blockDim = block_dim;
        return launch;
    };
    return kc;
}

KernelCase
makeReductionCase(const std::string &name, int grid_dim, int block_dim)
{
    GPUPERF_ASSERT(grid_dim > 0 && isPowerOfTwo(block_dim) &&
                       block_dim >= 2,
                   "reduction case needs a power-of-two block");
    KernelCase kc;
    kc.name = name;
    kc.make = [grid_dim, block_dim]() {
        const int n = grid_dim * block_dim;
        const int shared_bytes = block_dim * 4;
        auto gmem = std::make_unique<funcsim::GlobalMemory>(
            static_cast<size_t>(n) * 4 +
            static_cast<size_t>(grid_dim) * 4 + (1u << 20));
        const uint64_t x_base =
            gmem->alloc(static_cast<size_t>(n) * 4);
        const uint64_t y_base =
            gmem->alloc(static_cast<size_t>(grid_dim) * 4);
        // Multiples of 0.25 summing to < 2^22: exact in f32 under ANY
        // association, so a plain host loop is a valid reference for
        // the tree order the kernel uses.
        for (int i = 0; i < n; ++i)
            gmem->f32(x_base)[i] = static_cast<float>(i % 9) * 0.25f;

        isa::KernelBuilder b("reduction");
        isa::Reg tid = b.reg();
        isa::Reg ntid = b.reg();
        isa::Reg cta = b.reg();
        isa::Reg gtid = b.reg();
        b.s2r(tid, isa::SpecialReg::kTid);
        b.s2r(ntid, isa::SpecialReg::kNtid);
        b.s2r(cta, isa::SpecialReg::kCtaid);
        b.imad(gtid, cta, ntid, tid);

        // Stage: tile[tid] = x[gtid], fully coalesced.
        isa::Reg xa = b.reg();
        isa::Reg sa = b.reg();
        isa::Reg v = b.reg();
        b.shlImm(xa, gtid, 2);
        b.iaddImm(xa, xa, static_cast<int32_t>(x_base));
        b.ldg(v, xa);
        b.shlImm(sa, tid, 2);
        b.sts(sa, v);
        b.bar();

        // Tree passes: active threads halve every pass; once
        // s < warpSize the IF diverges inside warp 0 (the tail)
        // while the remaining warps idle at the barrier.
        isa::Reg other = b.reg();
        isa::Pred p_active = b.pred();
        for (int s = block_dim / 2; s >= 1; s >>= 1) {
            b.setpIImm(p_active, isa::CmpOp::kLt, tid, s);
            b.beginIf(p_active);
            b.lds(v, sa, 0);
            b.lds(other, sa, s * 4);
            b.fadd(v, v, other);
            b.sts(sa, v, 0);
            b.endIf();
            b.bar();
        }

        // Thread 0 publishes the block sum (its sa is tile[0]).
        isa::Reg oa = b.reg();
        isa::Pred p_first = b.pred();
        b.setpIImm(p_first, isa::CmpOp::kEq, tid, 0);
        b.beginIf(p_first);
        b.lds(v, sa, 0);
        b.shlImm(oa, cta, 2);
        b.iaddImm(oa, oa, static_cast<int32_t>(y_base));
        b.stg(oa, v);
        b.endIf();

        PreparedLaunch launch(b.build(shared_bytes));
        launch.gmem = std::move(gmem);
        launch.cfg.gridDim = grid_dim;
        launch.cfg.blockDim = block_dim;
        return launch;
    };
    return kc;
}

KernelCase
makeHistogramCase(const std::string &name, int grid_dim, int block_dim,
                  int num_bins, int items_per_thread)
{
    GPUPERF_ASSERT(grid_dim > 0 && block_dim > 0 &&
                       isPowerOfTwo(num_bins) && num_bins >= 2 &&
                       num_bins <= 64 && num_bins <= block_dim &&
                       items_per_thread >= 1,
                   "histogram case needs a power-of-two bin count "
                   "within the shared budget");
    GPUPERF_ASSERT(static_cast<int64_t>(block_dim) * num_bins * 4 <=
                       (int64_t{1} << 30),
                   "histogram privatized counters overflow the "
                   "shared-bytes arithmetic");
    KernelCase kc;
    kc.name = name;
    kc.make = [grid_dim, block_dim, num_bins, items_per_thread]() {
        const int total = grid_dim * block_dim;
        const int n = total * items_per_thread;
        const int shared_bytes = block_dim * num_bins * 4;
        auto gmem = std::make_unique<funcsim::GlobalMemory>(
            static_cast<size_t>(n) * 4 +
            static_cast<size_t>(grid_dim) * num_bins * 4 + (1u << 20));
        const uint64_t x_base =
            gmem->alloc(static_cast<size_t>(n) * 4);
        const uint64_t y_base =
            gmem->alloc(static_cast<size_t>(grid_dim) * num_bins * 4);
        // A fixed pseudo-random mix: bins are data-dependent and
        // unevenly populated (some bins contend harder than others),
        // but deterministic for the repeatable-factory contract.
        for (int i = 0; i < n; ++i) {
            gmem->u32(x_base)[i] =
                static_cast<uint32_t>(i) * 2654435761u >> 8;
        }

        isa::KernelBuilder b("histogram");
        isa::Reg tid = b.reg();
        isa::Reg ntid = b.reg();
        isa::Reg cta = b.reg();
        isa::Reg gtid = b.reg();
        b.s2r(tid, isa::SpecialReg::kTid);
        b.s2r(ntid, isa::SpecialReg::kNtid);
        b.s2r(cta, isa::SpecialReg::kCtaid);
        b.imad(gtid, cta, ntid, tid);

        // Zero the thread's private counter run shared[tid*bins ..]:
        // the kernel must not rely on the simulator's zeroed shared
        // memory any more than real hardware lets it.
        isa::Reg sbase = b.reg();
        isa::Reg zero = b.reg();
        b.imulImm(sbase, tid, num_bins * 4);
        b.movImm(zero, 0);
        for (int k = 0; k < num_bins; ++k)
            b.sts(sbase, zero, k * 4);

        // Binned passes: grid-strided loads (coalesced), then a
        // read-modify-write of the private counter at a
        // data-dependent shared address — the contention pattern.
        isa::Reg xa = b.reg();
        isa::Reg v = b.reg();
        isa::Reg bin = b.reg();
        isa::Reg saddr = b.reg();
        isa::Reg cnt = b.reg();
        for (int t = 0; t < items_per_thread; ++t) {
            b.shlImm(xa, gtid, 2);
            b.iaddImm(xa, xa,
                      static_cast<int32_t>(x_base) + t * total * 4);
            b.ldg(v, xa);
            b.andImm(bin, v, num_bins - 1);
            b.shlImm(saddr, bin, 2);
            b.iadd(saddr, sbase, saddr);
            b.lds(cnt, saddr);
            b.iaddImm(cnt, cnt, 1);
            b.sts(saddr, cnt);
        }
        b.bar();

        // Merge tail: thread k < num_bins sums counter k across every
        // thread's private run and publishes y[cta*bins + k]. The IF
        // diverges inside warp 0 while the other warps idle at exit.
        isa::Reg taddr = b.reg();
        isa::Reg acc = b.reg();
        isa::Reg oa = b.reg();
        isa::Pred p_merge = b.pred();
        b.setpIImm(p_merge, isa::CmpOp::kLt, tid, num_bins);
        b.beginIf(p_merge);
        b.shlImm(taddr, tid, 2);
        b.movImm(acc, 0);
        for (int j = 0; j < block_dim; ++j) {
            b.lds(v, taddr, j * num_bins * 4);
            b.iadd(acc, acc, v);
        }
        b.imulImm(oa, cta, num_bins * 4);
        b.shlImm(saddr, tid, 2);
        b.iadd(oa, oa, saddr);
        b.iaddImm(oa, oa, static_cast<int32_t>(y_base));
        b.stg(oa, acc);
        b.endIf();

        PreparedLaunch launch(b.build(shared_bytes));
        launch.gmem = std::move(gmem);
        launch.cfg.gridDim = grid_dim;
        launch.cfg.blockDim = block_dim;
        return launch;
    };
    return kc;
}

KernelCase
makeSpmvEllCase(const std::string &name, int block_rows,
                int blocks_per_row)
{
    GPUPERF_ASSERT(block_rows > 0 && blocks_per_row > 0,
                   "SpMV case needs a non-empty matrix");
    KernelCase kc;
    kc.name = name;
    kc.make = [block_rows, blocks_per_row]() {
        const apps::BlockSparseMatrix m = apps::makeBandedBlockMatrix(
            block_rows, blocks_per_row, 2 * blocks_per_row);
        // ELL storage: ld x k values + columns (4 B each, ld rounded
        // up to a warp), four row-length vectors, plus slack.
        const size_t rows = static_cast<size_t>(m.rows());
        const size_t k = static_cast<size_t>(m.maxRowEntries());
        auto gmem = std::make_unique<funcsim::GlobalMemory>(
            (rows + 64) * (k * 8 + 32) + (1u << 20));
        const apps::SpmvVectors v = apps::makeVectors(*gmem, m);
        const apps::EllDeviceMatrix ell = apps::buildEll(*gmem, m);

        PreparedLaunch launch(
            apps::makeEllKernel(ell, v, /*use_texture=*/false));
        launch.gmem = std::move(gmem);
        launch.cfg.gridDim = apps::spmvGridDim(ell.rows);
        launch.cfg.blockDim = apps::kSpmvBlockDim;
        return launch;
    };
    return kc;
}

} // namespace driver
} // namespace gpuperf
