/**
 * @file
 * Concurrent batch analysis: evaluate N kernel cases against M GpuSpec
 * variants (N x M full Figure-1 workflows plus an optional what-if
 * sweep each) as an explicit per-batch TASK GRAPH on a thread pool.
 *
 * The paper's Figure-1 workflow is a dependency graph — calibration
 * and functional simulation feed timing replay, which feeds
 * extraction, prediction and what-if sweeps — and the runner builds
 * exactly that graph per batch (common/task_graph.h) instead of
 * executing each cell as one opaque task:
 *
 *  - one calibrate(spec) and one benchMemo(spec) node per distinct
 *    spec fingerprint, so the expensive microbenchmark sweep runs at
 *    most once per machine description — and, with a store, at most
 *    once ACROSS cooperating processes (the CalibrationStore lease);
 *  - one prepare(case, funcsim fp) node running the case's factory
 *    once — producing the profile key every sibling cell shares and
 *    capturing a factory error once for all of them;
 *  - one profile(case, funcsim fp) node per needed profile, so an
 *    N x M batch runs N functional simulations instead of N x M (the
 *    paper's Section 5 what-if studies, which reuse one Barra run per
 *    application across model variants) — created LAZILY: cells
 *    served warm from the result store never materialize their
 *    simulation nodes at all;
 *  - one timing(profile key, timing fp) node per needed replay;
 *  - one cell(case, spec) node per batch cell, delivering its result
 *    the moment it finishes;
 *  - dedicated writer nodes for store persistence, so disk I/O never
 *    sits on a cell's latency path.
 *
 * No worker ever blocks on an unfinished dependency — a node is
 * scheduled only when its inputs exist, so every worker always runs
 * ready work.
 *
 * With Options::storeDir set, profiles, calibrations, timings and
 * finished results persist on disk, so repeated batch runs skip
 * functional simulation and calibration across process restarts
 * (src/store/).
 *
 * Every evaluation owns its device, session and memory image, so runs
 * are independent and the result of a batch is bit-identical to the
 * equivalent serial per-cell loop regardless of the worker count,
 * profile sharing, store warmth, or delivery mode (run() vs
 * runStream()).
 */

#ifndef GPUPERF_DRIVER_BATCH_RUNNER_H
#define GPUPERF_DRIVER_BATCH_RUNNER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/once_map.h"
#include "common/thread_pool.h"
#include "driver/sweep.h"
#include "funcsim/profile.h"
#include "model/session.h"
#include "sched/policy.h"
#include "store/lease.h"
#include "store/stats.h"

namespace gpuperf {

namespace store {
class CalibrationStore;
class ProfileStore;
class ResultStore;
class TimingStore;
} // namespace store

namespace driver {

/** A kernel launch ready to execute, with its own memory image. */
struct PreparedLaunch
{
    explicit PreparedLaunch(isa::Kernel k) : kernel(std::move(k)) {}

    isa::Kernel kernel;
    funcsim::LaunchConfig cfg;
    std::unique_ptr<funcsim::GlobalMemory> gmem;
    funcsim::RunOptions options{};
};

/**
 * A named, repeatable kernel case. make() is invoked once per
 * evaluation (each spec variant gets a fresh memory image) and may run
 * on any worker thread concurrently with other cases' factories, so it
 * must not touch shared mutable state.
 */
struct KernelCase
{
    std::string name;
    std::function<PreparedLaunch()> make;
};

/** Outcome of one kernel case on one spec variant. */
struct BatchResult
{
    std::string kernelName;
    std::string specName;

    bool ok = false;
    /** What went wrong when !ok (factory or analysis threw). */
    std::string error;

    model::Analysis analysis;
    /** Sweep results, best predicted speedup first (empty sweep ok). */
    std::vector<RankedWhatIf> whatifs;

    /** Best predicted sweep speedup, or 1.0 with no sweep points. */
    double bestSpeedup() const
    {
        return whatifs.empty() ? 1.0 : whatifs.front().speedup();
    }
};

/** Runs batches of analyses on a worker pool. */
class BatchRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 = one per hardware thread. */
        int numThreads = 0;
        /**
         * Directory for per-spec calibration cache files shared
         * across processes ("" = in-memory sharing only). Legacy
         * text format; prefer storeDir.
         */
        std::string calibrationCacheDir;
        /**
         * Root of the persistent binary store ("" = disabled).
         * Profiles, calibration tables and finished results are
         * kept in subdirectories and reused across process restarts;
         * stale entries (key or format-version mismatch) are
         * recomputed, never served.
         */
        std::string storeDir;
        /**
         * Share one functional-simulation profile per (kernel case,
         * funcsim fingerprint) across spec variants. Off = the
         * reference per-cell pipeline (each cell re-simulates, and
         * the profile/result stores are bypassed — profiles are the
         * store's currency; calibration persistence still applies).
         * Results are bit-identical either way. Exists for
         * benchmarking and differential testing.
         */
        bool shareProfiles = true;
        /**
         * With storeDir set, serve finished cells straight from the
         * result store (skipping timing, extraction, prediction and
         * sweep as well). Results remain bit-identical. Finished
         * cells are always persisted when a store is configured;
         * this switch only gates serving them back.
         */
        bool reuseStoredResults = true;
        /**
         * Memoize timing replays per (profile key, timing
         * fingerprint): cells whose specs differ only in
         * timing-irrelevant fields — and repeated cells whose
         * result-store keys differ (another sweep grid, another
         * calibration, a renamed case) — run zero timing
         * simulations. With storeDir set the memo persists through
         * the TimingStore. Results are bit-identical either way (the
         * replay engines are deterministic functions of exactly that
         * key). Only applies with shareProfiles (the per-cell
         * reference pipeline shares nothing by design).
         */
        bool shareTiming = true;
        /**
         * Timing replay engine for every session and standalone
         * replay this runner creates. The engines are bit-identical
         * by contract, so this never changes results — only the
         * replay loop producing them.
         */
        timing::ReplayEngine engine =
            timing::ReplayEngine::kEventDriven;
        /**
         * Order in which READY task-graph nodes are claimed by pool
         * workers (`?sched=`): kSjf/kFairShare run cheapest-predicted
         * analyze nodes first, kBiggestFirst the dearest. Costs come
         * from the TimingStore's observation side-channel — EWMA wall
         * times per (profile key, timing fingerprint) recorded by
         * earlier runs — falling back to a static launch-size
         * estimate. Changes scheduling only; results stay
         * bit-identical to kFifo.
         */
        sched::SchedPolicy schedPolicy = sched::SchedPolicy::kFifo;
    };

    BatchRunner(); ///< default Options
    explicit BatchRunner(Options options);
    ~BatchRunner();

    /**
     * Calibration tables for @p spec, running the microbenchmark
     * sweep at most once per distinct spec (memoized under a mutex;
     * safe to call from any thread).
     */
    std::shared_ptr<const model::CalibrationTables>
    calibrationFor(const arch::GpuSpec &spec);

    /**
     * Pre-seed the calibration memo for @p spec with existing tables
     * (e.g. loaded from disk, or injected by tests), so no
     * microbenchmark sweep runs for it. Call before run() /
     * calibrationFor() for the same spec: adopting while a
     * calibration for that spec is already in flight leaves the two
     * callers with different table objects.
     */
    void adoptCalibration(
        const arch::GpuSpec &spec,
        std::shared_ptr<const model::CalibrationTables> tables);

    /**
     * Evaluate every kernel case on every spec variant, applying
     * @p sweep to each analysis. Results arrive in deterministic
     * kernel-major order (kernels[0] x specs[0..M-1], then
     * kernels[1] x ..., independent of the worker count). A case
     * whose factory or analysis throws — or whose spec's calibration
     * fails — yields ok == false with the error message; it never
     * aborts the rest of the batch. Implemented as a
     * collect-and-reorder wrapper over runStream().
     */
    std::vector<BatchResult>
    run(const std::vector<KernelCase> &kernels,
        const std::vector<arch::GpuSpec> &specs,
        const SweepSpec &sweep = SweepSpec{});

    /**
     * Invoked once per finished cell, in COMPLETION order.
     * @p index is the cell's kernel-major position
     * (ki * specs.size() + si) — what run() uses to reorder.
     * Invocations are serialized (the callback needs no locking of
     * its own) and happen on worker threads while the rest of the
     * batch is still executing; a slow callback therefore delays
     * later deliveries, not the analyses themselves.
     */
    using ResultCallback =
        std::function<void(size_t index, BatchResult result)>;

    /** What a runStream() call observed (drives gates and benches). */
    struct StreamStats
    {
        /** Cells delivered (kernels x specs). */
        size_t cells = 0;
        /** Seconds from entry to the FIRST onResult invocation. */
        double firstResultSeconds = 0.0;
        /**
         * Seconds from entry until the last calibrate(spec) node
         * finished. Streaming's point in one number:
         * firstResultSeconds < lastCalibrationSeconds on any batch
         * whose specs calibrate at different speeds — early cells
         * flow out while the slowest calibration still runs.
         */
        double lastCalibrationSeconds = 0.0;
        /** Seconds from entry until every node (writers too) drained. */
        double totalSeconds = 0.0;
    };

    /**
     * The streaming form of run(): identical evaluations (results are
     * bit-identical, pinned by tests), but each finished cell is
     * handed to @p onResult immediately, in completion order, instead
     * of parking until the whole batch drains. If @p onResult throws,
     * its first exception is captured, delivery of later results is
     * abandoned (the batch itself still completes, including store
     * writes), and the exception is rethrown from runStream() after
     * the graph drains.
     */
    StreamStats
    runStream(const std::vector<KernelCase> &kernels,
              const std::vector<arch::GpuSpec> &specs,
              const SweepSpec &sweep, const ResultCallback &onResult);

    /**
     * The functional-simulation profile of @p kc under @p spec's
     * funcsim fingerprint: runs the kernel's factory, consults the
     * profile store when one is configured, and simulates only on a
     * store miss (then persists the result). Not memoized — run()
     * deduplicates per batch with a run-local compute-once map, so
     * one run() never aliases profiles across distinct case lists.
     */
    std::shared_ptr<const funcsim::KernelProfile>
    profileFor(const KernelCase &kc, const arch::GpuSpec &spec);

    /**
     * Like profileFor() with the profile key already computed (via
     * profileKeyFor() on the same case and spec): a profile-store hit
     * is served without running the case's factory at all, and a miss
     * skips re-hashing the input image.
     */
    std::shared_ptr<const funcsim::KernelProfile>
    profileFor(const KernelCase &kc, const arch::GpuSpec &spec,
               const funcsim::ProfileKey &key);

    /**
     * The key profileFor() would compute for @p kc under @p spec:
     * runs the factory and digests the pristine input image, but
     * performs no simulation and reads no store. Everything keyed on
     * the profile — result-store entries, the timing memo — can be
     * derived from this without touching the profile itself.
     */
    funcsim::ProfileKey profileKeyFor(const KernelCase &kc,
                                      const arch::GpuSpec &spec);

    /**
     * The timing replay of @p profile under @p spec, memoized per
     * (profile key, arch::TimingFingerprint) — in memory across the
     * runner's lifetime and, with a store, on disk across processes.
     * The first caller replays (or loads); everyone else gets the
     * bit-identical shared result.
     */
    std::shared_ptr<const timing::TimingResult>
    timingFor(const std::shared_ptr<const funcsim::KernelProfile> &profile,
              const arch::GpuSpec &spec);

    /**
     * Shared synthetic-benchmark memo for a spec (memoized like
     * calibrations). With a store configured, a fresh memo is
     * pre-seeded from the persisted benchmark results, so a warm
     * process re-measures nothing.
     */
    std::shared_ptr<model::GlobalBenchMemo>
    benchMemoFor(const arch::GpuSpec &spec);

    int numThreads() const { return pool_.numThreads(); }

    /**
     * Microbenchmark sweeps this runner actually ran (as opposed to
     * serving from memo, store, or another process's lease-guarded
     * sweep). Cross-process sharding tests pin "at most one sweep per
     * spec between cooperating processes" on this.
     */
    uint64_t calibrationsComputed() const
    {
        return calibrationsComputed_.load();
    }

    /**
     * Functional simulations the shared-profile pipeline actually ran
     * (as opposed to serving from the profile store or another
     * process's lease-guarded funcsim). The per-cell reference
     * pipeline (shareProfiles = false) is not counted — it shares
     * nothing by design.
     */
    uint64_t funcsimsComputed() const
    {
        return funcsimsComputed_.load();
    }

    /**
     * Timing replays this runner actually ran (as opposed to serving
     * from the in-memory memo, the timing store, or another process's
     * lease-guarded replay).
     */
    uint64_t timingsComputed() const
    {
        return timingsComputed_.load();
    }

    /** The persistent stores (null when storeDir is unset). */
    const store::ProfileStore *profileStore() const
    {
        return profileStore_.get();
    }
    const store::CalibrationStore *calibrationStore() const
    {
        return calibrationStore_.get();
    }
    const store::ResultStore *resultStore() const
    {
        return resultStore_.get();
    }
    const store::TimingStore *timingStore() const
    {
        return timingStore_.get();
    }

    /**
     * The four stores' cache-health counters side by side (all zero
     * when storeDir is unset) — what this executor did to the shared
     * store: hit/miss traffic, bytes moved, publishes, lease steals.
     */
    store::StoreLayerStats storeStats() const;

  private:
    /** Memoization key: the spec's full fingerprint. */
    static std::string specKey(const arch::GpuSpec &spec);

    /**
     * Produce tables for @p spec: store hit, or the microbenchmark
     * sweep under the spec's cross-process lease — while another
     * process holds the lease, this one polls for the published entry
     * instead of duplicating the sweep (no memoization here;
     * calibrationFor() wraps it in the OnceMap).
     */
    std::shared_ptr<const model::CalibrationTables>
    calibrate(const arch::GpuSpec &spec, const std::string &key);

    /** The sweep itself, unconditionally (counts the run). */
    std::shared_ptr<const model::CalibrationTables>
    runCalibration(const arch::GpuSpec &spec, const std::string &key);

    /**
     * The timing memo's compute half: serve (profile key, timing fp)
     * from memory or the timing store, replaying on a full miss —
     * WITHOUT persisting a fresh replay. @p computed reports whether
     * this call replayed; the caller owns persistence (timingFor()
     * saves inline, the batch graph hands it to a writer node). When
     * this call replayed under a store, @p lease_out carries the
     * replay's held in-flight lease — the caller releases it AFTER
     * saving, so waiting processes load the entry instead of
     * re-replaying.
     */
    std::shared_ptr<const timing::TimingResult>
    timingCompute(
        const std::shared_ptr<const funcsim::KernelProfile> &profile,
        const arch::GpuSpec &spec, bool *computed,
        std::shared_ptr<store::Lease> *lease_out);

    /**
     * Serve @p key's profile from the store, waiting out another
     * process's in-flight funcsim via the profile lease. Returns the
     * loaded profile, or nullptr when the caller should simulate —
     * in which case *@p lease (when a store is configured) holds the
     * key's lease, to be released after the save. Without a store,
     * returns nullptr immediately.
     */
    std::shared_ptr<const funcsim::KernelProfile>
    profileAwait(const funcsim::ProfileKey &key, store::Lease *lease);

    Options options_;
    ThreadPool pool_;

    std::atomic<uint64_t> calibrationsComputed_{0};
    std::atomic<uint64_t> funcsimsComputed_{0};
    std::atomic<uint64_t> timingsComputed_{0};

    std::unique_ptr<store::ProfileStore> profileStore_;
    std::unique_ptr<store::CalibrationStore> calibrationStore_;
    std::unique_ptr<store::ResultStore> resultStore_;
    std::unique_ptr<store::TimingStore> timingStore_;

    /**
     * Compute-once per spec key: the first caller for a key
     * calibrates, later callers (and other threads) wait on its
     * result; distinct keys calibrate concurrently.
     */
    OnceMap<std::string,
            std::shared_ptr<const model::CalibrationTables>>
        calibrations_;
    OnceMap<std::string, std::shared_ptr<model::GlobalBenchMemo>>
        benchMemos_;
    /**
     * Timing memo, keyed by content — (profile key, timing
     * fingerprint) — not by batch position, so it safely spans run()
     * calls and case lists for the runner's lifetime.
     */
    OnceMap<std::string, std::shared_ptr<const timing::TimingResult>>
        timings_;
};

/**
 * The serial reference implementation of BatchRunner::run(): same
 * inputs, same result order, one evaluation at a time on the calling
 * thread. Used by tests to pin down batch/serial equivalence and by
 * callers that want no extra threads.
 */
std::vector<BatchResult>
runSerial(const std::vector<KernelCase> &kernels,
          const std::vector<arch::GpuSpec> &specs,
          const SweepSpec &sweep = SweepSpec{});

} // namespace driver
} // namespace gpuperf

#endif // GPUPERF_DRIVER_BATCH_RUNNER_H
