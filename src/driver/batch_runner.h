/**
 * @file
 * Concurrent batch analysis: evaluate N kernel cases against M GpuSpec
 * variants (N x M full Figure-1 workflows plus an optional what-if
 * sweep each) on a thread pool, sharing one CalibrationTables per
 * distinct spec so the expensive microbenchmark sweep runs at most
 * once per machine description, no matter how many kernels ride on it.
 *
 * Every evaluation owns its device, session and memory image, so runs
 * are independent and the result of a batch is bit-identical to the
 * equivalent serial loop regardless of the worker count.
 */

#ifndef GPUPERF_DRIVER_BATCH_RUNNER_H
#define GPUPERF_DRIVER_BATCH_RUNNER_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/once_map.h"
#include "common/thread_pool.h"
#include "driver/sweep.h"
#include "model/session.h"

namespace gpuperf {
namespace driver {

/** A kernel launch ready to execute, with its own memory image. */
struct PreparedLaunch
{
    explicit PreparedLaunch(isa::Kernel k) : kernel(std::move(k)) {}

    isa::Kernel kernel;
    funcsim::LaunchConfig cfg;
    std::unique_ptr<funcsim::GlobalMemory> gmem;
    funcsim::RunOptions options{};
};

/**
 * A named, repeatable kernel case. make() is invoked once per
 * evaluation (each spec variant gets a fresh memory image) and may run
 * on any worker thread concurrently with other cases' factories, so it
 * must not touch shared mutable state.
 */
struct KernelCase
{
    std::string name;
    std::function<PreparedLaunch()> make;
};

/** Outcome of one kernel case on one spec variant. */
struct BatchResult
{
    std::string kernelName;
    std::string specName;

    bool ok = false;
    /** What went wrong when !ok (factory or analysis threw). */
    std::string error;

    model::Analysis analysis;
    /** Sweep results, best predicted speedup first (empty sweep ok). */
    std::vector<RankedWhatIf> whatifs;

    /** Best predicted sweep speedup, or 1.0 with no sweep points. */
    double bestSpeedup() const
    {
        return whatifs.empty() ? 1.0 : whatifs.front().speedup();
    }
};

/** Runs batches of analyses on a worker pool. */
class BatchRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 = one per hardware thread. */
        int numThreads = 0;
        /**
         * Directory for per-spec calibration cache files shared
         * across processes ("" = in-memory sharing only).
         */
        std::string calibrationCacheDir;
    };

    BatchRunner(); ///< default Options
    explicit BatchRunner(Options options);

    /**
     * Calibration tables for @p spec, running the microbenchmark
     * sweep at most once per distinct spec (memoized under a mutex;
     * safe to call from any thread).
     */
    std::shared_ptr<const model::CalibrationTables>
    calibrationFor(const arch::GpuSpec &spec);

    /**
     * Pre-seed the calibration memo for @p spec with existing tables
     * (e.g. loaded from disk, or injected by tests), so no
     * microbenchmark sweep runs for it. Call before run() /
     * calibrationFor() for the same spec: adopting while a
     * calibration for that spec is already in flight leaves the two
     * callers with different table objects.
     */
    void adoptCalibration(
        const arch::GpuSpec &spec,
        std::shared_ptr<const model::CalibrationTables> tables);

    /**
     * Evaluate every kernel case on every spec variant, applying
     * @p sweep to each analysis. Results arrive in deterministic
     * kernel-major order (kernels[0] x specs[0..M-1], then
     * kernels[1] x ..., independent of the worker count). A case
     * whose factory or analysis throws yields ok == false with the
     * error message; it never aborts the rest of the batch.
     */
    std::vector<BatchResult>
    run(const std::vector<KernelCase> &kernels,
        const std::vector<arch::GpuSpec> &specs,
        const SweepSpec &sweep = SweepSpec{});

    int numThreads() const { return pool_.numThreads(); }

  private:
    /** Memoization key: the spec's full fingerprint. */
    static std::string specKey(const arch::GpuSpec &spec);

    /** Run the microbenchmark sweep for @p spec (no memoization). */
    std::shared_ptr<const model::CalibrationTables>
    calibrate(const arch::GpuSpec &spec, const std::string &key);

    /** Shared synthetic-benchmark memo for a spec key (memoized). */
    std::shared_ptr<model::GlobalBenchMemo>
    benchMemoFor(const std::string &key);

    Options options_;
    ThreadPool pool_;

    /**
     * Compute-once per spec key: the first caller for a key
     * calibrates, later callers (and other threads) wait on its
     * result; distinct keys calibrate concurrently.
     */
    OnceMap<std::string,
            std::shared_ptr<const model::CalibrationTables>>
        calibrations_;
    OnceMap<std::string, std::shared_ptr<model::GlobalBenchMemo>>
        benchMemos_;
};

/**
 * The serial reference implementation of BatchRunner::run(): same
 * inputs, same result order, one evaluation at a time on the calling
 * thread. Used by tests to pin down batch/serial equivalence and by
 * callers that want no extra threads.
 */
std::vector<BatchResult>
runSerial(const std::vector<KernelCase> &kernels,
          const std::vector<arch::GpuSpec> &specs,
          const SweepSpec &sweep = SweepSpec{});

} // namespace driver
} // namespace gpuperf

#endif // GPUPERF_DRIVER_BATCH_RUNNER_H
