/**
 * @file
 * Ready-made kernel cases for the batch driver: a coalesced SAXPY, a
 * strided (uncoalesced) SAXPY, and a bank-conflicted shared-memory
 * kernel shaped like the paper's pre-padding cyclic reduction. Used
 * by examples, benches and tests that need deterministic workloads
 * with distinct bottleneck profiles without hand-building ISA.
 */

#ifndef GPUPERF_DRIVER_DEMO_CASES_H
#define GPUPERF_DRIVER_DEMO_CASES_H

#include "driver/batch_runner.h"

namespace gpuperf {
namespace driver {

/**
 * y[i] = a * x[i] + y[i] over grid*block elements, fully coalesced:
 * instruction + global-memory mix, no shared memory.
 */
KernelCase makeSaxpyCase(const std::string &name, int grid_dim,
                         int block_dim, float a);

/**
 * Like makeSaxpyCase but thread i touches element
 * (i * stride) % n: for stride > 1 the half-warp accesses spread
 * across segments and the coalescing what-ifs become profitable.
 * @p stride must be a power of two.
 */
KernelCase makeStridedSaxpyCase(const std::string &name, int grid_dim,
                                int block_dim, int stride);

/**
 * Each thread stores then repeatedly loads shared[tid * stride]:
 * for even @p stride on a 16-bank machine this serializes into
 * stride-way bank conflicts — the cyclic-reduction access pattern
 * before padding, where the remove-bank-conflicts what-if is the
 * optimization worth implementing.
 */
KernelCase makeSharedConflictCase(const std::string &name, int grid_dim,
                                  int block_dim, int stride,
                                  int iterations = 64);

/**
 * 3-point Jacobi stencil (y[i] = (x[i-1] + x[i] + x[i+1]) / 3 with
 * clamped boundaries) over grid*block elements, tiled through shared
 * memory: every thread streams its center element into a shared tile
 * (fully coalesced), the block's edge threads fetch the two halo
 * elements from global memory under divergent IFs, and after a
 * barrier each thread reads three neighbouring tile words
 * (conflict-free on stride-1 banks). Exercises coalesced + halo
 * traffic, divergence and a two-stage barrier structure — a traffic
 * pattern none of matmul/SpMV/tridiag cover.
 */
KernelCase makeStencil1dCase(const std::string &name, int grid_dim,
                             int block_dim);

/**
 * Scalar-ELL SpMV over a synthetic banded block matrix (the paper's
 * Section 5.3 workload as a repeatable batch case): one thread per
 * row, coalesced (value, column) streams plus a data-dependent
 * gathered vector load per entry. @p block_rows block rows of
 * @p blocks_per_row 3x3 blocks; the launch uses the standard SpMV
 * block size (apps::kSpmvBlockDim = 128 threads), so large
 * @p block_rows produce the high-occupancy launches the
 * timing-replay benchmarks target.
 */
KernelCase makeSpmvEllCase(const std::string &name, int block_rows,
                           int blocks_per_row);

/**
 * Per-block tree reduction: y[b] = sum of x over block b's elements.
 * Every thread streams its element into a shared staging tile
 * (fully coalesced), then log2(block_dim) barrier-delimited passes
 * halve the active thread count — shared[tid] += shared[tid + s] for
 * s = block_dim/2 .. 1 — until thread 0 stores the block's sum. The
 * final passes (s < warpSize) are the classic divergent tail: the
 * IF splits warp 0's lanes while every other warp idles at the
 * barrier. Exercises a workload none of the other cases cover — a
 * deep barrier ladder with geometrically shrinking parallelism.
 *
 * @p block_dim must be a power of two. Input values are exact in
 * f32 at any association, so the result is verifiable against a
 * host reference sum (tests/test_batch.cc) without replaying the
 * tree order.
 */
KernelCase makeReductionCase(const std::string &name, int grid_dim,
                             int block_dim);

/**
 * Shared-memory privatized histogram: y[b * num_bins + k] counts the
 * inputs binned to k among the elements block b processes. Every
 * thread owns a private run of @p num_bins counters in shared memory
 * (layout shared[tid * num_bins + bin]) so no two threads ever write
 * the same word — the software stand-in for atomics on hardware that
 * has none (GT200 shared atomics serialize exactly like the bank
 * conflicts this layout produces: threads of a half-warp whose
 * data-dependent bins land in the same bank contend for it). Each
 * thread zeroes its counters, then binned grid-strided passes over
 * the input increment them at data-dependent addresses; after a
 * barrier the first @p num_bins threads — the classic divergent tail,
 * splitting warp 0's lanes while every other warp idles — reduce the
 * per-thread counters into the block's public histogram.
 *
 * Counters are integers, so the result is verifiable bit-exactly
 * against a plain host count (tests/test_batch.cc).
 *
 * @p num_bins must be a power of two, at most @p block_dim and at
 * most 64 (shared budget); @p items_per_thread >= 1.
 */
KernelCase makeHistogramCase(const std::string &name, int grid_dim,
                             int block_dim, int num_bins,
                             int items_per_thread = 8);

} // namespace driver
} // namespace gpuperf

#endif // GPUPERF_DRIVER_DEMO_CASES_H
