#include "model/device.h"

namespace gpuperf {
namespace model {

SimulatedDevice::SimulatedDevice(const arch::GpuSpec &spec)
    : spec_(spec), funcSim_(spec), timingSim_(spec)
{
}

Measurement
SimulatedDevice::run(const isa::Kernel &kernel,
                     const funcsim::LaunchConfig &cfg,
                     funcsim::GlobalMemory &gmem,
                     funcsim::RunOptions options)
{
    options.collectTrace = true;
    funcsim::RunResult func = funcSim_.run(kernel, cfg, gmem, options);
    Measurement m;
    m.timing = timingSim_.run(func.trace);
    m.stats = std::move(func.stats);
    return m;
}

} // namespace model
} // namespace gpuperf
