#include "model/device.h"

#include "common/logging.h"

namespace gpuperf {
namespace model {

SimulatedDevice::SimulatedDevice(const arch::GpuSpec &spec,
                                 const SessionConfig &config)
    : spec_(spec), funcSim_(spec), timingSim_(spec, config.engine)
{
}

Measurement
SimulatedDevice::run(const isa::Kernel &kernel,
                     const funcsim::LaunchConfig &cfg,
                     funcsim::GlobalMemory &gmem,
                     funcsim::RunOptions options)
{
    // One-shot path (e.g. the calibrator's many microbenchmark runs):
    // functionally identical to profile() + measure(), minus the
    // profile-identity work — no input-image hash, no stats copy —
    // that only sharing or persisting the artifact would need.
    options.collectTrace = true;
    funcsim::RunResult func = funcSim_.run(kernel, cfg, gmem, options);
    Measurement m;
    m.timing = timingSim_.run(func.trace);
    m.stats = std::move(func.stats);
    return m;
}

std::shared_ptr<const funcsim::KernelProfile>
SimulatedDevice::profile(const isa::Kernel &kernel,
                         const funcsim::LaunchConfig &cfg,
                         funcsim::GlobalMemory &gmem,
                         funcsim::RunOptions options)
{
    return std::make_shared<const funcsim::KernelProfile>(
        funcsim::profileKernel(funcSim_, kernel, cfg, gmem, options));
}

namespace {

/**
 * Re-apply the launch-ceiling checks the functional simulator
 * performed under the producing spec, against @p spec: a shared
 * profile must fail exactly where a per-cell functional run would
 * have (same conditions, same messages). Shared by the replaying and
 * memoized measurement paths.
 */
void
revalidateLaunch(const funcsim::KernelProfile &profile,
                 const arch::GpuSpec &spec)
{
    const funcsim::LaunchConfig &cfg = profile.key.cfg;
    if (cfg.gridDim <= 0 || cfg.blockDim <= 0)
        fatal("launch of kernel '%s' has empty grid (%d x %d)",
              profile.kernelName.c_str(), cfg.gridDim, cfg.blockDim);
    if (cfg.blockDim > spec.maxThreadsPerBlock)
        fatal("kernel '%s': block of %d threads exceeds the %d-thread "
              "block ceiling", profile.kernelName.c_str(), cfg.blockDim,
              spec.maxThreadsPerBlock);
    if (profile.resources.sharedBytesPerBlock > spec.sharedMemPerSm)
        fatal("kernel '%s': %d B shared memory exceeds the %d B SM "
              "capacity", profile.kernelName.c_str(),
              profile.resources.sharedBytesPerBlock, spec.sharedMemPerSm);
}

} // namespace

Measurement
SimulatedDevice::measure(const funcsim::KernelProfile &profile) const
{
    revalidateLaunch(profile, spec_);
    Measurement m;
    m.timing = timingSim_.run(profile);
    m.stats = profile.stats;
    return m;
}

Measurement
SimulatedDevice::measure(const funcsim::KernelProfile &profile,
                         const timing::TimingResult &timing) const
{
    revalidateLaunch(profile, spec_);
    if (profile.key.fingerprint != arch::FuncsimFingerprint::of(spec_))
        fatal("kernel '%s': profile was produced under an incompatible "
              "functional-simulation fingerprint — recompute it for "
              "spec '%s'", profile.kernelName.c_str(),
              spec_.name.c_str());
    Measurement m;
    m.timing = timing;
    m.stats = profile.stats;
    return m;
}

} // namespace model
} // namespace gpuperf
