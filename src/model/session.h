/**
 * @file
 * AnalysisSession — the end-to-end workflow of the paper's Figure 1:
 * functional simulation -> info extraction -> model prediction, plus a
 * timing-simulator "measurement" for validation, behind one call.
 */

#ifndef GPUPERF_MODEL_SESSION_H
#define GPUPERF_MODEL_SESSION_H

#include <memory>

#include "model/calibration.h"
#include "model/device.h"
#include "model/extractor.h"
#include "model/perf_model.h"
#include "model/report.h"

namespace gpuperf {
namespace model {

/** Everything the workflow produces for one kernel launch. */
struct Analysis
{
    Measurement measurement;    ///< dynamic stats + measured timing
    ModelInput input;           ///< extracted model inputs
    Prediction prediction;      ///< the model's prediction
    ReportMetrics metrics;      ///< bottleneck-cause diagnostics

    double measuredMs() const { return measurement.milliseconds(); }
    double predictedMs() const { return prediction.milliseconds(); }
    double errorFraction() const
    {
        return relativeError(prediction.totalSeconds,
                             measurement.seconds());
    }
};

/**
 * Owns the device, calibrator and model for one machine description.
 * Calibration runs lazily on the first analysis and is reused.
 */
class AnalysisSession
{
  public:
    /**
     * Configured construction: cache file, replay engine and adopted
     * tables all come in through one SessionConfig (model/device.h)
     * instead of a ladder of ctor overloads. (The PR 5 string/engine
     * forwarders are gone; the default config keeps bare
     * AnalysisSession(spec) working.)
     */
    explicit AnalysisSession(const arch::GpuSpec &spec,
                             const SessionConfig &config = {});

    AnalysisSession(const AnalysisSession &) = delete;
    AnalysisSession &operator=(const AnalysisSession &) = delete;

    /**
     * Run the full workflow on one kernel launch: one
     * functional-simulation pass driving timing, extraction and
     * prediction. Bit-identical to profile() + analyze(profile),
     * which shares the pass across sessions instead.
     */
    Analysis analyze(const isa::Kernel &kernel,
                     const funcsim::LaunchConfig &cfg,
                     funcsim::GlobalMemory &gmem,
                     funcsim::RunOptions options = {});

    /**
     * Functionally simulate one launch into a shareable profile.
     * The result may be analyzed by this session and by any other
     * session whose spec has the same funcsim fingerprint — that is
     * how an N x M batch runs N functional simulations, not N x M.
     */
    std::shared_ptr<const funcsim::KernelProfile>
    profile(const isa::Kernel &kernel, const funcsim::LaunchConfig &cfg,
            funcsim::GlobalMemory &gmem, funcsim::RunOptions options = {})
    {
        return device_.profile(kernel, cfg, gmem, options);
    }

    /**
     * Run the workflow from an existing profile: timing replay under
     * this session's spec, then extraction and prediction. No
     * functional simulation happens.
     */
    Analysis analyze(
        const std::shared_ptr<const funcsim::KernelProfile> &profile);

    /**
     * Like analyze(profile) with the timing replay already available
     * (e.g. from the BatchRunner's timing memo keyed by profile key x
     * arch::TimingFingerprint). @p timing must be what this session's
     * device would replay for @p profile; the result is then
     * bit-identical to analyze(profile) with zero timing simulation.
     */
    Analysis analyze(
        const std::shared_ptr<const funcsim::KernelProfile> &profile,
        const std::shared_ptr<const timing::TimingResult> &timing);

    /** Predict from an existing measurement (no re-execution). */
    Analysis analyzeMeasured(Measurement measurement,
                             const arch::KernelResources &resources);

    /**
     * Share this session's calibration tables (calibrating first if
     * needed) so other sessions for the same spec can adopt them.
     */
    std::shared_ptr<const CalibrationTables> shareCalibration()
    {
        return calibrator_.sharedTables();
    }

    /** Adopt tables calibrated by another session for the same spec. */
    void adoptCalibration(std::shared_ptr<const CalibrationTables> t)
    {
        calibrator_.adoptTables(std::move(t));
    }

    SimulatedDevice &device() { return device_; }
    Calibrator &calibrator() { return calibrator_; }
    const PerformanceModel &model() const { return model_; }
    const arch::GpuSpec &spec() const { return device_.spec(); }

  private:
    SimulatedDevice device_;
    Calibrator calibrator_;
    InfoExtractor extractor_;
    PerformanceModel model_;
};

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_SESSION_H
