#include "model/roofline.h"

#include "arch/instr_class.h"
#include "common/logging.h"

namespace gpuperf {
namespace model {

const char *
rooflineVerdictName(RooflineVerdict verdict)
{
    switch (verdict) {
      case RooflineVerdict::kComputeBound:
        return "compute-bound";
      case RooflineVerdict::kMemoryBound:
        return "memory-bound";
      case RooflineVerdict::kUnexplained:
        return "neither (traditional model cannot explain)";
    }
    panic("unknown roofline verdict %d", static_cast<int>(verdict));
}

RooflineAnalysis
analyzeRoofline(const arch::GpuSpec &spec, double flops, double bytes,
                double seconds, double threshold)
{
    if (seconds <= 0.0)
        fatal("roofline: non-positive execution time %g", seconds);

    RooflineAnalysis a;
    a.sustainedFlops = flops / seconds;
    a.sustainedBandwidth = bytes / seconds;
    a.peakFlops = arch::peakFlops(spec);
    a.peakBandwidth = spec.peakGlobalBandwidth();
    a.computeFraction = a.sustainedFlops / a.peakFlops;
    a.memoryFraction = a.sustainedBandwidth / a.peakBandwidth;

    if (a.computeFraction >= threshold &&
        a.computeFraction >= a.memoryFraction) {
        a.verdict = RooflineVerdict::kComputeBound;
    } else if (a.memoryFraction >= threshold) {
        a.verdict = RooflineVerdict::kMemoryBound;
    } else {
        a.verdict = RooflineVerdict::kUnexplained;
    }
    return a;
}

} // namespace model
} // namespace gpuperf
