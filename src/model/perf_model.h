/**
 * @file
 * The quantitative performance model (the paper's core contribution).
 *
 * For each barrier-delimited stage, the model predicts the time three
 * architecture components would take in isolation:
 *
 *   t_instr  = sum over types of count[type] / throughput[type](warps)
 *   t_shared = shared transactions / pass-throughput(warps)
 *   t_global = effective transactions / synthetic-benchmark throughput
 *
 * The stage's bottleneck is the largest component; the others are
 * assumed hidden by overlap. With multiple resident blocks per SM,
 * stages of different blocks overlap and the program has a single
 * bottleneck (component sums compared); with a single resident block,
 * barriers serialize the stages and the stage maxima are summed.
 */

#ifndef GPUPERF_MODEL_PERF_MODEL_H
#define GPUPERF_MODEL_PERF_MODEL_H

#include <vector>

#include "model/calibration.h"
#include "model/extractor.h"

namespace gpuperf {
namespace model {

/** The three modeled architecture components. */
enum class Component { kInstruction, kShared, kGlobal };

const char *componentName(Component c);

/** Predicted times for one stage. */
struct StagePrediction
{
    double tInstr = 0.0;    ///< seconds
    double tShared = 0.0;
    double tGlobal = 0.0;
    Component bottleneck = Component::kInstruction;
    /** Stage wall time when stages serialize: max of the components. */
    double stageTime = 0.0;
    double activeWarpsPerSm = 0.0;
    /** Shared bandwidth the throughput model sustained at this stage's
     *  parallelism (bytes/s) — paper Figure 7(a). */
    double sharedBandwidth = 0.0;

    double component(Component c) const;
};

/** Whole-launch prediction. */
struct Prediction
{
    std::vector<StagePrediction> stages;
    bool serialized = false;

    double tInstrTotal = 0.0;
    double tSharedTotal = 0.0;
    double tGlobalTotal = 0.0;
    /** Predicted execution time in seconds. */
    double totalSeconds = 0.0;

    Component bottleneck = Component::kInstruction;
    /** What becomes the bottleneck if the current one is removed. */
    Component nextBottleneck = Component::kInstruction;

    double milliseconds() const { return totalSeconds * 1e3; }
    double componentTotal(Component c) const;
};

/** The analytical model. */
class PerformanceModel
{
  public:
    /**
     * @param calibrator source of throughput tables and synthetic
     *                   global benchmarks (memoized; hence non-const)
     */
    explicit PerformanceModel(Calibrator &calibrator);

    /**
     * Predict the performance of a launch from its extracted input.
     * Const so a what-if sweep can share one model. The referenced
     * calibrator memoizes synthetic benchmarks internally under its
     * own mutex, so concurrent predict() calls on one model are safe
     * (they serialize on the calibrator's device when a benchmark
     * actually runs).
     */
    Prediction predict(const ModelInput &input) const;

    /**
     * Predict straight from a shared functional-simulation artifact,
     * extracting the model inputs through @p extractor (whose spec
     * must be the one being predicted for). No simulation happens —
     * the profile already carries the dynamic statistics.
     */
    Prediction
    predict(const std::shared_ptr<const funcsim::KernelProfile> &profile,
            const InfoExtractor &extractor) const
    {
        return predict(extractor.extract(*profile));
    }

    /** Cap on synthetic benchmark grid size (plateau region). */
    static constexpr int kMaxSyntheticBlocks = 120;
    static constexpr int kMaxSyntheticRequests = 256;

  private:
    Calibrator &calibrator_;
};

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_PERF_MODEL_H
