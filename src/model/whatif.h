/**
 * @file
 * Quantitative what-if analysis (paper Sections 3 and 6): before
 * spending programming effort, predict what an optimization would buy
 * by editing the model's *inputs* — remove bank conflicts, change the
 * warp-level parallelism, coalesce the global traffic — and
 * re-predicting. This is how the paper decides the CR padding is worth
 * implementing before writing it.
 */

#ifndef GPUPERF_MODEL_WHATIF_H
#define GPUPERF_MODEL_WHATIF_H

#include "model/perf_model.h"

namespace gpuperf {
namespace model {

/** One hypothetical change and its predicted effect. */
struct WhatIfResult
{
    Prediction before;
    Prediction after;

    double speedup() const
    {
        return after.totalSeconds > 0.0
                   ? before.totalSeconds / after.totalSeconds
                   : 1.0;
    }
};

/**
 * Predict the effect of removing all shared-memory bank conflicts
 * (each stage's transactions drop to its conflict-free count) — the
 * question answered before implementing CR-NBC.
 */
WhatIfResult whatIfNoBankConflicts(const PerformanceModel &model,
                                   const ModelInput &input);

/**
 * Predict the effect of running every stage at @p warps warps per SM
 * (e.g. from raising an occupancy ceiling).
 */
WhatIfResult whatIfWarpsPerSm(const PerformanceModel &model,
                              const ModelInput &input, double warps);

/**
 * Predict the effect of perfectly coalesced global traffic: each
 * stage's effective transactions shrink by the ratio of requested to
 * transferred bytes.
 */
WhatIfResult whatIfPerfectCoalescing(const PerformanceModel &model,
                                     const ModelInput &input);

/**
 * Predict the effect of recovering @p fraction of the coalescing
 * waste: 0.0 leaves the traffic untouched, 1.0 is
 * whatIfPerfectCoalescing(), values in between interpolate the
 * effective transaction count linearly. Used by sweep grids to ask
 * "how much restructuring effort is enough?".
 */
WhatIfResult whatIfCoalescingFraction(const PerformanceModel &model,
                                      const ModelInput &input,
                                      double fraction);

/**
 * Overloads reusing a precomputed baseline prediction for @p input
 * (sweeps over many hypotheses predict the unmodified input once,
 * not once per hypothesis).
 */
WhatIfResult whatIfNoBankConflicts(const PerformanceModel &model,
                                   const ModelInput &input,
                                   const Prediction &before);
WhatIfResult whatIfWarpsPerSm(const PerformanceModel &model,
                              const ModelInput &input, double warps,
                              const Prediction &before);
WhatIfResult whatIfCoalescingFraction(const PerformanceModel &model,
                                      const ModelInput &input,
                                      double fraction,
                                      const Prediction &before);

/**
 * Speedup if the overall bottleneck component were removed entirely
 * and the next component became binding (the paper's "foresee the
 * benefit of removing a certain bottleneck").
 */
double bottleneckRemovalCeiling(const Prediction &prediction);

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_WHATIF_H
