#include "model/extractor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gpuperf {
namespace model {

double
ModelInput::totalEffective64Xacts() const
{
    double sum = 0.0;
    for (const auto &s : stages)
        sum += s.effective64Xacts;
    return sum;
}

InfoExtractor::InfoExtractor(const arch::GpuSpec &spec)
    : spec_(spec)
{
}

ModelInput
InfoExtractor::extract(const funcsim::DynamicStats &stats,
                       const arch::KernelResources &resources) const
{
    GPUPERF_ASSERT(!stats.stages.empty(), "no stages to extract");

    ModelInput input;
    input.gridDim = stats.gridDim;
    input.blockDim = stats.blockDim;
    input.occupancy = arch::computeOccupancy(spec_, resources);
    const int blocks_per_sm_by_grid = std::max(
        1, (stats.gridDim + spec_.numSms - 1) / spec_.numSms);
    input.concurrentBlocksPerSm =
        std::min(input.occupancy.residentBlocks, blocks_per_sm_by_grid);
    input.stagesSerialized = input.concurrentBlocksPerSm == 1;

    // Port-service-time equivalence constants: the time a transaction
    // of size s occupies the memory pipeline is overhead + s / rate;
    // these are fit from synthetic-benchmark measurements at two
    // transaction sizes (here taken from the machine description).
    const double rate = spec_.clusterBytesPerCycle();
    const double service64 = spec_.transactionOverheadCycles + 64.0 / rate;

    for (const auto &s : stats.stages) {
        StageInput si;
        si.typeCounts = s.typeCounts;
        si.madCount = s.madCount;
        si.totalWarpInstrs = s.totalWarpInstrs;
        si.sharedTransactions = s.sharedTransactions;
        si.sharedTransactionsIdeal = s.sharedTransactionsIdeal;
        si.sharedBytes = s.sharedBytes;
        si.globalTransactions = s.globalTransactions;
        si.globalBytes = s.globalBytes;
        si.globalRequestBytes = s.globalRequestBytes;

        double service = 0.0;
        for (const auto &[size, count] : s.globalXactBySize) {
            service += count * (spec_.transactionOverheadCycles +
                                static_cast<double>(size) / rate);
        }
        si.effective64Xacts = service / service64;

        si.activeWarpsPerSm =
            std::max(1.0, s.activeWarpsPerBlock) *
            input.concurrentBlocksPerSm;
        si.activeWarpsPerSm = std::min(
            si.activeWarpsPerSm, static_cast<double>(spec_.maxWarpsPerSm));
        input.stages.push_back(si);
    }
    return input;
}

} // namespace model
} // namespace gpuperf
