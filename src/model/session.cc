#include "model/session.h"

namespace gpuperf {
namespace model {

AnalysisSession::AnalysisSession(const arch::GpuSpec &spec,
                                 const std::string &calibration_cache)
    : device_(spec), calibrator_(device_), extractor_(spec),
      model_(calibrator_)
{
    if (!calibration_cache.empty())
        calibrator_.setCacheFile(calibration_cache);
}

Analysis
AnalysisSession::analyze(const isa::Kernel &kernel,
                         const funcsim::LaunchConfig &cfg,
                         funcsim::GlobalMemory &gmem,
                         funcsim::RunOptions options)
{
    Measurement m = device_.run(kernel, cfg, gmem, options);
    arch::KernelResources res;
    res.registersPerThread = kernel.numRegisters();
    res.sharedBytesPerBlock = kernel.sharedBytes();
    res.threadsPerBlock = cfg.blockDim;
    return analyzeMeasured(std::move(m), res);
}

Analysis
AnalysisSession::analyzeMeasured(Measurement measurement,
                                 const arch::KernelResources &resources)
{
    Analysis a;
    a.input = extractor_.extract(measurement.stats, resources);
    a.prediction = model_.predict(a.input);
    a.metrics = computeMetrics(measurement.stats);
    a.measurement = std::move(measurement);
    return a;
}

} // namespace model
} // namespace gpuperf
