#include "model/session.h"

#include "common/logging.h"

namespace gpuperf {
namespace model {

AnalysisSession::AnalysisSession(const arch::GpuSpec &spec,
                                 const SessionConfig &config)
    : device_(spec, config), calibrator_(device_), extractor_(spec),
      model_(calibrator_)
{
    if (!config.calibrationCache.empty())
        calibrator_.setCacheFile(config.calibrationCache);
    if (config.tables)
        calibrator_.adoptTables(config.tables);
}

Analysis
AnalysisSession::analyze(const isa::Kernel &kernel,
                         const funcsim::LaunchConfig &cfg,
                         funcsim::GlobalMemory &gmem,
                         funcsim::RunOptions options)
{
    // One-shot path: same simulations in the same order as
    // profile() + analyze(profile) — bit-identical results, pinned by
    // tests/test_profile.cc — without the profile-identity work
    // (input-image hash, stats copy) only sharing would need.
    Measurement m = device_.run(kernel, cfg, gmem, options);
    arch::KernelResources res;
    res.registersPerThread = kernel.numRegisters();
    res.sharedBytesPerBlock = kernel.sharedBytes();
    res.threadsPerBlock = cfg.blockDim;
    return analyzeMeasured(std::move(m), res);
}

Analysis
AnalysisSession::analyze(
    const std::shared_ptr<const funcsim::KernelProfile> &profile)
{
    GPUPERF_ASSERT(profile != nullptr, "cannot analyze a null profile");
    Measurement m = device_.measure(*profile);
    return analyzeMeasured(std::move(m), profile->resources);
}

Analysis
AnalysisSession::analyze(
    const std::shared_ptr<const funcsim::KernelProfile> &profile,
    const std::shared_ptr<const timing::TimingResult> &timing)
{
    GPUPERF_ASSERT(profile != nullptr, "cannot analyze a null profile");
    GPUPERF_ASSERT(timing != nullptr, "cannot analyze a null timing");
    Measurement m = device_.measure(*profile, *timing);
    return analyzeMeasured(std::move(m), profile->resources);
}

Analysis
AnalysisSession::analyzeMeasured(Measurement measurement,
                                 const arch::KernelResources &resources)
{
    Analysis a;
    a.input = extractor_.extract(measurement.stats, resources);
    a.prediction = model_.predict(a.input);
    a.metrics = computeMetrics(measurement.stats);
    a.measurement = std::move(measurement);
    return a;
}

} // namespace model
} // namespace gpuperf
