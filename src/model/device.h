/**
 * @file
 * The "hardware" a model is calibrated against.
 *
 * In the paper this is a physical GTX 285; here it is the functional
 * simulator (for dynamic statistics) plus the timing simulator (for
 * measured execution times), glued behind one interface so the
 * analytical model never peeks inside the machine.
 */

#ifndef GPUPERF_MODEL_DEVICE_H
#define GPUPERF_MODEL_DEVICE_H

#include <memory>

#include "arch/gpu_spec.h"
#include "funcsim/interpreter.h"
#include "timing/simulator.h"

namespace gpuperf {
namespace model {

/** Combined functional + timing result of one kernel launch. */
struct Measurement
{
    funcsim::DynamicStats stats;
    timing::TimingResult timing;

    double seconds() const { return timing.seconds; }
    double milliseconds() const { return timing.milliseconds(); }
};

/**
 * A simulated GTX 285-class device.
 *
 * Owns the functional and timing simulators; run() executes a kernel
 * functionally (collecting traces) and then replays it for timing.
 */
class SimulatedDevice
{
  public:
    explicit SimulatedDevice(const arch::GpuSpec &spec);

    /**
     * Execute and time a kernel.
     *
     * @param kernel  the kernel
     * @param cfg     launch shape
     * @param gmem    device memory
     * @param options functional-run options (collectTrace is forced on)
     */
    Measurement run(const isa::Kernel &kernel,
                    const funcsim::LaunchConfig &cfg,
                    funcsim::GlobalMemory &gmem,
                    funcsim::RunOptions options = {});

    const arch::GpuSpec &spec() const { return spec_; }
    funcsim::FunctionalSimulator &funcSim() { return funcSim_; }
    const timing::TimingSimulator &timingSim() const { return timingSim_; }

  private:
    arch::GpuSpec spec_;
    funcsim::FunctionalSimulator funcSim_;
    timing::TimingSimulator timingSim_;
};

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_DEVICE_H
