/**
 * @file
 * The "hardware" a model is calibrated against.
 *
 * In the paper this is a physical GTX 285; here it is the functional
 * simulator (for dynamic statistics) plus the timing simulator (for
 * measured execution times), glued behind one interface so the
 * analytical model never peeks inside the machine.
 */

#ifndef GPUPERF_MODEL_DEVICE_H
#define GPUPERF_MODEL_DEVICE_H

#include <memory>
#include <string>

#include "arch/gpu_spec.h"
#include "funcsim/interpreter.h"
#include "funcsim/profile.h"
#include "timing/simulator.h"

namespace gpuperf {
namespace model {

struct CalibrationTables; // model/calibration.h

/**
 * Construction-time configuration shared by SimulatedDevice and
 * AnalysisSession — the one place the old ctor-overload sprawl
 * (calibration-cache string + engine enum + adopted-tables variants)
 * collapsed into. Every field has a sensible default, so callers set
 * only what they mean:
 *
 *     model::SessionConfig cfg;
 *     cfg.engine = timing::ReplayEngine::kAuto;
 *     model::AnalysisSession session(spec, cfg);
 *
 * SimulatedDevice reads only `engine`; the calibration fields apply
 * to AnalysisSession (which owns a calibrator).
 */
struct SessionConfig
{
    /**
     * Optional file path where calibration tables are cached across
     * processes ("" = no cache). Legacy text format; batch callers
     * should prefer a store directory (store::CalibrationStore).
     */
    std::string calibrationCache;

    /**
     * Timing replay engine for the device. kAuto selects per launch;
     * the engines are bit-identical, so this never changes results —
     * only the replay loop producing them.
     */
    timing::ReplayEngine engine = timing::ReplayEngine::kEventDriven;

    /**
     * Pre-calibrated tables to adopt at construction (e.g. shared by
     * another session for the same spec, or loaded from a store); the
     * microbenchmark sweep is skipped entirely. Null = calibrate
     * lazily on first use.
     */
    std::shared_ptr<const CalibrationTables> tables;
};

/** Combined functional + timing result of one kernel launch. */
struct Measurement
{
    funcsim::DynamicStats stats;
    timing::TimingResult timing;

    double seconds() const { return timing.seconds; }
    double milliseconds() const { return timing.milliseconds(); }
};

/**
 * A simulated GTX 285-class device.
 *
 * Owns the functional and timing simulators; run() executes a kernel
 * functionally (collecting traces) and then replays it for timing.
 */
class SimulatedDevice
{
  public:
    /**
     * Configured construction (reads SessionConfig::engine only; the
     * PR 5 engine-argument forwarder is gone — the default config
     * keeps bare SimulatedDevice(spec) working).
     */
    explicit SimulatedDevice(const arch::GpuSpec &spec,
                             const SessionConfig &config = {});

    /**
     * Execute and time a kernel.
     *
     * @param kernel  the kernel
     * @param cfg     launch shape
     * @param gmem    device memory
     * @param options functional-run options (collectTrace is forced on)
     */
    Measurement run(const isa::Kernel &kernel,
                    const funcsim::LaunchConfig &cfg,
                    funcsim::GlobalMemory &gmem,
                    funcsim::RunOptions options = {});

    /**
     * Run only the functional half and package it as a shareable
     * profile. profile() + measure() produces bit-identical results
     * to run() (same simulations in the same order); run() merely
     * skips the profile-identity work (input-image hashing, stats
     * copy) a one-shot measurement does not need.
     */
    std::shared_ptr<const funcsim::KernelProfile>
    profile(const isa::Kernel &kernel, const funcsim::LaunchConfig &cfg,
            funcsim::GlobalMemory &gmem, funcsim::RunOptions options = {});

    /**
     * Replay a profile on this device's timing simulator. The profile
     * may come from any device whose funcsim fingerprint matches this
     * spec; the launch-ceiling checks the functional simulator would
     * have applied are re-validated against THIS spec, so sharing a
     * profile never hides a configuration error the per-cell pipeline
     * would have reported.
     */
    Measurement measure(const funcsim::KernelProfile &profile) const;

    /**
     * Like measure(profile) but with the timing replay already done:
     * @p timing MUST be what this device's timing simulator would
     * produce for @p profile (i.e. computed under a spec with this
     * spec's arch::TimingFingerprint — the timing memo's contract),
     * making the result bit-identical to measure(profile) without
     * replaying. The per-spec launch-ceiling revalidation still runs:
     * a memoized measurement must fail exactly where a fresh one
     * would.
     */
    Measurement measure(const funcsim::KernelProfile &profile,
                        const timing::TimingResult &timing) const;

    const arch::GpuSpec &spec() const { return spec_; }
    funcsim::FunctionalSimulator &funcSim() { return funcSim_; }
    const timing::TimingSimulator &timingSim() const { return timingSim_; }

  private:
    arch::GpuSpec spec_;
    funcsim::FunctionalSimulator funcSim_;
    timing::TimingSimulator timingSim_;
};

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_DEVICE_H
