/**
 * @file
 * Microbenchmark-driven calibration (paper Figure 2 / Figure 3).
 *
 * The calibrator measures, against a device:
 *  - instruction throughput per type as a function of warps per SM,
 *  - shared-memory throughput (in serialized half-warp passes/s, which
 *    is bandwidth divided by 64 B) as a function of warps per SM,
 *  - global-memory throughput for arbitrary launch configurations via
 *    the synthetic streaming benchmark (memoized).
 */

#ifndef GPUPERF_MODEL_CALIBRATION_H
#define GPUPERF_MODEL_CALIBRATION_H

#include <array>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "arch/instr_class.h"
#include "common/once_map.h"
#include "model/device.h"

namespace gpuperf {
namespace model {

/** Lookup tables produced by calibration. */
struct CalibrationTables
{
    /** Max warps per SM covered by the tables. */
    int maxWarps = 0;
    /**
     * instrThroughput[type][w] = warp-instructions per second with w
     * warps resident per SM (w = 1..maxWarps; index 0 unused).
     */
    std::array<std::vector<double>, arch::kNumInstrTypes> instrThroughput;
    /** sharedPassThroughput[w] = serialized half-warp passes per second. */
    std::vector<double> sharedPassThroughput;
    /** Bytes carried by one conflict-free pass (16 lanes * 4 B). */
    int bytesPerPass = 64;

    /** Linear interpolation, clamped to [1, maxWarps]. */
    double lookupInstr(arch::InstrType type, double warps) const;
    double lookupSharedPasses(double warps) const;
    /** Shared bandwidth in bytes/s at @p warps. */
    double sharedBandwidth(double warps) const;
};

/** Result of one synthetic global-memory benchmark run. */
struct GlobalBenchResult
{
    double seconds = 0.0;
    uint64_t transactions = 0;   ///< hardware transactions issued
    uint64_t requestBytes = 0;   ///< bytes the program asked for
    /** Useful-byte bandwidth, bytes/s (the paper's Figure 3 metric). */
    double bandwidth = 0.0;
    /** Transactions per second (used by the model). */
    double xactThroughput = 0.0;
};

/**
 * Thread-safe compute-once memo of synthetic global-benchmark
 * results, keyed by (blocks, threads/block, requests/thread) and
 * shareable between calibrators for the same spec: the batch driver
 * gives all evaluations of one machine variant a single memo so each
 * distinct launch shape is simulated once per batch, not once per
 * session.
 */
using GlobalBenchMemo =
    OnceMap<std::tuple<int, int, int>, GlobalBenchResult>;

/**
 * Runs and caches microbenchmarks on a device.
 *
 * Lazy calibration and the global-benchmark memo are guarded by an
 * internal mutex, so concurrent PerformanceModel::predict() calls
 * against one calibrator are safe (they serialize on the device).
 * The owning device itself is not otherwise synchronized: concurrent
 * SimulatedDevice::run() calls from outside remain the caller's
 * responsibility.
 */
class Calibrator
{
  public:
    explicit Calibrator(SimulatedDevice &device);

    /**
     * Instruction + shared tables; first call runs the benchmarks.
     * The reference stays valid only until the next adoptTables() /
     * setTablesForTesting() on this calibrator — code that might
     * overlap with table replacement must hold sharedTables()
     * instead.
     */
    const CalibrationTables &tables();

    /**
     * The tables as an immutable shared handle, so many sessions (e.g.
     * the batch driver's per-thread sessions) can reuse one
     * calibration without copying or re-running the sweep. First call
     * runs the benchmarks, like tables().
     */
    std::shared_ptr<const CalibrationTables> sharedTables();

    /**
     * Adopt tables calibrated elsewhere (typically another session for
     * the same GpuSpec, via sharedTables()). Skips the microbenchmark
     * sweep entirely; the caller is responsible for spec compatibility.
     */
    void adoptTables(std::shared_ptr<const CalibrationTables> tables);

    /** True once tables are available without further benchmarking. */
    bool calibrated() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return tables_ != nullptr;
    }

    /**
     * Replace this calibrator's global-benchmark memo with one shared
     * with other calibrators for the same spec.
     */
    void shareGlobalMemo(std::shared_ptr<GlobalBenchMemo> memo);

    /** This calibrator's memo (always non-null), for sharing onward. */
    std::shared_ptr<GlobalBenchMemo> globalMemo() const;

    /**
     * Cache the tables in @p path: tables() loads them if the file
     * exists and matches this device, and writes it after calibrating.
     * Avoids re-running the microbenchmark sweep in every process.
     */
    void setCacheFile(const std::string &path);

    /** Inject tables directly (unit tests of downstream consumers). */
    void setTablesForTesting(CalibrationTables tables);

    /**
     * Synthetic global-memory benchmark at a launch configuration
     * (paper Section 4.3): fully coalesced streaming reads.
     *
     * @param blocks              grid size
     * @param threads_per_block   block size
     * @param requests_per_thread 4 B load instructions per thread
     */
    GlobalBenchResult runGlobalBench(int blocks, int threads_per_block,
                                     int requests_per_thread);

    SimulatedDevice &device() { return device_; }

    /** Warp counts the instruction/shared sweep samples. */
    static std::vector<int> sweepWarpCounts(const arch::GpuSpec &spec);

  private:
    /** Launch shape realizing @p warps warps per SM. */
    funcsim::LaunchConfig configForWarps(int warps) const;

    void calibrate();

    /** Spec-derived string guarding cache-file validity. */
    std::string fingerprint() const;
    bool loadCache();
    void saveCache() const;

    SimulatedDevice &device_;
    /** Guards tables_, the memo handle, cacheFile_ and device runs. */
    mutable std::mutex mutex_;
    std::shared_ptr<const CalibrationTables> tables_;
    std::shared_ptr<GlobalBenchMemo> globalMemo_;
    std::string cacheFile_;
};

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_CALIBRATION_H
