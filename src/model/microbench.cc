#include "model/microbench.h"

#include "common/logging.h"
#include "isa/builder.h"

namespace gpuperf {
namespace model {

using isa::CmpOp;
using isa::Kernel;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;
using isa::SpecialReg;

namespace {

/** Emit gtid = ctaid * ntid + tid into a fresh register. */
Reg
emitGlobalTid(KernelBuilder &b)
{
    Reg tid = b.reg();
    Reg ctaid = b.reg();
    Reg ntid = b.reg();
    Reg gtid = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.s2r(ctaid, SpecialReg::kCtaid);
    b.s2r(ntid, SpecialReg::kNtid);
    b.imad(gtid, ctaid, ntid, tid);
    return gtid;
}

void
checkAddress(uint64_t base, const char *what)
{
    if (base >= (1ull << 31))
        fatal("%s address %llu does not fit a 32-bit immediate", what,
              static_cast<unsigned long long>(base));
}

} // namespace

Kernel
makeInstructionBench(arch::InstrType type, int unroll, int iters,
                     uint64_t out_base)
{
    GPUPERF_ASSERT(unroll > 0 && iters > 0, "bench needs positive sizes");
    checkAddress(out_base, "instruction bench output");

    KernelBuilder b(std::string("ubench_instr_") +
                    arch::instrTypeName(type));
    Reg x = b.reg();
    Reg y = b.reg();
    Reg z = b.reg();
    Reg i = b.reg();
    Pred p = b.pred();

    b.movImmF(x, 1.5f);
    b.movImmF(y, 1.0f);
    b.movImmF(z, 0.0f);
    b.movImm(i, 0);
    b.beginLoop();
    b.setpIImm(p, CmpOp::kGe, i, iters);
    b.brk(p);
    for (int u = 0; u < unroll; ++u) {
        switch (type) {
          case arch::InstrType::TypeI:
            b.fmul(x, x, y);
            break;
          case arch::InstrType::TypeII:
            b.fmad(x, x, y, z);
            break;
          case arch::InstrType::TypeIII:
            b.rcp(x, x);
            break;
          case arch::InstrType::TypeIV:
            b.dadd(x, x, z);
            break;
        }
    }
    b.iaddImm(i, i, 1);
    b.endLoop();

    Reg gtid = emitGlobalTid(b);
    Reg addr = b.reg();
    b.shlImm(addr, gtid, 2);
    b.iaddImm(addr, addr, static_cast<int32_t>(out_base));
    b.stg(addr, x);
    return b.build(0);
}

Kernel
makeSharedCopyBench(int block_dim, int iters, uint64_t out_base)
{
    GPUPERF_ASSERT(block_dim > 0 && iters > 0, "bench needs positive sizes");
    checkAddress(out_base, "shared bench output");

    constexpr int kUnroll = 8;
    const int loop_iters = (iters + kUnroll - 1) / kUnroll;

    KernelBuilder b("ubench_shared_copy");
    Reg tid = b.reg();
    Reg addr = b.reg();
    Reg r = b.regRange(kUnroll);
    Reg i = b.reg();
    Pred p = b.pred();

    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(addr, tid, 2);
    b.movImm(i, 0);
    const int32_t half = block_dim * 4;
    b.beginLoop();
    b.setpIImm(p, CmpOp::kGe, i, loop_iters);
    b.brk(p);
    // Batched loads then stores: one warp's copy rate is limited by
    // the per-warp shared pass rate, not by the dependency chain, so
    // bandwidth scales with warp count (paper Figure 2, right).
    for (int u = 0; u < kUnroll; ++u)
        b.lds(static_cast<Reg>(r + u), addr, 0);
    for (int u = 0; u < kUnroll; ++u)
        b.sts(addr, static_cast<Reg>(r + u), half);
    b.iaddImm(i, i, 1);
    b.endLoop();

    Reg gtid = emitGlobalTid(b);
    Reg out = b.reg();
    b.shlImm(out, gtid, 2);
    b.iaddImm(out, out, static_cast<int32_t>(out_base));
    b.stg(out, r);
    return b.build(block_dim * 8);
}

Kernel
makeGlobalStreamBench(int requests, int batch, int total_threads,
                      uint64_t buf_base, uint32_t buf_bytes)
{
    GPUPERF_ASSERT(requests > 0 && batch > 0, "bench needs positive sizes");
    GPUPERF_ASSERT((buf_bytes & (buf_bytes - 1)) == 0,
                   "stream buffer must be a power of two");
    checkAddress(buf_base + buf_bytes, "stream buffer");

    const int iters = (requests + batch - 1) / batch;
    const int32_t stride = total_threads * 4;
    GPUPERF_ASSERT(static_cast<int64_t>(stride) * batch < (1ll << 31),
                   "batch stride overflows the immediate field");

    KernelBuilder b("ubench_global_stream");
    Reg gtid = emitGlobalTid(b);
    Reg idx = b.reg();
    Reg addr = b.reg();
    Reg acc = b.reg();
    Reg i = b.reg();
    Reg v = b.regRange(batch);
    Pred p = b.pred();

    b.shlImm(idx, gtid, 2);
    b.andImm(idx, idx, static_cast<int32_t>(buf_bytes - 1));
    b.movImmF(acc, 0.0f);
    b.movImm(i, 0);
    b.beginLoop();
    b.setpIImm(p, CmpOp::kGe, i, iters);
    b.brk(p);
    b.iaddImm(addr, idx, static_cast<int32_t>(buf_base));
    // Batch the loads so several transactions are in flight per warp
    // before the dependent adds consume them.
    for (int k = 0; k < batch; ++k)
        b.ldg(static_cast<Reg>(v + k), addr, k * stride);
    for (int k = 0; k < batch; ++k)
        b.fadd(acc, acc, static_cast<Reg>(v + k));
    b.iaddImm(idx, idx, stride * batch);
    b.andImm(idx, idx, static_cast<int32_t>(buf_bytes - 1));
    b.iaddImm(i, i, 1);
    b.endLoop();

    Reg out = b.reg();
    b.shlImm(out, gtid, 2);
    b.andImm(out, out, static_cast<int32_t>(buf_bytes - 1));
    b.iaddImm(out, out, static_cast<int32_t>(buf_base));
    b.stg(out, acc);
    return b.build(0);
}

} // namespace model
} // namespace gpuperf
