#include "model/calibration.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"
#include "model/microbench.h"

namespace gpuperf {
namespace model {

namespace {

/** Clamped linear interpolation over a 1-based table. */
double
interp(const std::vector<double> &table, double warps)
{
    GPUPERF_ASSERT(table.size() >= 2, "empty calibration table");
    const double max_w = static_cast<double>(table.size() - 1);
    const double w = std::clamp(warps, 1.0, max_w);
    const int lo = static_cast<int>(std::floor(w));
    const int hi = std::min<int>(lo + 1, static_cast<int>(max_w));
    const double frac = w - lo;
    return table[lo] * (1.0 - frac) + table[hi] * frac;
}

} // namespace

double
CalibrationTables::lookupInstr(arch::InstrType type, double warps) const
{
    return interp(instrThroughput[static_cast<int>(type)], warps);
}

double
CalibrationTables::lookupSharedPasses(double warps) const
{
    return interp(sharedPassThroughput, warps);
}

double
CalibrationTables::sharedBandwidth(double warps) const
{
    return lookupSharedPasses(warps) * bytesPerPass;
}

Calibrator::Calibrator(SimulatedDevice &device)
    : device_(device),
      globalMemo_(std::make_shared<GlobalBenchMemo>())
{
}

void
Calibrator::shareGlobalMemo(std::shared_ptr<GlobalBenchMemo> memo)
{
    GPUPERF_ASSERT(memo != nullptr, "cannot share a null memo");
    std::lock_guard<std::mutex> lock(mutex_);
    globalMemo_ = std::move(memo);
}

std::shared_ptr<GlobalBenchMemo>
Calibrator::globalMemo() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return globalMemo_;
}

std::vector<int>
Calibrator::sweepWarpCounts(const arch::GpuSpec &spec)
{
    std::vector<int> warps;
    const int one_block_max = spec.maxThreadsPerBlock / spec.warpSize;
    for (int w = 1; w <= spec.maxWarpsPerSm; ++w) {
        if (w <= one_block_max || w % 2 == 0)
            warps.push_back(w);
    }
    return warps;
}

funcsim::LaunchConfig
Calibrator::configForWarps(int warps) const
{
    const arch::GpuSpec &spec = device_.spec();
    const int one_block_max = spec.maxThreadsPerBlock / spec.warpSize;
    funcsim::LaunchConfig cfg;
    if (warps <= one_block_max) {
        cfg.gridDim = spec.numSms;
        cfg.blockDim = warps * spec.warpSize;
    } else {
        GPUPERF_ASSERT(warps % 2 == 0,
                       "odd warp counts above one block are unreachable");
        cfg.gridDim = 2 * spec.numSms;
        cfg.blockDim = warps / 2 * spec.warpSize;
    }
    return cfg;
}

void
Calibrator::calibrate()
{
    const arch::GpuSpec &spec = device_.spec();
    CalibrationTables tables;
    tables.maxWarps = spec.maxWarpsPerSm;
    tables.bytesPerPass = spec.sharedIssueGroup * spec.sharedBankWidth;

    const auto warp_counts = sweepWarpCounts(spec);
    for (auto &t : tables.instrThroughput)
        t.assign(tables.maxWarps + 1, 0.0);
    tables.sharedPassThroughput.assign(tables.maxWarps + 1, 0.0);

    // Large unroll keeps loop bookkeeping (4 type II ops/iteration)
    // from polluting the measured type's throughput.
    constexpr int kUnroll = 60;
    constexpr int kIters = 8;
    constexpr int kSharedIters = 400;
    const size_t scratch = 8u << 20;
    const uint64_t out_base = 4096;

    for (int w : warp_counts) {
        const funcsim::LaunchConfig cfg = configForWarps(w);
        for (arch::InstrType type : arch::kAllInstrTypes) {
            isa::Kernel k =
                makeInstructionBench(type, kUnroll, kIters, out_base);
            funcsim::GlobalMemory gmem(scratch);
            gmem.alloc(static_cast<size_t>(cfg.gridDim) * cfg.blockDim * 4);
            funcsim::RunOptions opts;
            opts.homogeneous = true;
            Measurement m = device_.run(k, cfg, gmem, opts);
            const uint64_t count = m.stats.totalType(type);
            GPUPERF_ASSERT(count > 0, "instruction bench executed nothing");
            tables.instrThroughput[static_cast<int>(type)][w] =
                count / m.seconds();
        }
        {
            isa::Kernel k =
                makeSharedCopyBench(cfg.blockDim, kSharedIters, out_base);
            funcsim::GlobalMemory gmem(scratch);
            gmem.alloc(static_cast<size_t>(cfg.gridDim) * cfg.blockDim * 4);
            funcsim::RunOptions opts;
            opts.homogeneous = true;
            Measurement m = device_.run(k, cfg, gmem, opts);
            const uint64_t passes = m.stats.totalSharedTransactions();
            GPUPERF_ASSERT(passes > 0, "shared bench executed nothing");
            tables.sharedPassThroughput[w] = passes / m.seconds();
        }
    }

    // Fill unreachable (odd, > one-block-max) warp counts by linear
    // interpolation between measured neighbours.
    auto fill_gaps = [&](std::vector<double> &t) {
        for (int w = 1; w <= tables.maxWarps; ++w) {
            if (t[w] != 0.0)
                continue;
            int lo = w - 1;
            int hi = w + 1;
            while (hi <= tables.maxWarps && t[hi] == 0.0)
                ++hi;
            if (hi > tables.maxWarps) {
                t[w] = t[lo];
            } else {
                t[w] = 0.5 * (t[lo] + t[hi]);
            }
        }
    };
    for (auto &t : tables.instrThroughput)
        fill_gaps(t);
    fill_gaps(tables.sharedPassThroughput);

    tables_ =
        std::make_shared<const CalibrationTables>(std::move(tables));
}

void
Calibrator::setCacheFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cacheFile_ = path;
}

void
Calibrator::setTablesForTesting(CalibrationTables tables)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tables_ =
        std::make_shared<const CalibrationTables>(std::move(tables));
}

void
Calibrator::adoptTables(std::shared_ptr<const CalibrationTables> tables)
{
    GPUPERF_ASSERT(tables != nullptr, "cannot adopt null tables");
    std::lock_guard<std::mutex> lock(mutex_);
    tables_ = std::move(tables);
}

std::string
Calibrator::fingerprint() const
{
    // Full-spec fingerprint so a cache file can never be reused for a
    // device that simulates differently in any way.
    return "v4|" + device_.spec().fingerprint();
}

bool
Calibrator::loadCache()
{
    if (cacheFile_.empty())
        return false;
    std::ifstream in(cacheFile_);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line != fingerprint())
        return false;
    CalibrationTables t;
    if (!(in >> t.maxWarps >> t.bytesPerPass) || t.maxWarps <= 0 ||
        t.maxWarps > 1024) {
        return false;
    }
    for (auto &table : t.instrThroughput) {
        table.assign(t.maxWarps + 1, 0.0);
        for (int w = 1; w <= t.maxWarps; ++w) {
            if (!(in >> table[w]))
                return false;
        }
    }
    t.sharedPassThroughput.assign(t.maxWarps + 1, 0.0);
    for (int w = 1; w <= t.maxWarps; ++w) {
        if (!(in >> t.sharedPassThroughput[w]))
            return false;
    }
    tables_ = std::make_shared<const CalibrationTables>(std::move(t));
    return true;
}

void
Calibrator::saveCache() const
{
    if (cacheFile_.empty() || !tables_)
        return;
    // Write-then-rename so concurrent readers never see a torn file.
    const std::string tmp =
        cacheFile_ + ".tmp." + std::to_string(::getpid());
    std::ofstream out(tmp);
    if (!out) {
        warn("cannot write calibration cache '%s'", cacheFile_.c_str());
        return;
    }
    out << fingerprint() << "\n";
    out << tables_->maxWarps << " " << tables_->bytesPerPass << "\n";
    out.precision(17);
    for (const auto &table : tables_->instrThroughput) {
        for (int w = 1; w <= tables_->maxWarps; ++w)
            out << table[w] << " ";
        out << "\n";
    }
    for (int w = 1; w <= tables_->maxWarps; ++w)
        out << tables_->sharedPassThroughput[w] << " ";
    out << "\n";
    out.close();
    if (std::rename(tmp.c_str(), cacheFile_.c_str()) != 0)
        warn("cannot move calibration cache into '%s'",
             cacheFile_.c_str());
}

const CalibrationTables &
Calibrator::tables()
{
    return *sharedTables();
}

std::shared_ptr<const CalibrationTables>
Calibrator::sharedTables()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!tables_) {
        if (!loadCache()) {
            calibrate();
            saveCache();
        }
    }
    return tables_;
}

GlobalBenchResult
Calibrator::runGlobalBench(int blocks, int threads_per_block,
                           int requests_per_thread)
{
    GPUPERF_ASSERT(blocks > 0 && threads_per_block > 0 &&
                       requests_per_thread > 0,
                   "global bench needs a positive configuration");
    const auto key =
        std::make_tuple(blocks, threads_per_block, requests_per_thread);
    // Held across the device run: concurrent callers of THIS
    // calibrator serialize here (one device). Calibrators for other
    // sessions sharing only the memo run their own devices freely;
    // the memo makes sure each key's benchmark runs once in total.
    std::lock_guard<std::mutex> lock(mutex_);
    return globalMemo_->getOrCompute(key, [&]() {
        constexpr int kBatch = 8;
        constexpr uint32_t kBufBytes = 4u << 20;
        const int total_threads = blocks * threads_per_block;
        const size_t slack =
            static_cast<size_t>(kBatch) * total_threads * 4 + 4096;

        funcsim::GlobalMemory gmem(kBufBytes + slack + (1u << 20));
        const uint64_t buf = gmem.alloc(kBufBytes + slack, 4096);
        isa::Kernel k =
            makeGlobalStreamBench(requests_per_thread, kBatch,
                                  total_threads, buf, kBufBytes);
        funcsim::LaunchConfig cfg;
        cfg.gridDim = blocks;
        cfg.blockDim = threads_per_block;
        funcsim::RunOptions opts;
        opts.homogeneous = true;
        Measurement m = device_.run(k, cfg, gmem, opts);

        GlobalBenchResult res;
        res.seconds = m.seconds();
        res.transactions = m.stats.totalGlobalTransactions();
        res.requestBytes = 0;
        for (const auto &s : m.stats.stages)
            res.requestBytes += s.globalRequestBytes;
        res.bandwidth = res.requestBytes / res.seconds;
        res.xactThroughput = res.transactions / res.seconds;
        return res;
    });
}

} // namespace model
} // namespace gpuperf
