#include "model/whatif.h"

#include <algorithm>

namespace gpuperf {
namespace model {

WhatIfResult
whatIfNoBankConflicts(const PerformanceModel &model,
                      const ModelInput &input,
                      const Prediction &before)
{
    WhatIfResult r;
    r.before = before;
    ModelInput edited = input;
    for (auto &s : edited.stages)
        s.sharedTransactions = s.sharedTransactionsIdeal;
    r.after = model.predict(edited);
    return r;
}

WhatIfResult
whatIfNoBankConflicts(const PerformanceModel &model,
                      const ModelInput &input)
{
    return whatIfNoBankConflicts(model, input, model.predict(input));
}

WhatIfResult
whatIfWarpsPerSm(const PerformanceModel &model, const ModelInput &input,
                 double warps, const Prediction &before)
{
    WhatIfResult r;
    r.before = before;
    ModelInput edited = input;
    for (auto &s : edited.stages)
        s.activeWarpsPerSm = warps;
    r.after = model.predict(edited);
    return r;
}

WhatIfResult
whatIfWarpsPerSm(const PerformanceModel &model, const ModelInput &input,
                 double warps)
{
    return whatIfWarpsPerSm(model, input, warps,
                            model.predict(input));
}

WhatIfResult
whatIfPerfectCoalescing(const PerformanceModel &model,
                        const ModelInput &input)
{
    return whatIfCoalescingFraction(model, input, 1.0);
}

WhatIfResult
whatIfCoalescingFraction(const PerformanceModel &model,
                         const ModelInput &input, double fraction,
                         const Prediction &before)
{
    const double f = std::clamp(fraction, 0.0, 1.0);
    WhatIfResult r;
    r.before = before;
    ModelInput edited = input;
    for (auto &s : edited.stages) {
        if (s.globalBytes > 0) {
            const double efficiency =
                std::min(1.0,
                         static_cast<double>(s.globalRequestBytes) /
                             static_cast<double>(s.globalBytes));
            // Interpolate between today's traffic (factor 1) and the
            // perfectly coalesced traffic (factor = efficiency).
            s.effective64Xacts *= (1.0 - f) + f * efficiency;
        }
    }
    r.after = model.predict(edited);
    return r;
}

WhatIfResult
whatIfCoalescingFraction(const PerformanceModel &model,
                         const ModelInput &input, double fraction)
{
    return whatIfCoalescingFraction(model, input, fraction,
                                    model.predict(input));
}

double
bottleneckRemovalCeiling(const Prediction &prediction)
{
    if (prediction.totalSeconds <= 0.0)
        return 1.0;
    if (prediction.serialized) {
        // Per stage, drop the overall bottleneck component and take
        // the per-stage max of the remaining two.
        double after = 0.0;
        for (const auto &sp : prediction.stages) {
            double best = 0.0;
            for (Component c : {Component::kInstruction,
                                Component::kShared, Component::kGlobal}) {
                if (c == prediction.bottleneck)
                    continue;
                best = std::max(best, sp.component(c));
            }
            after += best;
        }
        return after > 0.0 ? prediction.totalSeconds / after : 1.0;
    }
    const double next =
        prediction.componentTotal(prediction.nextBottleneck);
    return next > 0.0 ? prediction.totalSeconds / next : 1.0;
}

} // namespace model
} // namespace gpuperf
