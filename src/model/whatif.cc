#include "model/whatif.h"

#include <algorithm>

namespace gpuperf {
namespace model {

WhatIfResult
whatIfNoBankConflicts(PerformanceModel &model, const ModelInput &input)
{
    WhatIfResult r;
    r.before = model.predict(input);
    ModelInput edited = input;
    for (auto &s : edited.stages)
        s.sharedTransactions = s.sharedTransactionsIdeal;
    r.after = model.predict(edited);
    return r;
}

WhatIfResult
whatIfWarpsPerSm(PerformanceModel &model, const ModelInput &input,
                 double warps)
{
    WhatIfResult r;
    r.before = model.predict(input);
    ModelInput edited = input;
    for (auto &s : edited.stages)
        s.activeWarpsPerSm = warps;
    r.after = model.predict(edited);
    return r;
}

WhatIfResult
whatIfPerfectCoalescing(PerformanceModel &model, const ModelInput &input)
{
    WhatIfResult r;
    r.before = model.predict(input);
    ModelInput edited = input;
    for (auto &s : edited.stages) {
        if (s.globalBytes > 0) {
            const double efficiency =
                static_cast<double>(s.globalRequestBytes) /
                static_cast<double>(s.globalBytes);
            s.effective64Xacts *= std::min(1.0, efficiency);
        }
    }
    r.after = model.predict(edited);
    return r;
}

double
bottleneckRemovalCeiling(const Prediction &prediction)
{
    if (prediction.totalSeconds <= 0.0)
        return 1.0;
    if (prediction.serialized) {
        // Per stage, drop the overall bottleneck component and take
        // the per-stage max of the remaining two.
        double after = 0.0;
        for (const auto &sp : prediction.stages) {
            double best = 0.0;
            for (Component c : {Component::kInstruction,
                                Component::kShared, Component::kGlobal}) {
                if (c == prediction.bottleneck)
                    continue;
                best = std::max(best, sp.component(c));
            }
            after += best;
        }
        return after > 0.0 ? prediction.totalSeconds / after : 1.0;
    }
    const double next =
        prediction.componentTotal(prediction.nextBottleneck);
    return next > 0.0 ? prediction.totalSeconds / next : 1.0;
}

} // namespace model
} // namespace gpuperf
