#include "model/perf_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gpuperf {
namespace model {

const char *
componentName(Component c)
{
    switch (c) {
      case Component::kInstruction:
        return "instruction pipeline";
      case Component::kShared:
        return "shared memory";
      case Component::kGlobal:
        return "global memory";
    }
    panic("unknown component %d", static_cast<int>(c));
}

double
StagePrediction::component(Component c) const
{
    switch (c) {
      case Component::kInstruction:
        return tInstr;
      case Component::kShared:
        return tShared;
      case Component::kGlobal:
        return tGlobal;
    }
    panic("unknown component %d", static_cast<int>(c));
}

double
Prediction::componentTotal(Component c) const
{
    switch (c) {
      case Component::kInstruction:
        return tInstrTotal;
      case Component::kShared:
        return tSharedTotal;
      case Component::kGlobal:
        return tGlobalTotal;
    }
    panic("unknown component %d", static_cast<int>(c));
}

PerformanceModel::PerformanceModel(Calibrator &calibrator)
    : calibrator_(calibrator)
{
}

namespace {

Component
largest(double t_instr, double t_shared, double t_global)
{
    if (t_global >= t_instr && t_global >= t_shared)
        return Component::kGlobal;
    if (t_shared >= t_instr)
        return Component::kShared;
    return Component::kInstruction;
}

Component
secondLargest(double t_instr, double t_shared, double t_global,
              Component first)
{
    switch (first) {
      case Component::kInstruction:
        return largest(-1.0, t_shared, t_global);
      case Component::kShared:
        return largest(t_instr, -1.0, t_global);
      case Component::kGlobal:
        return largest(t_instr, t_shared, -1.0);
    }
    panic("unknown component");
}

} // namespace

Prediction
PerformanceModel::predict(const ModelInput &input) const
{
    // Hold a shared reference for the whole prediction: a concurrent
    // adoptTables() on the calibrator must not free our tables.
    const std::shared_ptr<const CalibrationTables> tables_ptr =
        calibrator_.sharedTables();
    const CalibrationTables &tables = *tables_ptr;
    Prediction pred;
    pred.serialized = input.stagesSerialized;

    // Configuration for the matched synthetic global benchmark: the
    // program's own grid/block shape (capped to the saturated plateau)
    // and its per-thread transaction count (paper Section 4.3).
    const double total_threads =
        static_cast<double>(input.gridDim) * input.blockDim;
    const int synth_blocks =
        std::min(input.gridDim, kMaxSyntheticBlocks);
    const double xacts_total = input.totalEffective64Xacts();
    const int coalesce_group = 16;
    int synth_requests = static_cast<int>(std::lround(
        xacts_total * coalesce_group / std::max(total_threads, 1.0)));
    synth_requests =
        std::clamp(synth_requests, 1, kMaxSyntheticRequests);

    double xact_throughput = 0.0;
    if (xacts_total > 0.0) {
        xact_throughput =
            calibrator_
                .runGlobalBench(synth_blocks, input.blockDim,
                                synth_requests)
                .xactThroughput;
    }

    for (const auto &s : input.stages) {
        StagePrediction sp;
        sp.activeWarpsPerSm = s.activeWarpsPerSm;
        for (int t = 0; t < arch::kNumInstrTypes; ++t) {
            if (s.typeCounts[t] == 0)
                continue;
            sp.tInstr += s.typeCounts[t] /
                         tables.lookupInstr(
                             static_cast<arch::InstrType>(t),
                             s.activeWarpsPerSm);
        }
        if (s.sharedTransactions > 0) {
            sp.tShared = s.sharedTransactions /
                         tables.lookupSharedPasses(s.activeWarpsPerSm);
        }
        sp.sharedBandwidth = tables.sharedBandwidth(s.activeWarpsPerSm);
        if (s.effective64Xacts > 0.0 && xact_throughput > 0.0)
            sp.tGlobal = s.effective64Xacts / xact_throughput;

        sp.bottleneck = largest(sp.tInstr, sp.tShared, sp.tGlobal);
        sp.stageTime = std::max({sp.tInstr, sp.tShared, sp.tGlobal});

        pred.tInstrTotal += sp.tInstr;
        pred.tSharedTotal += sp.tShared;
        pred.tGlobalTotal += sp.tGlobal;
        pred.stages.push_back(sp);
    }

    if (pred.serialized) {
        pred.totalSeconds = 0.0;
        for (const auto &sp : pred.stages)
            pred.totalSeconds += sp.stageTime;
    } else {
        pred.totalSeconds = std::max(
            {pred.tInstrTotal, pred.tSharedTotal, pred.tGlobalTotal});
    }
    pred.bottleneck =
        largest(pred.tInstrTotal, pred.tSharedTotal, pred.tGlobalTotal);
    pred.nextBottleneck =
        secondLargest(pred.tInstrTotal, pred.tSharedTotal,
                      pred.tGlobalTotal, pred.bottleneck);
    return pred;
}

} // namespace model
} // namespace gpuperf
