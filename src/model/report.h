/**
 * @file
 * Diagnostic metrics and human-readable rendering of model results —
 * the "bottleneck causes" the paper's workflow reports (computational
 * density, bank-conflict penalty, coalescing efficiency, warp-level
 * parallelism).
 */

#ifndef GPUPERF_MODEL_REPORT_H
#define GPUPERF_MODEL_REPORT_H

#include <ostream>
#include <string>

#include "model/device.h"
#include "model/perf_model.h"

namespace gpuperf {
namespace model {

/** Program-level diagnostic metrics derived from dynamic statistics. */
struct ReportMetrics
{
    /** MAD instructions / total instructions (paper: ~80% for GEMM,
     *  ~10% for CR and SpMV). */
    double computationalDensity = 0.0;
    /** Shared transactions / conflict-free transactions (>= 1). */
    double bankConflictFactor = 1.0;
    /** Requested bytes / transferred transaction bytes (<= 1). */
    double coalescingEfficiency = 1.0;
    /** Instruction-weighted average active warps per block. */
    double avgActiveWarpsPerBlock = 0.0;
};

ReportMetrics computeMetrics(const funcsim::DynamicStats &stats);

/**
 * Print the per-stage component breakdown, bottleneck chain, and
 * (optionally) the measured-vs-predicted comparison.
 */
void printPrediction(std::ostream &os, const Prediction &pred,
                     const Measurement *measured = nullptr);

/** Print the diagnostic metrics. */
void printMetrics(std::ostream &os, const ReportMetrics &metrics);

/** |predicted - measured| / measured. */
double relativeError(double predicted, double measured);

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_REPORT_H
