/**
 * @file
 * The info extractor (paper Figure 1): converts raw dynamic statistics
 * into the performance model's per-stage inputs.
 */

#ifndef GPUPERF_MODEL_EXTRACTOR_H
#define GPUPERF_MODEL_EXTRACTOR_H

#include <array>
#include <vector>

#include "arch/occupancy.h"
#include "funcsim/profile.h"
#include "funcsim/stats.h"

namespace gpuperf {
namespace model {

/** Model inputs for one barrier-delimited stage. */
struct StageInput
{
    std::array<uint64_t, arch::kNumInstrTypes> typeCounts{};
    uint64_t madCount = 0;
    uint64_t totalWarpInstrs = 0;

    uint64_t sharedTransactions = 0;
    uint64_t sharedTransactionsIdeal = 0;
    uint64_t sharedBytes = 0;

    uint64_t globalTransactions = 0;
    uint64_t globalBytes = 0;
    uint64_t globalRequestBytes = 0;
    /**
     * Global traffic expressed in port-time-equivalent fully coalesced
     * 64 B transactions, so traffic of any granularity can be matched
     * against the synthetic streaming benchmark.
     */
    double effective64Xacts = 0.0;

    /** Warps concurrently resident per SM while this stage runs. */
    double activeWarpsPerSm = 0.0;
};

/** Model inputs for a whole launch. */
struct ModelInput
{
    std::vector<StageInput> stages;

    int gridDim = 0;
    int blockDim = 0;
    arch::Occupancy occupancy;
    /** Blocks actually concurrent per SM (residency vs. grid size). */
    int concurrentBlocksPerSm = 1;
    /**
     * True when only one block fits per SM: stages are serialized at
     * barriers; otherwise stages of different blocks overlap and the
     * program has a single overall bottleneck (paper Section 3).
     */
    bool stagesSerialized = false;

    /** Sum of effective64Xacts across stages. */
    double totalEffective64Xacts() const;
};

/** Converts DynamicStats into ModelInput. */
class InfoExtractor
{
  public:
    explicit InfoExtractor(const arch::GpuSpec &spec);

    ModelInput extract(const funcsim::DynamicStats &stats,
                       const arch::KernelResources &resources) const;

    /** Extract from a shared functional-simulation artifact. */
    ModelInput extract(const funcsim::KernelProfile &profile) const
    {
        return extract(profile.stats, profile.resources);
    }

  private:
    arch::GpuSpec spec_;
};

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_EXTRACTOR_H
