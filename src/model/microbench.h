/**
 * @file
 * Microbenchmark kernel generators (paper Section 4).
 *
 * These play the role of the paper's hand-assembled CUBIN benchmarks:
 *  - instruction-pipeline benchmarks run a serially dependent chain of
 *    one instruction type per thread, so throughput scales with
 *    warp-level parallelism until the pipeline saturates;
 *  - the shared-memory benchmark repeatedly copies data between two
 *    conflict-free shared regions;
 *  - the global-memory benchmark streams fully coalesced reads with a
 *    configurable number of memory requests per thread.
 */

#ifndef GPUPERF_MODEL_MICROBENCH_H
#define GPUPERF_MODEL_MICROBENCH_H

#include <cstdint>

#include "arch/instr_class.h"
#include "isa/kernel.h"

namespace gpuperf {
namespace model {

/**
 * Dependent-chain instruction benchmark.
 *
 * @param type     instruction type to exercise (Table 1)
 * @param unroll   ops per loop iteration (amortizes loop bookkeeping)
 * @param iters    loop iterations
 * @param out_base device address of a per-thread float output array
 */
isa::Kernel makeInstructionBench(arch::InstrType type, int unroll,
                                 int iters, uint64_t out_base);

/**
 * Shared-memory copy benchmark: each thread repeatedly moves one word
 * between two bank-conflict-free shared regions (stride = one word, so
 * consecutive lanes hit consecutive banks).
 *
 * @param block_dim threads per block (shared usage = 8 * block_dim B)
 * @param iters     copy iterations (2 shared accesses each)
 * @param out_base  device address of a per-thread float output array
 */
isa::Kernel makeSharedCopyBench(int block_dim, int iters,
                                uint64_t out_base);

/**
 * Global-memory streaming benchmark (paper Figure 3): @p requests
 * fully-coalesced 4 B loads per thread, batched @p batch at a time so
 * several loads are in flight per warp, wrapped over a buffer of
 * @p buf_bytes (power of two) at @p buf_base.
 *
 * @param total_threads gridDim * blockDim of the intended launch
 */
isa::Kernel makeGlobalStreamBench(int requests, int batch,
                                  int total_threads, uint64_t buf_base,
                                  uint32_t buf_bytes);

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_MICROBENCH_H
