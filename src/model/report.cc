#include "model/report.h"

#include <cmath>

#include "common/table.h"

namespace gpuperf {
namespace model {

ReportMetrics
computeMetrics(const funcsim::DynamicStats &stats)
{
    ReportMetrics m;
    uint64_t total = 0;
    uint64_t mads = 0;
    uint64_t shared = 0;
    uint64_t shared_ideal = 0;
    uint64_t req_bytes = 0;
    uint64_t xact_bytes = 0;
    double warp_weight = 0.0;
    uint64_t weight = 0;
    for (const auto &s : stats.stages) {
        total += s.totalWarpInstrs;
        mads += s.madCount;
        shared += s.sharedTransactions;
        shared_ideal += s.sharedTransactionsIdeal;
        req_bytes += s.globalRequestBytes;
        xact_bytes += s.globalBytes;
        warp_weight += s.activeWarpsPerBlock *
                       static_cast<double>(s.totalWarpInstrs);
        weight += s.totalWarpInstrs;
    }
    if (total > 0)
        m.computationalDensity = static_cast<double>(mads) / total;
    if (shared_ideal > 0)
        m.bankConflictFactor =
            static_cast<double>(shared) / shared_ideal;
    if (xact_bytes > 0)
        m.coalescingEfficiency =
            static_cast<double>(req_bytes) / xact_bytes;
    if (weight > 0)
        m.avgActiveWarpsPerBlock = warp_weight / weight;
    return m;
}

double
relativeError(double predicted, double measured)
{
    if (measured == 0.0)
        return 0.0;
    return std::fabs(predicted - measured) / measured;
}

void
printPrediction(std::ostream &os, const Prediction &pred,
                const Measurement *measured)
{
    Table t({"stage", "warps/SM", "t_instr (ms)", "t_shared (ms)",
             "t_global (ms)", "bottleneck"});
    for (size_t i = 0; i < pred.stages.size(); ++i) {
        const auto &sp = pred.stages[i];
        t.addRow({std::to_string(i), Table::num(sp.activeWarpsPerSm, 1),
                  Table::num(sp.tInstr * 1e3, 4),
                  Table::num(sp.tShared * 1e3, 4),
                  Table::num(sp.tGlobal * 1e3, 4),
                  componentName(sp.bottleneck)});
    }
    t.addRow({"total", "-", Table::num(pred.tInstrTotal * 1e3, 4),
              Table::num(pred.tSharedTotal * 1e3, 4),
              Table::num(pred.tGlobalTotal * 1e3, 4),
              componentName(pred.bottleneck)});
    t.print(os);
    os << "stages " << (pred.serialized
                            ? "serialized (one block per SM)"
                            : "overlapped (multiple blocks per SM)")
       << "\n";
    os << "predicted time: " << Table::num(pred.milliseconds(), 4)
       << " ms, bottleneck: " << componentName(pred.bottleneck)
       << ", next bottleneck if removed: "
       << componentName(pred.nextBottleneck) << "\n";
    if (measured) {
        os << "measured time:  "
           << Table::num(measured->milliseconds(), 4) << " ms (model error "
           << Table::num(100.0 * relativeError(pred.totalSeconds,
                                               measured->seconds()), 1)
           << "%)\n";
    }
}

void
printMetrics(std::ostream &os, const ReportMetrics &metrics)
{
    os << "computational density:  "
       << Table::num(100.0 * metrics.computationalDensity, 1) << "% of "
       << "instructions are MADs\n";
    os << "bank conflict factor:   "
       << Table::num(metrics.bankConflictFactor, 2) << "x\n";
    os << "coalescing efficiency:  "
       << Table::num(100.0 * metrics.coalescingEfficiency, 1) << "%\n";
    os << "avg active warps/block: "
       << Table::num(metrics.avgActiveWarpsPerBlock, 1) << "\n";
}

} // namespace model
} // namespace gpuperf
