/**
 * @file
 * The traditional algorithmic-level performance model (paper Section
 * 3), kept as the baseline our instruction-level model improves on:
 * compare sustained compute/memory rates against peak rates and call
 * the program compute-bound or memory-bound.
 */

#ifndef GPUPERF_MODEL_ROOFLINE_H
#define GPUPERF_MODEL_ROOFLINE_H

#include <cstdint>

#include "arch/gpu_spec.h"

namespace gpuperf {
namespace model {

/** Verdict of the traditional model. */
enum class RooflineVerdict
{
    kComputeBound,
    kMemoryBound,
    /** Neither rate is close to peak — the traditional model cannot
     *  explain the performance (e.g., the paper's tridiagonal solver
     *  at 6 GFLOPS and 7 GB/s). */
    kUnexplained,
};

const char *rooflineVerdictName(RooflineVerdict verdict);

/** Result of the traditional analysis. */
struct RooflineAnalysis
{
    double sustainedFlops = 0.0;      ///< flop/s
    double sustainedBandwidth = 0.0;  ///< bytes/s
    double peakFlops = 0.0;
    double peakBandwidth = 0.0;
    double computeFraction = 0.0;     ///< sustained / peak
    double memoryFraction = 0.0;
    RooflineVerdict verdict = RooflineVerdict::kUnexplained;
};

/**
 * Apply the traditional model.
 *
 * @param spec      machine peaks
 * @param flops     algorithmic floating point operations
 * @param bytes     algorithmic global-memory bytes moved
 * @param seconds   measured execution time
 * @param threshold fraction of peak above which a component is
 *                  considered binding (default 0.5)
 */
RooflineAnalysis analyzeRoofline(const arch::GpuSpec &spec, double flops,
                                 double bytes, double seconds,
                                 double threshold = 0.5);

} // namespace model
} // namespace gpuperf

#endif // GPUPERF_MODEL_ROOFLINE_H
