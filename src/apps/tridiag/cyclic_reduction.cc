#include "apps/tridiag/cyclic_reduction.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "isa/builder.h"

namespace gpuperf {
namespace apps {

namespace {

int
log2i(int v)
{
    GPUPERF_ASSERT(v > 0 && (v & (v - 1)) == 0, "value must be 2^k");
    int l = 0;
    while ((1 << l) < v)
        ++l;
    return l;
}

} // namespace

double
TridiagProblem::flops() const
{
    // Forward: ~12 flops per eliminated equation (n-1 eliminations);
    // backward: ~5 flops per solved equation.
    return (12.0 * (n - 1) + 5.0 * n) * systems;
}

TridiagProblem
makeTridiagProblem(funcsim::GlobalMemory &gmem, int n, int systems,
                   bool padded, uint64_t seed)
{
    if (n < 4 || (n & (n - 1)) != 0)
        fatal("tridiag: n must be a power of two >= 4 (got %d)", n);
    if (padded && n % 16 != 0)
        fatal("tridiag: padding requires n to be a multiple of 16");

    TridiagProblem p;
    p.n = n;
    p.systems = systems;
    p.padded = padded;
    p.inBase = gmem.alloc(static_cast<size_t>(systems) * 4 * n * 4);
    p.xBase = gmem.alloc(static_cast<size_t>(systems) * n * 4);

    Rng rng(seed);
    for (int s = 0; s < systems; ++s) {
        float *base = gmem.f32(p.inBase + static_cast<uint64_t>(s) *
                                              4 * n * 4);
        float *a = base;
        float *b = base + n;
        float *c = base + 2 * n;
        float *d = base + 3 * n;
        for (int i = 0; i < n; ++i) {
            a[i] = rng.nextFloat() * 2.0f - 1.0f;
            c[i] = rng.nextFloat() * 2.0f - 1.0f;
            b[i] = 3.0f + rng.nextFloat();  // diagonally dominant
            d[i] = rng.nextFloat() * 2.0f - 1.0f;
        }
        a[0] = 0.0f;
        c[n - 1] = 0.0f;
    }
    return p;
}

namespace {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;

/** Register set reused by every step of the kernel. */
struct CrRegs
{
    Reg t, mOne, idx, idxR, sI, sL, sR, tmp;
    Reg vA, vB, vC, vD;      // center-equation values
    Reg wA, wB, wC, wD;      // neighbor values (left, then right)
    Reg r1, k1;
    Pred pAct, pR;
};

/**
 * Emit saddr = mapped byte address of shared index held in @p idx.
 * With padding, index i is redirected to i + i/16, spreading
 * power-of-two strides across all banks.
 */
void
emitMapAddr(KernelBuilder &b, const CrRegs &r, bool padded, Reg idx,
            Reg saddr)
{
    if (padded) {
        b.shrImm(r.tmp, idx, 4);
        b.iadd(r.tmp, idx, r.tmp);
        b.shlImm(saddr, r.tmp, 2);
    } else {
        b.shlImm(saddr, idx, 2);
    }
}

} // namespace

isa::Kernel
makeCyclicReductionKernel(const TridiagProblem &p, bool forward_only)
{
    const int n = p.n;
    const int steps = log2i(n);
    const int np = p.paddedLength();
    const int off_a = 0;
    const int off_b = np * 4;
    const int off_c = 2 * np * 4;
    const int off_d = 3 * np * 4;
    const int off_x = 4 * np * 4;

    KernelBuilder b(std::string("cyclic_reduction") +
                    (p.padded ? "_nbc" : "") +
                    (forward_only ? "_fwd" : ""));
    CrRegs r;
    r.t = b.reg();
    r.mOne = b.reg();
    r.idx = b.reg();
    r.idxR = b.reg();
    r.sI = b.reg();
    r.sL = b.reg();
    r.sR = b.reg();
    r.tmp = b.reg();
    r.vA = b.reg();
    r.vB = b.reg();
    r.vC = b.reg();
    r.vD = b.reg();
    r.wA = b.reg();
    r.wB = b.reg();
    r.wC = b.reg();
    r.wD = b.reg();
    r.r1 = b.reg();
    r.k1 = b.reg();
    r.pAct = b.pred();
    r.pR = b.pred();

    b.s2r(r.t, isa::SpecialReg::kTid);
    b.movImmF(r.mOne, -1.0f);

    // --- Stage 0: load the system into shared memory ---------------------
    // inAddr = inBase + ctaid * 16n + t*4 (kept in idxR temporarily).
    b.s2r(r.tmp, isa::SpecialReg::kCtaid);
    b.imulImm(r.idxR, r.tmp, 16 * n);
    b.shlImm(r.tmp, r.t, 2);
    b.iadd(r.idxR, r.idxR, r.tmp);
    b.iaddImm(r.idxR, r.idxR, static_cast<int32_t>(p.inBase));

    emitMapAddr(b, r, p.padded, r.t, r.sL);      // shared addr of t
    b.iaddImm(r.idx, r.t, n / 2);
    emitMapAddr(b, r, p.padded, r.idx, r.sR);    // shared addr of t + n/2
    const int offs[4] = {off_a, off_b, off_c, off_d};
    for (int arr = 0; arr < 4; ++arr) {
        b.ldg(r.wA, r.idxR, (arr * n) * 4);
        b.sts(r.sL, r.wA, offs[arr]);
        b.ldg(r.wB, r.idxR, (arr * n + n / 2) * 4);
        b.sts(r.sR, r.wB, offs[arr]);
    }
    b.bar();

    // --- Forward reduction: steps 1..log2(n) -----------------------------
    for (int k = 1; k <= steps; ++k) {
        const int delta = 1 << (k - 1);
        const int active = n >> k;
        b.setpIImm(r.pAct, CmpOp::kLt, r.t, active);
        b.beginIf(r.pAct);
        {
            // i = 2*delta*t + 2*delta - 1; neighbors at i -/+ delta.
            b.shlImm(r.idx, r.t, k);
            b.iaddImm(r.idx, r.idx, (1 << k) - 1);
            emitMapAddr(b, r, p.padded, r.idx, r.sI);
            b.iaddImm(r.idxR, r.idx, -delta);
            emitMapAddr(b, r, p.padded, r.idxR, r.sL);
            b.iaddImm(r.idxR, r.idx, delta);
            emitMapAddr(b, r, p.padded, r.idxR, r.sR);

            b.lds(r.vA, r.sI, off_a);
            b.lds(r.vB, r.sI, off_b);
            b.lds(r.vC, r.sI, off_c);
            b.lds(r.vD, r.sI, off_d);

            // Left elimination: k1 = -a_i / b_L.
            b.lds(r.wA, r.sL, off_a);
            b.lds(r.wB, r.sL, off_b);
            b.lds(r.wC, r.sL, off_c);
            b.lds(r.wD, r.sL, off_d);
            b.rcp(r.r1, r.wB);
            b.fmul(r.k1, r.vA, r.r1);
            b.fmulFpu(r.k1, r.k1, r.mOne);
            b.fmulFpu(r.vA, r.wA, r.k1);       // a' = a_L * k1
            b.fmad(r.vB, r.wC, r.k1, r.vB);    // b' -= c_L * a_i/b_L
            b.fmad(r.vD, r.wD, r.k1, r.vD);

            // Right elimination (guarded: the last equation has no
            // right neighbor).
            b.setpIImm(r.pR, CmpOp::kLt, r.idxR, n);
            b.beginIf(r.pR);
            {
                b.lds(r.wA, r.sR, off_a);
                b.lds(r.wB, r.sR, off_b);
                b.lds(r.wC, r.sR, off_c);
                b.lds(r.wD, r.sR, off_d);
                b.rcp(r.r1, r.wB);
                b.fmul(r.k1, r.vC, r.r1);
                b.fmulFpu(r.k1, r.k1, r.mOne);
                b.fmad(r.vB, r.wA, r.k1, r.vB);
                b.fmad(r.vD, r.wD, r.k1, r.vD);
                b.fmulFpu(r.vC, r.wC, r.k1);   // c' = c_R * k2
            }
            b.beginElse();
            b.movImmF(r.vC, 0.0f);
            b.endIf();

            b.sts(r.sI, r.vA, off_a);
            b.sts(r.sI, r.vB, off_b);
            b.sts(r.sI, r.vC, off_c);
            b.sts(r.sI, r.vD, off_d);
        }
        b.endIf();
        b.bar();
    }

    if (forward_only)
        return b.build(p.sharedBytes());

    // --- Solve the single remaining equation (index n-1) ----------------
    b.setpIImm(r.pAct, CmpOp::kEq, r.t, 0);
    b.beginIf(r.pAct);
    {
        b.movImm(r.idx, n - 1);
        emitMapAddr(b, r, p.padded, r.idx, r.sI);
        b.lds(r.vB, r.sI, off_b);
        b.lds(r.vD, r.sI, off_d);
        b.rcp(r.r1, r.vB);
        b.fmulFpu(r.vD, r.vD, r.r1);
        b.sts(r.sI, r.vD, off_x);
    }
    b.endIf();
    b.bar();

    // --- Backward substitution: steps log2(n)..1 --------------------------
    for (int k = steps; k >= 1; --k) {
        const int delta = 1 << (k - 1);
        const int active = n >> k;
        b.setpIImm(r.pAct, CmpOp::kLt, r.t, active);
        b.beginIf(r.pAct);
        {
            // Solve positions i = 2*delta*t + delta - 1 using the
            // already-known x at i +/- delta.
            b.shlImm(r.idx, r.t, k);
            b.iaddImm(r.idx, r.idx, delta - 1);
            emitMapAddr(b, r, p.padded, r.idx, r.sI);
            b.iaddImm(r.idxR, r.idx, delta);
            emitMapAddr(b, r, p.padded, r.idxR, r.sR);

            b.lds(r.vA, r.sI, off_a);
            b.lds(r.vB, r.sI, off_b);
            b.lds(r.vC, r.sI, off_c);
            b.lds(r.vD, r.sI, off_d);
            b.lds(r.wB, r.sR, off_x);          // x_right (always valid)

            // x_left is out of range for t = 0.
            b.iaddImm(r.idxR, r.idx, -delta);
            b.setpIImm(r.pR, CmpOp::kGe, r.idxR, 0);
            b.beginIf(r.pR);
            {
                emitMapAddr(b, r, p.padded, r.idxR, r.sL);
                b.lds(r.wA, r.sL, off_x);
            }
            b.beginElse();
            b.movImmF(r.wA, 0.0f);
            b.endIf();

            b.fmulFpu(r.wA, r.wA, r.mOne);
            b.fmad(r.vD, r.vA, r.wA, r.vD);    // d - a * x_left
            b.fmulFpu(r.wB, r.wB, r.mOne);
            b.fmad(r.vD, r.vC, r.wB, r.vD);    // ... - c * x_right
            b.rcp(r.r1, r.vB);
            b.fmulFpu(r.vD, r.vD, r.r1);
            b.sts(r.sI, r.vD, off_x);
        }
        b.endIf();
        b.bar();
    }

    // --- Store the solution -----------------------------------------------
    b.s2r(r.tmp, isa::SpecialReg::kCtaid);
    b.imulImm(r.idxR, r.tmp, n * 4);
    b.shlImm(r.tmp, r.t, 2);
    b.iadd(r.idxR, r.idxR, r.tmp);
    b.iaddImm(r.idxR, r.idxR, static_cast<int32_t>(p.xBase));
    emitMapAddr(b, r, p.padded, r.t, r.sL);
    b.iaddImm(r.idx, r.t, n / 2);
    emitMapAddr(b, r, p.padded, r.idx, r.sR);
    b.lds(r.vA, r.sL, off_x);
    b.stg(r.idxR, r.vA, 0);
    b.lds(r.vB, r.sR, off_x);
    b.stg(r.idxR, r.vB, (n / 2) * 4);

    return b.build(p.sharedBytes());
}

void
cpuThomas(const float *a, const float *b, const float *c, const float *d,
          double *x, int n)
{
    std::vector<double> cp(n);
    std::vector<double> dp(n);
    cp[0] = c[0] / b[0];
    dp[0] = d[0] / b[0];
    for (int i = 1; i < n; ++i) {
        const double m = b[i] - a[i] * cp[i - 1];
        cp[i] = c[i] / m;
        dp[i] = (d[i] - a[i] * dp[i - 1]) / m;
    }
    x[n - 1] = dp[n - 1];
    for (int i = n - 2; i >= 0; --i)
        x[i] = dp[i] - cp[i] * x[i + 1];
}

double
tridiagMaxError(const funcsim::GlobalMemory &gmem, const TridiagProblem &p)
{
    double max_err = 0.0;
    std::vector<double> ref(p.n);
    for (int s = 0; s < p.systems; ++s) {
        const float *base =
            gmem.f32(p.inBase + static_cast<uint64_t>(s) * 4 * p.n * 4);
        cpuThomas(base, base + p.n, base + 2 * p.n, base + 3 * p.n,
                  ref.data(), p.n);
        const float *x =
            gmem.f32(p.xBase + static_cast<uint64_t>(s) * p.n * 4);
        for (int i = 0; i < p.n; ++i) {
            const double denom = std::max(1.0, std::fabs(ref[i]));
            max_err = std::max(max_err,
                               std::fabs(x[i] - ref[i]) / denom);
        }
    }
    return max_err;
}

} // namespace apps
} // namespace gpuperf
