/**
 * @file
 * Cyclic-reduction tridiagonal solver (paper Section 5.2).
 *
 * Solves many independent n-equation tridiagonal systems, one system
 * per block and one equation pair per thread, entirely in shared
 * memory. Forward reduction halves the active equations each step; the
 * power-of-two access stride doubles, so shared-memory bank conflicts
 * double per step (2-way, 4-way, ... — paper Figure 5). The CR-NBC
 * variant pads every 16th element, redirecting conflicting accesses to
 * free banks at the cost of extra address arithmetic.
 */

#ifndef GPUPERF_APPS_TRIDIAG_CYCLIC_REDUCTION_H
#define GPUPERF_APPS_TRIDIAG_CYCLIC_REDUCTION_H

#include <cstdint>
#include <vector>

#include "funcsim/interpreter.h"
#include "isa/kernel.h"

namespace gpuperf {
namespace apps {

/** A batch of tridiagonal systems on the device. */
struct TridiagProblem
{
    int n = 0;          ///< equations per system (power of two)
    int systems = 0;    ///< independent systems (one block each)
    bool padded = false;  ///< CR-NBC bank-conflict-free layout
    /** Input: per system, arrays a, b, c, d of n floats each,
     *  consecutively (a = subdiagonal, b = diagonal, c = superdiagonal,
     *  d = right-hand side). */
    uint64_t inBase = 0;
    /** Output: per system, n solution floats. */
    uint64_t xBase = 0;

    funcsim::LaunchConfig launch() const { return {systems, n / 2}; }

    /** Padded shared array length (n + n/16 when padded). */
    int paddedLength() const { return padded ? n + n / 16 : n; }
    /** Shared memory bytes per block (5 arrays: a, b, c, d, x). */
    int sharedBytes() const { return 5 * paddedLength() * 4; }

    /** Algorithmic flop count for one full solve of all systems. */
    double flops() const;
    /** Algorithmic global bytes (load 4n, store n floats per system). */
    double globalBytes() const
    {
        return 5.0 * n * systems * 4.0;
    }
};

/**
 * Allocate and fill @p systems diagonally dominant systems.
 */
TridiagProblem makeTridiagProblem(funcsim::GlobalMemory &gmem, int n,
                                  int systems, bool padded,
                                  uint64_t seed = 7);

/**
 * Build the CR kernel.
 * @param forward_only stop after forward reduction (paper Figure 6
 *                     analyzes the forward phase only)
 */
isa::Kernel makeCyclicReductionKernel(const TridiagProblem &problem,
                                      bool forward_only = false);

/** Thomas-algorithm reference solve (double precision). */
void cpuThomas(const float *a, const float *b, const float *c,
               const float *d, double *x, int n);

/** Max relative error of device solutions vs. the Thomas reference. */
double tridiagMaxError(const funcsim::GlobalMemory &gmem,
                       const TridiagProblem &problem);

} // namespace apps
} // namespace gpuperf

#endif // GPUPERF_APPS_TRIDIAG_CYCLIC_REDUCTION_H
