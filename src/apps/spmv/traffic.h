/**
 * @file
 * Static traffic analysis for SpMV formats (paper Figure 11(a)):
 * drives the format's access pattern through the memory transaction
 * simulator at a configurable transaction granularity and reports the
 * average bytes fetched per processed matrix entry, split into matrix
 * values, column indices, and vector entries.
 */

#ifndef GPUPERF_APPS_SPMV_TRAFFIC_H
#define GPUPERF_APPS_SPMV_TRAFFIC_H

#include "apps/spmv/matrix.h"

namespace gpuperf {
namespace apps {

/** SpMV storage/processing scheme. */
enum class SpmvFormat
{
    kEll,          ///< scalar ELL
    kBell,         ///< blocked ELL, straightforward storage (Fig 9c)
    kBellIm,       ///< blocked ELL, interleaved matrix
    kBellImIv,     ///< interleaved matrix + interleaved vector
};

const char *spmvFormatName(SpmvFormat format);

/** Average global-memory bytes per processed matrix entry. */
struct TrafficBreakdown
{
    double matrixBytes = 0.0;
    double indexBytes = 0.0;
    double vectorBytes = 0.0;

    double total() const
    {
        return matrixBytes + indexBytes + vectorBytes;
    }
};

/**
 * Analyze @p format 's traffic on matrix @p m with hardware memory
 * transactions no smaller than @p granularity bytes (32 on GT200; the
 * paper also evaluates hypothetical 16 B and 4 B granularities).
 */
TrafficBreakdown analyzeTraffic(const BlockSparseMatrix &m,
                                SpmvFormat format, int granularity);

} // namespace apps
} // namespace gpuperf

#endif // GPUPERF_APPS_SPMV_TRAFFIC_H
