#include "apps/spmv/formats.h"

#include "common/logging.h"
#include "common/rng.h"

namespace gpuperf {
namespace apps {

namespace {

int
roundUp(int v, int unit)
{
    return (v + unit - 1) / unit * unit;
}

} // namespace

EllDeviceMatrix
buildEll(funcsim::GlobalMemory &gmem, const BlockSparseMatrix &m)
{
    EllDeviceMatrix ell;
    ell.rows = m.rows();
    ell.k = m.maxRowEntries();
    ell.ld = roundUp(ell.rows, 32);
    const size_t cells = static_cast<size_t>(ell.k) * ell.ld;
    ell.valsBase = gmem.alloc(cells * 4);
    ell.colsBase = gmem.alloc(cells * 4);

    float *vals = gmem.f32(ell.valsBase);
    uint32_t *cols = gmem.u32(ell.colsBase);
    const int bs = m.blockSize;
    for (int br = 0; br < m.blockRows; ++br) {
        for (int er = 0; er < bs; ++er) {
            const int row = br * bs + er;
            int j = 0;
            int last_col = row;  // padding gathers from a local column
            for (size_t kb = 0; kb < m.blockCols[br].size(); ++kb) {
                const int c = m.blockCols[br][kb];
                const float *blk = &m.blockVals[br][kb * bs * bs];
                for (int ec = 0; ec < bs; ++ec, ++j) {
                    vals[static_cast<size_t>(j) * ell.ld + row] =
                        blk[er * bs + ec];
                    cols[static_cast<size_t>(j) * ell.ld + row] =
                        static_cast<uint32_t>(c * bs + ec);
                    last_col = c * bs + ec;
                }
            }
            for (; j < ell.k; ++j) {
                vals[static_cast<size_t>(j) * ell.ld + row] = 0.0f;
                cols[static_cast<size_t>(j) * ell.ld + row] =
                    static_cast<uint32_t>(last_col);
            }
        }
    }
    // Padded tail rows (row >= rows) gather from column 0 with zeros:
    // they are masked off in the kernel but keep addresses harmless.
    return ell;
}

BellDeviceMatrix
buildBell(funcsim::GlobalMemory &gmem, const BlockSparseMatrix &m,
          bool interleaved)
{
    BellDeviceMatrix bell;
    bell.blockRows = m.blockRows;
    bell.blockSize = m.blockSize;
    size_t max_blocks = 0;
    for (const auto &cols : m.blockCols)
        max_blocks = std::max(max_blocks, cols.size());
    bell.kBlocks = static_cast<int>(max_blocks);
    bell.ld = roundUp(bell.blockRows, 32);
    bell.interleaved = interleaved;
    const int bs2 = m.blockSize * m.blockSize;
    const size_t val_cells =
        static_cast<size_t>(bell.kBlocks) * bs2 * bell.ld;
    const size_t col_cells = static_cast<size_t>(bell.kBlocks) * bell.ld;
    bell.valsBase = gmem.alloc(val_cells * 4);
    bell.colsBase = gmem.alloc(col_cells * 4);

    float *vals = gmem.f32(bell.valsBase);
    uint32_t *cols = gmem.u32(bell.colsBase);
    for (int br = 0; br < m.blockRows; ++br) {
        const size_t nblk = m.blockCols[br].size();
        for (int kb = 0; kb < bell.kBlocks; ++kb) {
            const bool pad = static_cast<size_t>(kb) >= nblk;
            const int c =
                pad ? m.blockCols[br].back() : m.blockCols[br][kb];
            const size_t col_idx =
                interleaved
                    ? static_cast<size_t>(kb) * bell.ld + br
                    : static_cast<size_t>(br) * bell.kBlocks + kb;
            cols[col_idx] = static_cast<uint32_t>(c);
            for (int j = 0; j < bs2; ++j) {
                const float v =
                    pad ? 0.0f : m.blockVals[br][nblk == 0 ? 0 :
                                                 kb * bs2 + j];
                const size_t val_idx =
                    interleaved
                        ? (static_cast<size_t>(kb) * bs2 + j) * bell.ld +
                              br
                        : (static_cast<size_t>(br) * bell.kBlocks + kb) *
                                  bs2 + j;
                vals[val_idx] = pad ? 0.0f : v;
            }
        }
    }
    return bell;
}

SpmvVectors
makeVectors(funcsim::GlobalMemory &gmem, const BlockSparseMatrix &m,
            uint64_t seed)
{
    SpmvVectors v;
    v.rows = m.rows();
    v.blockRows = m.blockRows;
    v.blockSize = m.blockSize;
    const size_t bytes = static_cast<size_t>(v.rows) * 4;
    v.xBase = gmem.alloc(bytes);
    v.xIvBase = gmem.alloc(bytes);
    v.yBase = gmem.alloc(bytes);
    v.yIvBase = gmem.alloc(bytes);

    Rng rng(seed);
    float *x = gmem.f32(v.xBase);
    float *xiv = gmem.f32(v.xIvBase);
    for (int i = 0; i < v.rows; ++i)
        x[i] = rng.nextFloat() - 0.5f;
    for (int r = 0; r < v.blockRows; ++r) {
        for (int e = 0; e < v.blockSize; ++e)
            xiv[e * v.blockRows + r] = x[r * v.blockSize + e];
    }
    return v;
}

std::vector<float>
readY(const funcsim::GlobalMemory &gmem, const SpmvVectors &v,
      bool interleaved)
{
    std::vector<float> y(v.rows);
    if (!interleaved) {
        const float *p = gmem.f32(v.yBase);
        y.assign(p, p + v.rows);
    } else {
        const float *p = gmem.f32(v.yIvBase);
        for (int r = 0; r < v.blockRows; ++r) {
            for (int e = 0; e < v.blockSize; ++e)
                y[r * v.blockSize + e] = p[e * v.blockRows + r];
        }
    }
    return y;
}

} // namespace apps
} // namespace gpuperf
