#include "apps/spmv/traffic.h"

#include <algorithm>

#include "common/logging.h"
#include "memxact/coalescing.h"

namespace gpuperf {
namespace apps {

const char *
spmvFormatName(SpmvFormat format)
{
    switch (format) {
      case SpmvFormat::kEll:
        return "ELL";
      case SpmvFormat::kBell:
        return "BELL";
      case SpmvFormat::kBellIm:
        return "BELL+IM";
      case SpmvFormat::kBellImIv:
        return "BELL+IMIV";
    }
    panic("unknown SpMV format %d", static_cast<int>(format));
}

namespace {

constexpr int kGroup = 16;  // half-warp coalescing group

int
roundUp(int v, int unit)
{
    return (v + unit - 1) / unit * unit;
}

uint64_t
groupBytes(const memxact::CoalescingSimulator &sim,
           const std::vector<memxact::Request> &reqs)
{
    return memxact::CoalescingSimulator::totalBytes(sim.coalesce(reqs, 4));
}

TrafficBreakdown
analyzeEll(const BlockSparseMatrix &m,
           const memxact::CoalescingSimulator &sim)
{
    const int rows = m.rows();
    const int k = m.maxRowEntries();
    const int ld = roundUp(rows, 32);
    const int bs = m.blockSize;

    // Scalar column ids, padded like buildEll().
    std::vector<int> cols(static_cast<size_t>(rows) * k);
    for (int br = 0; br < m.blockRows; ++br) {
        for (int er = 0; er < bs; ++er) {
            const int row = br * bs + er;
            int j = 0;
            int last = row;
            for (int c : m.blockCols[br]) {
                for (int ec = 0; ec < bs; ++ec, ++j) {
                    last = c * bs + ec;
                    cols[static_cast<size_t>(row) * k + j] = last;
                }
            }
            for (; j < k; ++j)
                cols[static_cast<size_t>(row) * k + j] = last;
        }
    }

    uint64_t val_bytes = 0;
    uint64_t idx_bytes = 0;
    uint64_t vec_bytes = 0;
    std::vector<memxact::Request> reqs(kGroup);
    for (int r0 = 0; r0 < rows; r0 += kGroup) {
        for (int j = 0; j < k; ++j) {
            for (int l = 0; l < kGroup; ++l) {
                const int r = r0 + l;
                reqs[l].active = r < rows;
                reqs[l].address =
                    (static_cast<uint64_t>(j) * ld + r) * 4;
            }
            val_bytes += groupBytes(sim, reqs);
            idx_bytes += groupBytes(sim, reqs);
            for (int l = 0; l < kGroup; ++l) {
                const int r = r0 + l;
                if (r < rows) {
                    reqs[l].address = static_cast<uint64_t>(
                        cols[static_cast<size_t>(r) * k + j]) * 4;
                }
            }
            vec_bytes += groupBytes(sim, reqs);
        }
    }

    const double entries = static_cast<double>(rows) * k;
    return {val_bytes / entries, idx_bytes / entries,
            vec_bytes / entries};
}

TrafficBreakdown
analyzeBell(const BlockSparseMatrix &m,
            const memxact::CoalescingSimulator &sim, bool interleaved,
            bool iv)
{
    const int nbr = m.blockRows;
    const int bs = m.blockSize;
    const int bs2 = bs * bs;
    size_t max_blocks = 0;
    for (const auto &cols : m.blockCols)
        max_blocks = std::max(max_blocks, cols.size());
    const int kb = static_cast<int>(max_blocks);
    const int ld = roundUp(nbr, 32);

    uint64_t val_bytes = 0;
    uint64_t idx_bytes = 0;
    uint64_t vec_bytes = 0;
    std::vector<memxact::Request> reqs(kGroup);

    auto col_of = [&](int br, int blk) {
        const auto &cols = m.blockCols[br];
        return blk < static_cast<int>(cols.size()) ? cols[blk]
                                                   : cols.back();
    };

    for (int r0 = 0; r0 < nbr; r0 += kGroup) {
        for (int blk = 0; blk < kb; ++blk) {
            // Column index load.
            for (int l = 0; l < kGroup; ++l) {
                const int r = r0 + l;
                reqs[l].active = r < nbr;
                reqs[l].address =
                    interleaved
                        ? (static_cast<uint64_t>(blk) * ld + r) * 4
                        : (static_cast<uint64_t>(r) * kb + blk) * 4;
            }
            idx_bytes += groupBytes(sim, reqs);

            // Nine value loads.
            for (int j = 0; j < bs2; ++j) {
                for (int l = 0; l < kGroup; ++l) {
                    const int r = r0 + l;
                    if (r >= nbr)
                        continue;
                    reqs[l].address =
                        interleaved
                            ? ((static_cast<uint64_t>(blk) * bs2 + j) *
                                   ld + r) * 4
                            : ((static_cast<uint64_t>(r) * kb + blk) *
                                   bs2 + j) * 4;
                }
                val_bytes += groupBytes(sim, reqs);
            }

            // Three gathered vector loads.
            for (int e = 0; e < bs; ++e) {
                for (int l = 0; l < kGroup; ++l) {
                    const int r = r0 + l;
                    if (r >= nbr)
                        continue;
                    const int c = col_of(r, blk);
                    reqs[l].address =
                        iv ? (static_cast<uint64_t>(e) * nbr + c) * 4
                           : (static_cast<uint64_t>(c) * bs + e) * 4;
                }
                vec_bytes += groupBytes(sim, reqs);
            }
        }
    }

    const double entries =
        static_cast<double>(nbr) * kb * bs2;
    return {val_bytes / entries, idx_bytes / entries,
            vec_bytes / entries};
}

} // namespace

TrafficBreakdown
analyzeTraffic(const BlockSparseMatrix &m, SpmvFormat format,
               int granularity)
{
    // Sectored transfers keep the what-if granularity series
    // self-consistent: only touched sectors are fetched, so shrinking
    // the granularity monotonically reduces the gathered-vector bytes
    // and at 4 B granularity only useful words move (paper Fig. 11a).
    memxact::CoalescingSimulator sim(granularity,
                                     std::max(granularity, 128), kGroup,
                                     memxact::CoalescePolicy::kSectored);
    switch (format) {
      case SpmvFormat::kEll:
        return analyzeEll(m, sim);
      case SpmvFormat::kBell:
        return analyzeBell(m, sim, /*interleaved=*/false, /*iv=*/false);
      case SpmvFormat::kBellIm:
        return analyzeBell(m, sim, /*interleaved=*/true, /*iv=*/false);
      case SpmvFormat::kBellImIv:
        return analyzeBell(m, sim, /*interleaved=*/true, /*iv=*/true);
    }
    panic("unknown SpMV format %d", static_cast<int>(format));
}

} // namespace apps
} // namespace gpuperf
