/**
 * @file
 * SpMV kernels for the three storage formats (paper Section 5.3).
 */

#ifndef GPUPERF_APPS_SPMV_KERNELS_H
#define GPUPERF_APPS_SPMV_KERNELS_H

#include "apps/spmv/formats.h"
#include "isa/kernel.h"

namespace gpuperf {
namespace apps {

/** SpMV launch block size used throughout. */
constexpr int kSpmvBlockDim = 128;

/**
 * Scalar ELL kernel: one thread per row, K coalesced (value, column)
 * loads plus one gathered vector load each.
 * @param use_texture gather x through the texture cache path (LDT)
 */
isa::Kernel makeEllKernel(const EllDeviceMatrix &ell,
                          const SpmvVectors &v, bool use_texture);

/**
 * Blocked ELL kernel: one thread per block-row, processing 3x3 blocks
 * (1 column index + 9 values + 3 vector entries per block).
 *
 * @param interleaved_vector gather from the interleaved x copy and
 *                           store y interleaved (BELL+IMIV)
 * @param use_texture        gather x through the texture cache path
 */
isa::Kernel makeBellKernel(const BellDeviceMatrix &bell,
                           const SpmvVectors &v, bool interleaved_vector,
                           bool use_texture);

/** Grid size for a kernel covering @p work_items threads. */
int spmvGridDim(int work_items);

/** Max relative error of y (device) against the CPU reference. */
double spmvMaxError(const funcsim::GlobalMemory &gmem,
                    const BlockSparseMatrix &m, const SpmvVectors &v,
                    bool interleaved_y);

} // namespace apps
} // namespace gpuperf

#endif // GPUPERF_APPS_SPMV_KERNELS_H
