#include "apps/spmv/matrix.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/rng.h"

namespace gpuperf {
namespace apps {

uint64_t
BlockSparseMatrix::storedEntries() const
{
    uint64_t total = 0;
    for (const auto &cols : blockCols)
        total += cols.size() * blockSize * blockSize;
    return total;
}

int
BlockSparseMatrix::maxRowEntries() const
{
    size_t max_blocks = 0;
    for (const auto &cols : blockCols)
        max_blocks = std::max(max_blocks, cols.size());
    return static_cast<int>(max_blocks) * blockSize;
}

bool
BlockSparseMatrix::uniform() const
{
    if (blockCols.empty())
        return true;
    const size_t k = blockCols.front().size();
    for (const auto &cols : blockCols) {
        if (cols.size() != k)
            return false;
    }
    return true;
}

BlockSparseMatrix
makeBandedBlockMatrix(int block_rows, int blocks_per_row, int half_band,
                      uint64_t seed)
{
    if (block_rows <= 0 || blocks_per_row <= 0)
        fatal("spmv: matrix must have positive dimensions");
    if (blocks_per_row > 2 * half_band + 1)
        fatal("spmv: cannot fit %d blocks in a band of width %d",
              blocks_per_row, 2 * half_band + 1);

    BlockSparseMatrix m;
    m.blockRows = block_rows;
    m.blockSize = 3;
    m.blockCols.resize(block_rows);
    m.blockVals.resize(block_rows);

    Rng rng(seed);
    const int bs2 = m.blockSize * m.blockSize;
    for (int r = 0; r < block_rows; ++r) {
        std::set<int> cols;
        cols.insert(r);  // diagonal block
        while (static_cast<int>(cols.size()) < blocks_per_row) {
            const int lo = std::max(0, r - half_band);
            const int hi = std::min(block_rows - 1, r + half_band);
            cols.insert(static_cast<int>(rng.nextRange(lo, hi)));
        }
        m.blockCols[r].assign(cols.begin(), cols.end());
        m.blockVals[r].resize(m.blockCols[r].size() * bs2);
        for (auto &v : m.blockVals[r])
            v = rng.nextFloat() - 0.5f;
    }
    return m;
}

void
cpuSpmv(const BlockSparseMatrix &m, const float *x, double *y)
{
    const int bs = m.blockSize;
    for (int r = 0; r < m.blockRows; ++r) {
        for (int e = 0; e < bs; ++e)
            y[r * bs + e] = 0.0;
        for (size_t k = 0; k < m.blockCols[r].size(); ++k) {
            const int c = m.blockCols[r][k];
            const float *blk = &m.blockVals[r][k * bs * bs];
            for (int er = 0; er < bs; ++er) {
                double sum = 0.0;
                for (int ec = 0; ec < bs; ++ec)
                    sum += static_cast<double>(blk[er * bs + ec]) *
                           x[c * bs + ec];
                y[r * bs + er] += sum;
            }
        }
    }
}

} // namespace apps
} // namespace gpuperf
