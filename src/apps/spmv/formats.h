/**
 * @file
 * Device storage formats for SpMV: ELL, blocked ELL (BELL) with an
 * interleaved matrix (IM), and the paper's contribution — additionally
 * interleaving the vector (IV). See paper Figures 9 and 10.
 */

#ifndef GPUPERF_APPS_SPMV_FORMATS_H
#define GPUPERF_APPS_SPMV_FORMATS_H

#include <cstdint>

#include "apps/spmv/matrix.h"
#include "funcsim/interpreter.h"

namespace gpuperf {
namespace apps {

/** Scalar ELLPACK storage: column-major [k][ld] values + column ids. */
struct EllDeviceMatrix
{
    int rows = 0;
    int k = 0;             ///< padded entries per row
    int ld = 0;            ///< leading dimension (rows, warp-aligned)
    uint64_t valsBase = 0;
    uint64_t colsBase = 0;
};

/**
 * Blocked ELLPACK storage. With interleaving (IM), values are stored
 * [block][element][blockRow] so consecutive threads (block-rows) read
 * consecutive words; without it they are stored [blockRow][block][elem]
 * (paper Figure 9(c), uncoalesced).
 */
struct BellDeviceMatrix
{
    int blockRows = 0;
    int blockSize = 3;
    int kBlocks = 0;       ///< padded blocks per block-row
    int ld = 0;            ///< leading dimension over block-rows
    bool interleaved = true;
    uint64_t valsBase = 0;
    uint64_t colsBase = 0; ///< one block-column id per block
};

/** Device-resident x and y vectors, natural and interleaved layouts. */
struct SpmvVectors
{
    int rows = 0;
    int blockRows = 0;
    int blockSize = 3;
    uint64_t xBase = 0;    ///< x in natural order
    uint64_t xIvBase = 0;  ///< x interleaved: xiv[e*blockRows + R] = x[R*bs+e]
    uint64_t yBase = 0;    ///< y in natural order (ELL, BELL+IM)
    uint64_t yIvBase = 0;  ///< y interleaved (BELL+IMIV)
};

/** Build ELL storage in device memory (pads short rows). */
EllDeviceMatrix buildEll(funcsim::GlobalMemory &gmem,
                         const BlockSparseMatrix &m);

/** Build BELL storage; @p interleaved selects the IM layout. */
BellDeviceMatrix buildBell(funcsim::GlobalMemory &gmem,
                           const BlockSparseMatrix &m, bool interleaved);

/** Allocate and fill x (plus its interleaved copy) and the outputs. */
SpmvVectors makeVectors(funcsim::GlobalMemory &gmem,
                        const BlockSparseMatrix &m, uint64_t seed = 13);

/**
 * Read back y into natural row order.
 * @param interleaved read from yIvBase (BELL+IMIV) instead of yBase
 */
std::vector<float> readY(const funcsim::GlobalMemory &gmem,
                         const SpmvVectors &v, bool interleaved);

} // namespace apps
} // namespace gpuperf

#endif // GPUPERF_APPS_SPMV_FORMATS_H
