#include "apps/spmv/kernels.h"

#include <cmath>

#include "common/logging.h"
#include "isa/builder.h"

namespace gpuperf {
namespace apps {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;
using isa::SpecialReg;

namespace {

Reg
emitGlobalTid(KernelBuilder &b)
{
    Reg tid = b.reg();
    Reg cta = b.reg();
    Reg ntid = b.reg();
    Reg gtid = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.s2r(cta, SpecialReg::kCtaid);
    b.s2r(ntid, SpecialReg::kNtid);
    b.imad(gtid, cta, ntid, tid);
    return gtid;
}

} // namespace

int
spmvGridDim(int work_items)
{
    return (work_items + kSpmvBlockDim - 1) / kSpmvBlockDim;
}

isa::Kernel
makeEllKernel(const EllDeviceMatrix &ell, const SpmvVectors &v,
              bool use_texture)
{
    KernelBuilder b(std::string("spmv_ell") +
                    (use_texture ? "_tex" : ""));
    Reg gtid = emitGlobalTid(b);
    Reg vp = b.reg();
    Reg cp = b.reg();
    Reg xa = b.reg();
    Reg acc = b.reg();
    Reg col = b.reg();
    Reg val = b.reg();
    Reg xv = b.reg();
    Reg j = b.reg();
    Pred p_row = b.pred();
    Pred p_done = b.pred();

    b.setpIImm(p_row, CmpOp::kLt, gtid, ell.rows);
    b.beginIf(p_row);
    {
        b.shlImm(vp, gtid, 2);
        b.iaddImm(cp, vp, static_cast<int32_t>(ell.colsBase));
        b.iaddImm(vp, vp, static_cast<int32_t>(ell.valsBase));
        b.movImmF(acc, 0.0f);
        b.movImm(j, 0);
        b.beginLoop();
        b.setpIImm(p_done, CmpOp::kGe, j, ell.k);
        b.brk(p_done);
        b.ldg(col, cp, 0);
        b.ldg(val, vp, 0);
        b.shlImm(xa, col, 2);
        b.iaddImm(xa, xa, static_cast<int32_t>(v.xBase));
        if (use_texture)
            b.ldt(xv, xa, 0);
        else
            b.ldg(xv, xa, 0);
        b.fmad(acc, val, xv, acc);
        b.iaddImm(vp, vp, ell.ld * 4);
        b.iaddImm(cp, cp, ell.ld * 4);
        b.iaddImm(j, j, 1);
        b.endLoop();
        b.shlImm(xa, gtid, 2);
        b.iaddImm(xa, xa, static_cast<int32_t>(v.yBase));
        b.stg(xa, acc, 0);
    }
    b.endIf();
    return b.build(0);
}

isa::Kernel
makeBellKernel(const BellDeviceMatrix &bell, const SpmvVectors &v,
               bool interleaved_vector, bool use_texture)
{
    GPUPERF_ASSERT(bell.blockSize == 3, "BELL kernel is built for 3x3");
    const int bs = bell.blockSize;
    const int bs2 = bs * bs;

    std::string name = bell.interleaved ? "spmv_bell_im" : "spmv_bell";
    if (interleaved_vector)
        name += "iv";
    if (use_texture)
        name += "_tex";

    KernelBuilder b(name);
    Reg gtid = emitGlobalTid(b);
    Reg vp = b.reg();
    Reg cp = b.reg();
    Reg xa = b.reg();
    Reg col = b.reg();
    Reg blk = b.reg();
    Reg vals = b.regRange(bs2);
    Reg xv = b.regRange(bs);
    Reg acc = b.regRange(bs);
    Pred p_row = b.pred();
    Pred p_done = b.pred();

    b.setpIImm(p_row, CmpOp::kLt, gtid, bell.blockRows);
    b.beginIf(p_row);
    {
        if (bell.interleaved) {
            b.shlImm(vp, gtid, 2);
            b.iaddImm(cp, vp, static_cast<int32_t>(bell.colsBase));
            b.iaddImm(vp, vp, static_cast<int32_t>(bell.valsBase));
        } else {
            // Straightforward storage: each thread's blocks are
            // contiguous (uncoalesced across threads).
            b.imulImm(vp, gtid, bell.kBlocks * bs2 * 4);
            b.imulImm(cp, gtid, bell.kBlocks * 4);
            b.iaddImm(vp, vp, static_cast<int32_t>(bell.valsBase));
            b.iaddImm(cp, cp, static_cast<int32_t>(bell.colsBase));
        }
        for (int e = 0; e < bs; ++e)
            b.movImmF(static_cast<Reg>(acc + e), 0.0f);
        b.movImm(blk, 0);

        const int val_step =
            bell.interleaved ? bs2 * bell.ld * 4 : bs2 * 4;
        const int val_off = bell.interleaved ? bell.ld * 4 : 4;
        const int col_step = bell.interleaved ? bell.ld * 4 : 4;

        b.beginLoop();
        b.setpIImm(p_done, CmpOp::kGe, blk, bell.kBlocks);
        b.brk(p_done);
        // Column index first so the block values stream while the
        // dependent gather address is being formed.
        b.ldg(col, cp, 0);
        for (int e = 0; e < bs2; ++e)
            b.ldg(static_cast<Reg>(vals + e), vp, e * val_off);
        if (interleaved_vector) {
            b.shlImm(xa, col, 2);
            b.iaddImm(xa, xa, static_cast<int32_t>(v.xIvBase));
            for (int e = 0; e < bs; ++e) {
                if (use_texture)
                    b.ldt(static_cast<Reg>(xv + e), xa,
                          e * v.blockRows * 4);
                else
                    b.ldg(static_cast<Reg>(xv + e), xa,
                          e * v.blockRows * 4);
            }
        } else {
            b.imulImm(xa, col, bs * 4);
            b.iaddImm(xa, xa, static_cast<int32_t>(v.xBase));
            for (int e = 0; e < bs; ++e) {
                if (use_texture)
                    b.ldt(static_cast<Reg>(xv + e), xa, e * 4);
                else
                    b.ldg(static_cast<Reg>(xv + e), xa, e * 4);
            }
        }
        for (int er = 0; er < bs; ++er) {
            for (int ec = 0; ec < bs; ++ec) {
                b.fmad(static_cast<Reg>(acc + er),
                       static_cast<Reg>(vals + er * bs + ec),
                       static_cast<Reg>(xv + ec),
                       static_cast<Reg>(acc + er));
            }
        }
        b.iaddImm(vp, vp, val_step);
        b.iaddImm(cp, cp, col_step);
        b.iaddImm(blk, blk, 1);
        b.endLoop();

        if (interleaved_vector) {
            b.shlImm(xa, gtid, 2);
            b.iaddImm(xa, xa, static_cast<int32_t>(v.yIvBase));
            for (int e = 0; e < bs; ++e)
                b.stg(xa, static_cast<Reg>(acc + e),
                      e * v.blockRows * 4);
        } else {
            b.imulImm(xa, gtid, bs * 4);
            b.iaddImm(xa, xa, static_cast<int32_t>(v.yBase));
            for (int e = 0; e < bs; ++e)
                b.stg(xa, static_cast<Reg>(acc + e), e * 4);
        }
    }
    b.endIf();
    return b.build(0);
}

double
spmvMaxError(const funcsim::GlobalMemory &gmem, const BlockSparseMatrix &m,
             const SpmvVectors &v, bool interleaved_y)
{
    std::vector<double> ref(m.rows());
    cpuSpmv(m, gmem.f32(v.xBase), ref.data());
    std::vector<float> y = readY(gmem, v, interleaved_y);
    double max_err = 0.0;
    for (int i = 0; i < m.rows(); ++i) {
        const double denom = std::max(1.0, std::fabs(ref[i]));
        max_err =
            std::max(max_err, std::fabs(y[i] - ref[i]) / denom);
    }
    return max_err;
}

} // namespace apps
} // namespace gpuperf
