/**
 * @file
 * Block-structured sparse matrices (paper Section 5.3).
 *
 * The paper evaluates on QCD, a naturally 3x3-blocked matrix with a
 * uniform number of blocks per block-row and strong diagonal locality.
 * makeBandedBlockMatrix() synthesizes a matrix with those properties:
 * one diagonal block plus further blocks drawn within a narrow band,
 * so neighboring rows have similar entry positions — the property the
 * interleaved-vector optimization exploits.
 */

#ifndef GPUPERF_APPS_SPMV_MATRIX_H
#define GPUPERF_APPS_SPMV_MATRIX_H

#include <cstdint>
#include <vector>

namespace gpuperf {
namespace apps {

/** A sparse matrix of dense blockSize x blockSize blocks. */
struct BlockSparseMatrix
{
    int blockRows = 0;
    int blockSize = 3;
    /** Per block-row: sorted unique block-column indices. */
    std::vector<std::vector<int>> blockCols;
    /** Per block-row: values, blockSize^2 floats per block, row-major
     *  within the block, in blockCols order. */
    std::vector<std::vector<float>> blockVals;

    int rows() const { return blockRows * blockSize; }
    /** Stored entries (all block elements count, as in BELL/ELL). */
    uint64_t storedEntries() const;
    /** Maximum scalar entries in any row. */
    int maxRowEntries() const;
    /** True if every block-row has the same number of blocks. */
    bool uniform() const;
};

/**
 * Synthesize a QCD-like banded block matrix.
 *
 * @param block_rows     block rows (scalar rows = 3x)
 * @param blocks_per_row blocks in each block-row (incl. the diagonal)
 * @param half_band      blocks are drawn from [R-half_band, R+half_band]
 */
BlockSparseMatrix makeBandedBlockMatrix(int block_rows, int blocks_per_row,
                                        int half_band, uint64_t seed = 11);

/** Reference SpMV: y = A * x (double accumulation). */
void cpuSpmv(const BlockSparseMatrix &m, const float *x, double *y);

} // namespace apps
} // namespace gpuperf

#endif // GPUPERF_APPS_SPMV_MATRIX_H
