#include "apps/matmul/gemm.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "isa/builder.h"

namespace gpuperf {
namespace apps {

namespace {

int
log2i(int v)
{
    GPUPERF_ASSERT(v > 0 && (v & (v - 1)) == 0, "value must be 2^k");
    int l = 0;
    while ((1 << l) < v)
        ++l;
    return l;
}

} // namespace

GemmProblem
makeGemmProblem(funcsim::GlobalMemory &gmem, int size, int tile,
                uint64_t seed)
{
    if (tile != 8 && tile != 16 && tile != 32)
        fatal("gemm: tile must be 8, 16 or 32 (got %d)", tile);
    if (size < 64 || (size & (size - 1)) != 0)
        fatal("gemm: size must be a power of two >= 64 (got %d)", size);

    GemmProblem p;
    p.size = size;
    p.tile = tile;
    const size_t bytes = static_cast<size_t>(size) * size * 4;
    p.aBase = gmem.alloc(bytes);
    p.bBase = gmem.alloc(bytes);
    p.cBase = gmem.alloc(bytes);

    Rng rng(seed);
    float *a = gmem.f32(p.aBase);
    float *b = gmem.f32(p.bBase);
    for (size_t i = 0; i < static_cast<size_t>(size) * size; ++i) {
        a[i] = rng.nextFloat() - 0.5f;
        b[i] = rng.nextFloat() - 0.5f;
    }
    return p;
}

isa::Kernel
makeGemmKernel(const GemmProblem &p)
{
    using isa::Reg;
    const int n = p.size;
    const int s = p.tile;
    const int log_n = log2i(n);
    const int log_s = log2i(s);
    const int row_blocks = n / 64;
    const int chunks = n / s;
    const int elems_per_thread = s * s / 64;  // B-tile loads per thread
    const int rows_per_step = 64 / s;         // B-tile rows per element
    const int pitch = s + 1;                  // padded shared row

    isa::KernelBuilder b("gemm_" + std::to_string(s) + "x" +
                         std::to_string(s));

    // Live-across-the-loop registers. The prologue's temporaries reuse
    // accumulator registers (they are zeroed afterwards), the way a
    // register allocator would — the register count drives occupancy
    // (Table 2), so it must be compiler-realistic.
    Reg zero = b.reg();
    Reg g_a = b.reg();
    Reg g_b = b.reg();
    Reg s_b = b.reg();
    Reg c_addr = b.reg();
    Reg cnt = b.reg();
    // A-stream ring buffer: deep enough that a value arrives from
    // global memory before its MAD group starts (Volkov's register
    // double-buffering). Smaller tiles have shorter MAD groups and
    // need a deeper ring.
    const int a_ring = 4;
    Reg av = b.regRange(a_ring);
    // The whole next B sub-tile is double-buffered through registers
    // (loaded during the previous chunk's MAD phase, stored to shared
    // right after the barrier).
    Reg tv = b.regRange(elems_per_thread);
    Reg acc = b.regRange(s);
    isa::Pred p_done = b.pred();
    isa::Pred p_more = b.pred();

    const Reg t = acc;
    const Reg cta = static_cast<Reg>(acc + 1);
    const Reg brow = static_cast<Reg>(acc + 2);
    const Reg bcol = static_cast<Reg>(acc + 3);
    const Reg r = static_cast<Reg>(acc + 4);
    const Reg i0 = static_cast<Reg>(acc + 5);
    const Reg j0 = static_cast<Reg>(acc + 6);
    const Reg bcol_s = static_cast<Reg>(acc + 7);

    // --- Prologue: tile coordinates and base addresses ------------------
    b.s2r(t, isa::SpecialReg::kTid);
    b.s2r(cta, isa::SpecialReg::kCtaid);
    b.andImm(brow, cta, row_blocks - 1);
    b.shrImm(bcol, cta, log2i(row_blocks));
    b.shlImm(r, brow, 6);
    b.iadd(r, r, t);
    b.movImm(zero, 0);

    // A (column-major): element (r, k=0) at (0 * n + r) * 4.
    b.shlImm(g_a, r, 2);
    b.iaddImm(g_a, g_a, static_cast<int32_t>(p.aBase));

    // B tile cooperative-load coordinates: thread handles elements
    // idx = t + 64*q, i.e. row i0 + rows_per_step*q, column j0.
    b.shrImm(i0, t, log_s);              // i0 = t / s
    b.andImm(j0, t, s - 1);              // j0 = t % s
    b.shlImm(g_b, i0, log_n);            // i0 * n
    b.iadd(g_b, g_b, j0);
    b.shlImm(bcol_s, bcol, log_s);       // bcol * s
    b.iadd(g_b, g_b, bcol_s);
    b.shlImm(g_b, g_b, 2);
    b.iaddImm(g_b, g_b, static_cast<int32_t>(p.bBase));
    b.imulImm(s_b, i0, pitch);
    b.iadd(s_b, s_b, j0);
    b.shlImm(s_b, s_b, 2);

    // C (column-major): first element (r, bcol*s).
    b.shlImm(c_addr, bcol_s, log_n);
    b.iadd(c_addr, c_addr, r);
    b.shlImm(c_addr, c_addr, 2);
    b.iaddImm(c_addr, c_addr, static_cast<int32_t>(p.cBase));

    for (int j = 0; j < s; ++j)
        b.movImmF(static_cast<Reg>(acc + j), 0.0f);
    b.movImm(cnt, 0);

    // Load the first chunk's B sub-tile into registers.
    for (int q = 0; q < elems_per_thread; ++q)
        b.ldg(static_cast<Reg>(tv + q), g_b, q * rows_per_step * n * 4);

    // --- k loop over S-wide chunks ----------------------------------------
    const int depth = a_ring - 1;  // A prefetch distance
    b.beginLoop();
    b.setpIImm(p_done, isa::CmpOp::kGe, cnt, chunks);
    b.brk(p_done);

    // Prefetch the first A values of the chunk; their latency hides
    // behind the tile store and the barrier.
    for (int kk = 0; kk < depth; ++kk)
        b.ldg(static_cast<Reg>(av + kk % a_ring), g_a, kk * n * 4);

    // Protect the shared tile from readers of the previous chunk,
    // then publish the register-buffered sub-tile.
    b.bar();
    for (int q = 0; q < elems_per_thread; ++q) {
        b.sts(s_b, static_cast<Reg>(tv + q),
              q * rows_per_step * pitch * 4);
    }
    b.bar();

    // Stream the NEXT chunk's sub-tile into the register buffer while
    // this chunk's MADs run (uniform guard: no next chunk at the end).
    b.iaddImm(g_b, g_b, s * n * 4);
    b.setpIImm(p_more, isa::CmpOp::kLt, cnt, chunks - 1);
    b.beginIf(p_more);
    for (int q = 0; q < elems_per_thread; ++q) {
        b.ldg(static_cast<Reg>(tv + q), g_b,
              q * rows_per_step * n * 4);
    }
    b.endIf();

    for (int kk = 0; kk < s; ++kk) {
        if (kk + depth < s) {
            b.ldg(static_cast<Reg>(av + (kk + depth) % a_ring), g_a,
                  (kk + depth) * n * 4);
        }
        const Reg a_cur = static_cast<Reg>(av + kk % a_ring);
        for (int j = 0; j < s; ++j) {
            b.fmadShared(static_cast<Reg>(acc + j), a_cur, zero,
                         (kk * pitch + j) * 4,
                         static_cast<Reg>(acc + j));
        }
    }
    b.iaddImm(g_a, g_a, s * n * 4);
    b.iaddImm(cnt, cnt, 1);
    b.endLoop();

    // --- Store the C strip --------------------------------------------------
    for (int j = 0; j < s; ++j)
        b.stg(c_addr, static_cast<Reg>(acc + j), j * n * 4);

    return b.build(s * pitch * 4);
}

void
cpuGemm(const float *a_colmajor, const float *b_rowmajor, float *c_colmajor,
        int size)
{
    const int n = size;
    for (int c = 0; c < n; ++c) {
        for (int r = 0; r < n; ++r) {
            double sum = 0.0;
            for (int k = 0; k < n; ++k) {
                sum += static_cast<double>(a_colmajor[k * n + r]) *
                       b_rowmajor[k * n + c];
            }
            c_colmajor[c * n + r] = static_cast<float>(sum);
        }
    }
}

double
gemmMaxError(const funcsim::GlobalMemory &gmem, const GemmProblem &p)
{
    const int n = p.size;
    std::vector<float> ref(static_cast<size_t>(n) * n);
    cpuGemm(gmem.f32(p.aBase), gmem.f32(p.bBase), ref.data(), n);

    const float *c = gmem.f32(p.cBase);
    double max_err = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        const double denom = std::max(1.0, std::fabs(
            static_cast<double>(ref[i])));
        max_err = std::max(
            max_err, std::fabs(c[i] - static_cast<double>(ref[i])) / denom);
    }
    return max_err;
}

} // namespace apps
} // namespace gpuperf
