/**
 * @file
 * Volkov/Demmel-style dense matrix multiply (paper Section 5.1).
 *
 * The result matrix is tiled into 64-row x S-column sub-tiles, one per
 * 64-thread block. Only the B sub-tile (S x S, padded to S x (S+1) to
 * stay conflict-free) lives in shared memory; A is streamed from
 * global memory one element per thread per k, and each thread keeps S
 * accumulators in registers — Volkov's key idea of storing only one
 * input's tile on chip. MADs read their B operand directly from shared
 * memory (mad.s), exactly as the GT200 native code does.
 *
 * Layouts: A column-major, B row-major, C column-major — all three
 * make the kernel's global accesses coalesced.
 */

#ifndef GPUPERF_APPS_MATMUL_GEMM_H
#define GPUPERF_APPS_MATMUL_GEMM_H

#include <cstdint>
#include <vector>

#include "funcsim/interpreter.h"
#include "isa/kernel.h"

namespace gpuperf {
namespace apps {

/** Device-resident operands of one GEMM problem. */
struct GemmProblem
{
    int size = 0;            ///< square matrix dimension (power of two)
    int tile = 16;           ///< sub-matrix size S (8, 16, or 32)
    uint64_t aBase = 0;      ///< A, column-major
    uint64_t bBase = 0;      ///< B, row-major
    uint64_t cBase = 0;      ///< C, column-major

    int blockDim() const { return 64; }
    int gridDim() const { return (size / 64) * (size / tile); }
    funcsim::LaunchConfig launch() const
    {
        return {gridDim(), blockDim()};
    }
    /** 2 * size^3 flops. */
    double flops() const
    {
        return 2.0 * size * static_cast<double>(size) * size;
    }
};

/**
 * Allocate A, B, C in @p gmem and fill A, B with deterministic
 * pseudo-random values.
 */
GemmProblem makeGemmProblem(funcsim::GlobalMemory &gmem, int size,
                            int tile, uint64_t seed = 1);

/** Build the tiled GEMM kernel for @p problem. */
isa::Kernel makeGemmKernel(const GemmProblem &problem);

/** Reference CPU GEMM with the same layouts (C = A * B). */
void cpuGemm(const float *a_colmajor, const float *b_rowmajor,
             float *c_colmajor, int size);

/**
 * Compare the device C against the CPU reference.
 * @return largest absolute relative error.
 */
double gemmMaxError(const funcsim::GlobalMemory &gmem,
                    const GemmProblem &problem);

} // namespace apps
} // namespace gpuperf

#endif // GPUPERF_APPS_MATMUL_GEMM_H
