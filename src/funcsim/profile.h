/**
 * @file
 * KernelProfile — the immutable, shareable artifact of one functional
 * simulation pass (the paper's expensive Barra run).
 *
 * The functional behaviour of a launch depends only on the kernel's
 * instructions, the launch shape, the run options, and the small
 * funcsim-relevant slice of the machine description
 * (arch::FuncsimFingerprint). A KernelProfile captures everything the
 * rest of the pipeline consumes — interned per-warp replay traces for
 * the timing simulator and per-stage dynamic statistics for the info
 * extractor — keyed by exactly those inputs, so an N-kernel x M-spec
 * batch runs N functional simulations instead of N x M, and a
 * persistent store (src/store/) can skip them across processes.
 *
 * Profiles are handed around as shared_ptr<const KernelProfile>:
 * every consumer (timing::TimingSimulator, model::InfoExtractor,
 * model::SimulatedDevice, model::AnalysisSession, driver::BatchRunner)
 * reads one immutable object concurrently.
 */

#ifndef GPUPERF_FUNCSIM_PROFILE_H
#define GPUPERF_FUNCSIM_PROFILE_H

#include <cstdint>
#include <string>

#include "arch/gpu_spec.h"
#include "arch/occupancy.h"
#include "funcsim/interpreter.h"
#include "funcsim/stats.h"
#include "funcsim/trace.h"

namespace gpuperf {
namespace funcsim {

/**
 * Identity of a profile: the full set of inputs the functional
 * simulator's output depends on. Two launches with equal keys produce
 * bit-identical DynamicStats and LaunchTraces.
 */
struct ProfileKey
{
    /** isa::Kernel::hash() — instructions + resource usage, no name. */
    uint64_t kernelHash = 0;
    /**
     * GlobalMemory::contentHash() of the pristine input image:
     * data-dependent kernels (e.g. SpMV, whose column indices steer
     * the loads) get distinct keys for distinct inputs.
     */
    uint64_t inputHash = 0;
    LaunchConfig cfg;
    /** Stat-affecting run options (collectTrace is always forced on). */
    bool homogeneous = false;
    int sampleBlocks = 1;
    uint64_t maxWarpOps = 0;
    /** Funcsim-relevant slice of the machine description. */
    arch::FuncsimFingerprint fingerprint;

    /** Deterministic serialization used as memo and store key. */
    std::string str() const;

    bool operator==(const ProfileKey &other) const;
    bool operator!=(const ProfileKey &other) const
    {
        return !(*this == other);
    }
};

/** The shared functional-simulation artifact. */
struct KernelProfile
{
    ProfileKey key;
    /** Kernel display name (diagnostics only; not part of the key). */
    std::string kernelName;
    /** Resource usage driving the occupancy calculation. */
    arch::KernelResources resources;
    /** Per-stage dynamic statistics (info-extractor input). */
    DynamicStats stats;
    /** Interned per-warp replay traces (timing-simulator input). */
    LaunchTrace trace;
};

/**
 * The key a run of @p kernel over @p cfg against @p gmem on @p spec
 * would have. Compute it BEFORE running the kernel: stores mutate the
 * memory image the input hash covers.
 */
ProfileKey makeProfileKey(const isa::Kernel &kernel,
                          const LaunchConfig &cfg,
                          const RunOptions &options,
                          const arch::GpuSpec &spec,
                          const GlobalMemory &gmem);

/**
 * Run @p kernel functionally (trace collection forced on) and package
 * the result as a KernelProfile. @p gmem is mutated by stores exactly
 * as in FunctionalSimulator::run().
 */
KernelProfile profileKernel(FunctionalSimulator &sim,
                            const isa::Kernel &kernel,
                            const LaunchConfig &cfg, GlobalMemory &gmem,
                            RunOptions options = {});

/**
 * Like the above but trusting @p key, which the caller already
 * computed (e.g. for a store lookup) with makeProfileKey() on the
 * SAME pristine inputs — skips re-hashing the memory image.
 */
KernelProfile profileKernel(FunctionalSimulator &sim,
                            const isa::Kernel &kernel,
                            const LaunchConfig &cfg, GlobalMemory &gmem,
                            RunOptions options, ProfileKey key);

} // namespace funcsim
} // namespace gpuperf

#endif // GPUPERF_FUNCSIM_PROFILE_H
