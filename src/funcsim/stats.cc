#include "funcsim/stats.h"

namespace gpuperf {
namespace funcsim {

void
StageStats::accumulate(const StageStats &other)
{
    for (size_t t = 0; t < typeCounts.size(); ++t)
        typeCounts[t] += other.typeCounts[t];
    madCount += other.madCount;
    totalWarpInstrs += other.totalWarpInstrs;
    sharedInstrs += other.sharedInstrs;
    globalInstrs += other.globalInstrs;
    sharedTransactions += other.sharedTransactions;
    sharedTransactionsIdeal += other.sharedTransactionsIdeal;
    sharedBytes += other.sharedBytes;
    globalTransactions += other.globalTransactions;
    globalBytes += other.globalBytes;
    globalRequestBytes += other.globalRequestBytes;
    for (const auto &[size, count] : other.globalXactBySize)
        globalXactBySize[size] += count;
    // activeWarpsPerBlock is averaged by the caller, not summed here.
}

bool
StageStats::operator==(const StageStats &other) const
{
    return typeCounts == other.typeCounts &&
           madCount == other.madCount &&
           totalWarpInstrs == other.totalWarpInstrs &&
           sharedInstrs == other.sharedInstrs &&
           globalInstrs == other.globalInstrs &&
           sharedTransactions == other.sharedTransactions &&
           sharedTransactionsIdeal == other.sharedTransactionsIdeal &&
           sharedBytes == other.sharedBytes &&
           globalTransactions == other.globalTransactions &&
           globalBytes == other.globalBytes &&
           globalRequestBytes == other.globalRequestBytes &&
           globalXactBySize == other.globalXactBySize &&
           activeWarpsPerBlock == other.activeWarpsPerBlock;
}

uint64_t
DynamicStats::totalWarpInstrs() const
{
    uint64_t sum = 0;
    for (const auto &s : stages)
        sum += s.totalWarpInstrs;
    return sum;
}

uint64_t
DynamicStats::totalType(arch::InstrType type) const
{
    uint64_t sum = 0;
    for (const auto &s : stages)
        sum += s.typeCounts[static_cast<int>(type)];
    return sum;
}

uint64_t
DynamicStats::totalMads() const
{
    uint64_t sum = 0;
    for (const auto &s : stages)
        sum += s.madCount;
    return sum;
}

uint64_t
DynamicStats::totalSharedTransactions() const
{
    uint64_t sum = 0;
    for (const auto &s : stages)
        sum += s.sharedTransactions;
    return sum;
}

uint64_t
DynamicStats::totalGlobalTransactions() const
{
    uint64_t sum = 0;
    for (const auto &s : stages)
        sum += s.globalTransactions;
    return sum;
}

uint64_t
DynamicStats::totalGlobalBytes() const
{
    uint64_t sum = 0;
    for (const auto &s : stages)
        sum += s.globalBytes;
    return sum;
}

uint64_t
DynamicStats::totalSharedBytes() const
{
    uint64_t sum = 0;
    for (const auto &s : stages)
        sum += s.sharedBytes;
    return sum;
}

} // namespace funcsim
} // namespace gpuperf
