/**
 * @file
 * Device memory models for the functional simulator.
 */

#ifndef GPUPERF_FUNCSIM_MEMORY_H
#define GPUPERF_FUNCSIM_MEMORY_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace gpuperf {
namespace funcsim {

/**
 * Byte-addressable global (device) memory with a simple linear
 * allocator. Address 0 is never handed out so stray null-address
 * accesses fault loudly.
 */
class GlobalMemory
{
  public:
    /** @param capacity total device memory in bytes. */
    explicit GlobalMemory(size_t capacity);

    /**
     * Allocate @p bytes aligned to @p align (zero-initialized).
     * @return the device byte address of the allocation.
     */
    uint64_t alloc(size_t bytes, size_t align = 256);

    /** Bytes currently allocated (high-water mark). */
    size_t used() const { return next_; }
    size_t capacity() const { return data_.size(); }

    /**
     * FNV-1a digest of the image's identity: used() and capacity()
     * (the shape — capacity bounds which stray accesses fault)
     * followed by the allocated contents (the first used() bytes).
     * Kernels whose behaviour depends on memory contents (e.g. SpMV
     * column indices) get distinct profile keys for distinct inputs.
     * Call before running a kernel — stores mutate the image.
     *
     * Contract: input data must live in alloc()'d space. Bytes
     * written above used() (possible — check() bounds accesses by
     * capacity) are NOT part of the digest, so a launch relying on
     * them could alias another's cached profile.
     */
    uint64_t contentHash() const;

    uint32_t load32(uint64_t addr) const;
    void store32(uint64_t addr, uint32_t value);

    float loadF32(uint64_t addr) const;
    void storeF32(uint64_t addr, float value);

    /** Host-side view of an allocation as a float array. */
    float *f32(uint64_t addr);
    const float *f32(uint64_t addr) const;

    /** Host-side view as a 32-bit integer array. */
    uint32_t *u32(uint64_t addr);
    const uint32_t *u32(uint64_t addr) const;

  private:
    void check(uint64_t addr, size_t bytes) const;

    std::vector<uint8_t> data_;
    size_t next_;
};

/** Per-block on-chip shared memory. */
class SharedMemory
{
  public:
    explicit SharedMemory(int bytes);

    uint32_t load32(uint64_t addr) const;
    void store32(uint64_t addr, uint32_t value);

    int size() const { return static_cast<int>(data_.size()); }

    /** Reset contents to zero (reused across blocks). */
    void clear();

  private:
    void check(uint64_t addr) const;

    std::vector<uint8_t> data_;
};

} // namespace funcsim
} // namespace gpuperf

#endif // GPUPERF_FUNCSIM_MEMORY_H
