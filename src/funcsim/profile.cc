#include "funcsim/profile.h"

#include <cstdio>

#include "common/logging.h"

namespace gpuperf {
namespace funcsim {

std::string
ProfileKey::str() const
{
    char buf[224];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "kh=%016llx|ih=%016llx|grid=%d|block=%d|homog=%d|sample=%d|"
        "maxops=%llu|",
        static_cast<unsigned long long>(kernelHash),
        static_cast<unsigned long long>(inputHash), cfg.gridDim,
        cfg.blockDim, homogeneous ? 1 : 0, sampleBlocks,
        static_cast<unsigned long long>(maxWarpOps));
    GPUPERF_ASSERT(n > 0 && n < static_cast<int>(sizeof(buf)),
                   "ProfileKey overflow");
    return buf + fingerprint.key();
}

bool
ProfileKey::operator==(const ProfileKey &other) const
{
    return kernelHash == other.kernelHash &&
           inputHash == other.inputHash &&
           cfg.gridDim == other.cfg.gridDim &&
           cfg.blockDim == other.cfg.blockDim &&
           homogeneous == other.homogeneous &&
           sampleBlocks == other.sampleBlocks &&
           maxWarpOps == other.maxWarpOps &&
           fingerprint == other.fingerprint;
}

ProfileKey
makeProfileKey(const isa::Kernel &kernel, const LaunchConfig &cfg,
               const RunOptions &options, const arch::GpuSpec &spec,
               const GlobalMemory &gmem)
{
    ProfileKey key;
    key.kernelHash = kernel.hash();
    key.inputHash = gmem.contentHash();
    key.cfg = cfg;
    key.homogeneous = options.homogeneous;
    key.sampleBlocks = options.sampleBlocks;
    key.maxWarpOps = options.maxWarpOps;
    key.fingerprint = arch::FuncsimFingerprint::of(spec);
    return key;
}

KernelProfile
profileKernel(FunctionalSimulator &sim, const isa::Kernel &kernel,
              const LaunchConfig &cfg, GlobalMemory &gmem,
              RunOptions options)
{
    // Key first: the run below mutates gmem, which the key digests.
    options.collectTrace = true;
    return profileKernel(
        sim, kernel, cfg, gmem, options,
        makeProfileKey(kernel, cfg, options, sim.spec(), gmem));
}

KernelProfile
profileKernel(FunctionalSimulator &sim, const isa::Kernel &kernel,
              const LaunchConfig &cfg, GlobalMemory &gmem,
              RunOptions options, ProfileKey key)
{
    options.collectTrace = true;
    KernelProfile profile;
    profile.key = std::move(key);
    profile.kernelName = kernel.name();
    profile.resources.registersPerThread = kernel.numRegisters();
    profile.resources.sharedBytesPerBlock = kernel.sharedBytes();
    profile.resources.threadsPerBlock = cfg.blockDim;
    RunResult result = sim.run(kernel, cfg, gmem, options);
    profile.stats = std::move(result.stats);
    profile.trace = std::move(result.trace);
    return profile;
}

} // namespace funcsim
} // namespace gpuperf
