/**
 * @file
 * Warp-wide opcode kernels for the data-oriented interpreter.
 *
 * One call executes one opcode for ALL lanes of a warp over contiguous
 * SoA operand rows (`&regs[reg * warpSize]`). The loops are written
 * branch-free so the autovectorizer can SIMD-ize them; divergence is
 * handled by the caller, which computes every lane unconditionally and
 * then commits results with a masked scatter (inactive lanes keep
 * their previous register values bit-for-bit).
 *
 * These kernels live in their own translation unit so
 * `src/funcsim/exec_warp.cc` can carry its own optimization flags
 * (-O3, vectorization reports) without touching the rest of the
 * library. Bit-identity contract: every kernel evaluates exactly the
 * same scalar C++ expression per lane as the retained scalar-reference
 * interpreter — same IEEE operation order, no FMA contraction, no
 * fast-math — so vectorized and scalar profiles compare byte-equal.
 */

#ifndef GPUPERF_FUNCSIM_EXEC_WARP_H
#define GPUPERF_FUNCSIM_EXEC_WARP_H

#include <cstdint>

#include "isa/instruction.h"

namespace gpuperf {
namespace funcsim {
namespace warpexec {

/** Per-warp launch context for S2R and friends. */
struct LaneCtx
{
    int tidBase = 0;    ///< thread id of lane 0
    int blockDim = 0;
    int blockId = 0;
    int gridDim = 0;
    int warpId = 0;
};

/** out[i] = v for i in [0, n). */
void fill(uint32_t *out, uint32_t v, int n);

/**
 * Execute an ALU opcode for all @p n lanes: out[i] = op(a[i], b[i],
 * c[i]). @p sel is the predicate row for kSel (may be null otherwise).
 * Operand rows must not alias @p out (the interpreter always computes
 * into a scratch buffer and scatters afterwards, so dst-aliases-src
 * instructions stay well-defined).
 */
void runAlu(const isa::Instruction &inst, const LaneCtx &ctx,
            const uint32_t *a, const uint32_t *b, const uint32_t *c,
            const uint8_t *sel, uint32_t *out, int n);

/** Execute SETP for all lanes: out[i] = cmp(a[i], b[i]) ? 1 : 0. */
void runSetp(const isa::Instruction &inst, const uint32_t *a,
             const uint32_t *b, uint8_t *out, int n);

/** Per-lane byte addresses: addr[i] = (uint64)base[i] + imm. */
void runAddress(const uint32_t *base, int32_t imm, uint64_t *addr, int n);

/** dst[i] = src[i] where mask bit i is set; other lanes unchanged. */
void scatterMasked(uint32_t *dst, const uint32_t *src, uint32_t mask,
                   int n);

/** Predicate-row variant of scatterMasked. */
void scatterMaskedU8(uint8_t *dst, const uint8_t *src, uint32_t mask,
                     int n);

/**
 * Branchless guard-mask evaluation: bit i set iff lane i is in
 * @p active and its predicate (xor @p negate) holds.
 */
uint32_t guardMask(const uint8_t *preds, bool negate, uint32_t active,
                   int n);

} // namespace warpexec
} // namespace funcsim
} // namespace gpuperf

#endif // GPUPERF_FUNCSIM_EXEC_WARP_H
