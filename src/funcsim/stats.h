/**
 * @file
 * Dynamic program statistics — the output of the "Barra + info
 * extractor" stage of the paper's workflow (Figure 1).
 *
 * A program is divided into stages at block-wide synchronization
 * barriers; each stage carries warp-level instruction counts per type,
 * bank-conflict-corrected shared-memory transaction counts, coalesced
 * global-memory hardware transaction counts, and the warp-level
 * parallelism observed while the stage executed.
 */

#ifndef GPUPERF_FUNCSIM_STATS_H
#define GPUPERF_FUNCSIM_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "arch/instr_class.h"

namespace gpuperf {
namespace funcsim {

/** Statistics for one barrier-delimited stage, summed over all blocks. */
struct StageStats
{
    /** Warp-level dynamic instruction counts per pipeline type. */
    std::array<uint64_t, arch::kNumInstrTypes> typeCounts{};
    /** MAD (fused multiply-add) warp instructions, a subset of type II. */
    uint64_t madCount = 0;
    /** All warp-level instructions including memory operations. */
    uint64_t totalWarpInstrs = 0;
    /** LDS/STS warp instructions. */
    uint64_t sharedInstrs = 0;
    /** LDG/STG/LDT warp instructions. */
    uint64_t globalInstrs = 0;

    /** Shared transactions after bank-conflict serialization. */
    uint64_t sharedTransactions = 0;
    /** Shared transactions an ideal conflict-free layout would need. */
    uint64_t sharedTransactionsIdeal = 0;
    /** Bytes moved through shared memory (active lanes * word size). */
    uint64_t sharedBytes = 0;

    /** Global hardware transactions after coalescing. */
    uint64_t globalTransactions = 0;
    /** Bytes moved by those transactions (includes overfetch). */
    uint64_t globalBytes = 0;
    /** Bytes the program actually requested (active lanes * word). */
    uint64_t globalRequestBytes = 0;
    /** Transaction count per segment size, e.g. {32: n, 64: m}. */
    std::map<int, uint64_t> globalXactBySize;

    /**
     * Warps per block that did the stage's real work, averaged over
     * blocks (warps executing at least half as many instructions as the
     * stage's busiest warp count as active — idle warps that only pass
     * through the barrier do not).
     */
    double activeWarpsPerBlock = 0.0;

    /** Merge another block's stage (used during aggregation). */
    void accumulate(const StageStats &other);

    /** Exact field-wise equality (homogeneous-sampling validation). */
    bool operator==(const StageStats &other) const;
    bool operator!=(const StageStats &other) const
    {
        return !(*this == other);
    }
};

/** Full launch statistics. */
struct DynamicStats
{
    std::vector<StageStats> stages;

    int gridDim = 0;
    int blockDim = 0;
    int warpsPerBlock = 0;
    /** Barriers executed per block (== stages.size() - 1 when > 0). */
    int barriersPerBlock = 0;
    /** Number of blocks actually interpreted (rest replicated). */
    int sampledBlocks = 0;

    /** Sum of a field across stages. */
    uint64_t totalWarpInstrs() const;
    uint64_t totalType(arch::InstrType type) const;
    uint64_t totalMads() const;
    uint64_t totalSharedTransactions() const;
    uint64_t totalGlobalTransactions() const;
    uint64_t totalGlobalBytes() const;
    uint64_t totalSharedBytes() const;
};

} // namespace funcsim
} // namespace gpuperf

#endif // GPUPERF_FUNCSIM_STATS_H
