#include "funcsim/exec_warp.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace gpuperf {
namespace funcsim {
namespace warpexec {

namespace {

using isa::Instruction;
using isa::Opcode;

float
asFloat(uint32_t v)
{
    float f;
    std::memcpy(&f, &v, 4);
    return f;
}

uint32_t
asBits(float f)
{
    uint32_t v;
    std::memcpy(&v, &f, 4);
    return v;
}

} // namespace

void
fill(uint32_t *out, uint32_t v, int n)
{
    for (int i = 0; i < n; ++i)
        out[i] = v;
}

// One tight loop per opcode: the switch runs once per warp, not once
// per lane, and each loop body is a straight-line expression the
// autovectorizer can turn into SIMD. The expressions are copied
// verbatim from the scalar-reference interpreter — bit-identity with
// it is a pinned test invariant.
#define GPUPERF_LANE_LOOP(expr)                                          \
    do {                                                                 \
        for (int i = 0; i < n; ++i)                                      \
            out[i] = (expr);                                             \
    } while (0)

void
runAlu(const Instruction &inst, const LaneCtx &ctx, const uint32_t *a,
       const uint32_t *b, const uint32_t *c, const uint8_t *sel,
       uint32_t *out, int n)
{
    switch (inst.op) {
      case Opcode::kFadd:
        GPUPERF_LANE_LOOP(asBits(asFloat(a[i]) + asFloat(b[i])));
        break;
      case Opcode::kFmul:
      case Opcode::kFmul2:
        GPUPERF_LANE_LOOP(asBits(asFloat(a[i]) * asFloat(b[i])));
        break;
      case Opcode::kFmad:
        GPUPERF_LANE_LOOP(
            asBits(asFloat(a[i]) * asFloat(b[i]) + asFloat(c[i])));
        break;
      case Opcode::kIadd:
        GPUPERF_LANE_LOOP(a[i] + b[i]);
        break;
      case Opcode::kIsub:
        GPUPERF_LANE_LOOP(a[i] - b[i]);
        break;
      case Opcode::kImul:
        GPUPERF_LANE_LOOP(a[i] * b[i]);
        break;
      case Opcode::kImad:
        GPUPERF_LANE_LOOP(a[i] * b[i] + c[i]);
        break;
      case Opcode::kShl:
        GPUPERF_LANE_LOOP(a[i] << (b[i] & 31));
        break;
      case Opcode::kShr:
        GPUPERF_LANE_LOOP(a[i] >> (b[i] & 31));
        break;
      case Opcode::kAnd:
        GPUPERF_LANE_LOOP(a[i] & b[i]);
        break;
      case Opcode::kOr:
        GPUPERF_LANE_LOOP(a[i] | b[i]);
        break;
      case Opcode::kXor:
        GPUPERF_LANE_LOOP(a[i] ^ b[i]);
        break;
      case Opcode::kImin:
        GPUPERF_LANE_LOOP(static_cast<uint32_t>(
            std::min(static_cast<int32_t>(a[i]),
                     static_cast<int32_t>(b[i]))));
        break;
      case Opcode::kImax:
        GPUPERF_LANE_LOOP(static_cast<uint32_t>(
            std::max(static_cast<int32_t>(a[i]),
                     static_cast<int32_t>(b[i]))));
        break;
      case Opcode::kMov:
        GPUPERF_LANE_LOOP(a[i]);
        break;
      case Opcode::kMovImm:
        GPUPERF_LANE_LOOP(static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::kS2r:
        switch (inst.sreg) {
          case isa::SpecialReg::kTid:
            GPUPERF_LANE_LOOP(static_cast<uint32_t>(ctx.tidBase + i));
            break;
          case isa::SpecialReg::kNtid:
            GPUPERF_LANE_LOOP(static_cast<uint32_t>(ctx.blockDim));
            break;
          case isa::SpecialReg::kCtaid:
            GPUPERF_LANE_LOOP(static_cast<uint32_t>(ctx.blockId));
            break;
          case isa::SpecialReg::kNctaid:
            GPUPERF_LANE_LOOP(static_cast<uint32_t>(ctx.gridDim));
            break;
          case isa::SpecialReg::kLaneId:
            GPUPERF_LANE_LOOP(static_cast<uint32_t>(i));
            break;
          case isa::SpecialReg::kWarpId:
            GPUPERF_LANE_LOOP(static_cast<uint32_t>(ctx.warpId));
            break;
        }
        break;
      case Opcode::kSel:
        GPUPERF_LANE_LOOP(sel[i] ? a[i] : b[i]);
        break;
      case Opcode::kF2i:
        GPUPERF_LANE_LOOP(static_cast<uint32_t>(
            static_cast<int32_t>(asFloat(a[i]))));
        break;
      case Opcode::kI2f:
        GPUPERF_LANE_LOOP(
            asBits(static_cast<float>(static_cast<int32_t>(a[i]))));
        break;
      case Opcode::kRcp:
        GPUPERF_LANE_LOOP(asBits(1.0f / asFloat(a[i])));
        break;
      case Opcode::kSin:
        GPUPERF_LANE_LOOP(asBits(std::sin(asFloat(a[i]))));
        break;
      case Opcode::kCos:
        GPUPERF_LANE_LOOP(asBits(std::cos(asFloat(a[i]))));
        break;
      case Opcode::kLg2:
        GPUPERF_LANE_LOOP(asBits(std::log2(asFloat(a[i]))));
        break;
      case Opcode::kEx2:
        GPUPERF_LANE_LOOP(asBits(std::exp2(asFloat(a[i]))));
        break;
      case Opcode::kRsqrt:
        GPUPERF_LANE_LOOP(asBits(1.0f / std::sqrt(asFloat(a[i]))));
        break;
      // Double precision operates on float values held in 32-bit
      // registers, exactly as in the scalar reference.
      case Opcode::kDadd:
        GPUPERF_LANE_LOOP(asBits(asFloat(a[i]) + asFloat(b[i])));
        break;
      case Opcode::kDmul:
        GPUPERF_LANE_LOOP(asBits(asFloat(a[i]) * asFloat(b[i])));
        break;
      case Opcode::kDfma:
        GPUPERF_LANE_LOOP(
            asBits(asFloat(a[i]) * asFloat(b[i]) + asFloat(c[i])));
        break;
      default:
        panic("runAlu: unexpected opcode %s", isa::opcodeName(inst.op));
    }
}

#undef GPUPERF_LANE_LOOP

void
runSetp(const Instruction &inst, const uint32_t *a, const uint32_t *b,
        uint8_t *out, int n)
{
#define GPUPERF_CMP_LOOP(lhs, op, rhs)                                   \
    do {                                                                 \
        for (int i = 0; i < n; ++i)                                      \
            out[i] = ((lhs)op(rhs)) ? 1 : 0;                             \
    } while (0)

    if (inst.op == Opcode::kSetpI) {
        switch (inst.cmp) {
          case isa::CmpOp::kLt:
            GPUPERF_CMP_LOOP(static_cast<int32_t>(a[i]), <,
                             static_cast<int32_t>(b[i]));
            break;
          case isa::CmpOp::kLe:
            GPUPERF_CMP_LOOP(static_cast<int32_t>(a[i]), <=,
                             static_cast<int32_t>(b[i]));
            break;
          case isa::CmpOp::kGt:
            GPUPERF_CMP_LOOP(static_cast<int32_t>(a[i]), >,
                             static_cast<int32_t>(b[i]));
            break;
          case isa::CmpOp::kGe:
            GPUPERF_CMP_LOOP(static_cast<int32_t>(a[i]), >=,
                             static_cast<int32_t>(b[i]));
            break;
          case isa::CmpOp::kEq:
            GPUPERF_CMP_LOOP(static_cast<int32_t>(a[i]), ==,
                             static_cast<int32_t>(b[i]));
            break;
          case isa::CmpOp::kNe:
            GPUPERF_CMP_LOOP(static_cast<int32_t>(a[i]), !=,
                             static_cast<int32_t>(b[i]));
            break;
        }
    } else {
        switch (inst.cmp) {
          case isa::CmpOp::kLt:
            GPUPERF_CMP_LOOP(asFloat(a[i]), <, asFloat(b[i]));
            break;
          case isa::CmpOp::kLe:
            GPUPERF_CMP_LOOP(asFloat(a[i]), <=, asFloat(b[i]));
            break;
          case isa::CmpOp::kGt:
            GPUPERF_CMP_LOOP(asFloat(a[i]), >, asFloat(b[i]));
            break;
          case isa::CmpOp::kGe:
            GPUPERF_CMP_LOOP(asFloat(a[i]), >=, asFloat(b[i]));
            break;
          case isa::CmpOp::kEq:
            GPUPERF_CMP_LOOP(asFloat(a[i]), ==, asFloat(b[i]));
            break;
          case isa::CmpOp::kNe:
            GPUPERF_CMP_LOOP(asFloat(a[i]), !=, asFloat(b[i]));
            break;
        }
    }
#undef GPUPERF_CMP_LOOP
}

void
runAddress(const uint32_t *base, int32_t imm, uint64_t *addr, int n)
{
    for (int i = 0; i < n; ++i)
        addr[i] = static_cast<uint64_t>(base[i]) + imm;
}

void
scatterMasked(uint32_t *dst, const uint32_t *src, uint32_t mask, int n)
{
    for (int i = 0; i < n; ++i)
        dst[i] = ((mask >> i) & 1u) ? src[i] : dst[i];
}

void
scatterMaskedU8(uint8_t *dst, const uint8_t *src, uint32_t mask, int n)
{
    for (int i = 0; i < n; ++i)
        dst[i] = ((mask >> i) & 1u) ? src[i] : dst[i];
}

uint32_t
guardMask(const uint8_t *preds, bool negate, uint32_t active, int n)
{
    const uint8_t neg = negate ? 1 : 0;
    uint32_t m = 0;
    for (int i = 0; i < n; ++i)
        m |= static_cast<uint32_t>((preds[i] != 0) ^ neg) << i;
    return m & active;
}

} // namespace warpexec
} // namespace funcsim
} // namespace gpuperf
